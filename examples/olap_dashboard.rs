//! OLAP roll-ups and out-of-core execution — the paper's §7 future work
//! ("OLAP and data mining tasks such as data cube roll up and
//! drill-down") and §6.1 memory management, on the census workload.
//!
//! ```sh
//! cargo run --release --example olap_dashboard
//! ```

use gpudb::core::olap::{self, GroupAggregate};
use gpudb::core::out_of_core::ChunkedTable;
use gpudb::core::query::AggValue;
use gpudb::prelude::*;

fn bar(count: u64, max: u64, width: usize) -> String {
    let filled = ((count as f64 / max.max(1) as f64) * width as f64).round() as usize;
    "#".repeat(filled.min(width))
}

fn main() -> EngineResult<()> {
    let records = 120_000;
    println!("generating census table: {records} records");
    let data = gpudb::data::census::generate(records, 1990);
    let cols: Vec<(&str, &[u32])> = data
        .columns
        .iter()
        .map(|c| (c.name.as_str(), c.values.as_slice()))
        .collect();
    let mut gpu = GpuTable::device_for(records, 600);
    let table = GpuTable::upload(&mut gpu, "census", &cols)?;
    let income = table.column_index("monthly_income")?;
    let household = table.column_index("household_size")?;

    // --- Income histogram: one copy + one depth-bounds pass per bucket ---
    let (buckets, timing) = measure(&mut gpu, |gpu| {
        olap::histogram(gpu, &table, income, &olap::equi_width_edges(0, 12_000, 12)).unwrap()
    });
    let max_count = buckets.iter().map(|b| b.count).max().unwrap_or(1);
    println!(
        "\nmonthly income histogram (modeled {:.3} ms for {} buckets):",
        timing.total() * 1e3,
        buckets.len()
    );
    for b in &buckets {
        println!(
            "  {:>5}-{:>5} {:>7} {}",
            b.low,
            b.high,
            b.count,
            bar(b.count, max_count, 40)
        );
    }

    // --- GROUP BY household_size: the data-cube roll-up ---
    let rollup =
        olap::group_by_aggregate(&mut gpu, &table, household, income, GroupAggregate::Avg)?;
    let counts = olap::group_by_count(&mut gpu, &table, household)?;
    println!("\nGROUP BY household_size -> COUNT(*), AVG(monthly_income):");
    println!(
        "  {:<16} {:>8} {:>12}",
        "household_size", "count", "avg income"
    );
    for ((size, avg), (_, count)) in rollup.iter().zip(&counts) {
        let avg = match avg {
            AggValue::Avg(v) => *v,
            other => panic!("unexpected {other:?}"),
        };
        println!("  {size:<16} {count:>8} {avg:>12.2}");
    }

    // --- Out-of-core: the same dataset, but streamed through a device
    //     whose framebuffer only holds 20k records at a time (§6.1) ---
    println!("\nout-of-core pass (20k-record chunks through a small device):");
    let chunked = ChunkedTable::new("census_stream", cols.clone(), 20_000)?;
    let mut small_gpu = chunked.device_for_chunks(200);
    let rich = chunked.count(&mut small_gpu, income, CompareFunc::GreaterEqual, 8_000)?;
    let total_income = chunked.sum(&mut small_gpu, income)?;
    let median_income = chunked.median(&mut small_gpu, income)?;
    println!(
        "  {} chunks | income >= 8000: {rich} | total income: {total_income} | \
         median: {median_income}",
        chunked.chunk_count()
    );
    println!(
        "  bytes swapped over AGP: {:.1} MB (modeled {:.3} ms of bus time)",
        small_gpu.stats().bytes_uploaded as f64 / (1 << 20) as f64,
        small_gpu.stats().modeled.get(gpudb::sim::Phase::Upload) * 1e3,
    );

    // Verify against the whole-table run.
    let (_, rich_whole) =
        compare_select(&mut gpu, &table, income, CompareFunc::GreaterEqual, 8_000)?;
    assert_eq!(rich, rich_whole);
    assert_eq!(
        total_income,
        aggregate::sum(&mut gpu, &table, income, None)?
    );
    assert_eq!(
        median_income,
        aggregate::median(&mut gpu, &table, income, None)?
    );
    println!("\nout-of-core results match the in-core run ✓");
    Ok(())
}
