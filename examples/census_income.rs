//! Census income analysis — the paper's second workload (§5.1: "a census
//! database consisting of monthly income information", 360K records).
//!
//! Demonstrates the SQL-ish query layer end-to-end on demographically
//! shaped data: filtered aggregates, medians and percentiles of income,
//! and the planner's range-query optimization.
//!
//! ```sh
//! cargo run --release --example census_income [record_count]
//! ```

use gpudb::core::query::{execute, parse, AggValue};
use gpudb::data::census;
use gpudb::prelude::*;

fn run(gpu: &mut Gpu, table: &GpuTable, sql: &str) -> EngineResult<()> {
    let stmt = parse(sql)?;
    let out = execute(gpu, table, &stmt.query)?;
    println!("\nsql> {sql}");
    for (label, value) in &out.rows {
        let rendered = match value {
            AggValue::Count(v) => format!("{v}"),
            AggValue::Sum(v) => format!("{v}"),
            AggValue::Avg(v) => format!("{v:.2}"),
            AggValue::Value(v) => format!("{v}"),
        };
        println!("  {label:<28} {rendered}");
    }
    println!(
        "  [{} rows matched, {:.1}% selectivity, modeled {:.3} ms \
         ({:.3} ms compute-only)]",
        out.matched,
        out.selectivity * 100.0,
        out.timing.total() * 1e3,
        out.timing.compute_only() * 1e3
    );
    Ok(())
}

fn main() -> EngineResult<()> {
    let records: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(90_000);
    println!("generating synthetic census table: {records} records");
    let data = census::generate(records, 1990);
    let cols: Vec<(&str, &[u32])> = data
        .columns
        .iter()
        .map(|c| (c.name.as_str(), c.values.as_slice()))
        .collect();

    let mut gpu = GpuTable::device_for(records, 600);
    let table = GpuTable::upload(&mut gpu, "census", &cols)?;

    run(
        &mut gpu,
        &table,
        "SELECT COUNT(*), MEDIAN(monthly_income), AVG(monthly_income) FROM census",
    )?;

    // Working-age full-timers: multi-attribute CNF.
    run(
        &mut gpu,
        &table,
        "SELECT COUNT(*), MEDIAN(monthly_income), MAX(monthly_income) FROM census \
         WHERE age >= 25 AND age <= 54 AND weekly_hours >= 35",
    )?;

    // The planner turns BETWEEN into a single depth-bounds pass.
    run(
        &mut gpu,
        &table,
        "SELECT COUNT(*), AVG(weekly_hours) FROM census \
         WHERE monthly_income BETWEEN 2000 AND 6000",
    )?;

    // Top earners: order statistics over a filtered population.
    run(
        &mut gpu,
        &table,
        "SELECT KTH_LARGEST(monthly_income, 100), KTH_SMALLEST(monthly_income, 100) \
         FROM census WHERE household_size >= 3",
    )?;

    // Negation handled by operator inversion (no NOT in the CNF).
    run(
        &mut gpu,
        &table,
        "SELECT COUNT(*), SUM(monthly_income) FROM census \
         WHERE NOT (weekly_hours = 0) AND age < 30",
    )?;

    // Income inequality snapshot via percentiles (direct API).
    println!("\nincome distribution (direct aggregate API):");
    for p in [0.10, 0.25, 0.50, 0.75, 0.90, 0.99] {
        let idx = table.column_index("monthly_income")?;
        let v = aggregate::percentile(&mut gpu, &table, idx, p, None)?;
        println!("  p{:<4} {v}", (p * 100.0) as u32);
    }
    Ok(())
}
