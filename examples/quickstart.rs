//! Quickstart: upload a table, run the paper's primitives, read results.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gpudb::prelude::*;

fn main() -> EngineResult<()> {
    // 50k records, one attribute: response latency in microseconds.
    let latencies: Vec<u32> = (0..50_000u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 8) % 20_000)
        .collect();

    // Size a simulated GeForce FX so its framebuffer covers the records.
    let mut gpu = GpuTable::device_for(latencies.len(), 500);
    let table = GpuTable::upload(&mut gpu, "requests", &[("latency_us", &latencies)])?;
    println!(
        "uploaded {} records onto a {}x{} device ({} bytes of VRAM)",
        table.record_count(),
        gpu.width(),
        gpu.height(),
        gpu.vram_used()
    );

    // Predicate via the depth test (Routine 4.1): latency >= 15ms.
    let ((sel, count), timing) = measure(&mut gpu, |gpu| {
        compare_select(gpu, &table, 0, CompareFunc::GreaterEqual, 15_000).unwrap()
    });
    println!(
        "\nSELECT COUNT(*) WHERE latency_us >= 15000\n  -> {count} rows \
         ({:.1}% selectivity), modeled GPU time {:.3} ms ({:.3} ms compute-only)",
        100.0 * count as f64 / latencies.len() as f64,
        timing.total() * 1e3,
        timing.compute_only() * 1e3,
    );

    // Aggregates over the selection: the stencil buffer is the mask.
    let p99_slow = aggregate::percentile(&mut gpu, &table, 0, 0.99, Some(&sel))?;
    let avg_slow = aggregate::avg(&mut gpu, &table, 0, Some(&sel))?;
    println!("  p99 of the slow set: {p99_slow} us; mean {avg_slow:.1} us");

    // Range query in a single pass via the depth-bounds test (Routine 4.4).
    let ((_, in_band), timing) = measure(&mut gpu, |gpu| {
        range_select(gpu, &table, 0, 1_000, 5_000).unwrap()
    });
    println!(
        "\nSELECT COUNT(*) WHERE latency_us BETWEEN 1000 AND 5000\n  -> {in_band} rows, \
         modeled {:.3} ms (one pass, not two)",
        timing.total() * 1e3
    );

    // Order statistics without sorting (Routine 4.5).
    let median = aggregate::median(&mut gpu, &table, 0, None)?;
    let k100 = aggregate::kth_largest(&mut gpu, &table, 0, 100, None)?;
    println!("\nmedian latency: {median} us; 100th-largest: {k100} us");

    // Exact SUM via the bitwise accumulator (Routine 4.6).
    let total = aggregate::sum(&mut gpu, &table, 0, None)?;
    let expected: u64 = latencies.iter().map(|&v| v as u64).sum();
    assert_eq!(total, expected);
    println!("total latency: {total} us (exact, verified against the CPU)");

    // Or drive everything through the SQL-ish layer.
    let stmt = gpudb::core::query::parse(
        "SELECT COUNT(*), MEDIAN(latency_us), MAX(latency_us) FROM requests \
         WHERE latency_us BETWEEN 100 AND 10000",
    )?;
    let out = gpudb::core::query::execute(&mut gpu, &table, &stmt.query)?;
    println!("\nSQL layer:");
    for (label, value) in &out.rows {
        println!("  {label} = {value:?}");
    }
    println!(
        "  ({} rows matched, modeled {:.3} ms)",
        out.matched,
        out.timing.total() * 1e3
    );
    Ok(())
}
