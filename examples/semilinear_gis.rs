//! Semi-linear queries on spatial data — the paper's §4.1.2 motivation:
//! "Applications encountered in Geographical Information Systems (GIS),
//! geometric modeling, and spatial databases define geometric data objects
//! as linear inequalities of the attributes in a relational database.
//! Such geometric data objects are called semi-linear sets."
//!
//! Stores point features (x, y) plus attributes, then answers half-plane
//! and corridor queries as `(s · a) op b` kill-passes, and column-column
//! comparisons via the `a_i - a_j op 0` rewrite.
//!
//! ```sh
//! cargo run --release --example semilinear_gis
//! ```

use gpudb::cpu;
use gpudb::prelude::*;

fn main() -> EngineResult<()> {
    // A synthetic city grid: 200k point features with coordinates in a
    // 16-bit domain plus two measured attributes.
    let n = 200_000usize;
    let mut seed = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let x: Vec<u32> = (0..n).map(|_| (next() % 65536) as u32).collect();
    let y: Vec<u32> = (0..n).map(|_| (next() % 65536) as u32).collect();
    let elevation: Vec<u32> = (0..n).map(|_| (next() % 4000) as u32).collect();
    let population: Vec<u32> = (0..n).map(|_| (next() % 100_000) as u32).collect();

    let mut gpu = GpuTable::device_for(n, 1000);
    let table = GpuTable::upload(
        &mut gpu,
        "features",
        &[
            ("x", &x),
            ("y", &y),
            ("elevation", &elevation),
            ("population", &population),
        ],
    )?;
    println!("loaded {n} point features");
    let raw: Vec<&[u32]> = vec![&x, &y, &elevation, &population];

    // --- Half-plane query: which features lie north-east of the line
    //     x + y >= 80000? One fragment-program pass, no depth copy. ---
    let coeffs = [1.0f32, 1.0, 0.0, 0.0];
    let ((_, count), t) = measure(&mut gpu, |gpu| {
        semilinear_select(gpu, &table, &coeffs, CompareFunc::GreaterEqual, 80_000.0).unwrap()
    });
    let cpu_count =
        cpu::semilinear::semilinear_count(&raw, &coeffs, cpu::CmpOp::Ge, 80_000.0) as u64;
    assert_eq!(count, cpu_count);
    println!(
        "\n[half-plane] x + y >= 80000: {count} features \
         (modeled {:.3} ms, zero copy-to-depth)",
        t.total() * 1e3
    );

    // --- Oblique corridor: features within the band
    //     20000 <= 0.6x - 0.8y + 50000 <= 28000, expressed as two
    //     semi-linear passes intersected on the host counts. ---
    let band = [0.6f32, -0.8, 0.0, 0.0];
    let (_, above) = semilinear_select(
        &mut gpu,
        &table,
        &band,
        CompareFunc::GreaterEqual,
        20_000.0 - 50_000.0,
    )?;
    let (_, below) = semilinear_select(
        &mut gpu,
        &table,
        &band,
        CompareFunc::Greater,
        28_000.0 - 50_000.0,
    )?;
    println!(
        "[corridor] 20000 <= 0.6x - 0.8y + 50000 <= 28000: {} features",
        above - below
    );

    // --- Weighted scoring: flood risk = 2*pop - 30*elevation > 0,
    //     a genuine 4-attribute linear combination. ---
    let risk = [0.0f32, 0.0, -30.0, 2.0];
    let ((risk_sel, at_risk), t) = measure(&mut gpu, |gpu| {
        semilinear_select(gpu, &table, &risk, CompareFunc::Greater, 0.0).unwrap()
    });
    assert_eq!(
        at_risk,
        cpu::semilinear::semilinear_count(&raw, &risk, cpu::CmpOp::Gt, 0.0) as u64
    );
    println!(
        "\n[risk score] 2*population - 30*elevation > 0: {at_risk} features \
         ({:.2}% of city, modeled {:.3} ms)",
        100.0 * at_risk as f64 / n as f64,
        t.total() * 1e3
    );
    let worst_pop = aggregate::max(&mut gpu, &table, 3, Some(&risk_sel))?;
    println!("  largest population among at-risk features: {worst_pop}");

    // --- Column-column comparison (the paper's a_i op a_j rewrite):
    //     features where x > y, i.e. south-east half of the grid. ---
    let ((_, se_count), t) = measure(&mut gpu, |gpu| {
        compare_attributes(gpu, &table, 0, 1, CompareFunc::Greater).unwrap()
    });
    let expected = (0..n).filter(|&i| x[i] > y[i]).count() as u64;
    assert_eq!(se_count, expected);
    println!(
        "\n[attribute compare] x > y: {se_count} features (modeled {:.3} ms, \
         planned as the semi-linear query x - y > 0)",
        t.total() * 1e3
    );

    println!("\nall GPU results verified against CPU references ✓");
    Ok(())
}
