//! Network traffic monitoring — the paper's primary workload (§5.1).
//!
//! Loads a synthetic TCP/IP trace with the paper's schema
//! `(data_count, data_loss, flow_rate, retransmissions)` and answers the
//! kinds of monitoring questions the paper benchmarks: multi-attribute
//! selections, selectivity analysis, and order statistics — verifying
//! every GPU answer against the optimized CPU baseline.
//!
//! ```sh
//! cargo run --release --example network_monitor [record_count]
//! ```

use gpudb::cpu;
use gpudb::data::{selectivity, tcpip};
use gpudb::prelude::*;

fn main() -> EngineResult<()> {
    let records: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    println!("generating synthetic TCP/IP trace: {records} records x 4 attributes");
    let trace = tcpip::generate(records, 2004);
    let cols: Vec<(&str, &[u32])> = trace
        .columns
        .iter()
        .map(|c| (c.name.as_str(), c.values.as_slice()))
        .collect();
    let raw: Vec<&[u32]> = trace.column_slices();

    let mut gpu = GpuTable::device_for(records, 1000);
    let table = GpuTable::upload(&mut gpu, "tcpip", &cols)?;
    println!(
        "device: {} | VRAM in use: {:.1} MB",
        gpu.profile().name,
        gpu.vram_used() as f64 / (1 << 20) as f64
    );

    // --- 1. Heavy-hitter flows: data_count above its 95th percentile ---
    let threshold = selectivity::percentile(raw[0], 0.95).unwrap();
    let ((sel, count), t) = measure(&mut gpu, |gpu| {
        compare_select(gpu, &table, 0, CompareFunc::GreaterEqual, threshold).unwrap()
    });
    let cpu_count = cpu::scan::count_u32(raw[0], cpu::CmpOp::Ge, threshold) as u64;
    assert_eq!(count, cpu_count);
    println!(
        "\n[heavy hitters] data_count >= {threshold}: {count} flows \
         (modeled GPU {:.3} ms, {:.3} ms compute-only)",
        t.total() * 1e3,
        t.compute_only() * 1e3
    );
    let worst = aggregate::max(&mut gpu, &table, 3, Some(&sel))?;
    println!("  max retransmissions among heavy hitters: {worst}");

    // --- 2. Multi-attribute health check (Figure 5 shape) ---
    let cnf = GpuCnf::all_of(vec![
        GpuPredicate::new(1, CompareFunc::Greater, 0), // lossy
        GpuPredicate::new(3, CompareFunc::GreaterEqual, 4), // retransmitting
        GpuPredicate::new(2, CompareFunc::GreaterEqual, 1000), // busy
    ]);
    let ((_, unhealthy), t) = measure(&mut gpu, |gpu| {
        gpudb::core::boolean::eval_cnf_select(gpu, &table, &cnf).unwrap()
    });
    let cpu_cnf = cpu::Cnf::all_of(vec![
        cpu::Predicate::new(1, cpu::CmpOp::Gt, 0),
        cpu::Predicate::new(3, cpu::CmpOp::Ge, 4),
        cpu::Predicate::new(2, cpu::CmpOp::Ge, 1000),
    ]);
    let cpu_unhealthy = cpu::cnf::eval_cnf(&raw, &cpu_cnf).count_ones() as u64;
    assert_eq!(unhealthy, cpu_unhealthy);
    println!(
        "\n[health] lossy AND retransmitting AND busy: {unhealthy} flows \
         ({:.2}% selectivity, modeled {:.3} ms)",
        100.0 * unhealthy as f64 / records as f64,
        t.total() * 1e3
    );

    // --- 3. Range query on flow_rate at 60% selectivity (Figure 4 setup) ---
    let (low, high, achieved) = selectivity::range_for_selectivity(raw[2], 0.6).unwrap();
    let ((_, in_range), t) = measure(&mut gpu, |gpu| {
        range_select(gpu, &table, 2, low, high).unwrap()
    });
    assert_eq!(
        in_range,
        cpu::cnf::eval_range(raw[2], low, high).count_ones() as u64
    );
    println!(
        "\n[range] flow_rate in [{low}, {high}] (target 60%, achieved {:.1}%): \
         {in_range} flows, modeled {:.3} ms in ONE depth-bounds pass",
        achieved * 100.0,
        t.total() * 1e3
    );

    // --- 4. Order statistics without sorting (Figures 7-8) ---
    let (median, t) = measure(&mut gpu, |gpu| {
        aggregate::median(gpu, &table, 0, None).unwrap()
    });
    let cpu_median = cpu::quickselect::median(raw[0]).unwrap();
    assert_eq!(median, cpu_median);
    println!(
        "\n[order stats] median data_count = {median} \
         (GPU bit-descent {:.3} ms modeled; CPU QuickSelect agrees)",
        t.total() * 1e3
    );
    for k in [1usize, 10, 100] {
        let v = aggregate::kth_largest(&mut gpu, &table, 0, k, None)?;
        assert_eq!(v, cpu::quickselect::kth_largest(raw[0], k).unwrap());
        println!("  {k}-th largest data_count: {v}");
    }

    // --- 5. Exact aggregate totals (Figure 10's accumulator) ---
    let (total_loss, t) = measure(&mut gpu, |gpu| {
        aggregate::sum(gpu, &table, 1, None).unwrap()
    });
    assert_eq!(total_loss, cpu::aggregate::sum(raw[1]));
    println!(
        "\n[sum] total data_loss = {total_loss} (exact; {} occlusion passes, \
         modeled {:.3} ms — the one primitive where the paper's GPU loses)",
        table.column(1)?.bits,
        t.total() * 1e3
    );

    println!("\nall GPU results verified against the optimized CPU baseline ✓");
    Ok(())
}
