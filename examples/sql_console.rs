//! Interactive SQL-ish console over the GPU engine.
//!
//! Loads both paper workloads (`tcpip`, `census`) onto simulated devices
//! and runs statements typed on stdin (or passed as the first argument).
//!
//! ```sh
//! cargo run --release --example sql_console \
//!   "SELECT COUNT(*), MEDIAN(data_count) FROM tcpip WHERE data_loss > 0"
//!
//! # or interactively:
//! cargo run --release --example sql_console
//! sql> SELECT MAX(monthly_income) FROM census WHERE age < 30
//! sql> EXPLAIN ANALYZE SELECT COUNT(*) FROM tcpip WHERE data_loss > 0
//! sql> .analyze SELECT COUNT(*) FROM tcpip WHERE data_loss > 0
//! sql> .trace /tmp/last-query.trace.json
//! ```
//!
//! `.analyze` (or the `EXPLAIN ANALYZE` prefix) runs the query for real
//! and prints the plan tree annotated with per-node modeled time; every
//! executed query also records a span trace that `.trace PATH` dumps as
//! Chrome trace-event JSON (load it in Perfetto / `chrome://tracing`).

use gpudb::core::query::{execute_with_options, parse, AggValue, ExecuteOptions, TraceLevel};
use gpudb::data::{census, tcpip};
use gpudb::obs::{chrome, SpanTree};
use gpudb::prelude::*;
use std::collections::HashMap;
use std::io::{self, BufRead, Write};

struct Catalog {
    tables: HashMap<String, (Gpu, GpuTable)>,
    last_trace: Option<SpanTree>,
}

impl Catalog {
    fn load() -> EngineResult<Catalog> {
        let mut tables = HashMap::new();
        for (name, dataset) in [
            ("tcpip", tcpip::generate(100_000, 2004)),
            ("census", census::generate(90_000, 1990)),
        ] {
            let cols: Vec<(&str, &[u32])> = dataset
                .columns
                .iter()
                .map(|c| (c.name.as_str(), c.values.as_slice()))
                .collect();
            let mut gpu = GpuTable::device_for(dataset.record_count(), 500);
            let table = GpuTable::upload(&mut gpu, name, &cols)?;
            tables.insert(name.to_string(), (gpu, table));
        }
        Ok(Catalog {
            tables,
            last_trace: None,
        })
    }

    fn run(&mut self, sql: &str) {
        let stmt = match parse(sql) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("parse error: {e}");
                return;
            }
        };
        let Some((gpu, table)) = self.tables.get_mut(&stmt.table) else {
            eprintln!(
                "unknown table {:?}; available: {:?}",
                stmt.table,
                self.tables.keys().collect::<Vec<_>>()
            );
            return;
        };
        if stmt.analyze {
            // EXPLAIN ANALYZE: execute for real, render the plan tree
            // annotated with per-node modeled time and work counters.
            match gpudb::core::query::explain_analyze(gpu, table, &stmt.query) {
                Ok(report) => print!("{report}"),
                Err(e) => eprintln!("execution error: {e}"),
            }
            return;
        }
        if stmt.explain {
            // Record-only dry run: per-pass depth/stencil detail with
            // nothing shaded and no modeled cost accrued.
            match gpudb::core::query::explain_with_device(gpu, table, &stmt.query) {
                Ok(plan) => print!("{plan}"),
                Err(e) => eprintln!("planning error: {e}"),
            }
            return;
        }
        let options = ExecuteOptions {
            trace: Some(TraceLevel::Passes),
            ..ExecuteOptions::default()
        };
        match execute_with_options(gpu, table, &stmt.query, options) {
            Ok(out) => {
                self.last_trace = out.trace;
                for (label, value) in &out.rows {
                    let rendered = match value {
                        AggValue::Count(v) => format!("{v}"),
                        AggValue::Sum(v) => format!("{v}"),
                        AggValue::Avg(v) => format!("{v:.3}"),
                        AggValue::Value(v) => format!("{v}"),
                    };
                    println!("{label:<32} {rendered}");
                }
                println!(
                    "-- {} rows matched ({:.2}% selectivity); modeled GPU time \
                     {:.3} ms = copy {:.3} + compute {:.3} + readback {:.3}",
                    out.matched,
                    out.selectivity * 100.0,
                    out.timing.total() * 1e3,
                    out.timing.copy * 1e3,
                    out.timing.compute * 1e3,
                    out.timing.readback * 1e3
                );
            }
            Err(e) => eprintln!("execution error: {e}"),
        }
    }

    /// `.analyze SQL` — EXPLAIN ANALYZE without typing the prefix.
    fn analyze(&mut self, sql: &str) {
        if sql.is_empty() {
            eprintln!("usage: .analyze SELECT ... FROM table [WHERE ...]");
            return;
        }
        let stmt = match parse(sql) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("parse error: {e}");
                return;
            }
        };
        let Some((gpu, table)) = self.tables.get_mut(&stmt.table) else {
            eprintln!(
                "unknown table {:?}; available: {:?}",
                stmt.table,
                self.tables.keys().collect::<Vec<_>>()
            );
            return;
        };
        match gpudb::core::query::explain_analyze(gpu, table, &stmt.query) {
            Ok(report) => print!("{report}"),
            Err(e) => eprintln!("execution error: {e}"),
        }
    }

    /// `.trace PATH` — dump the last executed query's span trace as
    /// Chrome trace-event JSON.
    fn dump_trace(&self, path: &str) {
        if path.is_empty() {
            eprintln!("usage: .trace PATH (writes Chrome trace-event JSON)");
            return;
        }
        let Some(tree) = &self.last_trace else {
            eprintln!("no trace yet — run a query first");
            return;
        };
        match std::fs::write(path, chrome::trace_json(tree)) {
            Ok(()) => println!(
                "wrote {path} ({} spans); open in Perfetto or chrome://tracing",
                tree.span_count()
            ),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }

    fn describe(&self) {
        for (name, (_, table)) in &self.tables {
            let cols: Vec<&str> = table.columns().iter().map(|c| c.name.as_str()).collect();
            println!(
                "table {name}: {} records, columns {cols:?}",
                table.record_count()
            );
        }
    }
}

fn main() -> EngineResult<()> {
    println!("loading workloads onto simulated GeForce FX devices...");
    let mut catalog = Catalog::load()?;
    catalog.describe();

    if let Some(sql) = std::env::args().nth(1) {
        catalog.run(&sql);
        return Ok(());
    }

    let stdin = io::stdin();
    loop {
        print!("sql> ");
        io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        match line {
            "" => continue,
            "\\q" | "quit" | "exit" => break,
            "\\d" | "describe" => catalog.describe(),
            cmd if cmd
                .strip_prefix(".analyze")
                .is_some_and(|r| r.is_empty() || r.starts_with(' ')) =>
            {
                catalog.analyze(cmd[".analyze".len()..].trim())
            }
            cmd if cmd
                .strip_prefix(".trace")
                .is_some_and(|r| r.is_empty() || r.starts_with(' ')) =>
            {
                catalog.dump_trace(cmd[".trace".len()..].trim())
            }
            sql => catalog.run(sql),
        }
    }
    Ok(())
}
