//! Continuous queries over a stream — the paper's §7 closing future-work
//! item ("perform continuous queries over streams using GPUs").
//!
//! Simulates a live network feed: batches of flow byte-counts arrive, a
//! sliding window stays resident on the device as a ring-buffered texture,
//! and each tick answers monitoring queries over the live window without
//! ever re-uploading it.
//!
//! ```sh
//! cargo run --release --example stream_monitor
//! ```

use gpudb::core::stream::StreamWindow;
use gpudb::core::GpuTable;
use gpudb::prelude::*;

fn main() -> EngineResult<()> {
    const WINDOW: usize = 50_000;
    const BATCH: usize = 5_000;
    const TICKS: usize = 12;

    let mut gpu = GpuTable::device_for(WINDOW, 500);
    let mut window = StreamWindow::new(&mut gpu, "flows", WINDOW)?;
    println!(
        "sliding window: {WINDOW} records on a {}x{} device; {BATCH}-record batches\n",
        gpu.width(),
        gpu.height()
    );
    println!(
        "{:>4} {:>9} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "tick", "window", "sum(bytes)", "median", "p99", ">=1MB flows", "ms (model)"
    );

    // A deterministic bursty source: quiet traffic with periodic spikes.
    let mut seed = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };

    for tick in 0..TICKS {
        let spike = tick % 4 == 3; // every 4th tick is a burst
        let batch: Vec<u32> = (0..BATCH)
            .map(|_| {
                let base = (next() % 200_000) as u32;
                if spike && next() % 10 == 0 {
                    base.saturating_mul(40).min((1 << 24) - 1)
                } else {
                    base
                }
            })
            .collect();

        let before = gpu.stats().modeled.total();
        window.push(&mut gpu, &batch)?;
        let sum = window.sum(&mut gpu)?;
        let median = window.median(&mut gpu)?;
        let p99_rank = (window.len() as f64 * 0.01).ceil().max(1.0) as usize;
        let p99 = window.kth_largest(&mut gpu, p99_rank)?;
        let heavy = window.count(&mut gpu, CompareFunc::GreaterEqual, 1 << 20)?;
        let tick_ms = (gpu.stats().modeled.total() - before) * 1e3;

        println!(
            "{:>4} {:>9} {:>12} {:>10} {:>10} {:>12} {:>10.3}{}",
            tick,
            window.len(),
            sum,
            median,
            p99,
            heavy,
            tick_ms,
            if spike { "   <-- burst" } else { "" }
        );
    }

    println!(
        "\ntotal bytes streamed over AGP: {:.2} MB (batches only — the window never \
         re-uploads)",
        gpu.stats().bytes_uploaded as f64 / (1 << 20) as f64
    );
    window.free(&mut gpu)?;
    Ok(())
}
