//! # gpudb — GPU database operations (SIGMOD 2004 reproduction)
//!
//! A from-scratch Rust reproduction of Govindaraju, Lloyd, Wang, Lin &
//! Manocha, *Fast Computation of Database Operations using Graphics
//! Processors* (SIGMOD 2004), on a simulated GeForce-FX-class fragment
//! pipeline.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`sim`] — the GPU substrate (textures, depth/stencil/alpha tests,
//!   fragment-program ISA, occlusion queries, calibrated cost model);
//! * [`core`] — the paper's algorithms (predicates, CNF, range queries,
//!   semi-linear queries, k-th largest, bitwise accumulator, bitonic
//!   sort) plus a declarative query layer;
//! * [`cpu`] — the optimized CPU baselines the paper compares against;
//! * [`data`] — synthetic TCP/IP-trace and census workload generators;
//! * [`obs`] — hierarchical span tracing on the modeled clock, with
//!   Chrome-trace / flamegraph / JSONL exporters and `EXPLAIN ANALYZE`.
//!
//! ## Quickstart
//!
//! ```
//! use gpudb::prelude::*;
//!
//! // A network-monitoring table (paper §5.1), 10k records.
//! let trace = gpudb::data::tcpip::generate(10_000, 42);
//! let cols: Vec<(&str, &[u32])> = trace
//!     .columns
//!     .iter()
//!     .map(|c| (c.name.as_str(), c.values.as_slice()))
//!     .collect();
//! let mut gpu = GpuTable::device_for(trace.record_count(), 200);
//! let table = GpuTable::upload(&mut gpu, "tcpip", &cols).unwrap();
//!
//! // SQL-ish entry point.
//! let stmt = gpudb::core::query::parse(
//!     "SELECT COUNT(*), MAX(data_count) FROM tcpip \
//!      WHERE data_count BETWEEN 1000 AND 100000",
//! ).unwrap();
//! let out = gpudb::core::query::execute(&mut gpu, &table, &stmt.query).unwrap();
//! assert_eq!(out.rows.len(), 2);
//! ```

pub use gpudb_core as core;
pub use gpudb_cpu as cpu;
pub use gpudb_data as data;
pub use gpudb_obs as obs;
pub use gpudb_sim as sim;

/// Commonly used types, one `use` away.
pub mod prelude {
    pub use gpudb_core::aggregate;
    pub use gpudb_core::boolean::{GpuClause, GpuCnf, GpuDnf, GpuPredicate, GpuTerm};
    pub use gpudb_core::cpu_oracle::{self, HostTable, OracleOutput};
    pub use gpudb_core::olap;
    pub use gpudb_core::out_of_core::ChunkedTable;
    pub use gpudb_core::parallel::{
        execute_sharded, execute_sharded_with_faults, ShardOptions, ShardReport, ShardRun,
        ShardedOutput,
    };
    pub use gpudb_core::predicate::{compare_count, compare_many, compare_select};
    pub use gpudb_core::query::{
        execute, execute_with_options, explain_analyze, explain_analyze_with_options, parse,
        Aggregate, BoolExpr, ExecuteOptions, Query, TraceLevel,
    };
    pub use gpudb_core::range::{range_count, range_select};
    pub use gpudb_core::resilience::{
        execute_resilient, ResiliencePath, ResilienceReport, ResilientOutput, RetryPolicy,
    };
    pub use gpudb_core::semilinear::{compare_attributes, semilinear_select};
    pub use gpudb_core::stream::StreamWindow;
    pub use gpudb_core::table::GpuTable;
    pub use gpudb_core::timing::{measure, OpTiming};
    pub use gpudb_core::{EngineError, EngineResult, Selection};
    pub use gpudb_obs::{Span, SpanCollector, SpanTree};
    pub use gpudb_sim::span::{SpanKind, SpanSink};
    pub use gpudb_sim::{
        CompareFunc, FaultClass, FaultEvent, FaultInjector, FaultKind, FaultStats, Gpu,
    };
}
