//! End-to-end integration tests spanning all workspace crates: generated
//! workloads uploaded to the simulated device, every paper primitive
//! executed, and every result verified against the optimized CPU
//! baselines.

use gpudb::cpu;
use gpudb::data::{census, selectivity, tcpip};
use gpudb::prelude::*;

fn upload(dataset: &gpudb::data::Dataset, width: usize) -> (Gpu, GpuTable) {
    let cols: Vec<(&str, &[u32])> = dataset
        .columns
        .iter()
        .map(|c| (c.name.as_str(), c.values.as_slice()))
        .collect();
    let mut gpu = GpuTable::device_for(dataset.record_count(), width);
    let table = GpuTable::upload(&mut gpu, dataset.name.clone(), &cols).unwrap();
    (gpu, table)
}

#[test]
fn tcpip_workload_full_pipeline() {
    let trace = tcpip::generate(20_000, 7);
    let (mut gpu, table) = upload(&trace, 200);
    let raw = trace.column_slices();

    // Predicate at the paper's 60% selectivity.
    let (threshold, _) = selectivity::threshold_for_ge(raw[0], 0.6).unwrap();
    let (sel, count) =
        compare_select(&mut gpu, &table, 0, CompareFunc::GreaterEqual, threshold).unwrap();
    let cpu_bm = cpu::scan::scan_u32(raw[0], cpu::CmpOp::Ge, threshold);
    assert_eq!(count, cpu_bm.count_ones() as u64);
    let mask = sel.read_mask(&mut gpu).unwrap();
    for (i, &selected) in mask.iter().enumerate() {
        assert_eq!(selected, cpu_bm.get(i), "record {i}");
    }

    // Aggregates over the selection.
    assert_eq!(
        aggregate::sum(&mut gpu, &table, 1, Some(&sel)).unwrap(),
        cpu::aggregate::sum_masked(raw[1], &cpu_bm)
    );
    assert_eq!(
        aggregate::max(&mut gpu, &table, 2, Some(&sel)).unwrap(),
        cpu::aggregate::max_masked(raw[2], &cpu_bm).unwrap()
    );
    assert_eq!(
        aggregate::min(&mut gpu, &table, 2, Some(&sel)).unwrap(),
        cpu::aggregate::min_masked(raw[2], &cpu_bm).unwrap()
    );

    // Median over the selection vs extract-then-QuickSelect.
    let extracted = cpu::aggregate::extract_masked(raw[0], &cpu_bm);
    assert_eq!(
        aggregate::median(&mut gpu, &table, 0, Some(&sel)).unwrap(),
        cpu::quickselect::median(&extracted).unwrap()
    );
}

#[test]
fn range_and_cnf_agree_with_cpu() {
    let trace = tcpip::generate(10_000, 13);
    let (mut gpu, table) = upload(&trace, 128);
    let raw = trace.column_slices();

    let (low, high, _) = selectivity::range_for_selectivity(raw[2], 0.6).unwrap();
    let (_, range_count) = range_select(&mut gpu, &table, 2, low, high).unwrap();
    assert_eq!(
        range_count,
        cpu::cnf::eval_range(raw[2], low, high).count_ones() as u64
    );

    let gpu_cnf = GpuCnf::new(vec![
        gpudb::core::boolean::GpuClause::any(vec![
            GpuPredicate::new(0, CompareFunc::Less, 1000),
            GpuPredicate::new(1, CompareFunc::Greater, 0),
        ]),
        gpudb::core::boolean::GpuClause::single(GpuPredicate::new(3, CompareFunc::LessEqual, 10)),
    ]);
    let (gpu_sel, gpu_count) =
        gpudb::core::boolean::eval_cnf_select(&mut gpu, &table, &gpu_cnf).unwrap();
    let cpu_cnf = cpu::Cnf::new(vec![
        cpu::Clause::any(vec![
            cpu::Predicate::new(0, cpu::CmpOp::Lt, 1000),
            cpu::Predicate::new(1, cpu::CmpOp::Gt, 0),
        ]),
        cpu::Clause::single(cpu::Predicate::new(3, cpu::CmpOp::Le, 10)),
    ]);
    let cpu_bm = cpu::cnf::eval_cnf(&raw, &cpu_cnf);
    assert_eq!(gpu_count, cpu_bm.count_ones() as u64);
    let mask = gpu_sel.read_mask(&mut gpu).unwrap();
    for (i, &m) in mask.iter().enumerate() {
        assert_eq!(m, cpu_bm.get(i), "record {i}");
    }
}

#[test]
fn census_workload_through_sql_layer() {
    let data = census::generate(15_000, 3);
    let (mut gpu, table) = upload(&data, 150);
    let raw = data.column_slices();

    let stmt = gpudb::core::query::parse(
        "SELECT COUNT(*), SUM(monthly_income), MIN(age), MAX(age), MEDIAN(monthly_income) \
         FROM census WHERE age >= 25 AND age <= 54 AND weekly_hours >= 35",
    )
    .unwrap();
    let out = gpudb::core::query::execute(&mut gpu, &table, &stmt.query).unwrap();

    // Host reference.
    let selected: Vec<usize> = (0..data.record_count())
        .filter(|&i| (25..=54).contains(&raw[1][i]) && raw[2][i] >= 35)
        .collect();
    assert_eq!(out.matched, selected.len() as u64);
    let sum: u64 = selected.iter().map(|&i| raw[0][i] as u64).sum();
    let min_age = selected.iter().map(|&i| raw[1][i]).min().unwrap();
    let max_age = selected.iter().map(|&i| raw[1][i]).max().unwrap();
    let mut incomes: Vec<u32> = selected.iter().map(|&i| raw[0][i]).collect();
    incomes.sort_unstable();
    let median = incomes[incomes.len().div_ceil(2) - 1];

    use gpudb::core::query::AggValue;
    assert_eq!(out.value("COUNT(*)"), Some(&AggValue::Count(out.matched)));
    assert_eq!(out.value("SUM(monthly_income)"), Some(&AggValue::Sum(sum)));
    assert_eq!(out.value("MIN(age)"), Some(&AggValue::Value(min_age)));
    assert_eq!(out.value("MAX(age)"), Some(&AggValue::Value(max_age)));
    assert_eq!(
        out.value("MEDIAN(monthly_income)"),
        Some(&AggValue::Value(median))
    );
}

#[test]
fn semilinear_and_attribute_comparison() {
    let trace = tcpip::generate(8_000, 21);
    let (mut gpu, table) = upload(&trace, 100);
    let raw = trace.column_slices();

    let coeffs = [1.5f32, -0.5, 0.25, 2.0];
    let (_, count) = gpudb::core::semilinear::semilinear_select(
        &mut gpu,
        &table,
        &coeffs,
        CompareFunc::Less,
        50_000.0,
    )
    .unwrap();
    assert_eq!(
        count,
        cpu::semilinear::semilinear_count(&raw, &coeffs, cpu::CmpOp::Lt, 50_000.0) as u64
    );

    // data_loss <= retransmissions via the a_i op a_j rewrite.
    let (_, count) = compare_attributes(&mut gpu, &table, 1, 3, CompareFunc::LessEqual).unwrap();
    let expected = (0..trace.record_count())
        .filter(|&i| raw[1][i] <= raw[3][i])
        .count() as u64;
    assert_eq!(count, expected);
}

#[test]
fn kth_largest_sweep_against_quickselect() {
    let trace = tcpip::generate(5_000, 5);
    let (mut gpu, table) = upload(&trace, 100);
    let values = &trace.columns[0].values;
    for k in [1usize, 2, 50, 2_500, 4_999, 5_000] {
        assert_eq!(
            aggregate::kth_largest(&mut gpu, &table, 0, k, None).unwrap(),
            cpu::quickselect::kth_largest(values, k).unwrap(),
            "k = {k}"
        );
    }
}

#[test]
fn gpu_sort_matches_cpu_sort() {
    let trace = tcpip::generate(4_096, 17);
    let mut gpu = Gpu::geforce_fx_5900(64, 64);
    let outcome = gpudb::core::sort::sort_values(&mut gpu, &trace.columns[0].values).unwrap();
    let mut expected = trace.columns[0].values.clone();
    expected.sort_unstable();
    assert_eq!(outcome.sorted, expected);
}

#[test]
fn selection_composition_chains() {
    // Build a selection, aggregate over it, rebuild another selection, and
    // confirm the device state machine never leaks between operations.
    let trace = tcpip::generate(6_000, 9);
    let (mut gpu, table) = upload(&trace, 100);
    let raw = trace.column_slices();

    let (sel_a, count_a) =
        compare_select(&mut gpu, &table, 0, CompareFunc::Greater, 10_000).unwrap();
    let sum_a = aggregate::sum(&mut gpu, &table, 0, Some(&sel_a)).unwrap();

    let (sel_b, count_b) = range_select(&mut gpu, &table, 2, 100, 5_000).unwrap();
    let sum_b = aggregate::sum(&mut gpu, &table, 2, Some(&sel_b)).unwrap();

    // Recompute the first selection: identical results after interleaving.
    let (sel_a2, count_a2) =
        compare_select(&mut gpu, &table, 0, CompareFunc::Greater, 10_000).unwrap();
    assert_eq!(count_a, count_a2);
    assert_eq!(
        sum_a,
        aggregate::sum(&mut gpu, &table, 0, Some(&sel_a2)).unwrap()
    );

    // Host checks.
    let bm_a = cpu::scan::scan_u32(raw[0], cpu::CmpOp::Gt, 10_000);
    assert_eq!(count_a, bm_a.count_ones() as u64);
    assert_eq!(sum_a, cpu::aggregate::sum_masked(raw[0], &bm_a));
    let bm_b = cpu::cnf::eval_range(raw[2], 100, 5_000);
    assert_eq!(count_b, bm_b.count_ones() as u64);
    assert_eq!(sum_b, cpu::aggregate::sum_masked(raw[2], &bm_b));
}

#[test]
fn modeled_timings_are_monotone_in_record_count() {
    let mut previous_total = 0.0f64;
    for n in [1_000usize, 4_000, 16_000] {
        let trace = tcpip::generate(n, 1);
        let (mut gpu, table) = upload(&trace, 100);
        let (_, timing) = measure(&mut gpu, |gpu| {
            compare_select(gpu, &table, 0, CompareFunc::Greater, 100).unwrap()
        });
        assert!(
            timing.total() > previous_total,
            "modeled time must grow with n"
        );
        previous_total = timing.total();
    }
}
