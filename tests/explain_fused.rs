//! Golden EXPLAIN ANALYZE snapshots for the pass-fusion optimizer.
//!
//! Each fixture pins the rendered report for the same query executed
//! unfused (`fuse_passes: false` — the literal multi-pass protocols of
//! §4.3) and fused (the default dispatch, which collapses the
//! stencil-clear into the first clause pass and elides redundant
//! `Compare` depth copies for clauses sharing an attribute). Because
//! every number in the report derives from the deterministic cost
//! model, the snapshots are byte-stable — any drift in pass structure,
//! modeled cost, or report formatting shows up as a diff here.
//!
//! Regenerate with `BLESS=1 cargo test --test explain_fused`.

use gpudb::core::query::{execute_with_options, explain_analyze_with_options, QueryOutput};
use gpudb::prelude::*;
use gpudb::sim::span::SpanKind;
use std::path::PathBuf;

fn setup() -> (Gpu, GpuTable) {
    let a: Vec<u32> = (0..120u32).map(|i| (i * 37) % 200).collect();
    let b: Vec<u32> = (0..120u32).map(|i| (i * 11 + 3) % 150).collect();
    let mut gpu = GpuTable::device_for(120, 10);
    let t = GpuTable::upload(&mut gpu, "t", &[("a", &a), ("b", &b)]).unwrap();
    (gpu, t)
}

/// A three-clause conjunction over one attribute: too many clauses for
/// the range recognizer, so it plans as CNF — the shape where fusion
/// both collapses the clear and elides two of the three depth copies.
fn conjunction_query() -> Query {
    Query::filtered(
        vec![Aggregate::Count, Aggregate::Sum("b".into())],
        BoolExpr::pred("a", CompareFunc::Greater, 20)
            .and(BoolExpr::pred("a", CompareFunc::Less, 180))
            .and(BoolExpr::pred("a", CompareFunc::NotEqual, 77)),
    )
}

/// General CNF with a disjunctive clause: fusion collapses the clear
/// into the first (single-predicate) clause but must keep the per-clause
/// stencil algebra of Routine 4.3 for the disjunction.
fn general_cnf_query() -> Query {
    Query::filtered(
        vec![Aggregate::Count],
        BoolExpr::pred("a", CompareFunc::NotEqual, 30).and(
            BoolExpr::pred("a", CompareFunc::Less, 50).or(BoolExpr::pred(
                "b",
                CompareFunc::Greater,
                100,
            )),
        ),
    )
}

fn options(fuse: bool) -> ExecuteOptions {
    ExecuteOptions {
        fuse_passes: fuse,
        trace: Some(TraceLevel::Passes),
        ..ExecuteOptions::default()
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compare `rendered` against the golden file, or rewrite it under
/// `BLESS=1`.
fn assert_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var("BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); run with BLESS=1"));
    assert_eq!(
        rendered, expected,
        "EXPLAIN ANALYZE drifted from golden {name}; run with BLESS=1 if intended"
    );
}

/// Execute with pass tracing and return the output plus the number of
/// pass-level spans under the selection operator.
fn run(query: &Query, fuse: bool) -> (QueryOutput, usize) {
    let (mut gpu, t) = setup();
    let out = execute_with_options(&mut gpu, &t, query, options(fuse)).unwrap();
    let tree = out.trace.clone().expect("tracing requested");
    let selection_passes = tree
        .spans_of_kind(SpanKind::Operator)
        .first()
        .map(|s| s.children.len())
        .unwrap_or(0);
    (out, selection_passes)
}

fn snapshot(name_prefix: &str, query: &Query) {
    for (suffix, fuse) in [("unfused", false), ("fused", true)] {
        let (mut gpu, t) = setup();
        let rendered = explain_analyze_with_options(&mut gpu, &t, query, options(fuse)).unwrap();
        assert_golden(&format!("{name_prefix}_{suffix}.txt"), &rendered);
    }
}

#[test]
fn conjunction_snapshots_pin_fusion() {
    snapshot("explain_cnf_conjunction", &conjunction_query());
}

#[test]
fn general_cnf_snapshots_pin_fusion() {
    snapshot("explain_cnf_general", &general_cnf_query());
}

#[test]
fn fusion_strictly_reduces_passes_and_preserves_results() {
    for query in [conjunction_query(), general_cnf_query()] {
        let (unfused, unfused_passes) = run(&query, false);
        let (fused, fused_passes) = run(&query, true);
        // Byte-identical results...
        assert_eq!(fused.matched, unfused.matched);
        assert_eq!(fused.rows, unfused.rows);
        // ...from strictly fewer passes and strictly fewer draw calls.
        assert!(
            fused_passes < unfused_passes,
            "fused selection ran {fused_passes} passes, unfused {unfused_passes}"
        );
        let draws = |o: &QueryOutput| o.metrics[0].counters.draw_calls;
        assert!(draws(&fused) < draws(&unfused));
        // ...and strictly lower modeled selection cost.
        assert!(fused.metrics[0].modeled_total_ns() < unfused.metrics[0].modeled_total_ns());
    }
}

#[test]
fn per_node_totals_sum_to_metrics_log_total() {
    for fuse in [false, true] {
        let (out, _) = run(&conjunction_query(), fuse);
        let log = gpudb::core::MetricsLog {
            records: out.metrics.clone(),
        };
        let per_node: u64 = out.metrics.iter().map(|r| r.modeled_total_ns()).sum();
        assert_eq!(per_node, log.modeled_total_ns());
        // Each node's total is itself the exact sum of its phase parts
        // (the largest-remainder rounding in PhaseNanos guarantees it),
        // so the rendered per-stage milliseconds add up to the header.
        for record in &out.metrics {
            let parts = record.modeled_ns.upload
                + record.modeled_ns.copy_to_depth
                + record.modeled_ns.compute
                + record.modeled_ns.readback
                + record.modeled_ns.other;
            assert_eq!(parts, record.modeled_total_ns());
        }
    }
}
