//! Differential proof of the sharded executor: at EVERY shard count the
//! merged result must be byte-identical to single-device execution and
//! to the CPU oracle — masks, matched counts, and every aggregate row —
//! and the modeled merged cost must decompose exactly into the slowest
//! shard (critical path) plus the deterministic merge cost.
//!
//! Zero tolerance: any divergence is a bug in the partition/merge
//! algebra (selection bitmaps concatenate; COUNT/SUM/AVG/MIN/MAX merge
//! algebraically; order statistics run the paper's Routine 4.5 bit
//! descent globally over per-shard occlusion counts).

mod common;

use common::{query_shapes, workload};
use gpudb::core::parallel::{merge_cost_ns, plan_shards};
use gpudb::core::query::QueryOutput;
use gpudb::prelude::*;
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 6] = [1, 2, 3, 4, 7, 16];

fn shard_opts(shards: usize) -> ShardOptions {
    ShardOptions {
        shards,
        ..ShardOptions::default()
    }
}

/// Single-device reference execution over the same host data.
fn single_device(host: &HostTable, query: &Query) -> Result<QueryOutput, EngineError> {
    let mut gpu = GpuTable::device_for(host.record_count(), 16);
    let table = host.upload(&mut gpu)?;
    execute(&mut gpu, &table, query)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The headline contract: sharded == single-device == oracle, at
    // every shard count, for every query shape.
    #[test]
    fn sharded_output_is_byte_identical_to_single_device(
        seed in 0u64..10_000,
        shards in prop::sample::select(SHARD_COUNTS.to_vec()),
    ) {
        let host = workload(seed);
        for (shape, query) in query_shapes(seed).into_iter().enumerate() {
            let reference = single_device(&host, &query).expect("single-device");
            let oracle = gpudb::core::cpu_oracle::execute(&host, &query).expect("oracle");
            let sharded = execute_sharded(&host, &query, &shard_opts(shards))
                .expect("sharded execute");

            prop_assert_eq!(
                sharded.output.matched, reference.matched,
                "seed {} shape {} shards {}: matched diverged", seed, shape, shards
            );
            prop_assert_eq!(
                &sharded.output.rows, &reference.rows,
                "seed {} shape {} shards {}: rows diverged", seed, shape, shards
            );
            prop_assert!(
                oracle.agrees_with(sharded.output.matched, &sharded.output.rows),
                "seed {} shape {} shards {}: oracle disagrees", seed, shape, shards
            );

            // The concatenated mask equals the oracle's bitmap, record
            // for record.
            let bitmap = gpudb::core::cpu_oracle::filter_mask(&host, query.filter.as_ref())
                .expect("oracle mask");
            prop_assert_eq!(sharded.mask.len(), host.record_count());
            for (i, &m) in sharded.mask.iter().enumerate() {
                prop_assert_eq!(
                    m, bitmap.get(i),
                    "seed {} shape {} shards {}: mask bit {} diverged", seed, shape, shards, i
                );
            }
        }
    }

    // Modeled cost decomposition: merged = critical path + merge, with
    // the merge a pure function of shard and aggregate counts.
    #[test]
    fn merged_cost_is_critical_path_plus_merge(
        seed in 0u64..10_000,
        shards in prop::sample::select(SHARD_COUNTS.to_vec()),
    ) {
        let host = workload(seed);
        for query in query_shapes(seed) {
            let out = execute_sharded(&host, &query, &shard_opts(shards)).expect("sharded");
            let expected_shards = plan_shards(host.record_count(), shards).len();
            prop_assert_eq!(out.report.shards.len(), expected_shards);
            let critical = out.report.shards.iter().map(|s| s.modeled_ns).max().unwrap_or(0);
            prop_assert_eq!(
                out.report.merge_ns,
                merge_cost_ns(expected_shards, query.aggregates.len())
            );
            prop_assert_eq!(out.report.merged_ns, critical + out.report.merge_ns);
            // Clean runs stay on the GPU on every shard.
            for run in &out.report.shards {
                prop_assert_eq!(run.path, ResiliencePath::Gpu);
                prop_assert_eq!(run.attempts, 1);
            }
        }
    }

    // Error parity: invalid queries fail with exactly the error the
    // single-device executor reports, at every shard count.
    #[test]
    fn sharded_errors_match_single_device(
        seed in 0u64..10_000,
        shards in prop::sample::select(SHARD_COUNTS.to_vec()),
    ) {
        let host = workload(seed);
        let invalid = [
            // Unknown column in the filter.
            Query::filtered(
                vec![Aggregate::Count],
                BoolExpr::pred("missing", CompareFunc::Greater, 1),
            ),
            // Unknown column in an aggregate.
            Query::aggregate_all(vec![Aggregate::Sum("missing".into())]),
            // k out of range.
            Query::aggregate_all(vec![Aggregate::KthLargest("a".into(), 0)]),
            Query::aggregate_all(vec![Aggregate::KthSmallest("a".into(), common::RECORDS + 1)]),
            // Ordering: the earlier aggregate's error must win.
            Query::aggregate_all(vec![
                Aggregate::KthLargest("a".into(), 0),
                Aggregate::Sum("missing".into()),
            ]),
        ];
        for (i, query) in invalid.iter().enumerate() {
            let reference = single_device(&host, query).expect_err("single-device must fail");
            let sharded = execute_sharded(&host, query, &shard_opts(shards))
                .expect_err("sharded must fail");
            prop_assert_eq!(
                sharded.to_string(), reference.to_string(),
                "seed {} invalid-query {} shards {}: error diverged", seed, i, shards
            );
        }
    }
}

/// Deterministic replay: the same inputs produce byte-identical outputs,
/// reports, and metrics logs — OS thread scheduling must not leak in.
#[test]
fn sharded_replay_is_byte_deterministic() {
    let host = workload(23);
    let query = &query_shapes(23)[4];
    let run = || {
        let out = execute_sharded(&host, query, &shard_opts(7)).expect("sharded");
        let ops: Vec<String> = out
            .output
            .metrics
            .iter()
            .map(|m| m.operator.clone())
            .collect();
        (
            out.output.matched,
            out.output.rows.clone(),
            out.mask.clone(),
            out.report.merged_ns,
            out.report
                .shards
                .iter()
                .map(|s| (s.start, s.records, s.modeled_ns, s.attempts))
                .collect::<Vec<_>>(),
            ops,
        )
    };
    assert_eq!(run(), run());
}
