//! Known-bad pass-plan fixtures, one per lint rule.
//!
//! Each JSON file under `tests/lint_fixtures/` holds a plan that
//! violates exactly one paper-routine invariant, plus the rule id it is
//! expected to trigger. The test asserts the linter fires that rule —
//! and nothing else — on every fixture, and that all ten rules are
//! covered. The fixtures double as a serialization-format regression
//! test for the `PassPlan` IR.
//!
//! To regenerate the files after an IR change:
//!
//! ```text
//! cargo test --test lint_fixtures -- --ignored regenerate_fixtures
//! ```

mod common;

use gpudb_lint::Linter;
use gpudb_sim::state::{ColorMask, CompareFunc, PipelineState, StencilOp};
use gpudb_sim::trace::{DeviceCaps, DrawPass, PassOp, PassPlan, ProgramInfo};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// One fixture file: the rule expected to fire, and the plan that
/// violates it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Fixture {
    expect_rule: String,
    plan: PassPlan,
}

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/lint_fixtures")
}

/// NV35-style caps: depth bounds present, compare mask absent.
fn nv35() -> DeviceCaps {
    DeviceCaps {
        has_depth_bounds: true,
        has_depth_compare_mask: false,
    }
}

/// A fixed-function draw with every write masked off — the neutral
/// starting point each fixture perturbs in exactly one way.
fn masked_draw() -> DrawPass {
    let mut state = PipelineState {
        color_mask: ColorMask::NONE,
        ..PipelineState::default()
    };
    state.depth.write_enabled = false;
    DrawPass {
        state,
        program: None,
        env0: [0.0; 4],
        depth: 0.5,
        rects: 1,
        occlusion_active: false,
    }
}

/// Build all ten known-bad plans. Each violates its own rule and stays
/// clean under the other nine, so a fixture pins down one diagnostic.
fn known_bad_plans() -> Vec<Fixture> {
    let mut fixtures = Vec::new();
    let mut add = |rule: &str, plan: PassPlan| {
        fixtures.push(Fixture {
            expect_rule: rule.to_string(),
            plan,
        });
    };

    // L001: an occlusion query begun and never ended. No draw at all,
    // so no per-draw rule can fire alongside it.
    let mut plan = PassPlan::new("fixture/unpaired-occlusion", nv35());
    plan.ops.push(PassOp::BeginOcclusionQuery);
    add("L001", plan);

    // L002: the count is read while the query is still active. The
    // query itself is properly paired (keeps L001 quiet) and the draw
    // feeds it (keeps L010 quiet).
    let mut plan = PassPlan::new("fixture/occlusion-read-hazard", nv35());
    plan.ops.push(PassOp::BeginOcclusionQuery);
    let mut pass = masked_draw();
    pass.occlusion_active = true;
    plan.ops.push(PassOp::Draw(pass));
    plan.ops.push(PassOp::ReadOcclusionResult);
    plan.ops.push(PassOp::EndOcclusionQuery { sync: true });
    add("L002", plan);

    // L003: a comparison pass (depth test Greater) with depth writes
    // left on — the draw overwrites the attributes it compares against.
    // The depth write keeps the pass observable (no L010); the color
    // mask is off (no L004).
    let mut plan = PassPlan::new("fixture/compare-depth-write", nv35());
    let mut pass = masked_draw();
    pass.state.depth.test_enabled = true;
    pass.state.depth.func = CompareFunc::Greater;
    pass.state.depth.write_enabled = true;
    plan.ops.push(PassOp::Draw(pass));
    add("L003", plan);

    // L004: a counting pass (depth test can fail) with the default
    // all-channels color mask still enabled. Depth writes stay off so
    // L003 cannot fire; the color write keeps the pass alive (no L010).
    let mut plan = PassPlan::new("fixture/color-mask-enabled", nv35());
    let mut pass = masked_draw();
    pass.state.color_mask = ColorMask::default();
    pass.state.depth.test_enabled = true;
    pass.state.depth.func = CompareFunc::Greater;
    plan.ops.push(PassOp::Draw(pass));
    add("L004", plan);

    // L005: the buffer is cleared to 2 (should be 1) and an Incr pass
    // pushes it to 3, escaping the {0, 1, 2} CNF encoding. The clear
    // keeps L006 quiet; the stencil write keeps L010 quiet; func Always
    // means the stencil test is not a counting test (no L004).
    let mut plan = PassPlan::new("fixture/stencil-encoding-overflow", nv35());
    plan.ops.push(PassOp::ClearStencil { value: 2 });
    let mut pass = masked_draw();
    pass.state.stencil.enabled = true;
    pass.state.stencil.func = CompareFunc::Always;
    pass.state.stencil.op_zpass = StencilOp::Incr;
    plan.ops.push(PassOp::Draw(pass));
    add("L005", plan);

    // L006: a stencil-writing pass with no ClearStencil anywhere in the
    // plan. The write must be value-*dependent* (`Incr`) — a full-mask
    // `Replace` under func Always would *establish* the buffer and is
    // legal under the fused protocol. L005 stays quiet because its value
    // tracking only starts at a clear or an establishing pass; the
    // stencil write keeps L010 quiet.
    let mut plan = PassPlan::new("fixture/stencil-write-without-clear", nv35());
    let mut pass = masked_draw();
    pass.state.stencil.enabled = true;
    pass.state.stencil.func = CompareFunc::Always;
    pass.state.stencil.op_zpass = StencilOp::Incr;
    plan.ops.push(PassOp::Draw(pass));
    add("L006", plan);

    // L007: a quad drawn at depth 1.5 — a constant that overflowed the
    // 24-bit encoding. The depth write keeps the pass alive, and with
    // the depth test disabled L003 cannot fire.
    let mut plan = PassPlan::new("fixture/depth-out-of-range", nv35());
    let mut pass = masked_draw();
    pass.depth = 1.5;
    pass.state.depth.write_enabled = true;
    plan.ops.push(PassOp::Draw(pass));
    add("L007", plan);

    // L008: a TestBit pass whose scale 0.5^26 selects bit 25, outside
    // the 24-bit attribute width. The occlusion query keeps the pass
    // alive; the color mask is off (no L004 despite the alpha test).
    let mut plan = PassPlan::new("fixture/testbit-out-of-range", nv35());
    let mut pass = masked_draw();
    pass.program = Some(ProgramInfo {
        name: "TestBit".to_string(),
        instructions: 5,
        writes_depth: false,
        has_kil: false,
    });
    pass.env0 = [0.5f32.powi(26), 0.0, 0.0, 0.0];
    pass.state.alpha.enabled = true;
    pass.state.alpha.func = CompareFunc::GreaterEqual;
    pass.state.alpha.reference = 0.5;
    pass.occlusion_active = true;
    plan.ops.push(PassOp::Draw(pass));
    add("L008", plan);

    // L009: the depth-bounds test on a device without
    // EXT_depth_bounds_test. The bounds themselves are a valid
    // subrange of [0, 1] (no L007) and the occlusion query keeps the
    // pass alive.
    let mut plan = PassPlan::new(
        "fixture/depth-bounds-unsupported",
        DeviceCaps {
            has_depth_bounds: false,
            has_depth_compare_mask: false,
        },
    );
    let mut pass = masked_draw();
    pass.state.depth_bounds.enabled = true;
    pass.state.depth_bounds.min = 0.1;
    pass.state.depth_bounds.max = 0.9;
    pass.occlusion_active = true;
    plan.ops.push(PassOp::Draw(pass));
    add("L009", plan);

    // L010: the canonical dead pass — no occlusion query and every
    // write masked off. Warning severity.
    let mut plan = PassPlan::new("fixture/dead-pass", nv35());
    plan.ops.push(PassOp::Draw(masked_draw()));
    add("L010", plan);

    fixtures
}

fn fixture_path(rule: &str) -> PathBuf {
    fixtures_dir().join(format!("{rule}.json"))
}

// ---------------------------------------------------------------------
// Fused-plan fixtures
// ---------------------------------------------------------------------
//
// The pass-fusion optimizer replaces the CNF selection prologue: instead
// of `ClearStencil` + per-clause passes, the first clause *establishes*
// the stencil buffer (func Always, full write mask, `Replace`/`Zero`
// ops) and later clauses reuse the depth buffer when they share the
// attribute. These fixtures are known-bad *fused* plans — each breaks
// the fused protocol in exactly one way — pinning down that the lint
// rules still police the fused shapes. L007/L008/L009 are not
// applicable: fusion never touches depth encoding, `TestBit` scales, or
// the depth-bounds test.

/// The rules the fused protocol can violate.
const FUSED_RULES: [&str; 7] = ["L001", "L002", "L003", "L004", "L005", "L006", "L010"];

/// The fused protocol's establishing first-clause pass: stencil test
/// Always with full write mask and value-independent ops (`Replace` on
/// pass, `Zero` on depth-fail), reference `SELECTED = 1`, the clause
/// predicate on the depth test, writes off.
fn fused_establishing_draw() -> DrawPass {
    let mut pass = masked_draw();
    pass.state.stencil.enabled = true;
    pass.state.stencil.func = CompareFunc::Always;
    pass.state.stencil.reference = 1;
    pass.state.stencil.write_mask = 0xFF;
    pass.state.stencil.op_fail = StencilOp::Keep;
    pass.state.stencil.op_zfail = StencilOp::Zero;
    pass.state.stencil.op_zpass = StencilOp::Replace;
    pass.state.depth.test_enabled = true;
    pass.state.depth.func = CompareFunc::Greater;
    pass
}

/// The fused protocol's final count pass: read-only stencil mask
/// (`== SELECTED`, all ops `Keep`) under an occlusion query.
fn fused_count_draw() -> DrawPass {
    let mut pass = masked_draw();
    pass.state.stencil.enabled = true;
    pass.state.stencil.func = CompareFunc::Equal;
    pass.state.stencil.reference = 1;
    pass.state.stencil.op_fail = StencilOp::Keep;
    pass.state.stencil.op_zfail = StencilOp::Keep;
    pass.state.stencil.op_zpass = StencilOp::Keep;
    pass.occlusion_active = true;
    pass
}

/// Known-bad fused plans, one per applicable rule. Each violates its own
/// rule and stays clean under the other nine.
fn fused_known_bad_plans() -> Vec<Fixture> {
    let mut fixtures = Vec::new();
    let mut add = |rule: &str, plan: PassPlan| {
        fixtures.push(Fixture {
            expect_rule: rule.to_string(),
            plan,
        });
    };

    // L001: the fused count's occlusion query begun, never ended.
    let mut plan = PassPlan::new("fused/unpaired-occlusion", nv35());
    plan.ops.push(PassOp::Draw(fused_establishing_draw()));
    plan.ops.push(PassOp::BeginOcclusionQuery);
    add("L001", plan);

    // L002: the fused count read while its query is still active.
    let mut plan = PassPlan::new("fused/occlusion-read-hazard", nv35());
    plan.ops.push(PassOp::Draw(fused_establishing_draw()));
    plan.ops.push(PassOp::BeginOcclusionQuery);
    plan.ops.push(PassOp::Draw(fused_count_draw()));
    plan.ops.push(PassOp::ReadOcclusionResult);
    plan.ops.push(PassOp::EndOcclusionQuery { sync: true });
    add("L002", plan);

    // L003: an establishing clause pass with depth writes left on — the
    // fused Compare would overwrite the attribute it compares.
    let mut plan = PassPlan::new("fused/compare-depth-write", nv35());
    let mut pass = fused_establishing_draw();
    pass.state.depth.write_enabled = true;
    plan.ops.push(PassOp::Draw(pass));
    add("L003", plan);

    // L004: an establishing clause pass that still shades color.
    let mut plan = PassPlan::new("fused/color-mask-enabled", nv35());
    let mut pass = fused_establishing_draw();
    pass.state.color_mask = ColorMask::default();
    plan.ops.push(PassOp::Draw(pass));
    add("L004", plan);

    // L005: an establishing pass writing reference 3 — the established
    // value escapes the {0, 1, 2} clause encoding.
    let mut plan = PassPlan::new("fused/stencil-encoding-overflow", nv35());
    let mut pass = fused_establishing_draw();
    pass.state.stencil.reference = 3;
    plan.ops.push(PassOp::Draw(pass));
    add("L005", plan);

    // L006: a first clause with a partial write mask — it no longer
    // *establishes* the buffer, so with the clear collapsed away the
    // write lands on undefined contents.
    let mut plan = PassPlan::new("fused/partial-establish", nv35());
    let mut pass = fused_establishing_draw();
    pass.state.stencil.write_mask = 0x0F;
    plan.ops.push(PassOp::Draw(pass));
    add("L006", plan);

    // L010: a fused mask consumer with its occlusion query dropped —
    // read-only stencil, no writes, nothing observes it.
    let mut plan = PassPlan::new("fused/dead-count", nv35());
    let mut pass = fused_count_draw();
    pass.occlusion_active = false;
    plan.ops.push(PassOp::Draw(pass));
    add("L010", plan);

    fixtures
}

fn fused_fixture_path(rule: &str) -> PathBuf {
    fixtures_dir().join(format!("fused-{rule}.json"))
}

/// Every fixture on disk produces at least one diagnostic of its
/// expected rule and no diagnostics of any other rule, and the ten
/// files cover all ten rules.
#[test]
fn fixtures_trigger_exactly_their_rule() {
    let linter = Linter::new();
    let mut covered = Vec::new();
    for expected in known_bad_plans() {
        let path = fixture_path(&expected.expect_rule);
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e} (regenerate with `cargo test --test lint_fixtures -- \
                 --ignored regenerate_fixtures`)",
                path.display()
            )
        });
        let fixture: Fixture =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{}: {e:?}", path.display()));
        let diags = linter.lint(&fixture.plan);
        assert!(
            !diags.is_empty(),
            "{}: expected {} to fire, plan was clean",
            path.display(),
            fixture.expect_rule
        );
        for d in &diags {
            assert_eq!(
                d.rule,
                fixture.expect_rule,
                "{}: unexpected extra diagnostic: {d}",
                path.display()
            );
        }
        covered.push(fixture.expect_rule);
    }
    covered.sort();
    covered.dedup();
    assert_eq!(covered.len(), 10, "fixtures must cover all ten rules");
}

/// The checked-in JSON matches what the in-repo constructors produce —
/// a drift guard between the fixtures and the `PassPlan` IR.
#[test]
fn fixtures_match_generated_plans() {
    for expected in known_bad_plans() {
        let path = fixture_path(&expected.expect_rule);
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let on_disk: Fixture =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{}: {e:?}", path.display()));
        assert_eq!(
            on_disk,
            expected,
            "{}: stale fixture; regenerate with `cargo test --test lint_fixtures -- \
             --ignored regenerate_fixtures`",
            path.display()
        );
    }
}

/// Rewrite `tests/lint_fixtures/*.json` from the constructors above.
#[test]
#[ignore = "writes tests/lint_fixtures/*.json; run explicitly after an IR change"]
fn regenerate_fixtures() {
    let dir = fixtures_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for fixture in known_bad_plans() {
        let path = fixture_path(&fixture.expect_rule);
        let json = serde_json::to_string_pretty(&fixture).unwrap();
        std::fs::write(&path, json + "\n").unwrap();
        println!("wrote {}", path.display());
    }
}

/// Every fused fixture on disk fires exactly its expected rule, and the
/// set covers every rule the fused protocol can violate.
#[test]
fn fused_fixtures_trigger_exactly_their_rule() {
    let linter = Linter::new();
    let mut covered = Vec::new();
    for expected in fused_known_bad_plans() {
        let path = fused_fixture_path(&expected.expect_rule);
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e} (regenerate with `cargo test --test lint_fixtures -- \
                 --ignored regenerate_fused_fixtures`)",
                path.display()
            )
        });
        let fixture: Fixture =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{}: {e:?}", path.display()));
        let diags = linter.lint(&fixture.plan);
        assert!(
            !diags.is_empty(),
            "{}: expected {} to fire, plan was clean",
            path.display(),
            fixture.expect_rule
        );
        for d in &diags {
            assert_eq!(
                d.rule,
                fixture.expect_rule,
                "{}: unexpected extra diagnostic: {d}",
                path.display()
            );
        }
        covered.push(fixture.expect_rule);
    }
    covered.sort();
    covered.dedup();
    assert_eq!(
        covered,
        FUSED_RULES.map(String::from).to_vec(),
        "fused fixtures must cover every rule the fused protocol can trip"
    );
}

/// The checked-in fused JSON matches the in-repo constructors.
#[test]
fn fused_fixtures_match_generated_plans() {
    for expected in fused_known_bad_plans() {
        let path = fused_fixture_path(&expected.expect_rule);
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let on_disk: Fixture =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{}: {e:?}", path.display()));
        assert_eq!(
            on_disk,
            expected,
            "{}: stale fixture; regenerate with `cargo test --test lint_fixtures -- \
             --ignored regenerate_fused_fixtures`",
            path.display()
        );
    }
}

/// Rewrite `tests/lint_fixtures/fused-*.json` from the constructors.
#[test]
#[ignore = "writes tests/lint_fixtures/fused-*.json; run explicitly after an IR change"]
fn regenerate_fused_fixtures() {
    let dir = fixtures_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for fixture in fused_known_bad_plans() {
        let path = fused_fixture_path(&fixture.expect_rule);
        let json = serde_json::to_string_pretty(&fixture).unwrap();
        std::fs::write(&path, json + "\n").unwrap();
        println!("wrote {}", path.display());
    }
}

/// The closing of the loop: the *real* fusion optimizer can never emit
/// a plan that trips any rule, at any severity. Every query shape of the
/// differential suites is executed with fusion on and a recorder
/// attached; the recorded plans must be spotless.
#[test]
fn fused_optimizer_never_emits_tripping_plans() {
    use gpudb::prelude::*;
    let linter = Linter::new();
    for seed in [0u64, 3, 11, 23, 42] {
        let host = common::workload(seed);
        for (shape, query) in common::query_shapes(seed).into_iter().enumerate() {
            let mut gpu = GpuTable::device_for(host.record_count(), 16);
            let table = host.upload(&mut gpu).expect("upload");
            gpu.enable_tracing(gpudb::sim::RecordMode::RecordAndExecute);
            let result = execute_with_options(
                &mut gpu,
                &table,
                &query,
                ExecuteOptions {
                    fuse_passes: true,
                    ..ExecuteOptions::default()
                },
            );
            let plans = gpu.take_plans();
            gpu.disable_tracing();
            result.unwrap_or_else(|e| panic!("seed {seed} shape {shape}: fused execute: {e}"));
            let report = linter.lint_all(&plans);
            if !report.is_clean() {
                let mut rendered = String::new();
                for plan_report in &report.plans {
                    for d in &plan_report.diagnostics {
                        rendered.push_str(&format!("  {}: {d}\n", plan_report.label));
                    }
                }
                panic!("seed {seed} shape {shape}: fused plans trip lint:\n{rendered}");
            }
        }
    }
}
