//! End-to-end observability coverage (gpudb-obs).
//!
//! Every plan-stage kind — predicate (single-clause CNF), range, CNF, DNF,
//! semi-linear, k-th/median, and accumulator aggregates — must emit exactly
//! one [`gpudb::core::metrics::MetricsRecord`] with a non-empty operator
//! tag, and the span tree collected by [`gpudb::obs::SpanCollector`] must
//! nest exactly one operator span per record under its stage.

use gpudb::core::query::QueryOutput;
use gpudb::obs::chrome;
use gpudb::prelude::*;
use gpudb::sim::span::SpanKind;

fn setup() -> (Gpu, GpuTable) {
    let a: Vec<u32> = (0..128u32).map(|i| (i * 37) % 200).collect();
    let b: Vec<u32> = (0..128u32).map(|i| (i * 11 + 3) % 150).collect();
    let mut gpu = GpuTable::device_for(128, 10);
    let t = GpuTable::upload(&mut gpu, "t", &[("a", &a), ("b", &b)]).unwrap();
    (gpu, t)
}

/// Execute `q` with pass-level tracing and check the record/span contract.
fn run_and_check(q: &Query, expected_operators: &[&str]) -> QueryOutput {
    let (mut gpu, t) = setup();
    let out = execute_with_options(
        &mut gpu,
        &t,
        q,
        ExecuteOptions {
            trace: Some(TraceLevel::Passes),
            ..ExecuteOptions::default()
        },
    )
    .unwrap();

    // Exactly one MetricsRecord per stage, tagged as expected.
    let operators: Vec<&str> = out.metrics.iter().map(|r| r.operator.as_str()).collect();
    assert_eq!(operators, expected_operators);
    for record in &out.metrics {
        assert!(!record.operator.is_empty());
    }

    // The span tree nests one operator span per record: a single query
    // root whose stages each wrap exactly one operator span.
    let tree = out.trace.as_ref().expect("tracing was requested");
    assert_eq!(tree.roots.len(), 1);
    let query_span = &tree.roots[0];
    assert_eq!(query_span.kind, SpanKind::Query);
    assert_eq!(query_span.children.len(), out.metrics.len());
    for (stage, record) in query_span.children.iter().zip(&out.metrics) {
        assert_eq!(stage.kind, SpanKind::Stage);
        let ops: Vec<&gpudb::obs::Span> = stage
            .children
            .iter()
            .filter(|s| s.kind == SpanKind::Operator)
            .collect();
        assert_eq!(ops.len(), 1, "one operator span per record");
        assert_eq!(ops[0].name, record.operator);
    }
    assert_eq!(
        tree.spans_of_kind(SpanKind::Operator).len(),
        out.metrics.len()
    );
    out
}

#[test]
fn predicate_stage_is_observed() {
    // A single non-range-convertible predicate stays a one-clause CNF:
    // the paper's plain stencil-predicate pass.
    use gpudb::sim::CompareFunc::NotEqual;
    let q = Query::filtered(vec![Aggregate::Count], BoolExpr::pred("a", NotEqual, 50));
    run_and_check(&q, &["filter/cnf", "agg/COUNT(*)"]);
}

#[test]
fn range_stage_is_observed() {
    let q = Query::filtered(
        vec![Aggregate::Count],
        BoolExpr::Between {
            column: "a".into(),
            low: 40,
            high: 120,
        },
    );
    run_and_check(&q, &["filter/range", "agg/COUNT(*)"]);
}

#[test]
fn cnf_stage_is_observed() {
    use gpudb::sim::CompareFunc::{GreaterEqual, Less};
    let q = Query::filtered(
        vec![Aggregate::Count],
        BoolExpr::pred("a", GreaterEqual, 50).and(BoolExpr::pred("b", Less, 100)),
    );
    run_and_check(&q, &["filter/cnf", "agg/COUNT(*)"]);
}

#[test]
fn dnf_stage_is_observed() {
    use gpudb::sim::CompareFunc::Less;
    // (9 conjuncts) OR (9 conjuncts): CNF distribution would explode past
    // the planner's clause budget, so it falls back to a 2-term DNF.
    let conj = |base: u32| {
        let mut e = BoolExpr::pred("a", Less, base);
        for i in 1..9 {
            e = e.and(BoolExpr::pred("a", Less, base + i));
        }
        e
    };
    let q = Query::filtered(vec![Aggregate::Count], conj(50).or(conj(150)));
    run_and_check(&q, &["filter/dnf", "agg/COUNT(*)"]);
}

#[test]
fn semilinear_stage_is_observed() {
    use gpudb::sim::CompareFunc::Less;
    let q = Query::filtered(
        vec![Aggregate::Count],
        BoolExpr::CompareColumns {
            left: "a".into(),
            op: Less,
            right: "b".into(),
        },
    );
    run_and_check(&q, &["filter/semilinear", "agg/COUNT(*)"]);
}

#[test]
fn kth_and_median_stages_are_observed() {
    let q = Query::aggregate_all(vec![
        Aggregate::Median("a".into()),
        Aggregate::KthLargest("b".into(), 3),
    ]);
    run_and_check(
        &q,
        &["filter/all", "agg/MEDIAN(a)", "agg/KTH_LARGEST(b, 3)"],
    );
}

#[test]
fn accumulator_stage_is_observed() {
    let q = Query::aggregate_all(vec![Aggregate::Sum("a".into()), Aggregate::Avg("b".into())]);
    run_and_check(&q, &["filter/all", "agg/SUM(a)", "agg/AVG(b)"]);
}

#[test]
fn traces_are_byte_deterministic_across_runs() {
    use gpudb::sim::CompareFunc::{GreaterEqual, Less};
    let q = Query::filtered(
        vec![Aggregate::Count, Aggregate::Sum("b".into())],
        BoolExpr::pred("a", GreaterEqual, 50).and(BoolExpr::pred("b", Less, 100)),
    );
    let render = || {
        let out = run_and_check(&q, &["filter/cnf", "agg/COUNT(*)", "agg/SUM(b)"]);
        let tree = out.trace.unwrap();
        (
            chrome::trace_json(&tree),
            gpudb::obs::flame::folded(&tree),
            gpudb::obs::jsonl::spans(&tree),
        )
    };
    assert_eq!(render(), render());
}
