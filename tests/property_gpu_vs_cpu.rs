//! Property-based equivalence: for arbitrary data, every GPU algorithm
//! must agree exactly with its CPU reference. These are the core
//! correctness invariants of the reproduction — the GPU path goes through
//! texture encoding, the 24-bit depth buffer, stencil state machines and
//! fragment programs, and must still be bit-exact.

use gpudb::cpu;
use gpudb::prelude::*;
use proptest::prelude::*;

/// Attribute values must fit the 24-bit GPU encoding (§3.3).
const MAX_VALUE: u32 = (1 << 24) - 1;

fn values_strategy() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..=MAX_VALUE, 1..200)
}

fn small_values_strategy() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..1024, 1..200)
}

fn op_strategy() -> impl Strategy<Value = (CompareFunc, cpu::CmpOp)> {
    prop::sample::select(vec![
        (CompareFunc::Less, cpu::CmpOp::Lt),
        (CompareFunc::LessEqual, cpu::CmpOp::Le),
        (CompareFunc::Greater, cpu::CmpOp::Gt),
        (CompareFunc::GreaterEqual, cpu::CmpOp::Ge),
        (CompareFunc::Equal, cpu::CmpOp::Eq),
        (CompareFunc::NotEqual, cpu::CmpOp::Ne),
    ])
}

fn upload(values: &[u32]) -> (Gpu, GpuTable) {
    let width = (values.len() as f64).sqrt().ceil() as usize;
    let mut gpu = GpuTable::device_for(values.len(), width.max(1));
    let table = GpuTable::upload(&mut gpu, "t", &[("a", values)]).unwrap();
    (gpu, table)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn predicate_matches_cpu_scan(
        values in values_strategy(),
        (gpu_op, cpu_op) in op_strategy(),
        constant in 0u32..=MAX_VALUE,
    ) {
        let (mut gpu, table) = upload(&values);
        let (sel, count) = compare_select(&mut gpu, &table, 0, gpu_op, constant).unwrap();
        let reference = cpu::scan::scan_u32(&values, cpu_op, constant);
        prop_assert_eq!(count, reference.count_ones() as u64);
        let mask = sel.read_mask(&mut gpu).unwrap();
        for (i, &m) in mask.iter().enumerate() {
            prop_assert_eq!(m, reference.get(i), "record {}", i);
        }
    }

    #[test]
    fn range_matches_cpu_range(
        values in values_strategy(),
        bounds in (0u32..=MAX_VALUE, 0u32..=MAX_VALUE),
    ) {
        let (low, high) = (bounds.0.min(bounds.1), bounds.0.max(bounds.1));
        let (mut gpu, table) = upload(&values);
        let (sel, count) = range_select(&mut gpu, &table, 0, low, high).unwrap();
        let reference = cpu::cnf::eval_range(&values, low, high);
        prop_assert_eq!(count, reference.count_ones() as u64);
        let mask = sel.read_mask(&mut gpu).unwrap();
        for (i, &m) in mask.iter().enumerate() {
            prop_assert_eq!(m, reference.get(i), "record {}", i);
        }
    }

    #[test]
    fn kth_largest_matches_sorted_rank(
        values in values_strategy(),
        k_seed in 0usize..1000,
    ) {
        let k = 1 + k_seed % values.len();
        let (mut gpu, table) = upload(&values);
        let gpu_value = aggregate::kth_largest(&mut gpu, &table, 0, k, None).unwrap();
        let mut sorted = values.clone();
        sorted.sort_unstable();
        prop_assert_eq!(gpu_value, sorted[sorted.len() - k]);
    }

    #[test]
    fn accumulator_sum_is_exact(values in values_strategy()) {
        let (mut gpu, table) = upload(&values);
        let gpu_sum = aggregate::sum(&mut gpu, &table, 0, None).unwrap();
        let expected: u64 = values.iter().map(|&v| v as u64).sum();
        prop_assert_eq!(gpu_sum, expected);
    }

    #[test]
    fn masked_sum_is_exact(
        values in values_strategy(),
        threshold in 0u32..=MAX_VALUE,
    ) {
        let (mut gpu, table) = upload(&values);
        let (sel, _) = compare_select(
            &mut gpu, &table, 0, CompareFunc::GreaterEqual, threshold).unwrap();
        let gpu_sum = aggregate::sum(&mut gpu, &table, 0, Some(&sel)).unwrap();
        let expected: u64 = values.iter()
            .filter(|&&v| v >= threshold)
            .map(|&v| v as u64)
            .sum();
        prop_assert_eq!(gpu_sum, expected);
    }

    #[test]
    fn min_max_median_match_cpu(values in values_strategy()) {
        let (mut gpu, table) = upload(&values);
        prop_assert_eq!(
            aggregate::max(&mut gpu, &table, 0, None).unwrap(),
            *values.iter().max().unwrap()
        );
        prop_assert_eq!(
            aggregate::min(&mut gpu, &table, 0, None).unwrap(),
            *values.iter().min().unwrap()
        );
        prop_assert_eq!(
            aggregate::median(&mut gpu, &table, 0, None).unwrap(),
            cpu::quickselect::median(&values).unwrap()
        );
    }

    #[test]
    fn gpu_sort_is_a_sort(values in small_values_strategy()) {
        let padded = values.len().next_power_of_two();
        let width = ((padded as f64).sqrt() as usize).next_power_of_two();
        let mut gpu = Gpu::geforce_fx_5900(width, (padded / width).max(1));
        let outcome = gpudb::core::sort::sort_values(&mut gpu, &values).unwrap();
        let mut expected = values.clone();
        expected.sort_unstable();
        prop_assert_eq!(outcome.sorted, expected);
    }

    #[test]
    fn semilinear_matches_cpu_f32(
        values in prop::collection::vec((0u32..1 << 16, 0u32..1 << 16), 1..150),
        coeffs in (-4.0f32..4.0, -4.0f32..4.0),
        b in -1e5f32..1e5,
        (gpu_op, cpu_op) in op_strategy(),
    ) {
        let a: Vec<u32> = values.iter().map(|&(x, _)| x).collect();
        let c: Vec<u32> = values.iter().map(|&(_, y)| y).collect();
        let width = (a.len() as f64).sqrt().ceil() as usize;
        let mut gpu = GpuTable::device_for(a.len(), width.max(1));
        let table = GpuTable::upload(&mut gpu, "t", &[("a", &a), ("c", &c)]).unwrap();
        let s = [coeffs.0, coeffs.1];
        let (_, count) = gpudb::core::semilinear::semilinear_select(
            &mut gpu, &table, &s, gpu_op, b).unwrap();
        let refs: Vec<&[u32]> = vec![&a, &c];
        let expected = cpu::semilinear::semilinear_count(&refs, &s, cpu_op, b);
        prop_assert_eq!(count, expected as u64);
    }
}

// Random CNFs: build equivalent GPU and CPU CNFs and compare selections.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cnf_matches_cpu_cnf(
        columns in prop::collection::vec(
            prop::collection::vec(0u32..500, 40..80), 1..4),
        clause_spec in prop::collection::vec(
            prop::collection::vec((0usize..4, 0usize..6, 0u32..500), 1..3),
            0..4),
    ) {
        let n = columns[0].len();
        let columns: Vec<Vec<u32>> = columns
            .into_iter()
            .map(|mut c| { c.resize(n, 0); c })
            .collect();
        let names = ["c0", "c1", "c2"];
        let named: Vec<(&str, &[u32])> = columns
            .iter()
            .enumerate()
            .map(|(i, c)| (names[i], c.as_slice()))
            .collect();
        let ops = [
            (CompareFunc::Less, cpu::CmpOp::Lt),
            (CompareFunc::LessEqual, cpu::CmpOp::Le),
            (CompareFunc::Greater, cpu::CmpOp::Gt),
            (CompareFunc::GreaterEqual, cpu::CmpOp::Ge),
            (CompareFunc::Equal, cpu::CmpOp::Eq),
            (CompareFunc::NotEqual, cpu::CmpOp::Ne),
        ];

        let mut gpu_clauses = Vec::new();
        let mut cpu_clauses = Vec::new();
        for clause in &clause_spec {
            let mut g = Vec::new();
            let mut c = Vec::new();
            for &(col, op_idx, constant) in clause {
                let col = col % columns.len();
                let (gop, cop) = ops[op_idx];
                g.push(GpuPredicate::new(col, gop, constant));
                c.push(cpu::Predicate::new(col, cop, constant));
            }
            gpu_clauses.push(gpudb::core::boolean::GpuClause::any(g));
            cpu_clauses.push(cpu::Clause::any(c));
        }

        let mut gpu = GpuTable::device_for(n, 16);
        let table = GpuTable::upload(&mut gpu, "t", &named).unwrap();
        let (sel, count) = gpudb::core::boolean::eval_cnf_select(
            &mut gpu, &table, &GpuCnf::new(gpu_clauses)).unwrap();

        let refs: Vec<&[u32]> = columns.iter().map(|c| c.as_slice()).collect();
        let reference = cpu::cnf::eval_cnf(&refs, &cpu::Cnf::new(cpu_clauses));
        prop_assert_eq!(count, reference.count_ones() as u64);
        let mask = sel.read_mask(&mut gpu).unwrap();
        for (i, &m) in mask.iter().enumerate() {
            prop_assert_eq!(m, reference.get(i), "record {}", i);
        }
    }
}

// New-module properties: DNF evaluation, OLAP histograms/roll-ups, and
// out-of-core chunking must all agree with direct host computation.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dnf_matches_row_semantics(
        col_a in prop::collection::vec(0u32..200, 30..70),
        term_spec in prop::collection::vec(
            prop::collection::vec((0usize..6, 0u32..200), 1..3), 0..4),
    ) {
        use gpudb::core::boolean::{eval_dnf_select, GpuDnf, GpuTerm};
        let ops = [
            (CompareFunc::Less, cpu::CmpOp::Lt),
            (CompareFunc::LessEqual, cpu::CmpOp::Le),
            (CompareFunc::Greater, cpu::CmpOp::Gt),
            (CompareFunc::GreaterEqual, cpu::CmpOp::Ge),
            (CompareFunc::Equal, cpu::CmpOp::Eq),
            (CompareFunc::NotEqual, cpu::CmpOp::Ne),
        ];
        let (mut gpu, table) = upload(&col_a);
        let dnf = GpuDnf::new(
            term_spec
                .iter()
                .map(|term| GpuTerm::all(
                    term.iter()
                        .map(|&(op_idx, c)| GpuPredicate::new(0, ops[op_idx].0, c))
                        .collect(),
                ))
                .collect(),
        );
        let (sel, count) = eval_dnf_select(&mut gpu, &table, &dnf).unwrap();
        let reference = |v: u32| -> bool {
            term_spec.iter().any(|term| {
                term.iter().all(|&(op_idx, c)| ops[op_idx].1.eval(v, c))
            })
        };
        let expected: Vec<bool> = col_a.iter().map(|&v| reference(v)).collect();
        prop_assert_eq!(sel.read_mask(&mut gpu).unwrap(), expected.clone());
        prop_assert_eq!(count, expected.iter().filter(|&&b| b).count() as u64);
    }

    #[test]
    fn histogram_partitions_the_domain(
        values in prop::collection::vec(0u32..10_000, 1..200),
        buckets in 1usize..12,
    ) {
        use gpudb::core::olap;
        let (mut gpu, table) = upload(&values);
        let min = *values.iter().min().unwrap();
        let max = *values.iter().max().unwrap();
        let edges = olap::equi_width_edges(min, max, buckets);
        let result = olap::histogram(&mut gpu, &table, 0, &edges).unwrap();
        // Every record lands in exactly one bucket.
        let total: u64 = result.iter().map(|b| b.count).sum();
        prop_assert_eq!(total, values.len() as u64);
        for b in &result {
            let expected = values.iter().filter(|&&v| v >= b.low && v <= b.high).count() as u64;
            prop_assert_eq!(b.count, expected);
        }
    }

    #[test]
    fn group_by_counts_partition(
        values in prop::collection::vec(0u32..12, 1..150),
    ) {
        use gpudb::core::olap;
        let (mut gpu, table) = upload(&values);
        let groups = olap::group_by_count(&mut gpu, &table, 0).unwrap();
        let total: u64 = groups.iter().map(|&(_, c)| c).sum();
        prop_assert_eq!(total, values.len() as u64);
        for &(v, c) in &groups {
            prop_assert_eq!(c, values.iter().filter(|&&x| x == v).count() as u64);
            prop_assert!(c > 0, "empty groups must be omitted");
        }
    }

    #[test]
    fn chunked_execution_equals_in_core(
        values in prop::collection::vec(0u32..100_000, 1..400),
        chunk in 1usize..100,
    ) {
        use gpudb::core::out_of_core::ChunkedTable;
        let ct = ChunkedTable::new("t", vec![("a", values.as_slice())], chunk).unwrap();
        let mut gpu = ct.device_for_chunks(16);
        prop_assert_eq!(
            ct.sum(&mut gpu, 0).unwrap(),
            values.iter().map(|&v| v as u64).sum::<u64>()
        );
        prop_assert_eq!(
            ct.count(&mut gpu, 0, CompareFunc::GreaterEqual, 50_000).unwrap(),
            values.iter().filter(|&&v| v >= 50_000).count() as u64
        );
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let k = 1 + values.len() / 3;
        prop_assert_eq!(
            ct.kth_largest(&mut gpu, 0, k).unwrap(),
            sorted[sorted.len() - k]
        );
    }

    #[test]
    fn polynomial_query_counts_match(
        values in prop::collection::vec((0u32..300, 0u32..300), 1..120),
        q in (-2.0f32..2.0, -2.0f32..2.0),
        s in (-10.0f32..10.0, -10.0f32..10.0),
        b in -1e5f32..1e5,
    ) {
        use gpudb::core::semilinear::polynomial_select;
        let a: Vec<u32> = values.iter().map(|&(x, _)| x).collect();
        let c: Vec<u32> = values.iter().map(|&(_, y)| y).collect();
        let width = (a.len() as f64).sqrt().ceil() as usize;
        let mut gpu = GpuTable::device_for(a.len(), width.max(1));
        let table = GpuTable::upload(&mut gpu, "t", &[("a", &a), ("c", &c)]).unwrap();
        let (_, count) = polynomial_select(
            &mut gpu, &table, &[q.0, q.1], &[s.0, s.1], CompareFunc::Less, b).unwrap();
        // Mirror the program's f32 evaluation order exactly.
        let expected = (0..a.len())
            .filter(|&i| {
                let (x, y) = (a[i] as f32, c[i] as f32);
                let qdot = x * x * q.0 + y * y * q.1;
                let sdot = x * s.0 + y * s.1;
                (qdot + sdot) - b < 0.0
            })
            .count() as u64;
        prop_assert_eq!(count, expected);
    }
}
