//! Chaos suite: seeded fault schedules against the resilient executor,
//! cross-checked record-for-record against the CPU oracle.
//!
//! The contract under test (ISSUE 4 acceptance criteria): for **every**
//! fault schedule, every query either
//!
//! 1. returns a result byte-identical to `cpu_oracle::execute`, or
//! 2. returns a typed [`EngineError`] that the oracle agrees with
//!    (logic errors are identical on every rung),
//!
//! and never panics and never silently corrupts an answer.
//!
//! Schedules are generated with [`FaultInjector::from_seed`] — the same
//! seeds replay byte-for-byte, so any failure here is reproducible with
//! `cargo run -p gpudb-bench --bin chaos -- --seeds <seed>`.

mod common;

use common::{query_shapes, workload};
use gpudb::prelude::*;

/// Run one (seed, query) pair under fault injection and check the
/// contract. Returns which resilience path answered, for coverage
/// accounting.
fn run_one(seed: u64, query: &Query, horizon_ns: u64) -> Option<ResiliencePath> {
    let host = workload(seed);
    let mut gpu = GpuTable::device_for(host.record_count(), 16);
    // 1–6 events per schedule: single-fault schedules let a degradation
    // rung finish cleanly; dense ones cascade all the way to the CPU.
    let events = 1 + (seed % 6) as usize;
    gpu.attach_fault_injector(FaultInjector::from_seed(seed, events, horizon_ns));
    let resilient = execute_resilient(
        &mut gpu,
        &host,
        query,
        ExecuteOptions::default(),
        &RetryPolicy::default(),
    );
    let oracle = gpudb::core::cpu_oracle::execute(&host, query);
    match (resilient, oracle) {
        (Ok(r), Ok(o)) => {
            assert!(
                o.agrees_with(r.output.matched, &r.output.rows),
                "seed {seed}: silent divergence\n gpu path {:?}: matched {} rows {:?}\n oracle: {o:?}\n ladder: {:?}",
                r.report.path,
                r.output.matched,
                r.output.rows,
                r.report.degradations,
            );
            Some(r.report.path)
        }
        (Err(e), Err(oe)) => {
            assert_eq!(e.to_string(), oe.to_string(), "seed {seed}: error mismatch");
            None
        }
        (Ok(r), Err(oe)) => panic!(
            "seed {seed}: GPU path {:?} answered {:?} but oracle errors with {oe}",
            r.report.path, r.output.rows
        ),
        (Err(e), Ok(_)) => panic!(
            "seed {seed}: query failed with {e} (class {:?}) but the oracle answers",
            e.fault_class()
        ),
    }
}

#[test]
fn chaos_64_seeds_all_shapes_match_oracle_or_error_typed() {
    let mut paths_seen = std::collections::BTreeMap::new();
    let mut runs = 0u32;
    for seed in 0..64u64 {
        // Even seeds strike immediately (horizon 0 pins every event at
        // t=0); odd seeds spread events over 2 ms of modeled time so
        // faults land mid-query.
        let horizon = if seed.is_multiple_of(2) { 0 } else { 2_000_000 };
        for query in query_shapes(seed) {
            if let Some(path) = run_one(seed, &query, horizon) {
                *paths_seen.entry(format!("{path:?}")).or_insert(0u32) += 1;
            }
            runs += 1;
        }
    }
    assert_eq!(runs, 64 * 6);
    // The ladder must actually have been exercised: every rung appears
    // somewhere in the matrix.
    assert!(
        paths_seen.contains_key("Gpu"),
        "no clean GPU path in {paths_seen:?}"
    );
    assert!(
        paths_seen.contains_key("Cpu"),
        "no CPU fallback exercised in {paths_seen:?}"
    );
    assert!(
        paths_seen.contains_key("OutOfCore"),
        "no out-of-core degradation exercised in {paths_seen:?}"
    );
}

#[test]
fn chaos_replay_is_byte_deterministic() {
    // Same seed, same query → identical output, metrics, and ladder.
    let seed = 17u64;
    let query = &query_shapes(seed)[1];
    let run = |_: ()| {
        let host = workload(seed);
        let mut gpu = GpuTable::device_for(host.record_count(), 16);
        gpu.attach_fault_injector(FaultInjector::from_seed(seed, 6, 2_000_000));
        let r = execute_resilient(
            &mut gpu,
            &host,
            query,
            ExecuteOptions::default(),
            &RetryPolicy::default(),
        )
        .expect("resilient run");
        (
            r.output.matched,
            r.output.rows.clone(),
            r.output.metrics.clone(),
            r.report.retries,
            r.report.degradations.clone(),
        )
    };
    assert_eq!(run(()), run(()));
}

#[test]
fn chaos_without_faults_is_plain_execution() {
    // No injector attached: the resilient path must equal the plain
    // executor byte-for-byte (metrics included) — the smoke-gate
    // guarantee that resilience is free when the device is healthy.
    let host = workload(7);
    for query in query_shapes(7) {
        let mut gpu = GpuTable::device_for(host.record_count(), 16);
        let resilient = execute_resilient(
            &mut gpu,
            &host,
            &query,
            ExecuteOptions::default(),
            &RetryPolicy::default(),
        )
        .map(|r| (r.output.matched, r.output.rows, r.output.metrics));

        let mut gpu2 = GpuTable::device_for(host.record_count(), 16);
        let table = host.upload(&mut gpu2).expect("upload");
        let plain = execute_with_options(&mut gpu2, &table, &query, ExecuteOptions::default())
            .map(|o| (o.matched, o.rows, o.metrics));
        match (resilient, plain) {
            (Ok(a), Ok(b)) => assert_eq!(a, b),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            (a, b) => panic!("resilient {a:?} vs plain {b:?}"),
        }
    }
}

/// Build a fault vector targeting exactly one shard of `shards`.
fn target_shard(
    shards: usize,
    target: usize,
    injector: FaultInjector,
) -> Vec<Option<FaultInjector>> {
    let mut faults: Vec<Option<FaultInjector>> = (0..shards).map(|_| None).collect();
    faults[target] = Some(injector);
    faults
}

#[test]
fn shard_chaos_seeded_schedules_match_oracle_or_error_typed() {
    // The chaos contract, sharded: a fault schedule striking ONE shard
    // must leave the merged answer byte-identical to the oracle, or
    // fail with a typed error — and must never disturb the other
    // shards' ledgers.
    for seed in 0..48u64 {
        let shards = 2 + (seed % 3) as usize; // 2..=4
        let target = (seed % shards as u64) as usize;
        let horizon = if seed.is_multiple_of(2) { 0 } else { 2_000_000 };
        let events = 1 + (seed % 6) as usize;
        let host = workload(seed);
        for query in query_shapes(seed) {
            let opts = ShardOptions {
                shards,
                ..ShardOptions::default()
            };
            let faults = target_shard(
                shards,
                target,
                FaultInjector::from_seed(seed, events, horizon),
            );
            let sharded = execute_sharded_with_faults(&host, &query, &opts, faults);
            let oracle = gpudb::core::cpu_oracle::execute(&host, &query);
            match (sharded, oracle) {
                (Ok(s), Ok(o)) => {
                    assert!(
                        o.agrees_with(s.output.matched, &s.output.rows),
                        "seed {seed}: sharded divergence under fault on shard {target}\n \
                         got matched {} rows {:?}\n oracle: {o:?}",
                        s.output.matched,
                        s.output.rows,
                    );
                    // The schedule targeted one shard; the others must
                    // have run clean.
                    for (i, run) in s.report.shards.iter().enumerate() {
                        if i != target {
                            assert!(
                                run.degradations.is_empty() && run.path == ResiliencePath::Gpu,
                                "seed {seed}: untargeted shard {i} degraded: {:?}",
                                run.degradations
                            );
                        }
                    }
                }
                (Err(e), Err(oe)) => {
                    assert_eq!(e.to_string(), oe.to_string(), "seed {seed}: error mismatch")
                }
                (Err(e), Ok(_)) => panic!(
                    "seed {seed}: sharded run failed with {e} (class {:?}) but the oracle answers",
                    e.fault_class()
                ),
                (Ok(s), Err(oe)) => panic!(
                    "seed {seed}: sharded run answered {:?} but oracle errors with {oe}",
                    s.output.rows
                ),
            }
        }
    }
}

#[test]
fn shard_chaos_device_reset_degrades_only_the_struck_shard() {
    // A DeviceReset at t=0 on shard 1 of 3: that shard answers from the
    // CPU, the other two stay on the GPU, and the merged answer equals
    // the fault-free run for every query shape.
    let host = workload(11);
    for query in query_shapes(11) {
        let opts = ShardOptions {
            shards: 3,
            ..ShardOptions::default()
        };
        let clean = execute_sharded(&host, &query, &opts).expect("clean run");
        let reset = FaultInjector::with_schedule(vec![FaultEvent {
            at_ns: 0,
            kind: FaultKind::DeviceReset,
        }]);
        let struck = execute_sharded_with_faults(&host, &query, &opts, target_shard(3, 1, reset))
            .expect("struck run");
        assert_eq!(struck.output.matched, clean.output.matched);
        assert_eq!(struck.output.rows, clean.output.rows);
        assert_eq!(struck.mask, clean.mask);
        assert_eq!(struck.report.shards[1].path, ResiliencePath::Cpu);
        assert!(!struck.report.shards[1].degradations.is_empty());
        for i in [0, 2] {
            assert_eq!(struck.report.shards[i].path, ResiliencePath::Gpu);
            assert!(struck.report.shards[i].degradations.is_empty());
        }
    }
}

#[test]
fn shard_chaos_hostile_policy_errors_stay_typed() {
    // No fallback, single attempt, immediate faults on one shard: every
    // outcome is Ok-with-oracle-parity or a typed EngineError — never a
    // panic. Logic errors must match the oracle's verdict exactly.
    for seed in 0..24u64 {
        let host = workload(seed);
        let query = &query_shapes(seed)[4]; // order statistics: the holistic shape
        let opts = ShardOptions {
            shards: 4,
            policy: RetryPolicy {
                max_attempts: 1,
                cpu_fallback: false,
                ..RetryPolicy::default()
            },
            ..ShardOptions::default()
        };
        let faults = target_shard(4, (seed % 4) as usize, FaultInjector::from_seed(seed, 4, 0));
        match execute_sharded_with_faults(&host, query, &opts, faults) {
            Ok(s) => {
                let oracle = gpudb::core::cpu_oracle::execute(&host, query).expect("oracle");
                assert!(oracle.agrees_with(s.output.matched, &s.output.rows));
            }
            Err(e) => {
                if e.fault_class() == FaultClass::Logic {
                    let oracle_err =
                        gpudb::core::cpu_oracle::execute(&host, query).expect_err("oracle err");
                    assert_eq!(e.to_string(), oracle_err.to_string());
                }
            }
        }
    }
}

#[test]
fn chaos_errors_are_never_panics() {
    // Sweep a hostile policy (no CPU fallback, single attempt) across
    // immediate-fault schedules: every outcome is Ok-with-parity or a
    // typed error — never a panic, never an unclassified failure.
    for seed in 0..32u64 {
        let host = workload(seed);
        let query = &query_shapes(seed)[5];
        let mut gpu = GpuTable::device_for(host.record_count(), 16);
        gpu.attach_fault_injector(FaultInjector::from_seed(seed, 4, 0));
        let policy = RetryPolicy {
            max_attempts: 1,
            cpu_fallback: false,
            ..RetryPolicy::default()
        };
        match execute_resilient(&mut gpu, &host, query, ExecuteOptions::default(), &policy) {
            Ok(r) => {
                let oracle = gpudb::core::cpu_oracle::execute(&host, query).expect("oracle");
                assert!(oracle.agrees_with(r.output.matched, &r.output.rows));
            }
            Err(e) => {
                // The class tells callers what to do next; Logic errors
                // must agree with the oracle's verdict.
                if e.fault_class() == FaultClass::Logic {
                    let oracle_err =
                        gpudb::core::cpu_oracle::execute(&host, query).expect_err("oracle err");
                    assert_eq!(e.to_string(), oracle_err.to_string());
                }
            }
        }
    }
}
