//! Chaos suite: seeded fault schedules against the resilient executor,
//! cross-checked record-for-record against the CPU oracle.
//!
//! The contract under test (ISSUE 4 acceptance criteria): for **every**
//! fault schedule, every query either
//!
//! 1. returns a result byte-identical to `cpu_oracle::execute`, or
//! 2. returns a typed [`EngineError`] that the oracle agrees with
//!    (logic errors are identical on every rung),
//!
//! and never panics and never silently corrupts an answer.
//!
//! Schedules are generated with [`FaultInjector::from_seed`] — the same
//! seeds replay byte-for-byte, so any failure here is reproducible with
//! `cargo run -p gpudb-bench --bin chaos -- --seeds <seed>`.

use gpudb::prelude::*;

/// SplitMix64, for deterministic workload/query generation independent
/// of the fault schedule's own PRNG stream.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const RECORDS: usize = 256;

/// A small three-column workload, deterministic in the seed.
fn workload(seed: u64) -> HostTable {
    let mut rng = Mix(seed.wrapping_mul(0xA076_1D64_78BD_642F) | 1);
    let a: Vec<u32> = (0..RECORDS).map(|_| rng.below(1 << 16) as u32).collect();
    let b: Vec<u32> = (0..RECORDS).map(|_| rng.below(1 << 12) as u32).collect();
    let c: Vec<u32> = (0..RECORDS).map(|_| rng.below(97) as u32).collect();
    HostTable::new("chaos", vec![("a", a), ("b", b), ("c", c)]).expect("valid workload")
}

/// The six query shapes of the acceptance criteria: simple predicate,
/// range (sometimes inverted and therefore empty), CNF, semi-linear,
/// k-th order statistics, and the accumulator aggregates.
fn query_shapes(seed: u64) -> Vec<Query> {
    let mut rng = Mix(seed.wrapping_mul(0xD6E8_FEB8_6659_FD93) | 1);
    let cut = rng.below(1 << 16) as u32;
    let lo = rng.below(1 << 16) as u32;
    let hi = rng.below(1 << 16) as u32;
    let k = 1 + rng.below(32) as usize;
    vec![
        // 1. Predicate (Routine 4.1).
        Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::pred("a", CompareFunc::Greater, cut),
        ),
        // 2. Range (Routine 4.4) — inverted for roughly half the seeds.
        Query::filtered(
            vec![Aggregate::Count, Aggregate::Sum("b".into())],
            BoolExpr::pred("a", CompareFunc::GreaterEqual, lo).and(BoolExpr::pred(
                "a",
                CompareFunc::LessEqual,
                hi,
            )),
        ),
        // 3. CNF (Routine 4.3).
        Query::filtered(
            vec![Aggregate::Count, Aggregate::Max("a".into())],
            BoolExpr::pred("b", CompareFunc::Less, 2048)
                .or(BoolExpr::pred("c", CompareFunc::GreaterEqual, 48))
                .and(BoolExpr::pred("a", CompareFunc::NotEqual, cut)),
        ),
        // 4. Semi-linear (Routine 4.2).
        Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::SemiLinear {
                terms: vec![("a".into(), 1.0), ("b".into(), -2.0)],
                op: CompareFunc::Greater,
                constant: cut as f32 / 3.0,
            },
        ),
        // 5. Order statistics (Routine 4.5) — holistic, so the OOM rung
        // must hand these to the CPU.
        Query::filtered(
            vec![
                Aggregate::Median("a".into()),
                Aggregate::KthLargest("b".into(), k),
            ],
            BoolExpr::pred("c", CompareFunc::Less, 80),
        ),
        // 6. Accumulator (Routine 4.6).
        Query::filtered(
            vec![
                Aggregate::Sum("a".into()),
                Aggregate::Avg("b".into()),
                Aggregate::Min("b".into()),
            ],
            BoolExpr::pred("c", CompareFunc::GreaterEqual, 20),
        ),
    ]
}

/// Run one (seed, query) pair under fault injection and check the
/// contract. Returns which resilience path answered, for coverage
/// accounting.
fn run_one(seed: u64, query: &Query, horizon_ns: u64) -> Option<ResiliencePath> {
    let host = workload(seed);
    let mut gpu = GpuTable::device_for(host.record_count(), 16);
    // 1–6 events per schedule: single-fault schedules let a degradation
    // rung finish cleanly; dense ones cascade all the way to the CPU.
    let events = 1 + (seed % 6) as usize;
    gpu.attach_fault_injector(FaultInjector::from_seed(seed, events, horizon_ns));
    let resilient = execute_resilient(
        &mut gpu,
        &host,
        query,
        ExecuteOptions::default(),
        &RetryPolicy::default(),
    );
    let oracle = gpudb::core::cpu_oracle::execute(&host, query);
    match (resilient, oracle) {
        (Ok(r), Ok(o)) => {
            assert!(
                o.agrees_with(r.output.matched, &r.output.rows),
                "seed {seed}: silent divergence\n gpu path {:?}: matched {} rows {:?}\n oracle: {o:?}\n ladder: {:?}",
                r.report.path,
                r.output.matched,
                r.output.rows,
                r.report.degradations,
            );
            Some(r.report.path)
        }
        (Err(e), Err(oe)) => {
            assert_eq!(e.to_string(), oe.to_string(), "seed {seed}: error mismatch");
            None
        }
        (Ok(r), Err(oe)) => panic!(
            "seed {seed}: GPU path {:?} answered {:?} but oracle errors with {oe}",
            r.report.path, r.output.rows
        ),
        (Err(e), Ok(_)) => panic!(
            "seed {seed}: query failed with {e} (class {:?}) but the oracle answers",
            e.fault_class()
        ),
    }
}

#[test]
fn chaos_64_seeds_all_shapes_match_oracle_or_error_typed() {
    let mut paths_seen = std::collections::BTreeMap::new();
    let mut runs = 0u32;
    for seed in 0..64u64 {
        // Even seeds strike immediately (horizon 0 pins every event at
        // t=0); odd seeds spread events over 2 ms of modeled time so
        // faults land mid-query.
        let horizon = if seed.is_multiple_of(2) { 0 } else { 2_000_000 };
        for query in query_shapes(seed) {
            if let Some(path) = run_one(seed, &query, horizon) {
                *paths_seen.entry(format!("{path:?}")).or_insert(0u32) += 1;
            }
            runs += 1;
        }
    }
    assert_eq!(runs, 64 * 6);
    // The ladder must actually have been exercised: every rung appears
    // somewhere in the matrix.
    assert!(
        paths_seen.contains_key("Gpu"),
        "no clean GPU path in {paths_seen:?}"
    );
    assert!(
        paths_seen.contains_key("Cpu"),
        "no CPU fallback exercised in {paths_seen:?}"
    );
    assert!(
        paths_seen.contains_key("OutOfCore"),
        "no out-of-core degradation exercised in {paths_seen:?}"
    );
}

#[test]
fn chaos_replay_is_byte_deterministic() {
    // Same seed, same query → identical output, metrics, and ladder.
    let seed = 17u64;
    let query = &query_shapes(seed)[1];
    let run = |_: ()| {
        let host = workload(seed);
        let mut gpu = GpuTable::device_for(host.record_count(), 16);
        gpu.attach_fault_injector(FaultInjector::from_seed(seed, 6, 2_000_000));
        let r = execute_resilient(
            &mut gpu,
            &host,
            query,
            ExecuteOptions::default(),
            &RetryPolicy::default(),
        )
        .expect("resilient run");
        (
            r.output.matched,
            r.output.rows.clone(),
            r.output.metrics.clone(),
            r.report.retries,
            r.report.degradations.clone(),
        )
    };
    assert_eq!(run(()), run(()));
}

#[test]
fn chaos_without_faults_is_plain_execution() {
    // No injector attached: the resilient path must equal the plain
    // executor byte-for-byte (metrics included) — the smoke-gate
    // guarantee that resilience is free when the device is healthy.
    let host = workload(7);
    for query in query_shapes(7) {
        let mut gpu = GpuTable::device_for(host.record_count(), 16);
        let resilient = execute_resilient(
            &mut gpu,
            &host,
            &query,
            ExecuteOptions::default(),
            &RetryPolicy::default(),
        )
        .map(|r| (r.output.matched, r.output.rows, r.output.metrics));

        let mut gpu2 = GpuTable::device_for(host.record_count(), 16);
        let table = host.upload(&mut gpu2).expect("upload");
        let plain = execute_with_options(&mut gpu2, &table, &query, ExecuteOptions::default())
            .map(|o| (o.matched, o.rows, o.metrics));
        match (resilient, plain) {
            (Ok(a), Ok(b)) => assert_eq!(a, b),
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            (a, b) => panic!("resilient {a:?} vs plain {b:?}"),
        }
    }
}

#[test]
fn chaos_errors_are_never_panics() {
    // Sweep a hostile policy (no CPU fallback, single attempt) across
    // immediate-fault schedules: every outcome is Ok-with-parity or a
    // typed error — never a panic, never an unclassified failure.
    for seed in 0..32u64 {
        let host = workload(seed);
        let query = &query_shapes(seed)[5];
        let mut gpu = GpuTable::device_for(host.record_count(), 16);
        gpu.attach_fault_injector(FaultInjector::from_seed(seed, 4, 0));
        let policy = RetryPolicy {
            max_attempts: 1,
            cpu_fallback: false,
            ..RetryPolicy::default()
        };
        match execute_resilient(&mut gpu, &host, query, ExecuteOptions::default(), &policy) {
            Ok(r) => {
                let oracle = gpudb::core::cpu_oracle::execute(&host, query).expect("oracle");
                assert!(oracle.agrees_with(r.output.matched, &r.output.rows));
            }
            Err(e) => {
                // The class tells callers what to do next; Logic errors
                // must agree with the oracle's verdict.
                if e.fault_class() == FaultClass::Logic {
                    let oracle_err =
                        gpudb::core::cpu_oracle::execute(&host, query).expect_err("oracle err");
                    assert_eq!(e.to_string(), oracle_err.to_string());
                }
            }
        }
    }
}
