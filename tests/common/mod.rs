//! Shared deterministic workload and query generators for the
//! differential suites (`chaos`, `sharded_equivalence`). Every
//! generator is a pure function of its seed so failures replay
//! byte-for-byte.

#![allow(dead_code)] // each test binary uses its own subset

use gpudb::prelude::*;

/// SplitMix64, for deterministic workload/query generation independent
/// of the fault schedule's own PRNG stream.
pub struct Mix(pub u64);

impl Mix {
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

pub const RECORDS: usize = 256;

/// A small three-column workload, deterministic in the seed.
pub fn workload(seed: u64) -> HostTable {
    let mut rng = Mix(seed.wrapping_mul(0xA076_1D64_78BD_642F) | 1);
    let a: Vec<u32> = (0..RECORDS).map(|_| rng.below(1 << 16) as u32).collect();
    let b: Vec<u32> = (0..RECORDS).map(|_| rng.below(1 << 12) as u32).collect();
    let c: Vec<u32> = (0..RECORDS).map(|_| rng.below(97) as u32).collect();
    HostTable::new("chaos", vec![("a", a), ("b", b), ("c", c)]).expect("valid workload")
}

/// The six query shapes of the acceptance criteria: simple predicate,
/// range (sometimes inverted and therefore empty), CNF, semi-linear,
/// k-th order statistics, and the accumulator aggregates.
pub fn query_shapes(seed: u64) -> Vec<Query> {
    let mut rng = Mix(seed.wrapping_mul(0xD6E8_FEB8_6659_FD93) | 1);
    let cut = rng.below(1 << 16) as u32;
    let lo = rng.below(1 << 16) as u32;
    let hi = rng.below(1 << 16) as u32;
    let k = 1 + rng.below(32) as usize;
    vec![
        // 1. Predicate (Routine 4.1).
        Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::pred("a", CompareFunc::Greater, cut),
        ),
        // 2. Range (Routine 4.4) — inverted for roughly half the seeds.
        Query::filtered(
            vec![Aggregate::Count, Aggregate::Sum("b".into())],
            BoolExpr::pred("a", CompareFunc::GreaterEqual, lo).and(BoolExpr::pred(
                "a",
                CompareFunc::LessEqual,
                hi,
            )),
        ),
        // 3. CNF (Routine 4.3).
        Query::filtered(
            vec![Aggregate::Count, Aggregate::Max("a".into())],
            BoolExpr::pred("b", CompareFunc::Less, 2048)
                .or(BoolExpr::pred("c", CompareFunc::GreaterEqual, 48))
                .and(BoolExpr::pred("a", CompareFunc::NotEqual, cut)),
        ),
        // 4. Semi-linear (Routine 4.2).
        Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::SemiLinear {
                terms: vec![("a".into(), 1.0), ("b".into(), -2.0)],
                op: CompareFunc::Greater,
                constant: cut as f32 / 3.0,
            },
        ),
        // 5. Order statistics (Routine 4.5) — holistic, so the OOM rung
        // must hand these to the CPU.
        Query::filtered(
            vec![
                Aggregate::Median("a".into()),
                Aggregate::KthLargest("b".into(), k),
            ],
            BoolExpr::pred("c", CompareFunc::Less, 80),
        ),
        // 6. Accumulator (Routine 4.6).
        Query::filtered(
            vec![
                Aggregate::Sum("a".into()),
                Aggregate::Avg("b".into()),
                Aggregate::Min("b".into()),
            ],
            BoolExpr::pred("c", CompareFunc::GreaterEqual, 20),
        ),
    ]
}
