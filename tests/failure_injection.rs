//! Failure injection: resource exhaustion, precision limits, invalid
//! arguments — the error paths a production library must handle cleanly.

use gpudb::core::{EngineError, GpuTable};
use gpudb::prelude::*;
use gpudb::sim::GpuError;

#[test]
fn vram_exhaustion_is_reported_not_panicked() {
    let mut gpu = GpuTable::device_for(1_000, 100);
    // Leave room for nothing beyond the framebuffer.
    gpu.set_vram_budget(gpu.vram_used() + 100);
    let values: Vec<u32> = (0..1_000).collect();
    let err = GpuTable::upload(&mut gpu, "t", &[("a", &values)]).unwrap_err();
    match err {
        EngineError::Gpu(GpuError::OutOfVideoMemory {
            requested,
            available,
        }) => {
            assert!(requested > available);
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn out_of_core_fallback_pattern() {
    // §6.1 "Memory Management": with tens of millions of records "we would
    // use out-of-core techniques and swap textures in and out of video
    // memory". Demonstrate the chunked pattern the library supports:
    // process a table in segments, freeing each before the next.
    let total: usize = 30_000;
    let chunk = 10_000;
    let values: Vec<u32> = (0..total as u32).collect();

    let mut gpu = GpuTable::device_for(chunk, 100);
    // Budget: framebuffer + one chunk only.
    gpu.set_vram_budget(gpu.vram_used() + chunk * 4 + 1024);

    let mut matches = 0u64;
    for part in values.chunks(chunk) {
        let table = GpuTable::upload(&mut gpu, "part", &[("a", part)]).unwrap();
        let (_, count) =
            compare_select(&mut gpu, &table, 0, CompareFunc::GreaterEqual, 15_000).unwrap();
        matches += count;
        table.free(&mut gpu).unwrap();
    }
    assert_eq!(
        matches,
        values.iter().filter(|&&v| v >= 15_000).count() as u64
    );
}

#[test]
fn attribute_wider_than_24_bits_rejected() {
    let mut gpu = GpuTable::device_for(2, 2);
    let values = vec![1u32 << 24, 0];
    match GpuTable::upload(&mut gpu, "t", &[("wide", &values)]).unwrap_err() {
        EngineError::AttributeTooWide { column, bits } => {
            assert_eq!(column, "wide");
            assert_eq!(bits, 25);
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn framebuffer_too_small_rejected() {
    let mut gpu = Gpu::geforce_fx_5900(10, 2);
    let values: Vec<u32> = (0..100).collect();
    assert!(matches!(
        GpuTable::upload(&mut gpu, "t", &[("a", &values)]).unwrap_err(),
        EngineError::FramebufferTooSmall {
            needed: 10,
            available: 2
        }
    ));
}

#[test]
fn invalid_k_and_empty_domains() {
    let values: Vec<u32> = (0..10).collect();
    let mut gpu = GpuTable::device_for(10, 5);
    let table = GpuTable::upload(&mut gpu, "t", &[("a", &values)]).unwrap();

    assert!(matches!(
        aggregate::kth_largest(&mut gpu, &table, 0, 0, None).unwrap_err(),
        EngineError::InvalidK {
            k: 0,
            available: 10
        }
    ));
    assert!(matches!(
        aggregate::kth_largest(&mut gpu, &table, 0, 11, None).unwrap_err(),
        EngineError::InvalidK {
            k: 11,
            available: 10
        }
    ));

    // An empty selection turns every order statistic into an error.
    let (sel, count) = compare_select(&mut gpu, &table, 0, CompareFunc::Greater, 100).unwrap();
    assert_eq!(count, 0);
    assert!(matches!(
        aggregate::median(&mut gpu, &table, 0, Some(&sel)).unwrap_err(),
        EngineError::EmptyInput
    ));
    assert!(matches!(
        aggregate::avg(&mut gpu, &table, 0, Some(&sel)).unwrap_err(),
        EngineError::EmptyInput
    ));
    // COUNT and SUM are total functions.
    assert_eq!(aggregate::sum(&mut gpu, &table, 0, Some(&sel)).unwrap(), 0);
}

#[test]
fn column_lookup_failures() {
    let values: Vec<u32> = (0..4).collect();
    let mut gpu = GpuTable::device_for(4, 2);
    let table = GpuTable::upload(&mut gpu, "t", &[("a", &values)]).unwrap();
    assert!(matches!(
        table.column_index("missing").unwrap_err(),
        EngineError::ColumnNotFound(_)
    ));
    assert!(matches!(
        gpudb::core::predicate::compare_select(&mut gpu, &table, 5, CompareFunc::Less, 1)
            .unwrap_err(),
        EngineError::ColumnIndexOutOfRange(5)
    ));
}

#[test]
fn malformed_sql_reports_invalid_query() {
    for sql in [
        "",
        "SELECT",
        "SELECT COUNT(*)",
        "SELECT COUNT(*) FROM t WHERE",
        "SELECT NOPE(a) FROM t",
        "SELECT COUNT(*) FROM t WHERE a >",
        "SELECT COUNT(*) FROM t WHERE (a > 1",
    ] {
        assert!(
            matches!(
                gpudb::core::query::parse(sql),
                Err(EngineError::InvalidQuery(_))
            ),
            "{sql:?} should fail to parse"
        );
    }
}

#[test]
fn query_against_wrong_schema_fails_cleanly() {
    let values: Vec<u32> = (0..4).collect();
    let mut gpu = GpuTable::device_for(4, 2);
    let table = GpuTable::upload(&mut gpu, "t", &[("a", &values)]).unwrap();
    let stmt = gpudb::core::query::parse("SELECT SUM(b) FROM t WHERE b < 2").unwrap();
    assert!(matches!(
        gpudb::core::query::execute(&mut gpu, &table, &stmt.query).unwrap_err(),
        EngineError::ColumnNotFound(_)
    ));
}

#[test]
fn invalid_fragment_programs_rejected_by_device() {
    let mut gpu = Gpu::geforce_fx_5900(4, 4);
    assert!(matches!(
        gpu.bind_program_source("FOO R0, R1;").unwrap_err(),
        GpuError::ProgramError(_)
    ));
    // Device state is unaffected: a valid draw still works.
    assert!(gpu.draw_full_quad(0.5).is_ok());
}

#[test]
fn empty_table_operations_are_total() {
    let mut gpu = GpuTable::device_for(0, 4);
    let empty: Vec<u32> = vec![];
    let table = GpuTable::upload(&mut gpu, "t", &[("a", &empty)]).unwrap();
    let (sel, count) = compare_select(&mut gpu, &table, 0, CompareFunc::Less, 5).unwrap();
    assert_eq!(count, 0);
    assert_eq!(sel.read_mask(&mut gpu).unwrap().len(), 0);
    assert_eq!(aggregate::sum(&mut gpu, &table, 0, None).unwrap(), 0);
    assert!(aggregate::median(&mut gpu, &table, 0, None).is_err());
    let outcome = gpudb::core::sort::sort_values(&mut gpu, &empty).unwrap();
    assert!(outcome.sorted.is_empty());
}

#[test]
fn device_survives_interleaved_errors() {
    // Errors must not corrupt device state for subsequent correct calls.
    let values: Vec<u32> = (0..50).collect();
    let mut gpu = GpuTable::device_for(50, 10);
    let table = GpuTable::upload(&mut gpu, "t", &[("a", &values)]).unwrap();

    for _ in 0..3 {
        let _ = aggregate::kth_largest(&mut gpu, &table, 0, 999, None).unwrap_err();
        let _ = gpu.bind_program_source("BROKEN").unwrap_err();
        let (_, count) = compare_select(&mut gpu, &table, 0, CompareFunc::Less, 25).unwrap();
        assert_eq!(count, 25);
    }
}
