//! Criterion microbenchmarks for the selection primitives (Figures 2-6),
//! measuring the simulator's wall-clock alongside the equivalent CPU
//! baselines. Modeled-2004 comparisons live in the `reproduce` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpudb_bench::harness::Workload;
use gpudb_core::boolean::{eval_cnf_select, GpuCnf, GpuPredicate};
use gpudb_core::predicate::{compare_select, copy_to_depth};
use gpudb_core::range::range_select;
use gpudb_core::semilinear::semilinear_select;
use gpudb_data::selectivity::{range_for_selectivity, threshold_for_ge};
use gpudb_sim::CompareFunc;
use std::time::Duration;

const SIZES: [usize; 3] = [4_096, 16_384, 65_536];

fn bench_copy(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_copy_to_depth");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for &n in &SIZES {
        let mut w = Workload::tcpip(n).unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let table = &w.table;
                copy_to_depth(&mut w.gpu, table, 0).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_predicate(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_predicate");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for &n in &SIZES {
        let mut w = Workload::tcpip(n).unwrap();
        let values = w.dataset.columns[0].values.clone();
        let (threshold, _) = threshold_for_ge(&values, 0.6).unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("gpu_sim", n), &n, |b, _| {
            b.iter(|| {
                let table = &w.table;
                compare_select(&mut w.gpu, table, 0, CompareFunc::GreaterEqual, threshold).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("cpu_scan", n), &n, |b, _| {
            b.iter(|| gpudb_cpu::scan::scan_u32(&values, gpudb_cpu::CmpOp::Ge, threshold))
        });
    }
    group.finish();
}

fn bench_range(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_range");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for &n in &SIZES {
        let mut w = Workload::tcpip(n).unwrap();
        let values = w.dataset.columns[0].values.clone();
        let (low, high, _) = range_for_selectivity(&values, 0.6).unwrap();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("gpu_sim", n), &n, |b, _| {
            b.iter(|| {
                let table = &w.table;
                range_select(&mut w.gpu, table, 0, low, high).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("cpu_range", n), &n, |b, _| {
            b.iter(|| gpudb_cpu::cnf::eval_range(&values, low, high))
        });
    }
    group.finish();
}

fn bench_multiattr(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_multiattr");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let n = 16_384;
    let mut w = Workload::tcpip(n).unwrap();
    let thresholds: Vec<u32> = (0..4)
        .map(|c| {
            threshold_for_ge(&w.dataset.columns[c].values, 0.6)
                .unwrap()
                .0
        })
        .collect();
    for attrs in 1..=4usize {
        let cnf = GpuCnf::all_of(
            (0..attrs)
                .map(|c| GpuPredicate::new(c, CompareFunc::GreaterEqual, thresholds[c]))
                .collect(),
        );
        group.bench_with_input(BenchmarkId::new("gpu_sim", attrs), &attrs, |b, _| {
            b.iter(|| {
                let table = &w.table;
                eval_cnf_select(&mut w.gpu, table, &cnf).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_semilinear(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_semilinear");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let coeffs = [0.375f32, -1.25, 2.5, 0.8125];
    for &n in &SIZES {
        let mut w = Workload::tcpip(n).unwrap();
        let host: Vec<Vec<u32>> = w.dataset.columns.iter().map(|c| c.values.clone()).collect();
        let refs: Vec<&[u32]> = host.iter().map(|v| v.as_slice()).collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("gpu_sim", n), &n, |b, _| {
            b.iter(|| {
                let table = &w.table;
                semilinear_select(&mut w.gpu, table, &coeffs, CompareFunc::GreaterEqual, 1e5)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("cpu_scan", n), &n, |b, _| {
            b.iter(|| {
                gpudb_cpu::semilinear::semilinear_scan(&refs, &coeffs, gpudb_cpu::CmpOp::Ge, 1e5)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_copy,
    bench_predicate,
    bench_range,
    bench_multiattr,
    bench_semilinear
);
criterion_main!(benches);
