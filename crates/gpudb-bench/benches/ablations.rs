//! Criterion benchmarks for the ablation comparisons: mipmap vs bitwise
//! SUM, depth-bounds range vs general EvalCNF, the conjunction fast path
//! vs Routine 4.3, and the bitonic sort extension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpudb_bench::harness::Workload;
use gpudb_core::aggregate::{mipmap_sum, sum};
use gpudb_core::boolean::{eval_cnf_general_select, eval_conjunction_select, GpuCnf, GpuPredicate};
use gpudb_core::range::range_select;
use gpudb_core::sort::sort_values;
use gpudb_data::selectivity::{range_for_selectivity, threshold_for_ge};
use gpudb_sim::{CompareFunc, Gpu};
use std::time::Duration;

fn bench_sum_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("abl_sum_strategy");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let n = 16_384;
    let mut w = Workload::tcpip(n).unwrap();
    group.bench_function("bitwise_accumulator", |b| {
        b.iter(|| {
            let table = &w.table;
            sum(&mut w.gpu, table, 0, None).unwrap()
        })
    });
    group.bench_function("float_mipmap", |b| {
        b.iter(|| {
            let table = &w.table;
            mipmap_sum(&mut w.gpu, table, 0).unwrap()
        })
    });
    group.finish();
}

fn bench_range_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("abl_range_strategy");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let n = 16_384;
    let mut w = Workload::tcpip(n).unwrap();
    let values = w.dataset.columns[0].values.clone();
    let (low, high, _) = range_for_selectivity(&values, 0.6).unwrap();
    group.bench_function("depth_bounds", |b| {
        b.iter(|| {
            let table = &w.table;
            range_select(&mut w.gpu, table, 0, low, high).unwrap()
        })
    });
    let cnf = GpuCnf::all_of(vec![
        GpuPredicate::new(0, CompareFunc::GreaterEqual, low),
        GpuPredicate::new(0, CompareFunc::LessEqual, high),
    ]);
    group.bench_function("general_evalcnf", |b| {
        b.iter(|| {
            let table = &w.table;
            eval_cnf_general_select(&mut w.gpu, table, &cnf).unwrap()
        })
    });
    group.finish();
}

fn bench_conjunction_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("abl_conjunction_protocol");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let n = 16_384;
    let mut w = Workload::tcpip(n).unwrap();
    let preds: Vec<GpuPredicate> = (0..4)
        .map(|col| {
            let (t, _) = threshold_for_ge(&w.dataset.columns[col].values, 0.6).unwrap();
            GpuPredicate::new(col, CompareFunc::GreaterEqual, t)
        })
        .collect();
    let cnf = GpuCnf::all_of(preds.clone());
    group.bench_function("fast_path", |b| {
        b.iter(|| {
            let table = &w.table;
            eval_conjunction_select(&mut w.gpu, table, &preds).unwrap()
        })
    });
    group.bench_function("routine_4_3", |b| {
        b.iter(|| {
            let table = &w.table;
            eval_cnf_general_select(&mut w.gpu, table, &cnf).unwrap()
        })
    });
    group.finish();
}

fn bench_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_bitonic_sort");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for n in [1_024usize, 4_096] {
        let values: Vec<u32> = (0..n as u32)
            .map(|i| i.wrapping_mul(2654435761) % (1 << 20))
            .collect();
        group.bench_with_input(BenchmarkId::new("gpu_sim", n), &n, |b, _| {
            let width = (n as f64).sqrt() as usize;
            let width = width.next_power_of_two();
            let mut gpu = Gpu::geforce_fx_5900(width, n.next_power_of_two() / width);
            b.iter(|| sort_values(&mut gpu, &values).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("cpu_sort", n), &n, |b, _| {
            b.iter(|| {
                let mut v = values.clone();
                v.sort_unstable();
                v
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sum_strategies,
    bench_range_strategies,
    bench_conjunction_protocols,
    bench_sort
);
criterion_main!(benches);
