//! Criterion benchmarks for the extension modules: DNF evaluation, OLAP
//! histograms and roll-ups, out-of-core chunking, polynomial queries, and
//! the §6.1 depth-compare-mask accumulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpudb_bench::harness::Workload;
use gpudb_core::aggregate::{sum, sum_with_depth_mask};
use gpudb_core::boolean::{eval_dnf_select, GpuDnf, GpuPredicate, GpuTerm};
use gpudb_core::olap;
use gpudb_core::out_of_core::ChunkedTable;
use gpudb_core::semilinear::polynomial_select;
use gpudb_core::table::GpuTable;
use gpudb_sim::{CompareFunc, HardwareProfile};
use std::time::Duration;

fn bench_dnf(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_dnf");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let n = 16_384;
    let mut w = Workload::tcpip(n).unwrap();
    let dnf = GpuDnf::new(vec![
        GpuTerm::all(vec![
            GpuPredicate::new(0, CompareFunc::GreaterEqual, 100_000),
            GpuPredicate::new(1, CompareFunc::Greater, 0),
        ]),
        GpuTerm::all(vec![
            GpuPredicate::new(2, CompareFunc::Less, 2_000),
            GpuPredicate::new(3, CompareFunc::GreaterEqual, 4),
        ]),
    ]);
    group.bench_function("two_term_dnf", |b| {
        b.iter(|| {
            let table = &w.table;
            eval_dnf_select(&mut w.gpu, table, &dnf).unwrap()
        })
    });
    group.finish();
}

fn bench_olap(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_olap");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let n = 16_384;
    let mut w = Workload::tcpip(n).unwrap();
    for buckets in [8usize, 32] {
        group.bench_with_input(
            BenchmarkId::new("histogram", buckets),
            &buckets,
            |b, &buckets| {
                let edges = olap::equi_width_edges(0, (1 << 19) - 1, buckets);
                b.iter(|| {
                    let table = &w.table;
                    olap::histogram(&mut w.gpu, table, 0, &edges).unwrap()
                })
            },
        );
    }
    // Roll-up over a genuinely low-cardinality dimension (household size).
    let census = gpudb_data::census::generate(n, 7);
    let mut cw = Workload::from_dataset(census).unwrap();
    group.bench_function("group_by_count_household", |b| {
        b.iter(|| {
            let table = &cw.table;
            olap::group_by_count(&mut cw.gpu, table, 3).unwrap()
        })
    });
    group.finish();
}

fn bench_out_of_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_out_of_core");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let dataset = gpudb_data::tcpip::generate(32_768, 7);
    let values = &dataset.columns[0].values;
    for chunk in [4_096usize, 16_384] {
        group.bench_with_input(
            BenchmarkId::new("chunked_sum", chunk),
            &chunk,
            |b, &chunk| {
                let ct = ChunkedTable::new("t", vec![("a", values.as_slice())], chunk).unwrap();
                let mut gpu = ct.device_for_chunks(128);
                b.iter(|| ct.sum(&mut gpu, 0).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_polynomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_polynomial");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let n = 16_384;
    let mut w = Workload::tcpip(n).unwrap();
    group.bench_function("quadratic_form", |b| {
        b.iter(|| {
            let table = &w.table;
            polynomial_select(
                &mut w.gpu,
                table,
                &[1e-6, -2e-6, 0.0, 0.0],
                &[0.5, 0.25, 0.0, 0.0],
                CompareFunc::GreaterEqual,
                1_000.0,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_wishlist_accumulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("ext_wishlist_accumulator");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let dataset = gpudb_data::tcpip::generate(16_384, 7);
    let values = &dataset.columns[0].values;
    let mut gpu = gpudb_sim::Gpu::new(HardwareProfile::geforce_fx_5900_with_depth_mask(), 128, 128);
    let table = GpuTable::upload(&mut gpu, "t", &[("a", values)]).unwrap();
    group.bench_function("testbit_program", |b| {
        b.iter(|| sum(&mut gpu, &table, 0, None).unwrap())
    });
    group.bench_function("depth_compare_mask", |b| {
        b.iter(|| sum_with_depth_mask(&mut gpu, &table, 0, None).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dnf,
    bench_olap,
    bench_out_of_core,
    bench_polynomial,
    bench_wishlist_accumulator
);
criterion_main!(benches);
