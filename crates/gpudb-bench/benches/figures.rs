//! One criterion benchmark per paper figure: each target runs the same
//! experiment as the `reproduce` harness at a fixed reduced size, so
//! regressions in any reproduced pipeline show up in `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use gpudb_bench::experiments;
use gpudb_bench::report::Scale;
use std::time::Duration;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    // Each iteration simulates a full figure sweep; keep samples minimal.
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for id in ["fig2", "fig3", "fig4", "fig5", "fig6", "sel"] {
        group.bench_function(id, |b| {
            b.iter(|| {
                let result = experiments::run(id, Scale::Small).unwrap();
                assert!(result.shape_holds, "{id}: {}", result.observed);
                result
            })
        });
    }
    group.finish();
}

fn bench_heavy_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_heavy");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for id in [
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "abl_mipmap",
        "abl_range",
        "ext_sort",
    ] {
        group.bench_function(id, |b| {
            b.iter(|| {
                let result = experiments::run(id, Scale::Small).unwrap();
                assert!(result.shape_holds, "{id}: {}", result.observed);
                result
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures, bench_heavy_figures);
criterion_main!(benches);
