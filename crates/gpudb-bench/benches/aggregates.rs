//! Criterion microbenchmarks for the aggregation algorithms
//! (Figures 7-10 and §5.11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpudb_bench::harness::Workload;
use gpudb_core::aggregate::{kth_largest, median, sum};
use gpudb_core::predicate::compare_select;
use gpudb_data::selectivity::threshold_for_ge;
use gpudb_sim::CompareFunc;
use std::time::Duration;

fn bench_kth_largest(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_kth_largest");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let n = 32_768;
    let mut w = Workload::tcpip(n).unwrap();
    let values = w.dataset.columns[0].values.clone();
    for k in [1usize, 100, n / 2, n] {
        group.bench_with_input(BenchmarkId::new("gpu_sim", k), &k, |b, &k| {
            b.iter(|| {
                let table = &w.table;
                kth_largest(&mut w.gpu, table, 0, k, None).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("cpu_quickselect", k), &k, |b, &k| {
            b.iter(|| gpudb_cpu::quickselect::kth_largest(&values, k).unwrap())
        });
    }
    group.finish();
}

fn bench_median(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_median");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for n in [8_192usize, 32_768] {
        let mut w = Workload::tcpip(n).unwrap();
        let values = w.dataset.columns[0].values.clone();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("gpu_sim", n), &n, |b, _| {
            b.iter(|| {
                let table = &w.table;
                median(&mut w.gpu, table, 0, None).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("cpu_quickselect", n), &n, |b, _| {
            b.iter(|| gpudb_cpu::quickselect::median(&values).unwrap())
        });
    }
    group.finish();
}

fn bench_masked_median(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_masked_median");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let n = 32_768;
    let mut w = Workload::tcpip(n).unwrap();
    let values = w.dataset.columns[0].values.clone();
    let (threshold, _) = threshold_for_ge(&values, 0.8).unwrap();
    let (selection, _) = {
        let table = &w.table;
        compare_select(&mut w.gpu, table, 0, CompareFunc::GreaterEqual, threshold).unwrap()
    };
    group.bench_function("gpu_sim_80pct", |b| {
        b.iter(|| {
            let table = &w.table;
            median(&mut w.gpu, table, 0, Some(&selection)).unwrap()
        })
    });
    let mask = gpudb_cpu::scan::scan_u32(&values, gpudb_cpu::CmpOp::Ge, threshold);
    group.bench_function("cpu_extract_then_select", |b| {
        b.iter(|| {
            let extracted = gpudb_cpu::aggregate::extract_masked(&values, &mask);
            gpudb_cpu::quickselect::median(&extracted).unwrap()
        })
    });
    group.finish();
}

fn bench_accumulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_accumulator");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for n in [8_192usize, 32_768] {
        let mut w = Workload::tcpip(n).unwrap();
        let values = w.dataset.columns[0].values.clone();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("gpu_sim", n), &n, |b, _| {
            b.iter(|| {
                let table = &w.table;
                sum(&mut w.gpu, table, 0, None).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("cpu_sum", n), &n, |b, _| {
            b.iter(|| gpudb_cpu::aggregate::sum(&values))
        });
    }
    group.finish();
}

fn bench_selectivity_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("sel_count_retrieval");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let n = 32_768;
    let mut w = Workload::tcpip(n).unwrap();
    let values = w.dataset.columns[0].values.clone();
    let (threshold, _) = threshold_for_ge(&values, 0.6).unwrap();
    let (selection, _) = {
        let table = &w.table;
        compare_select(&mut w.gpu, table, 0, CompareFunc::GreaterEqual, threshold).unwrap()
    };
    group.bench_function("standalone_count", |b| {
        b.iter(|| selection.count(&mut w.gpu).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_kth_largest,
    bench_median,
    bench_masked_median,
    bench_accumulator,
    bench_selectivity_count
);
criterion_main!(benches);
