//! Writing span-trace artifacts to disk for the `--trace-out` flags.
//!
//! Every binary that accepts `--trace-out DIR` funnels through
//! [`write_all`], so one experiment always produces the same trio of
//! files: `<id>.trace.json` (Chrome trace-event JSON, loadable in
//! Perfetto / `chrome://tracing`), `<id>.folded` (folded stacks for
//! `flamegraph.pl` / `inferno`), and `<id>.spans.jsonl` (one span per
//! line for ad-hoc analysis). All three are rendered from the modeled
//! clock, so re-running an experiment rewrites byte-identical files.

use gpudb_obs::{chrome, flame, jsonl, SpanTree};
use std::io;
use std::path::{Path, PathBuf};

/// The three artifact paths for one experiment id under `dir`.
pub fn artifact_paths(dir: &Path, id: &str) -> [PathBuf; 3] {
    [
        dir.join(format!("{id}.trace.json")),
        dir.join(format!("{id}.folded")),
        dir.join(format!("{id}.spans.jsonl")),
    ]
}

/// Export `tree` as Chrome trace, folded stacks and JSONL under `dir`
/// (created if missing), returning the three paths written.
pub fn write_all(dir: &Path, id: &str, tree: &SpanTree) -> io::Result<[PathBuf; 3]> {
    std::fs::create_dir_all(dir)?;
    let paths = artifact_paths(dir, id);
    std::fs::write(&paths[0], chrome::trace_json(tree))?;
    std::fs::write(&paths[1], flame::folded(tree))?;
    std::fs::write(&paths[2], jsonl::spans(tree))?;
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smoke;
    use gpudb_obs::TraceLevel;

    #[test]
    fn writes_the_three_artifacts() {
        let dir = std::env::temp_dir().join("gpudb-traceout-test");
        let _ = std::fs::remove_dir_all(&dir);
        let (_, tree) = smoke::run_one_spanned("fig4_range", TraceLevel::Passes).unwrap();
        let paths = write_all(&dir, "fig4_range", &tree).unwrap();
        for path in &paths {
            let text = std::fs::read_to_string(path).unwrap();
            assert!(!text.is_empty(), "{}", path.display());
        }
        assert!(std::fs::read_to_string(&paths[0])
            .unwrap()
            .contains("traceEvents"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
