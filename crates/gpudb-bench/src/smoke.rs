//! Reduced-scale, fixed-seed smoke versions of the paper's figure
//! experiments, for the perf-regression gate.
//!
//! Each smoke experiment runs one operator family over the deterministic
//! TCP/IP workload and produces: the total **modeled** cost (the 2004
//! cost model, a pure function of the input), the per-operator
//! [`MetricsRecord`]s, and an FNV-1a checksum folding every exact result
//! value. Nothing here depends on wall-clock, so two runs of
//! [`run_all`] produce byte-identical [`SmokeReport`]s — CI diffs them
//! against a checked-in baseline (`gpudb-bench/results/baselines/`).

use crate::harness::Workload;
use gpudb_core::cpu_oracle::HostTable;
use gpudb_core::metrics::{ops, MetricsLog, MetricsRecord};
use gpudb_core::query::{execute, Aggregate, BoolExpr, Query};
use gpudb_core::{EngineResult, GpuCnf, GpuDnf, GpuPredicate, GpuTerm};
use gpudb_obs::{SpanCollector, SpanTree, TraceLevel};
use gpudb_sim::span::SpanKind;
use gpudb_sim::trace::{PassPlan, RecordMode};
use gpudb_sim::CompareFunc;
use serde::{Deserialize, Serialize};

/// Record count for smoke workloads — small enough that the whole suite
/// runs in seconds, large enough that costs are not dominated by
/// per-pass constants.
pub const SMOKE_RECORDS: usize = 4_000;

/// Bump when the report layout or experiment set changes incompatibly.
pub const SCHEMA_VERSION: u32 = 1;

/// FNV-1a 64 accumulator for exact result values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Checksum(u64);

impl Checksum {
    /// The FNV-1a offset basis.
    pub fn new() -> Checksum {
        Checksum(0xcbf2_9ce4_8422_2325)
    }

    /// Fold in one 64-bit value (little-endian bytes).
    pub fn push_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Fold in one 32-bit value.
    pub fn push_u32(&mut self, value: u32) {
        self.push_u64(u64::from(value));
    }

    /// Fold in an f64 by its exact bit pattern.
    pub fn push_f64(&mut self, value: f64) {
        self.push_u64(value.to_bits());
    }

    /// Render as a fixed-width hex string (diff-friendly in JSON).
    pub fn hex(&self) -> String {
        format!("{:016x}", self.0)
    }
}

impl Default for Checksum {
    fn default() -> Checksum {
        Checksum::new()
    }
}

/// One smoke experiment's deterministic outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmokeExperiment {
    /// Experiment id, e.g. `fig3_predicate`.
    pub id: String,
    /// Records in the workload.
    pub input_records: u64,
    /// Total modeled cost across the experiment's operations, in ns.
    pub modeled_ns: u64,
    /// FNV-1a 64 over every exact result value, as fixed-width hex.
    pub checksum: String,
    /// Per-operation metrics records, in execution order.
    pub metrics: Vec<MetricsRecord>,
}

/// The full bench-smoke output (`BENCH_smoke.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmokeReport {
    /// Report layout version.
    pub schema_version: u32,
    /// Workload seed.
    pub seed: u64,
    /// Workload record count.
    pub records: u64,
    /// All experiments, in fixed order.
    pub experiments: Vec<SmokeExperiment>,
}

/// Ids of all smoke experiments, in run order.
pub const SMOKE_EXPERIMENTS: [&str; 11] = [
    "fig2_copy",
    "fig3_predicate",
    "fig4_range",
    "fig5_multiattr_cnf",
    "fig6_semilinear",
    "fig7_kth",
    "fig8_median",
    "fig9_kth_selective",
    "fig10_accumulator",
    "query_executor",
    "cnf_fusion_ablation",
];

struct Outcome {
    checksum: Checksum,
    metrics: Vec<MetricsRecord>,
}

impl Outcome {
    fn new() -> Outcome {
        Outcome {
            checksum: Checksum::new(),
            metrics: Vec::new(),
        }
    }

    fn record<T>(&mut self, (value, record): (T, MetricsRecord)) -> T {
        self.metrics.push(record);
        value
    }
}

/// Run every smoke experiment and assemble the report.
pub fn run_all() -> EngineResult<SmokeReport> {
    let mut experiments = Vec::with_capacity(SMOKE_EXPERIMENTS.len());
    for id in SMOKE_EXPERIMENTS {
        experiments.push(run_one(id)?);
    }
    Ok(SmokeReport {
        schema_version: SCHEMA_VERSION,
        seed: crate::harness::SEED,
        records: SMOKE_RECORDS as u64,
        experiments,
    })
}

/// Run a single smoke experiment by id.
pub fn run_one(id: &str) -> EngineResult<SmokeExperiment> {
    Ok(run_inner(id, false, None)?.0)
}

/// Run a single smoke experiment with the device recording every pass
/// plan (bit-passive: the outcome is identical to [`run_one`]'s), and
/// return the plans alongside it — the input to `gpudb-lint`.
pub fn run_one_traced(id: &str) -> EngineResult<(SmokeExperiment, Vec<PassPlan>)> {
    let (experiment, plans, _) = run_inner(id, true, None)?;
    Ok((experiment, plans))
}

/// Run a single smoke experiment with a span sink attached (cost-free:
/// the outcome is identical to [`run_one`]'s) and return the collected
/// span tree — one root span named after the experiment, with the
/// operator spans of every metrics record nested beneath it.
pub fn run_one_spanned(id: &str, level: TraceLevel) -> EngineResult<(SmokeExperiment, SpanTree)> {
    let (experiment, _, tree) = run_inner(id, false, Some(level))?;
    Ok((experiment, tree.unwrap_or_default()))
}

fn run_inner(
    id: &str,
    trace: bool,
    span_level: Option<TraceLevel>,
) -> EngineResult<(SmokeExperiment, Vec<PassPlan>, Option<SpanTree>)> {
    let mut w = Workload::tcpip(SMOKE_RECORDS)?;
    if trace {
        w.gpu.enable_tracing(RecordMode::RecordAndExecute);
    }
    if let Some(level) = span_level {
        w.gpu.attach_span_sink(Box::new(SpanCollector::new(level)));
        // Root the whole experiment so exporters get one stack per run.
        w.gpu.span_begin(SpanKind::Query, id);
    }
    let mut out = Outcome::new();
    match id {
        "fig2_copy" => copy(&mut w, &mut out)?,
        "fig3_predicate" => predicate(&mut w, &mut out)?,
        "fig4_range" => range(&mut w, &mut out)?,
        "fig5_multiattr_cnf" => multiattr(&mut w, &mut out)?,
        "fig6_semilinear" => semilinear(&mut w, &mut out)?,
        "fig7_kth" => kth(&mut w, &mut out)?,
        "fig8_median" => median(&mut w, &mut out)?,
        "fig9_kth_selective" => kth_selective(&mut w, &mut out)?,
        "fig10_accumulator" => accumulator(&mut w, &mut out)?,
        "query_executor" => query_executor(&mut w, &mut out)?,
        "cnf_fusion_ablation" => cnf_fusion_ablation(&mut w, &mut out)?,
        other => {
            return Err(gpudb_core::EngineError::InvalidQuery(format!(
                "unknown smoke experiment {other:?}; known: {SMOKE_EXPERIMENTS:?}"
            )))
        }
    }
    let plans = if trace {
        let plans = w.gpu.take_plans();
        w.gpu.disable_tracing();
        plans
    } else {
        Vec::new()
    };
    let tree = if span_level.is_some() {
        w.gpu.span_end();
        w.gpu
            .take_span_sink()
            .and_then(SpanCollector::recover)
            .map(SpanCollector::finish)
    } else {
        None
    };
    let experiment = SmokeExperiment {
        id: id.to_string(),
        input_records: SMOKE_RECORDS as u64,
        modeled_ns: out
            .metrics
            .iter()
            .map(MetricsRecord::modeled_total_ns)
            .sum(),
        checksum: out.checksum.hex(),
        metrics: out.metrics,
    };
    Ok((experiment, plans, tree))
}

/// Figure 2: `CopyToDepth` of each attribute. The copy has no
/// host-visible result, so the checksum folds the column contents —
/// pinning the data generator as well as the copy cost.
fn copy(w: &mut Workload, out: &mut Outcome) -> EngineResult<()> {
    for column in 0..w.table.column_count() {
        for &v in w.dataset.columns[column].values.iter() {
            out.checksum.push_u32(v);
        }
        out.record(ops::copy_to_depth_op(&mut w.gpu, &w.table, column)?);
    }
    Ok(())
}

/// Figure 3: single-predicate counts at a sweep of constants.
fn predicate(w: &mut Workload, out: &mut Outcome) -> EngineResult<()> {
    let max = (1u32 << 19) - 1;
    for op in [CompareFunc::Less, CompareFunc::GreaterEqual] {
        for tenth in [1u32, 3, 5, 7, 9] {
            let constant = max / 10 * tenth;
            let count = out.record(ops::predicate_count(&mut w.gpu, &w.table, 0, op, constant)?);
            out.checksum.push_u64(count);
        }
    }
    Ok(())
}

/// Figure 4: depth-bounds range counts at several selectivities.
fn range(w: &mut Workload, out: &mut Outcome) -> EngineResult<()> {
    let max = (1u32 << 19) - 1;
    for (lo_tenth, hi_tenth) in [(1u32, 2u32), (2, 5), (1, 8), (4, 6)] {
        let low = max / 10 * lo_tenth;
        let high = max / 10 * hi_tenth;
        let count = out.record(ops::range_count_op(&mut w.gpu, &w.table, 0, low, high)?);
        out.checksum.push_u64(count);
    }
    Ok(())
}

/// Figure 5: conjunctions over 1–4 attributes (CNF), plus a DNF.
fn multiattr(w: &mut Workload, out: &mut Outcome) -> EngineResult<()> {
    let preds = [
        GpuPredicate::new(0, CompareFunc::GreaterEqual, 20_000),
        GpuPredicate::new(1, CompareFunc::Less, 500),
        GpuPredicate::new(2, CompareFunc::Greater, 2_000),
        GpuPredicate::new(3, CompareFunc::LessEqual, 8),
    ];
    for k in 1..=preds.len() {
        let cnf = GpuCnf::all_of(preds[..k].to_vec());
        let count = out.record(ops::cnf_count(&mut w.gpu, &w.table, &cnf)?);
        out.checksum.push_u64(count);
    }
    let dnf = GpuDnf::new(vec![
        GpuTerm::all(vec![preds[0], preds[1]]),
        GpuTerm::single(GpuPredicate::new(2, CompareFunc::Greater, 50_000)),
    ]);
    let count = out.record(ops::dnf_count(&mut w.gpu, &w.table, &dnf)?);
    out.checksum.push_u64(count);
    Ok(())
}

/// Figure 6: semi-linear dot-product queries over all four attributes.
fn semilinear(w: &mut Workload, out: &mut Outcome) -> EngineResult<()> {
    let cases: [(&[f32], CompareFunc, f32); 3] = [
        (&[1.0, -1.0, 0.0, 0.0], CompareFunc::Greater, 10_000.0),
        (&[0.5, 0.0, 1.0, 0.0], CompareFunc::LessEqual, 30_000.0),
        (&[1.0, 1.0, 1.0, 1.0], CompareFunc::GreaterEqual, 60_000.0),
    ];
    for (coefficients, op, constant) in cases {
        let count = out.record(ops::semilinear_count_op(
            &mut w.gpu,
            &w.table,
            coefficients,
            op,
            constant,
        )?);
        out.checksum.push_u64(count);
    }
    Ok(())
}

/// Figure 7: k-th largest at a sweep of k.
fn kth(w: &mut Workload, out: &mut Outcome) -> EngineResult<()> {
    for k in [1usize, 10, 100, SMOKE_RECORDS / 2] {
        let value = out.record(ops::kth_largest_op(&mut w.gpu, &w.table, 0, k, None)?);
        out.checksum.push_u32(value);
    }
    Ok(())
}

/// Figure 8: median of every attribute.
fn median(w: &mut Workload, out: &mut Outcome) -> EngineResult<()> {
    for column in 0..w.table.column_count() {
        let value = out.record(ops::median_op(&mut w.gpu, &w.table, column, None)?);
        out.checksum.push_u32(value);
    }
    Ok(())
}

/// Figure 9: k-th largest within a range selection.
fn kth_selective(w: &mut Workload, out: &mut Outcome) -> EngineResult<()> {
    let max = (1u32 << 19) - 1;
    let (sel_result, sel_record) = gpudb_core::metrics::observe(
        &mut w.gpu,
        "range/range_select",
        SMOKE_RECORDS as u64,
        |gpu| gpudb_core::range::range_select(gpu, &w.table, 0, max / 10, max / 2),
    );
    let (selection, matched) = sel_result?;
    out.metrics.push(sel_record);
    out.checksum.push_u64(matched);
    for k in [1usize, 25] {
        let value = out.record(ops::kth_largest_op(
            &mut w.gpu,
            &w.table,
            0,
            k,
            Some(&selection),
        )?);
        out.checksum.push_u32(value);
    }
    Ok(())
}

/// Figure 10: bitwise-accumulator SUM and AVG.
fn accumulator(w: &mut Workload, out: &mut Outcome) -> EngineResult<()> {
    for column in [0usize, 2] {
        let sum = out.record(ops::accumulator_sum(&mut w.gpu, &w.table, column, None)?);
        out.checksum.push_u64(sum);
    }
    Ok(())
}

/// End-to-end planner + executor over a filtered multi-aggregate query.
fn query_executor(w: &mut Workload, out: &mut Outcome) -> EngineResult<()> {
    let query = Query::filtered(
        vec![
            Aggregate::Count,
            Aggregate::Sum("data_count".into()),
            Aggregate::Max("flow_rate".into()),
            Aggregate::Median("data_count".into()),
        ],
        BoolExpr::Between {
            column: "data_count".into(),
            low: 10_000,
            high: 400_000,
        },
    );
    let result = execute(&mut w.gpu, &w.table, &query)?;
    checksum_result(&mut out.checksum, result.matched, &result.rows);
    out.metrics.extend(result.metrics);
    Ok(())
}

/// Fusion ablation: a four-clause conjunction whose first two clauses
/// share an attribute, evaluated with the paper's literal protocol and
/// with pass fusion. Both counts fold into the checksum (they must be
/// equal — fusion only removes passes), and the two metrics records put
/// the modeled saving on the baseline, so a regression in the optimizer
/// shows up in the gate like any other cost change.
fn cnf_fusion_ablation(w: &mut Workload, out: &mut Outcome) -> EngineResult<()> {
    let cnf = GpuCnf::all_of(vec![
        GpuPredicate::new(0, CompareFunc::GreaterEqual, 20_000),
        GpuPredicate::new(0, CompareFunc::Less, 400_000),
        GpuPredicate::new(1, CompareFunc::Less, 500),
        GpuPredicate::new(2, CompareFunc::Greater, 2_000),
    ]);
    let (unfused_result, unfused_record) = gpudb_core::metrics::observe(
        &mut w.gpu,
        "boolean/eval_cnf_unfused",
        SMOKE_RECORDS as u64,
        |gpu| gpudb_core::boolean::eval_cnf_select_unfused(gpu, &w.table, &cnf).map(|(_, c)| c),
    );
    let unfused = unfused_result?;
    out.metrics.push(unfused_record);
    out.checksum.push_u64(unfused);
    let fused = out.record(ops::cnf_count(&mut w.gpu, &w.table, &cnf)?);
    out.checksum.push_u64(fused);
    Ok(())
}

/// Ids of the sharded smoke queries, in run order — one query per
/// operator family the sharded merge algebra has to get right.
pub const SHARD_QUERIES: [&str; 5] = [
    "shard_predicate",
    "shard_range",
    "shard_cnf",
    "shard_order_stats",
    "shard_accumulator",
];

/// The smoke workload as a host-resident table, the input shape the
/// sharded executor partitions.
pub fn smoke_host_table() -> EngineResult<HostTable> {
    let dataset = gpudb_data::tcpip::generate(SMOKE_RECORDS, crate::harness::SEED);
    let columns: Vec<(String, Vec<u32>)> = dataset
        .columns
        .into_iter()
        .map(|c| (c.name, c.values))
        .collect();
    HostTable::new(dataset.name, columns)
}

/// The query behind one sharded smoke id.
fn shard_query(id: &str) -> EngineResult<Query> {
    let max = (1u32 << 19) - 1;
    Ok(match id {
        "shard_predicate" => Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::pred("data_count", CompareFunc::Greater, max / 2),
        ),
        "shard_range" => Query::filtered(
            vec![Aggregate::Count, Aggregate::Sum("data_count".into())],
            BoolExpr::Between {
                column: "data_count".into(),
                low: 10_000,
                high: 400_000,
            },
        ),
        "shard_cnf" => Query::filtered(
            vec![Aggregate::Count, Aggregate::Max("flow_rate".into())],
            BoolExpr::pred("data_loss", CompareFunc::Less, 500)
                .or(BoolExpr::pred(
                    "retransmissions",
                    CompareFunc::GreaterEqual,
                    8,
                ))
                .and(BoolExpr::pred("data_count", CompareFunc::NotEqual, 77)),
        ),
        "shard_order_stats" => Query::filtered(
            vec![
                Aggregate::Median("data_count".into()),
                Aggregate::KthLargest("flow_rate".into(), 25),
            ],
            BoolExpr::pred("data_loss", CompareFunc::Less, 400),
        ),
        "shard_accumulator" => Query::filtered(
            vec![
                Aggregate::Sum("data_count".into()),
                Aggregate::Avg("flow_rate".into()),
                Aggregate::Min("data_loss".into()),
            ],
            BoolExpr::pred("retransmissions", CompareFunc::GreaterEqual, 4),
        ),
        other => {
            return Err(gpudb_core::EngineError::InvalidQuery(format!(
                "unknown sharded smoke query {other:?}; known: {SHARD_QUERIES:?}"
            )))
        }
    })
}

/// Fold a query result (matched count + aggregate rows) into `checksum`
/// exactly as [`query_executor`] does, so sharded and single-device
/// checksums are comparable folds of the same values.
fn checksum_result(
    checksum: &mut Checksum,
    matched: u64,
    rows: &[(String, gpudb_core::query::AggValue)],
) {
    checksum.push_u64(matched);
    for (label, value) in rows {
        for b in label.bytes() {
            checksum.push_u64(u64::from(b));
        }
        match value {
            gpudb_core::query::AggValue::Count(v) | gpudb_core::query::AggValue::Sum(v) => {
                checksum.push_u64(*v)
            }
            gpudb_core::query::AggValue::Avg(v) => checksum.push_f64(*v),
            gpudb_core::query::AggValue::Value(v) => checksum.push_u32(*v),
        }
    }
}

/// Run every sharded smoke query at `shards` devices and return the
/// report plus (when `trace` is set) the merged per-query span trees —
/// each with one `shard-i` stage per device.
///
/// The checksum folds the matched count, every aggregate row, and the
/// full concatenated selection mask, so it is invariant across shard
/// counts exactly when the sharded executor merges exactly. The
/// `shard-matrix` CI job diffs these checksums byte-for-byte between
/// `--shards` counts.
pub fn run_sharded(
    shards: usize,
    trace: bool,
) -> EngineResult<(SmokeReport, Vec<(String, SpanTree)>)> {
    let host = smoke_host_table()?;
    let opts = gpudb_core::parallel::ShardOptions {
        shards,
        options: gpudb_core::query::ExecuteOptions {
            trace: trace.then_some(TraceLevel::Passes),
            ..gpudb_core::query::ExecuteOptions::default()
        },
        ..gpudb_core::parallel::ShardOptions::default()
    };
    let mut experiments = Vec::with_capacity(SHARD_QUERIES.len());
    let mut trees = Vec::new();
    for id in SHARD_QUERIES {
        let query = shard_query(id)?;
        let out = gpudb_core::parallel::execute_sharded(&host, &query, &opts)?;
        let mut checksum = Checksum::new();
        checksum_result(&mut checksum, out.output.matched, &out.output.rows);
        for &selected in &out.mask {
            checksum.push_u64(u64::from(selected));
        }
        if let Some(tree) = out.output.trace.clone() {
            trees.push((id.to_string(), tree));
        }
        experiments.push(SmokeExperiment {
            id: id.to_string(),
            input_records: SMOKE_RECORDS as u64,
            modeled_ns: out.report.merged_ns,
            checksum: checksum.hex(),
            metrics: out.output.metrics,
        });
    }
    Ok((
        SmokeReport {
            schema_version: SCHEMA_VERSION,
            seed: crate::harness::SEED,
            records: SMOKE_RECORDS as u64,
            experiments,
        },
        trees,
    ))
}

/// Render the one-line-per-experiment summary table, with the delta
/// against an optional baseline report.
pub fn summary_table(report: &SmokeReport, baseline: Option<&SmokeReport>) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>12} {:>12} {:>10}  checksum",
        "experiment", "modeled ms", "Δ vs base", "ops"
    );
    for exp in &report.experiments {
        let ms = exp.modeled_ns as f64 / 1e6;
        let base = baseline.and_then(|b| b.experiments.iter().find(|e| e.id == exp.id));
        let delta = match base {
            Some(b) if b.modeled_ns > 0 => {
                let pct = (exp.modeled_ns as f64 / b.modeled_ns as f64 - 1.0) * 100.0;
                format!("{pct:+.2}%")
            }
            _ => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<22} {:>12.3} {:>12} {:>10}  {}",
            exp.id,
            ms,
            delta,
            exp.metrics.len(),
            exp.checksum
        );
    }
    out.push('\n');
    out.push_str(&operator_rollup(report));
    out
}

/// Render the per-operator rollup across every experiment's metrics,
/// merged by [`MetricsLog::by_operator`] (stable first-appearance order).
pub fn operator_rollup(report: &SmokeReport) -> String {
    use std::fmt::Write;
    let mut log = MetricsLog::new();
    for exp in &report.experiments {
        for record in &exp.metrics {
            log.push(record.clone());
        }
    }
    let total_ns = log.modeled_total_ns().max(1);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>6} {:>14} {:>12} {:>8}",
        "operator", "calls", "input records", "modeled ms", "% total"
    );
    for summary in log.by_operator() {
        let _ = writeln!(
            out,
            "{:<28} {:>6} {:>14} {:>12.3} {:>7.1}%",
            summary.operator,
            summary.invocations,
            summary.input_records,
            summary.modeled_ns.total() as f64 / 1e6,
            summary.modeled_ns.total() as f64 / total_ns as f64 * 100.0,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_order_sensitive_and_stable() {
        let mut a = Checksum::new();
        a.push_u64(1);
        a.push_u64(2);
        let mut b = Checksum::new();
        b.push_u64(2);
        b.push_u64(1);
        assert_ne!(a.hex(), b.hex());
        assert_eq!(a.hex().len(), 16);

        let mut c = Checksum::new();
        c.push_u64(1);
        c.push_u64(2);
        assert_eq!(a.hex(), c.hex());
    }

    #[test]
    fn single_experiment_is_deterministic() {
        let a = run_one("fig4_range").unwrap();
        let b = run_one("fig4_range").unwrap();
        assert_eq!(a, b);
        assert!(a.modeled_ns > 0);
        assert!(!a.metrics.is_empty());
        let json_a = serde_json::to_string_pretty(&a).unwrap();
        let json_b = serde_json::to_string_pretty(&b).unwrap();
        assert_eq!(json_a, json_b);
    }

    #[test]
    fn unknown_experiment_rejected() {
        assert!(run_one("nope").is_err());
    }

    #[test]
    fn traced_run_is_bit_identical_and_captures_plans() {
        let (traced, plans) = run_one_traced("fig4_range").unwrap();
        let plain = run_one("fig4_range").unwrap();
        // Recording must not perturb results, metrics or modeled cost.
        assert_eq!(traced, plain);
        assert!(!plans.is_empty());
        assert!(plans.iter().any(|p| p.draw_count() > 0));
        // Plans carry the operator labels the metrics hook assigns.
        assert!(
            plans.iter().any(|p| p.label.starts_with("range/")),
            "{:?}",
            plans.iter().map(|p| &p.label).collect::<Vec<_>>()
        );
    }

    #[test]
    fn spanned_run_is_bit_identical_and_collects_spans() {
        let (spanned, tree) = run_one_spanned("fig4_range", TraceLevel::Passes).unwrap();
        let plain = run_one("fig4_range").unwrap();
        // The span sink must not perturb results, metrics or modeled cost.
        assert_eq!(spanned, plain);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].name, "fig4_range");
        // One operator span per metrics record, in order.
        let ops = tree.spans_of_kind(SpanKind::Operator);
        assert_eq!(ops.len(), plain.metrics.len());
        for (span, record) in ops.iter().zip(&plain.metrics) {
            assert_eq!(span.name, record.operator);
        }
        // Two spanned runs export byte-identical traces.
        let (_, tree2) = run_one_spanned("fig4_range", TraceLevel::Passes).unwrap();
        assert_eq!(
            gpudb_obs::chrome::trace_json(&tree),
            gpudb_obs::chrome::trace_json(&tree2)
        );
    }

    #[test]
    fn sharded_checksums_are_shard_count_invariant() {
        let (one, _) = run_sharded(1, false).unwrap();
        let (three, trees) = run_sharded(3, false).unwrap();
        assert!(trees.is_empty(), "untraced run must not collect spans");
        let ck = |r: &SmokeReport| {
            r.experiments
                .iter()
                .map(|e| (e.id.clone(), e.checksum.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(ck(&one), ck(&three));
        assert_eq!(one.experiments.len(), SHARD_QUERIES.len());
        assert!(one.experiments.iter().all(|e| e.modeled_ns > 0));
    }

    #[test]
    fn sharded_trace_collects_one_tree_per_query() {
        let (_, trees) = run_sharded(2, true).unwrap();
        assert_eq!(trees.len(), SHARD_QUERIES.len());
        for (id, tree) in &trees {
            // Each merged tree holds one stage per shard device.
            let stages = tree.spans_of_kind(SpanKind::Stage);
            assert!(
                stages.iter().any(|s| s.name == "shard-0")
                    && stages.iter().any(|s| s.name == "shard-1"),
                "{id}: missing shard stages in {:?}",
                stages.iter().map(|s| &s.name).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn operator_rollup_merges_across_experiments() {
        let report = SmokeReport {
            schema_version: SCHEMA_VERSION,
            seed: 1,
            records: 10,
            experiments: vec![run_one("fig4_range").unwrap()],
        };
        let text = operator_rollup(&report);
        assert!(text.contains("operator"), "{text}");
        assert!(text.contains("range/"), "{text}");
        assert!(text.contains("% total"), "{text}");
    }

    #[test]
    fn summary_table_lists_every_experiment() {
        let report = SmokeReport {
            schema_version: SCHEMA_VERSION,
            seed: 1,
            records: 10,
            experiments: vec![SmokeExperiment {
                id: "fig3_predicate".into(),
                input_records: 10,
                modeled_ns: 2_000_000,
                checksum: "00ff".into(),
                metrics: vec![],
            }],
        };
        let mut base = report.clone();
        base.experiments[0].modeled_ns = 1_000_000;
        let text = summary_table(&report, Some(&base));
        assert!(text.contains("fig3_predicate"));
        assert!(text.contains("+100.00%"));
        assert!(text.contains("2.000"));
        let text = summary_table(&report, None);
        assert!(text.contains('-'));
    }
}
