//! Result containers and text/JSON rendering for figure reproductions.

use serde::{Deserialize, Serialize};

/// Experiment scale: `Small` keeps the software simulator fast for CI and
/// benches; `Paper` uses the paper's record counts (1M TCP/IP records).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Up to ~100 K records.
    Small,
    /// The paper's sizes (up to 1 M records).
    Paper,
}

impl Scale {
    /// Record-count sweep used by the per-size figures.
    pub fn sweep(self) -> Vec<usize> {
        match self {
            Scale::Small => vec![10_000, 25_000, 50_000, 100_000],
            Scale::Paper => vec![200_000, 400_000, 600_000, 800_000, 1_000_000],
        }
    }

    /// The largest sweep size.
    pub fn max_records(self) -> usize {
        *self.sweep().last().expect("sweep is non-empty")
    }

    /// Record count for the k-th-largest figure (the paper uses "a portion
    /// of the TCP/IP database with nearly 250K records").
    pub fn kth_records(self) -> usize {
        match self {
            Scale::Small => 50_000,
            Scale::Paper => 250_000,
        }
    }
}

/// One plotted line: `(x, milliseconds)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points, x in the figure's native unit.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Construct a series.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y_ms: f64) {
        self.points.push((x, y_ms));
    }

    /// y value at the largest x.
    pub fn last_y(&self) -> f64 {
        self.points.last().map_or(f64::NAN, |&(_, y)| y)
    }
}

/// A reproduced figure (or table/claim) from the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureResult {
    /// Identifier, e.g. `fig3`.
    pub id: String,
    /// Title matching the paper's caption.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The plotted series.
    pub series: Vec<Series>,
    /// What the paper reports.
    pub paper_claim: String,
    /// The factor/shape this reproduction observes.
    pub observed: String,
    /// Whether the observed shape matches the paper's claim.
    pub shape_holds: bool,
}

impl FigureResult {
    /// Find a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render as an aligned text table.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let _ = writeln!(out, "paper:    {}", self.paper_claim);
        let _ = writeln!(out, "observed: {}", self.observed);
        let _ = writeln!(
            out,
            "shape:    {}",
            if self.shape_holds {
                "HOLDS"
            } else {
                "DIVERGES"
            }
        );

        // Collect the x values (assume shared across series; pad otherwise).
        let xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .fold(Vec::new(), |mut acc, x| {
                if !acc.iter().any(|&v: &f64| (v - x).abs() < 1e-9) {
                    acc.push(x);
                }
                acc
            });

        let _ = write!(out, "{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(out, " | {:>26}", truncate(&s.label, 26));
        }
        let _ = writeln!(out);
        for &x in &xs {
            let _ = write!(out, "{x:>12.0}");
            for s in &self.series {
                match s.points.iter().find(|&&(px, _)| (px - x).abs() < 1e-9) {
                    Some(&(_, y)) => {
                        let _ = write!(out, " | {y:>23.3} ms");
                    }
                    None => {
                        let _ = write!(out, " | {:>26}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> &str {
    if s.len() <= n {
        s
    } else {
        &s[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_sweeps() {
        assert_eq!(Scale::Small.max_records(), 100_000);
        assert_eq!(Scale::Paper.max_records(), 1_000_000);
        assert_eq!(Scale::Paper.kth_records(), 250_000);
        assert!(!Scale::Small.sweep().is_empty());
    }

    #[test]
    fn series_accessors() {
        let mut s = Series::new("gpu");
        s.push(1000.0, 0.5);
        s.push(2000.0, 1.0);
        assert_eq!(s.last_y(), 1.0);
    }

    #[test]
    fn render_text_contains_everything() {
        let mut gpu = Series::new("GPU total");
        gpu.push(1000.0, 1.5);
        let mut cpu = Series::new("CPU");
        cpu.push(1000.0, 4.5);
        let fig = FigureResult {
            id: "fig3".into(),
            title: "predicate".into(),
            x_label: "records".into(),
            y_label: "ms".into(),
            series: vec![gpu, cpu],
            paper_claim: "3x".into(),
            observed: "3.0x".into(),
            shape_holds: true,
        };
        let text = fig.render_text();
        assert!(text.contains("fig3"));
        assert!(text.contains("GPU total"));
        assert!(text.contains("HOLDS"));
        assert!(text.contains("1.500 ms"));
        assert!(fig.series("CPU").is_some());
        assert!(fig.series("nope").is_none());
    }
}
