//! Benchmark harness reproducing every figure of the paper's evaluation
//! (§5, Figures 2–10) plus the §5.11 selectivity-analysis claim and three
//! ablations.
//!
//! Each experiment returns a [`report::FigureResult`]: the data series the
//! paper plots, the paper's claim, and the factor we reproduce. Timings on
//! the GPU side are the calibrated 2004 cost model of `gpudb-sim`
//! (wall-clock of a software simulator is not the paper's claim); CPU-side
//! timings come from the matching Xeon-2004 model in `gpudb-cpu`, with the
//! baselines also executed for real to verify every result value.

pub mod experiments;
pub mod harness;
pub mod regress;
pub mod report;
pub mod smoke;
pub mod traceout;

pub use report::{FigureResult, Scale, Series};
pub use smoke::{SmokeExperiment, SmokeReport};
