//! Baseline comparison for the perf-regression gate.
//!
//! Compares a freshly produced [`SmokeReport`] against the checked-in
//! baseline and reports every discrepancy:
//!
//! * **checksum changes are always fatal** — the operators' exact results
//!   moved, which is a correctness change, never noise;
//! * **modeled-cost regressions** beyond the relative tolerance fail the
//!   gate (the modeled cost is deterministic, so the tolerance only
//!   absorbs intentional small cost-model adjustments, not jitter);
//! * missing/new experiments and schema drift are flagged so baselines
//!   can't silently rot.
//!
//! Cost *improvements* beyond tolerance are reported as notes, not
//! failures — but should be blessed into the baseline so the gate keeps
//! a tight bound.

use crate::smoke::{SmokeExperiment, SmokeReport};
use serde::{Deserialize, Serialize};

/// Default relative tolerance on modeled cost (0.02 = 2 %).
pub const DEFAULT_TOLERANCE: f64 = 0.02;

/// One discrepancy between the current report and the baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Issue {
    /// Schema versions differ; the comparison is not meaningful.
    SchemaMismatch {
        /// Baseline schema version.
        baseline: u32,
        /// Current schema version.
        current: u32,
    },
    /// The workload (seed or record count) differs from the baseline's.
    WorkloadMismatch {
        /// Description of what differs.
        detail: String,
    },
    /// An experiment exists in the baseline but was not run.
    MissingExperiment {
        /// Experiment id.
        id: String,
    },
    /// An experiment was run but has no baseline entry yet.
    NewExperiment {
        /// Experiment id.
        id: String,
    },
    /// Modeled cost grew beyond tolerance.
    CostRegression {
        /// Experiment id.
        id: String,
        /// Baseline modeled cost, ns.
        baseline_ns: u64,
        /// Current modeled cost, ns.
        current_ns: u64,
        /// Relative growth (`current/baseline - 1`).
        ratio: f64,
    },
    /// Modeled cost shrank beyond tolerance (informational).
    CostImprovement {
        /// Experiment id.
        id: String,
        /// Baseline modeled cost, ns.
        baseline_ns: u64,
        /// Current modeled cost, ns.
        current_ns: u64,
        /// Relative change (`current/baseline - 1`, negative).
        ratio: f64,
    },
    /// The exact-result checksum changed.
    ChecksumMismatch {
        /// Experiment id.
        id: String,
        /// Baseline checksum.
        baseline: String,
        /// Current checksum.
        current: String,
    },
}

impl Issue {
    /// Whether this issue fails the gate (vs. informational).
    pub fn is_fatal(&self) -> bool {
        !matches!(self, Issue::CostImprovement { .. })
    }

    /// One-line human-readable description.
    pub fn describe(&self) -> String {
        match self {
            Issue::SchemaMismatch { baseline, current } => format!(
                "schema mismatch: baseline v{baseline}, current v{current} — regenerate the \
                 baseline with --bless"
            ),
            Issue::WorkloadMismatch { detail } => format!("workload mismatch: {detail}"),
            Issue::MissingExperiment { id } => {
                format!("{id}: in baseline but not in this run")
            }
            Issue::NewExperiment { id } => {
                format!("{id}: no baseline entry — add one with --bless")
            }
            Issue::CostRegression {
                id,
                baseline_ns,
                current_ns,
                ratio,
            } => format!(
                "{id}: modeled cost regressed {:+.2}% ({:.3} ms -> {:.3} ms)",
                ratio * 100.0,
                *baseline_ns as f64 / 1e6,
                *current_ns as f64 / 1e6
            ),
            Issue::CostImprovement {
                id,
                baseline_ns,
                current_ns,
                ratio,
            } => format!(
                "{id}: modeled cost improved {:+.2}% ({:.3} ms -> {:.3} ms) — consider \
                 re-blessing the baseline",
                ratio * 100.0,
                *baseline_ns as f64 / 1e6,
                *current_ns as f64 / 1e6
            ),
            Issue::ChecksumMismatch {
                id,
                baseline,
                current,
            } => format!(
                "{id}: result checksum changed ({baseline} -> {current}) — operator results \
                 are different, this is a correctness change"
            ),
        }
    }
}

/// Outcome of a baseline comparison.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Comparison {
    /// Every discrepancy found, in report order.
    pub issues: Vec<Issue>,
}

impl Comparison {
    /// Whether the gate passes (no fatal issues).
    pub fn passed(&self) -> bool {
        !self.issues.iter().any(Issue::is_fatal)
    }

    /// The fatal issues only.
    pub fn fatal(&self) -> Vec<&Issue> {
        self.issues.iter().filter(|i| i.is_fatal()).collect()
    }

    /// Multi-line report of every issue (empty string when clean).
    pub fn render(&self) -> String {
        self.issues
            .iter()
            .map(|i| {
                let tag = if i.is_fatal() { "FAIL" } else { "note" };
                format!("{tag}: {}", i.describe())
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

fn compare_experiment(
    baseline: &SmokeExperiment,
    current: &SmokeExperiment,
    tolerance: f64,
    issues: &mut Vec<Issue>,
) {
    if baseline.checksum != current.checksum {
        issues.push(Issue::ChecksumMismatch {
            id: current.id.clone(),
            baseline: baseline.checksum.clone(),
            current: current.checksum.clone(),
        });
    }
    if baseline.modeled_ns == 0 {
        // Degenerate baseline: any nonzero cost counts as a regression.
        if current.modeled_ns > 0 {
            issues.push(Issue::CostRegression {
                id: current.id.clone(),
                baseline_ns: 0,
                current_ns: current.modeled_ns,
                ratio: f64::INFINITY,
            });
        }
        return;
    }
    // The bound is inclusive (growth of exactly `tolerance` fails), but
    // only actual movement counts: equal costs always pass, even at
    // tolerance zero.
    let ratio = current.modeled_ns as f64 / baseline.modeled_ns as f64 - 1.0;
    if current.modeled_ns > baseline.modeled_ns && ratio >= tolerance {
        issues.push(Issue::CostRegression {
            id: current.id.clone(),
            baseline_ns: baseline.modeled_ns,
            current_ns: current.modeled_ns,
            ratio,
        });
    } else if current.modeled_ns < baseline.modeled_ns && ratio <= -tolerance {
        issues.push(Issue::CostImprovement {
            id: current.id.clone(),
            baseline_ns: baseline.modeled_ns,
            current_ns: current.modeled_ns,
            ratio,
        });
    }
}

/// Compare `current` against `baseline` with the given relative cost
/// tolerance.
pub fn compare(baseline: &SmokeReport, current: &SmokeReport, tolerance: f64) -> Comparison {
    assert!(
        tolerance >= 0.0 && tolerance.is_finite(),
        "tolerance must be a finite non-negative fraction, got {tolerance}"
    );
    let mut issues = Vec::new();
    if baseline.schema_version != current.schema_version {
        issues.push(Issue::SchemaMismatch {
            baseline: baseline.schema_version,
            current: current.schema_version,
        });
        return Comparison { issues };
    }
    if baseline.seed != current.seed || baseline.records != current.records {
        issues.push(Issue::WorkloadMismatch {
            detail: format!(
                "baseline seed {}/records {}, current seed {}/records {}",
                baseline.seed, baseline.records, current.seed, current.records
            ),
        });
        return Comparison { issues };
    }
    for base_exp in &baseline.experiments {
        match current.experiments.iter().find(|e| e.id == base_exp.id) {
            Some(cur_exp) => compare_experiment(base_exp, cur_exp, tolerance, &mut issues),
            None => issues.push(Issue::MissingExperiment {
                id: base_exp.id.clone(),
            }),
        }
    }
    for cur_exp in &current.experiments {
        if !baseline.experiments.iter().any(|e| e.id == cur_exp.id) {
            issues.push(Issue::NewExperiment {
                id: cur_exp.id.clone(),
            });
        }
    }
    Comparison { issues }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smoke::SCHEMA_VERSION;

    fn experiment(id: &str, modeled_ns: u64, checksum: &str) -> SmokeExperiment {
        SmokeExperiment {
            id: id.into(),
            input_records: 100,
            modeled_ns,
            checksum: checksum.into(),
            metrics: vec![],
        }
    }

    fn report(experiments: Vec<SmokeExperiment>) -> SmokeReport {
        SmokeReport {
            schema_version: SCHEMA_VERSION,
            seed: 7,
            records: 100,
            experiments,
        }
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(vec![
            experiment("a", 1_000_000, "aa"),
            experiment("b", 5, "bb"),
        ]);
        let cmp = compare(&r, &r.clone(), DEFAULT_TOLERANCE);
        assert!(cmp.passed());
        assert!(cmp.issues.is_empty());
        assert_eq!(cmp.render(), "");
    }

    #[test]
    fn regression_just_under_tolerance_passes() {
        let base = report(vec![experiment("a", 1_000_000, "aa")]);
        // +1.9999% with 2% tolerance: passes.
        let cur = report(vec![experiment("a", 1_019_999, "aa")]);
        assert!(compare(&base, &cur, 0.02).passed());
    }

    #[test]
    fn regression_at_tolerance_fails() {
        let base = report(vec![experiment("a", 1_000_000, "aa")]);
        // Exactly +2% with 2% tolerance: the bound is inclusive, fails.
        let cur = report(vec![experiment("a", 1_020_000, "aa")]);
        let cmp = compare(&base, &cur, 0.02);
        assert!(!cmp.passed());
        assert!(matches!(cmp.issues[0], Issue::CostRegression { .. }));
        assert!(cmp.render().contains("regressed"));
    }

    #[test]
    fn zero_tolerance_fails_any_growth() {
        let base = report(vec![experiment("a", 1_000_000, "aa")]);
        let cur = report(vec![experiment("a", 1_000_001, "aa")]);
        assert!(!compare(&base, &cur, 0.0).passed());
        assert!(compare(&base, &base.clone(), 0.0).passed());
    }

    #[test]
    fn improvement_is_note_not_failure() {
        let base = report(vec![experiment("a", 1_000_000, "aa")]);
        let cur = report(vec![experiment("a", 500_000, "aa")]);
        let cmp = compare(&base, &cur, 0.02);
        assert!(cmp.passed());
        assert_eq!(cmp.issues.len(), 1);
        assert!(matches!(cmp.issues[0], Issue::CostImprovement { .. }));
        assert!(cmp.fatal().is_empty());
        assert!(cmp.render().contains("note"));
    }

    #[test]
    fn checksum_change_always_fails_even_when_faster() {
        let base = report(vec![experiment("a", 1_000_000, "aa")]);
        let cur = report(vec![experiment("a", 900_000, "XX")]);
        let cmp = compare(&base, &cur, 0.5);
        assert!(!cmp.passed());
        assert!(cmp
            .issues
            .iter()
            .any(|i| matches!(i, Issue::ChecksumMismatch { .. })));
        assert!(cmp.render().contains("correctness"));
    }

    #[test]
    fn missing_and_new_experiments_flagged() {
        let base = report(vec![experiment("a", 10, "aa"), experiment("b", 10, "bb")]);
        let cur = report(vec![experiment("b", 10, "bb"), experiment("c", 10, "cc")]);
        let cmp = compare(&base, &cur, DEFAULT_TOLERANCE);
        assert!(!cmp.passed());
        assert!(cmp
            .issues
            .iter()
            .any(|i| matches!(i, Issue::MissingExperiment { id } if id == "a")));
        assert!(cmp
            .issues
            .iter()
            .any(|i| matches!(i, Issue::NewExperiment { id } if id == "c")));
    }

    #[test]
    fn schema_and_workload_mismatch_short_circuit() {
        let base = report(vec![experiment("a", 10, "aa")]);
        let mut cur = base.clone();
        cur.schema_version += 1;
        let cmp = compare(&base, &cur, DEFAULT_TOLERANCE);
        assert_eq!(cmp.issues.len(), 1);
        assert!(matches!(cmp.issues[0], Issue::SchemaMismatch { .. }));

        let mut cur = base.clone();
        cur.seed = 8;
        let cmp = compare(&base, &cur, DEFAULT_TOLERANCE);
        assert_eq!(cmp.issues.len(), 1);
        assert!(matches!(cmp.issues[0], Issue::WorkloadMismatch { .. }));
        assert!(!cmp.passed());
    }

    #[test]
    fn zero_baseline_cost_regresses_on_any_cost() {
        let base = report(vec![experiment("a", 0, "aa")]);
        let cur = report(vec![experiment("a", 1, "aa")]);
        assert!(!compare(&base, &cur, DEFAULT_TOLERANCE).passed());
        let cur = report(vec![experiment("a", 0, "aa")]);
        assert!(compare(&base, &cur, DEFAULT_TOLERANCE).passed());
    }
}
