//! Shared experiment plumbing: workload setup and timing helpers.

use gpudb_core::table::GpuTable;
use gpudb_core::timing::{measure, OpTiming};
use gpudb_core::EngineResult;
use gpudb_cpu::CpuCostModel;
use gpudb_data::{tcpip, Dataset};
use gpudb_sim::Gpu;

/// Grid width used for experiment tables (the paper's layout is
/// 1000-wide).
pub const GRID_WIDTH: usize = 1000;

/// Deterministic seed for every experiment workload.
pub const SEED: u64 = 20040613; // SIGMOD 2004, June 13

/// A workload instance: dataset + device + uploaded table.
pub struct Workload {
    /// The generated dataset (host copy for CPU baselines).
    pub dataset: Dataset,
    /// The simulated device.
    pub gpu: Gpu,
    /// The uploaded table.
    pub table: GpuTable,
}

impl Workload {
    /// Generate the TCP/IP trace at `records` and upload it.
    pub fn tcpip(records: usize) -> EngineResult<Workload> {
        let dataset = tcpip::generate(records, SEED);
        Workload::from_dataset(dataset)
    }

    /// Upload an existing dataset.
    pub fn from_dataset(dataset: Dataset) -> EngineResult<Workload> {
        let mut gpu = GpuTable::device_for(dataset.record_count(), GRID_WIDTH);
        let cols: Vec<(&str, &[u32])> = dataset
            .columns
            .iter()
            .map(|c| (c.name.as_str(), c.values.as_slice()))
            .collect();
        let table = GpuTable::upload(&mut gpu, dataset.name.clone(), &cols)?;
        Ok(Workload {
            dataset,
            gpu,
            table,
        })
    }

    /// Column slices for CPU baselines.
    pub fn columns(&self) -> Vec<&[u32]> {
        self.dataset.column_slices()
    }

    /// Run a GPU op and return its value and modeled timing.
    pub fn time<T>(&mut self, op: impl FnOnce(&mut Gpu, &GpuTable) -> T) -> (T, OpTiming) {
        let table = &self.table;
        measure(&mut self.gpu, |gpu| op(gpu, table))
    }
}

/// Wall-clock a CPU closure (median of `runs` runs), in seconds.
pub fn wall_seconds<T>(runs: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    assert!(runs >= 1);
    let mut times = Vec::with_capacity(runs);
    let mut result = None;
    for _ in 0..runs {
        let start = std::time::Instant::now();
        let value = f();
        times.push(start.elapsed().as_secs_f64());
        result = Some(value);
    }
    times.sort_by(f64::total_cmp);
    (result.expect("runs >= 1"), times[times.len() / 2])
}

/// The 2004 Xeon model shared by all experiments.
pub fn cpu_model() -> CpuCostModel {
    CpuCostModel::xeon_2004()
}

/// Format a speedup factor for `observed` strings.
pub fn speedup(cpu_s: f64, gpu_s: f64) -> f64 {
    cpu_s / gpu_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_setup() {
        let w = Workload::tcpip(5000).unwrap();
        assert_eq!(w.table.record_count(), 5000);
        assert_eq!(w.columns().len(), 4);
        assert_eq!(w.dataset.record_count(), 5000);
    }

    #[test]
    fn time_reports_modeled_seconds() {
        let mut w = Workload::tcpip(2000).unwrap();
        let (count, timing) = w.time(|gpu, table| {
            gpudb_core::predicate::compare_count(gpu, table, 0, gpudb_sim::CompareFunc::Greater, 0)
                .unwrap()
        });
        assert!(count > 0);
        assert!(timing.total() > 0.0);
    }

    #[test]
    fn wall_seconds_median() {
        let (v, t) = wall_seconds(3, || 42);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }
}
