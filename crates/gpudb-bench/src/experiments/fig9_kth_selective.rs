//! Figure 9: "Time taken to compute the K-th largest number by the two
//! implementations" with 80% selectivity (§5.9 Test 3): "KthLargest with
//! 80% selectivity requires exactly the same amount of time as performing
//! KthLargest with 100% selectivity" — the GPU's stencil mask is free —
//! while the CPU baseline must first copy "the valid data into an array"
//! before running QuickSelect.

use crate::harness::{cpu_model, wall_seconds, Workload};
use crate::report::{FigureResult, Scale, Series};
use gpudb_core::aggregate::median;
use gpudb_core::predicate::compare_select;
use gpudb_core::EngineResult;
use gpudb_cpu::quickselect;
use gpudb_data::selectivity::threshold_for_ge;
use gpudb_sim::CompareFunc;

/// Run the Figure 9 reproduction.
pub fn run(scale: Scale) -> EngineResult<FigureResult> {
    let cpu = cpu_model();
    let mut gpu_masked = Series::new("GPU median @80% selectivity (modeled)");
    let mut gpu_full = Series::new("GPU median @100% selectivity (modeled)");
    let mut cpu_modeled = Series::new("CPU extract + QuickSelect (modeled Xeon)");
    let mut cpu_wall = Series::new("CPU extract + QuickSelect wall-clock");

    for records in scale.sweep() {
        let mut w = Workload::tcpip(records)?;
        let values = w.dataset.columns[0].values.clone();
        let (threshold, _) = threshold_for_ge(&values, 0.8).expect("non-empty");

        // Build the 80% selection outside the timed region (both the paper
        // and we measure only the order-statistic computation).
        let (selection, selected_count) = {
            let table = &w.table;
            let (sel, count) =
                compare_select(&mut w.gpu, table, 0, CompareFunc::GreaterEqual, threshold)
                    .map(|(s, c)| (s, c as usize))?;
            (sel, count)
        };

        let (gpu_value, masked_timing) =
            w.time(|gpu, table| median(gpu, table, 0, Some(&selection)).unwrap());
        let (_, full_timing) = w.time(|gpu, table| median(gpu, table, 0, None).unwrap());

        // CPU: copy the selected values out, then QuickSelect (§5.9).
        let mask = gpudb_cpu::scan::scan_u32(&values, gpudb_cpu::CmpOp::Ge, threshold);
        let ((cpu_value, stats, extracted), cpu_secs) = wall_seconds(3, || {
            let extracted = gpudb_cpu::aggregate::extract_masked(&values, &mask);
            let k_smallest = extracted.len().div_ceil(2);
            let (v, stats) =
                quickselect::kth_largest_instrumented(&extracted, extracted.len() + 1 - k_smallest);
            (v, stats, extracted.len())
        });
        assert_eq!(extracted, selected_count);
        assert_eq!(Some(gpu_value), cpu_value, "masked median mismatch");

        gpu_masked.push(records as f64, masked_timing.total() * 1e3);
        gpu_full.push(records as f64, full_timing.total() * 1e3);
        cpu_modeled.push(
            records as f64,
            (cpu.extract_seconds(records) + cpu.select_seconds(&stats)) * 1e3,
        );
        cpu_wall.push(records as f64, cpu_secs * 1e3);
    }

    // The headline claim: masked and unmasked GPU runs cost the same
    // (within the one extra selection-count pass the masked run performs).
    let ratio = gpu_masked.last_y() / gpu_full.last_y();
    let holds = (0.95..1.15).contains(&ratio);

    Ok(FigureResult {
        id: "fig9".into(),
        title: "median at 80% selectivity: stencil mask vs extract-and-select".into(),
        x_label: "records".into(),
        y_label: "ms".into(),
        paper_claim: "GPU time with 80% selectivity identical to 100%; CPU pays an \
                      extraction copy on top of QuickSelect"
            .into(),
        observed: format!(
            "masked/unmasked GPU ratio {ratio:.3}; CPU pays an extra {:.3} ms extraction \
             copy at the largest size",
            cpu.extract_seconds(scale.max_records()) * 1e3
        ),
        shape_holds: holds,
        series: vec![gpu_masked, gpu_full, cpu_modeled, cpu_wall],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masked_gpu_run_costs_like_unmasked() {
        let fig = run(Scale::Small).unwrap();
        assert!(fig.shape_holds, "{}", fig.observed);
    }
}
