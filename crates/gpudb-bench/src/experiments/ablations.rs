//! Ablation studies for the design choices the paper argues for.

use crate::harness::{Workload, GRID_WIDTH, SEED};
use crate::report::{FigureResult, Scale, Series};
use gpudb_core::aggregate::{kth_largest, mipmap_sum, sum};
use gpudb_core::boolean::{eval_cnf_general_select, GpuCnf, GpuPredicate};
use gpudb_core::range::range_select;
use gpudb_core::table::GpuTable;
use gpudb_core::timing::measure;
use gpudb_core::EngineResult;
use gpudb_data::selectivity::range_for_selectivity;
use gpudb_sim::{CompareFunc, HardwareProfile};

/// Ablation A — §4.3.3: the float-mipmap SUM vs the bitwise Accumulator.
/// The paper rejects the mipmap for precision (and float-write speed);
/// this ablation quantifies both.
pub fn mipmap(scale: Scale) -> EngineResult<FigureResult> {
    let mut acc_series = Series::new("bitwise Accumulator (modeled)");
    let mut mip_series = Series::new("float mipmap SUM (modeled)");
    let mut err_series = Series::new("mipmap absolute error (units, not ms)");

    let mut worst_error = 0.0f64;
    for records in scale.sweep() {
        let mut w = Workload::tcpip(records)?;
        let exact: u64 = w.dataset.columns[0].values.iter().map(|&v| v as u64).sum();

        let (bitwise, acc_timing) = w.time(|gpu, table| sum(gpu, table, 0, None).unwrap());
        assert_eq!(bitwise, exact, "the Accumulator must be exact");

        let (reduction, _) = w.time(|gpu, table| mipmap_sum(gpu, table, 0).unwrap());
        let error = (reduction.sum - exact as f64).abs();
        worst_error = worst_error.max(error);

        acc_series.push(records as f64, acc_timing.total() * 1e3);
        mip_series.push(records as f64, reduction.modeled_seconds * 1e3);
        err_series.push(records as f64, error);
    }

    let holds = worst_error > 0.0;
    Ok(FigureResult {
        id: "abl_mipmap".into(),
        title: "SUM: bitwise Accumulator vs float-mipmap reduction".into(),
        x_label: "records".into(),
        y_label: "ms (error series: units)".into(),
        paper_claim: "the float mipmap 'may not have enough precision to give an exact \
                      sum'; the Accumulator is exact to arbitrary precision"
            .into(),
        observed: format!(
            "Accumulator exact at every size; mipmap drifts by up to {worst_error:.0} units"
        ),
        shape_holds: holds,
        series: vec![acc_series, mip_series, err_series],
    })
}

/// Ablation B — Routine 4.4 vs §4.2: the depth-bounds range query against
/// the same range expressed as a two-predicate CNF through the *general*
/// EvalCNF protocol.
pub fn range_vs_cnf(scale: Scale) -> EngineResult<FigureResult> {
    let mut bounds_series = Series::new("depth-bounds Range (modeled)");
    let mut cnf_series = Series::new("two-predicate EvalCNF (modeled)");

    for records in scale.sweep() {
        let mut w = Workload::tcpip(records)?;
        let values = w.dataset.columns[0].values.clone();
        let (low, high, _) = range_for_selectivity(&values, 0.6).expect("non-empty");

        let ((_, count_a), bounds_timing) =
            w.time(|gpu, table| range_select(gpu, table, 0, low, high).unwrap());

        let cnf = GpuCnf::all_of(vec![
            GpuPredicate::new(0, CompareFunc::GreaterEqual, low),
            GpuPredicate::new(0, CompareFunc::LessEqual, high),
        ]);
        let ((_, count_b), cnf_timing) =
            w.time(|gpu, table| eval_cnf_general_select(gpu, table, &cnf).unwrap());
        assert_eq!(count_a, count_b, "the two protocols must agree");

        bounds_series.push(records as f64, bounds_timing.total() * 1e3);
        cnf_series.push(records as f64, cnf_timing.total() * 1e3);
    }

    let ratio = cnf_series.last_y() / bounds_series.last_y();
    let holds = ratio > 1.5;
    Ok(FigureResult {
        id: "abl_range".into(),
        title: "range query: depth-bounds test vs general EvalCNF".into(),
        x_label: "records".into(),
        y_label: "ms".into(),
        paper_claim: "Range evaluates two predicates for the cost of one \
                      (one copy + one pass vs two copies + several passes)"
            .into(),
        observed: format!("EvalCNF costs {ratio:.1}x the depth-bounds path"),
        shape_holds: holds,
        series: vec![bounds_series, cnf_series],
    })
}

/// Ablation C — §6.2.2's pipeline-utilization analysis: `KthLargest` under
/// the real profile (draw overhead + synchronous occlusion fetches)
/// against an idealized device, reproducing the paper's "modeled 5.28 ms
/// vs observed 6.6 ms" gap (≈80% pipeline utilization).
pub fn sync_overhead(scale: Scale) -> EngineResult<FigureResult> {
    let records = scale.max_records();
    let dataset = gpudb_data::tcpip::generate(records, SEED);
    let values = dataset.columns[0].values.clone();

    let run_with = |profile: HardwareProfile| -> EngineResult<f64> {
        let width = GRID_WIDTH.min(records.max(1));
        let height = records.div_ceil(width).max(1);
        let mut gpu = gpudb_sim::Gpu::new(profile, width, height);
        let table = GpuTable::upload(&mut gpu, "t", &[("a", &values)])?;
        let (_, timing) = measure(&mut gpu, |gpu| {
            kth_largest(gpu, &table, 0, records / 2, None).unwrap()
        });
        Ok(timing.compute_only() * 1e3)
    };

    let real = run_with(HardwareProfile::geforce_fx_5900())?;
    let ideal = run_with(HardwareProfile::ideal())?;
    let utilization = ideal / real;

    let mut real_series = Series::new("GeForce FX profile (sync fetches)");
    real_series.push(records as f64, real);
    let mut ideal_series = Series::new("ideal profile (no overheads)");
    ideal_series.push(records as f64, ideal);

    // The paper observed 5.28/6.6 = 80% utilization at 1M records.
    // Utilization shrinks with record count (the per-pass latency is
    // constant while the fill time scales), so accept a broad band below
    // paper scale.
    let floor = match scale {
        Scale::Small => 0.15,
        Scale::Paper => 0.5,
    };
    let holds = utilization < 0.95 && utilization > floor;
    Ok(FigureResult {
        id: "abl_sync".into(),
        title: "KthLargest: per-pass synchronization overhead (§6.2.2)".into(),
        x_label: "records".into(),
        y_label: "ms".into(),
        paper_claim: "19 ideal passes = 5.28 ms vs 6.6 ms observed — ≈80% of the \
                      pipeline throughput, the rest lost to per-pass synchronization"
            .into(),
        observed: format!(
            "ideal {ideal:.2} ms vs realistic {real:.2} ms → {:.0}% utilization",
            utilization * 100.0
        ),
        shape_holds: holds,
        series: vec![real_series, ideal_series],
    })
}

/// Ablation D — §6.2.1 early depth-culling: a shaded pass over data with a
/// prior depth prepass, with early-z on vs off. Early-z skips shading of
/// rejected fragments, which the paper credits for "a significant
/// performance increase".
pub fn early_z(scale: Scale) -> EngineResult<FigureResult> {
    let records = scale.max_records();
    let mut w = Workload::tcpip(records)?;

    // Copy the attribute to depth, then render an expensive shaded quad
    // that only passes where the attribute is below the median — with
    // early-z the failing half never reaches the fragment processor.
    let median_value = {
        let mut sorted = w.dataset.columns[0].values.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    };

    let mut measure_with = |early_z: bool| -> EngineResult<(f64, u64)> {
        let table = &w.table;
        let gpu = &mut w.gpu;
        gpu.set_early_z(early_z);
        gpudb_core::predicate::copy_to_depth(gpu, table, 0)?;
        gpu.reset_stats();
        gpu.bind_program_source(
            "TEX R0, fragment.texcoord[0], texture[0], 2D;
             MUL R1, R0, R0;
             ADD R1, R1, R0;
             MOV result.color, R1;",
        )
        .map_err(gpudb_core::EngineError::from)?;
        gpu.bind_texture(0, Some(table.textures()[0]))
            .map_err(gpudb_core::EngineError::from)?;
        gpu.set_depth_test(true, CompareFunc::Greater);
        gpu.set_depth_write(false);
        gpu.draw_quad(table.rects(), gpudb_core::ops::encode_depth(median_value))
            .map_err(gpudb_core::EngineError::from)?;
        let shaded = gpu.stats().fragments_shaded;
        let ms = gpu.stats().modeled_total() * 1e3;
        gpu.bind_program(None);
        gpu.reset_state();
        gpu.set_early_z(true);
        Ok((ms, shaded))
    };

    let (on_ms, on_shaded) = measure_with(true)?;
    let (off_ms, off_shaded) = measure_with(false)?;

    let mut on_series = Series::new("early-z ON (modeled)");
    on_series.push(records as f64, on_ms);
    let mut off_series = Series::new("early-z OFF (modeled)");
    off_series.push(records as f64, off_ms);

    let holds = on_shaded < off_shaded && on_ms < off_ms;
    Ok(FigureResult {
        id: "abl_earlyz".into(),
        title: "early depth-culling: shaded-fragment savings (§6.2.1)".into(),
        x_label: "records".into(),
        y_label: "ms".into(),
        paper_claim: "early-z rejects failing fragments before the pixel processors, \
                      'a significant performance increase'"
            .into(),
        observed: format!(
            "early-z shades {on_shaded} of {off_shaded} fragments: {on_ms:.3} ms vs \
             {off_ms:.3} ms"
        ),
        shape_holds: holds,
        series: vec![on_series, off_series],
    })
}

/// Ablation E — the §6.1 hardware wishlist: "Depth Compare Masking [...]
/// would make it easier to test if a number has i-th bit set" and (§6.2.3)
/// "This can lead to significant improvement in performance" for the
/// Accumulator. We implement the hypothetical extension and measure how
/// much of Figure 10's deficit it recovers.
pub fn wishlist(scale: Scale) -> EngineResult<FigureResult> {
    let cpu = crate::harness::cpu_model();
    let mut standard_series = Series::new("Accumulator, TestBit program (modeled)");
    let mut masked_series = Series::new("Accumulator, depth compare mask (modeled)");
    let mut cpu_series = Series::new("CPU SIMD sum (modeled Xeon)");

    for records in scale.sweep() {
        let dataset = gpudb_data::tcpip::generate(records, SEED);
        let values = dataset.columns[0].values.clone();
        let expected: u64 = values.iter().map(|&v| v as u64).sum();

        let width = GRID_WIDTH.min(records.max(1));
        let height = records.div_ceil(width).max(1);
        let mut gpu = gpudb_sim::Gpu::new(
            HardwareProfile::geforce_fx_5900_with_depth_mask(),
            width,
            height,
        );
        let table = GpuTable::upload(&mut gpu, "t", &[("a", &values)])?;

        let (standard, standard_timing) =
            measure(&mut gpu, |gpu| sum(gpu, &table, 0, None).unwrap());
        let (masked, masked_timing) = measure(&mut gpu, |gpu| {
            gpudb_core::aggregate::sum_with_depth_mask(gpu, &table, 0, None).unwrap()
        });
        assert_eq!(standard, expected);
        assert_eq!(masked, expected);

        standard_series.push(records as f64, standard_timing.total() * 1e3);
        masked_series.push(records as f64, masked_timing.total() * 1e3);
        cpu_series.push(records as f64, cpu.sum_seconds(records) * 1e3);
    }

    let improvement = standard_series.last_y() / masked_series.last_y();
    let still_behind = masked_series.last_y() / cpu_series.last_y();
    // "Significant improvement": well over 2x — but the CPU should remain
    // competitive (integer SIMD sums are hard to beat with count queries).
    let holds = improvement > 2.0;

    Ok(FigureResult {
        id: "abl_wishlist".into(),
        title: "§6.1 wishlist: Accumulator with a depth compare mask".into(),
        x_label: "records".into(),
        y_label: "ms".into(),
        paper_claim: "integer/bit-mask support 'would reduce the timings of our \
                      Accumulator algorithm significantly' (§6.1, §6.2.3)"
            .into(),
        observed: format!(
            "depth-compare-mask variant {improvement:.1}x faster than TestBit; still \
             {still_behind:.1}x behind the modeled CPU"
        ),
        shape_holds: holds,
        series: vec![standard_series, masked_series, cpu_series],
    })
}

/// Ablation F — data independence: the GPU bit-descent's cost depends only
/// on the record count and bit width ("no branch mispredictions",
/// §6.2.1; "time taken by KthLargest is constant", §5.9), while
/// QuickSelect's work varies with the input arrangement. Four inputs with
/// identical size and bit width but different orderings.
pub fn data_independence(scale: Scale) -> EngineResult<FigureResult> {
    let records = scale.kth_records();
    let cpu = crate::harness::cpu_model();
    let max_value = (1u32 << 19) - 1;

    let uniform: Vec<u32> = (0..records as u32)
        .map(|i| i.wrapping_mul(2654435761) % (max_value + 1))
        .collect();
    let mut sorted = uniform.clone();
    sorted.sort_unstable();
    let reversed: Vec<u32> = sorted.iter().rev().copied().collect();
    // Organ pipe: ascending then descending — a classic quicksort stressor.
    let organ: Vec<u32> = (0..records)
        .map(|i| {
            let half = records / 2;
            let pos = if i < half { i } else { records - 1 - i };
            (pos as u64 * max_value as u64 / half.max(1) as u64) as u32
        })
        .collect();

    let mut gpu_series = Series::new("GPU KthLargest (modeled)");
    let mut cpu_series = Series::new("CPU QuickSelect (modeled Xeon)");
    let mut gpu_times = Vec::new();
    let mut cpu_times = Vec::new();

    for (i, values) in [&uniform, &sorted, &reversed, &organ]
        .into_iter()
        .enumerate()
    {
        let width = GRID_WIDTH.min(records.max(1));
        let height = records.div_ceil(width).max(1);
        let mut gpu = gpudb_sim::Gpu::geforce_fx_5900(width, height);
        let table = GpuTable::upload(&mut gpu, "t", &[("a", values)])?;
        let (gpu_value, timing) = measure(&mut gpu, |gpu| {
            kth_largest(gpu, &table, 0, records / 2, None).unwrap()
        });

        let (cpu_value, stats) =
            gpudb_cpu::quickselect::kth_largest_instrumented(values, records / 2);
        assert_eq!(Some(gpu_value), cpu_value);

        let g = timing.total() * 1e3;
        let c = cpu.select_seconds(&stats) * 1e3;
        gpu_series.push((i + 1) as f64, g);
        cpu_series.push((i + 1) as f64, c);
        gpu_times.push(g);
        cpu_times.push(c);
    }

    let spread = |xs: &[f64]| -> f64 {
        xs.iter().copied().fold(0.0f64, f64::max) / xs.iter().copied().fold(f64::INFINITY, f64::min)
    };
    let gpu_spread = spread(&gpu_times);
    let cpu_spread = spread(&cpu_times);
    let holds = gpu_spread < 1.01 && cpu_spread > 1.1;

    Ok(FigureResult {
        id: "abl_skew".into(),
        title: "data independence: KthLargest vs QuickSelect across input orderings".into(),
        x_label: "input (1=uniform 2=sorted 3=reversed 4=organ-pipe)".into(),
        y_label: "ms".into(),
        paper_claim: "the GPU algorithm has no data-dependent branches (§6.2.1) and its \
                      time depends only on record count and bit width; QuickSelect's \
                      conditionals make its work input-dependent (§4.3.2)"
            .into(),
        observed: format!(
            "GPU varies {:.2}% across orderings; QuickSelect varies {:.0}%",
            (gpu_spread - 1.0) * 100.0,
            (cpu_spread - 1.0) * 100.0
        ),
        shape_holds: holds,
        series: vec![gpu_series, cpu_series],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_is_data_independent() {
        let fig = data_independence(Scale::Small).unwrap();
        assert!(fig.shape_holds, "{}", fig.observed);
    }

    #[test]
    fn wishlist_mask_recovers_most_of_figure10() {
        let fig = wishlist(Scale::Small).unwrap();
        assert!(fig.shape_holds, "{}", fig.observed);
    }

    #[test]
    fn mipmap_ablation_shows_drift() {
        let fig = mipmap(Scale::Small).unwrap();
        assert!(fig.shape_holds, "{}", fig.observed);
    }

    #[test]
    fn range_beats_general_cnf() {
        let fig = range_vs_cnf(Scale::Small).unwrap();
        assert!(fig.shape_holds, "{}", fig.observed);
    }

    #[test]
    fn sync_overhead_below_unity() {
        let fig = sync_overhead(Scale::Small).unwrap();
        assert!(fig.shape_holds, "{}", fig.observed);
    }

    #[test]
    fn early_z_saves_shading() {
        let fig = early_z(Scale::Small).unwrap();
        assert!(fig.shape_holds, "{}", fig.observed);
    }
}
