//! Figure 2: "Plot indicating the time taken for copying data values in a
//! texture to the depth buffer." Expected shape: "an almost linear
//! increase in the time taken to perform the copy operation as a function
//! of the number of records."

use crate::harness::Workload;
use crate::report::{FigureResult, Scale, Series};
use gpudb_core::predicate::copy_to_depth;
use gpudb_core::EngineResult;

/// Run the Figure 2 reproduction.
pub fn run(scale: Scale) -> EngineResult<FigureResult> {
    let mut modeled = Series::new("GPU copy-to-depth (modeled)");
    let mut wall = Series::new("simulator wall-clock");

    for records in scale.sweep() {
        let mut w = Workload::tcpip(records)?;
        let ((), timing) = w.time(|gpu, table| {
            copy_to_depth(gpu, table, 0).unwrap();
        });
        modeled.push(records as f64, timing.copy * 1e3);
        wall.push(records as f64, timing.wall * 1e3);
    }

    // Linearity check on the *marginal* cost between successive sizes:
    // differencing removes the constant per-pass driver overhead, which
    // the paper's plot (starting at large record counts) never resolves.
    let slopes: Vec<f64> = modeled
        .points
        .windows(2)
        .map(|w| (w[1].1 - w[0].1) / (w[1].0 - w[0].0))
        .collect();
    let min = slopes.iter().copied().fold(f64::INFINITY, f64::min);
    let max = slopes.iter().copied().fold(0.0f64, f64::max);
    let linear = max / min < 1.1;

    Ok(FigureResult {
        id: "fig2".into(),
        title: "copy-to-depth time vs number of records".into(),
        x_label: "records".into(),
        y_label: "ms".into(),
        paper_claim: "almost linear increase with the number of records".into(),
        observed: format!(
            "marginal per-record cost varies only {:.1}% across the sweep \
             ({:.3} ms at {} records)",
            (max / min - 1.0) * 100.0,
            modeled.last_y(),
            scale.max_records()
        ),
        shape_holds: linear,
        series: vec![modeled, wall],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_time_is_linear() {
        let fig = run(Scale::Small).unwrap();
        assert!(fig.shape_holds, "{}", fig.observed);
        let s = fig.series("GPU copy-to-depth (modeled)").unwrap();
        assert_eq!(s.points.len(), Scale::Small.sweep().len());
        // Strictly increasing.
        for pair in s.points.windows(2) {
            assert!(pair[1].1 > pair[0].1);
        }
    }
}
