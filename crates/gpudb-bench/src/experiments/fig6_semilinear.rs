//! Figure 6: "Execution time of a semi-linear query using four attributes
//! of the TCP/IP database. The GPU-based implementation is almost one
//! order of magnitude faster than the CPU-based implementation." (§5.8:
//! "the GPU timings are 9 times faster".)

use crate::harness::{cpu_model, speedup, wall_seconds, Workload};
use crate::report::{FigureResult, Scale, Series};
use gpudb_core::semilinear::semilinear_select;
use gpudb_core::EngineResult;
use gpudb_sim::CompareFunc;

/// The "four random floating-point values" of §5.8 (fixed for
/// reproducibility) and the "arbitrary value" compared against.
pub const COEFFS: [f32; 4] = [0.375, -1.25, 2.5, 0.8125];

/// Run the Figure 6 reproduction.
pub fn run(scale: Scale) -> EngineResult<FigureResult> {
    let cpu = cpu_model();
    let mut gpu_series = Series::new("GPU semi-linear (modeled)");
    let mut cpu_modeled = Series::new("CPU dot-product scan (modeled Xeon)");
    let mut cpu_wall = Series::new("CPU scan wall-clock (this host)");

    for records in scale.sweep() {
        let mut w = Workload::tcpip(records)?;
        let host: Vec<Vec<u32>> = w.dataset.columns.iter().map(|c| c.values.clone()).collect();
        let refs: Vec<&[u32]> = host.iter().map(|v| v.as_slice()).collect();
        // Pick b near the median of the dot product so the query is
        // non-degenerate.
        let mut dots: Vec<f32> = (0..records)
            .map(|i| gpudb_cpu::semilinear::dot_f32(&refs, &COEFFS, i))
            .collect();
        dots.sort_by(f32::total_cmp);
        let b = dots[records / 2];

        let ((_, count), timing) = w.time(|gpu, table| {
            semilinear_select(gpu, table, &COEFFS, CompareFunc::GreaterEqual, b).unwrap()
        });
        let (bm, cpu_secs) = wall_seconds(3, || {
            gpudb_cpu::semilinear::semilinear_scan(&refs, &COEFFS, gpudb_cpu::CmpOp::Ge, b)
        });
        assert_eq!(bm.count_ones() as u64, count, "GPU/CPU result mismatch");

        gpu_series.push(records as f64, timing.total() * 1e3);
        cpu_modeled.push(records as f64, cpu.semilinear_seconds(records, 4) * 1e3);
        cpu_wall.push(records as f64, cpu_secs * 1e3);
    }

    let factor = speedup(cpu_modeled.last_y(), gpu_series.last_y());
    let holds = (5.0..15.0).contains(&factor);

    Ok(FigureResult {
        id: "fig6".into(),
        title: "semi-linear query over four attributes, CPU vs GPU".into(),
        x_label: "records".into(),
        y_label: "ms".into(),
        paper_claim: "GPU ~9x faster (no copy-to-depth needed at all)".into(),
        observed: format!("GPU {factor:.1}x faster"),
        shape_holds: holds,
        series: vec![gpu_series, cpu_modeled, cpu_wall],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn semilinear_speedup_matches_paper_shape() {
        let fig = run(Scale::Small).unwrap();
        assert!(fig.shape_holds, "{}", fig.observed);
        // No copy phase: semi-linear queries read the texture directly.
        let gpu = fig.series("GPU semi-linear (modeled)").unwrap();
        assert!(gpu.points.iter().all(|&(_, y)| y > 0.0));
    }
}
