//! Figure 7: "Time to compute k-th largest number on the data_count
//! attribute. We used a portion of the TCP/IP database with nearly 250K
//! records." Key observations (§5.9 Test 1): "time taken by KthLargest is
//! constant irrespective of the value of k", "GPU timings for our
//! algorithm are nearly twice as fast in comparison to the CPU
//! implementation", and compute-only "3 times faster than QuickSelect".

use crate::harness::{cpu_model, wall_seconds, Workload};
use crate::report::{FigureResult, Scale, Series};
use gpudb_core::aggregate::kth_largest;
use gpudb_core::EngineResult;
use gpudb_cpu::quickselect;

/// Run the Figure 7 reproduction.
pub fn run(scale: Scale) -> EngineResult<FigureResult> {
    let records = scale.kth_records();
    let cpu = cpu_model();
    let mut w = Workload::tcpip(records)?;
    let values = w.dataset.columns[0].values.clone();

    let ks: Vec<usize> = [1usize, 10, 100, 1_000, records / 10, records / 2, records]
        .into_iter()
        .filter(|&k| k >= 1 && k <= records)
        .collect();

    let mut gpu_total = Series::new("GPU KthLargest total (modeled)");
    let mut gpu_compute = Series::new("GPU KthLargest compute-only (modeled)");
    let mut cpu_modeled = Series::new("CPU QuickSelect (modeled Xeon)");
    let mut cpu_wall = Series::new("CPU QuickSelect wall-clock (this host)");

    for &k in &ks {
        let (gpu_value, timing) = w.time(|gpu, table| kth_largest(gpu, table, 0, k, None).unwrap());
        let ((cpu_value, stats), cpu_secs) =
            wall_seconds(3, || quickselect::kth_largest_instrumented(&values, k));
        assert_eq!(Some(gpu_value), cpu_value, "k = {k}: GPU/CPU disagree");

        gpu_total.push(k as f64, timing.total() * 1e3);
        gpu_compute.push(k as f64, timing.compute_only() * 1e3);
        cpu_modeled.push(k as f64, cpu.select_seconds(&stats) * 1e3);
        cpu_wall.push(k as f64, cpu_secs * 1e3);
    }

    // Flatness: GPU time must be independent of k.
    let gpu_ys: Vec<f64> = gpu_total.points.iter().map(|&(_, y)| y).collect();
    let gmin = gpu_ys.iter().copied().fold(f64::INFINITY, f64::min);
    let gmax = gpu_ys.iter().copied().fold(0.0f64, f64::max);
    let flat = gmax / gmin < 1.05;

    let cpu_avg =
        cpu_modeled.points.iter().map(|&(_, y)| y).sum::<f64>() / cpu_modeled.points.len() as f64;
    let gpu_avg = gpu_ys.iter().sum::<f64>() / gpu_ys.len() as f64;
    let factor = cpu_avg / gpu_avg;
    // The sync-readback overhead per pass dominates at sub-paper sizes, so
    // the acceptance band widens for Scale::Small.
    let band = match scale {
        // Sub-paper sizes are dominated by the per-pass sync latency; the
        // GPU may even lose narrowly. At paper scale the fill cost
        // amortizes it.
        Scale::Small => 0.3..4.0,
        Scale::Paper => 1.2..4.0,
    };
    let holds = flat && band.contains(&factor);

    Ok(FigureResult {
        id: "fig7".into(),
        title: format!("k-th largest vs k on data_count, {records} records"),
        x_label: "k".into(),
        y_label: "ms".into(),
        paper_claim: "GPU time constant in k; on average ~2x faster than QuickSelect \
                      (~3x compute-only)"
            .into(),
        observed: format!(
            "GPU flat within {:.1}%; avg {factor:.1}x faster than modeled QuickSelect",
            (gmax / gmin - 1.0) * 100.0
        ),
        shape_holds: holds,
        series: vec![gpu_total, gpu_compute, cpu_modeled, cpu_wall],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kth_is_flat_in_k() {
        let fig = run(Scale::Small).unwrap();
        assert!(fig.shape_holds, "{}", fig.observed);
        let gpu = fig.series("GPU KthLargest total (modeled)").unwrap();
        // QuickSelect's cost *does* vary with k (pivot luck), the GPU's
        // must not.
        let ys: Vec<f64> = gpu.points.iter().map(|&(_, y)| y).collect();
        let spread = ys.iter().copied().fold(0.0f64, f64::max)
            / ys.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(spread < 1.05, "spread {spread}");
    }
}
