//! Figure 5: "Execution time of a multi-attribute query with 60%
//! selectivity for each attribute and a combination of AND operator.
//! Time_i is the time to perform a query with i attributes." The paper:
//! "the GPU implementation is nearly 2 times faster than the CPU
//! implementation. If we consider only the computational times [...] the
//! GPU is nearly 20 times faster."

use crate::harness::{cpu_model, speedup, wall_seconds, Workload};
use crate::report::{FigureResult, Scale, Series};
use gpudb_core::boolean::{eval_cnf_select, GpuCnf, GpuPredicate};
use gpudb_core::EngineResult;
use gpudb_data::selectivity::threshold_for_ge;
use gpudb_sim::CompareFunc;

/// Run the Figure 5 reproduction: x-axis = number of AND-ed attributes.
pub fn run(scale: Scale) -> EngineResult<FigureResult> {
    let records = scale.max_records();
    let cpu = cpu_model();
    let mut w = Workload::tcpip(records)?;
    // Per-attribute thresholds at 60% selectivity.
    let thresholds: Vec<u32> = (0..4)
        .map(|c| {
            threshold_for_ge(&w.dataset.columns[c].values, 0.6)
                .expect("non-empty")
                .0
        })
        .collect();
    let host: Vec<Vec<u32>> = w.dataset.columns.iter().map(|c| c.values.clone()).collect();

    let mut gpu_total = Series::new("GPU total (modeled)");
    let mut gpu_compute = Series::new("GPU compute-only (modeled)");
    let mut cpu_modeled = Series::new("CPU SIMD CNF (modeled Xeon)");
    let mut cpu_wall = Series::new("CPU CNF wall-clock (this host)");

    for attrs in 1..=4usize {
        let preds: Vec<GpuPredicate> = (0..attrs)
            .map(|c| GpuPredicate::new(c, CompareFunc::GreaterEqual, thresholds[c]))
            .collect();
        let cnf = GpuCnf::all_of(preds);
        let ((_, count), timing) = w.time(|gpu, table| eval_cnf_select(gpu, table, &cnf).unwrap());

        let cpu_cnf = gpudb_cpu::Cnf::all_of(
            (0..attrs)
                .map(|c| gpudb_cpu::Predicate::new(c, gpudb_cpu::CmpOp::Ge, thresholds[c]))
                .collect(),
        );
        let refs: Vec<&[u32]> = host.iter().map(|v| v.as_slice()).collect();
        let (bm, cpu_secs) = wall_seconds(3, || gpudb_cpu::cnf::eval_cnf(&refs, &cpu_cnf));
        assert_eq!(bm.count_ones() as u64, count, "GPU/CPU result mismatch");

        gpu_total.push(attrs as f64, timing.total() * 1e3);
        gpu_compute.push(attrs as f64, timing.compute_only() * 1e3);
        cpu_modeled.push(attrs as f64, cpu.cnf_seconds(records, attrs, attrs) * 1e3);
        cpu_wall.push(attrs as f64, cpu_secs * 1e3);
    }

    let total_factor = speedup(cpu_modeled.last_y(), gpu_total.last_y());
    let compute_factor = speedup(cpu_modeled.last_y(), gpu_compute.last_y());
    let holds = (1.5..5.0).contains(&total_factor) && (8.0..40.0).contains(&compute_factor);

    Ok(FigureResult {
        id: "fig5".into(),
        title: format!(
            "multi-attribute AND query, 60% selectivity per attribute, {records} records"
        ),
        x_label: "attributes".into(),
        y_label: "ms".into(),
        paper_claim: "GPU ~2x faster overall; ~20x faster compute-only; \
                      time scales linearly with attribute count"
            .into(),
        observed: format!(
            "at 4 attributes: GPU {total_factor:.1}x overall, {compute_factor:.1}x compute-only"
        ),
        shape_holds: holds,
        series: vec![gpu_total, gpu_compute, cpu_modeled, cpu_wall],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiattr_speedups_match_paper_shape() {
        let fig = run(Scale::Small).unwrap();
        assert!(fig.shape_holds, "{}", fig.observed);
        // Both sides scale roughly linearly in the attribute count.
        let gpu = fig.series("GPU total (modeled)").unwrap();
        let t1 = gpu.points[0].1;
        let t4 = gpu.points[3].1;
        assert!((3.0..5.5).contains(&(t4 / t1)), "GPU scaling {}", t4 / t1);
    }
}
