//! Figure 3: "Execution time of a predicate evaluation with 60%
//! selectivity by a CPU-based and a GPU-based algorithm. Timings for the
//! GPU-based algorithm include time to copy data values into the depth
//! buffer. Considering only computation time, the GPU is nearly 20 times
//! faster than a compiler-optimized SIMD implementation." The overall
//! (with-copy) timings are "nearly 3 times faster".

use crate::harness::{cpu_model, speedup, wall_seconds, Workload};
use crate::report::{FigureResult, Scale, Series};
use gpudb_core::predicate::compare_select;
use gpudb_core::EngineResult;
use gpudb_data::selectivity::threshold_for_ge;
use gpudb_sim::CompareFunc;

/// Run the Figure 3 reproduction.
pub fn run(scale: Scale) -> EngineResult<FigureResult> {
    let cpu = cpu_model();
    let mut gpu_total = Series::new("GPU total (modeled)");
    let mut gpu_compute = Series::new("GPU compute-only (modeled)");
    let mut cpu_modeled = Series::new("CPU SIMD scan (modeled Xeon)");
    let mut cpu_wall = Series::new("CPU scan wall-clock (this host)");

    for records in scale.sweep() {
        let mut w = Workload::tcpip(records)?;
        let values = w.dataset.columns[0].values.clone();
        let (threshold, achieved) = threshold_for_ge(&values, 0.6).expect("non-empty");
        debug_assert!((achieved - 0.6).abs() < 0.05, "selectivity {achieved}");

        let ((_, count), timing) = w.time(|gpu, table| {
            compare_select(gpu, table, 0, CompareFunc::GreaterEqual, threshold).unwrap()
        });
        // Cross-check against the real CPU baseline.
        let (bm, cpu_secs) = wall_seconds(3, || {
            gpudb_cpu::scan::scan_u32(&values, gpudb_cpu::CmpOp::Ge, threshold)
        });
        assert_eq!(bm.count_ones() as u64, count, "GPU/CPU result mismatch");

        gpu_total.push(records as f64, timing.total() * 1e3);
        gpu_compute.push(records as f64, timing.compute_only() * 1e3);
        cpu_modeled.push(records as f64, cpu.scan_seconds(records) * 1e3);
        cpu_wall.push(records as f64, cpu_secs * 1e3);
    }

    let total_factor = speedup(cpu_modeled.last_y(), gpu_total.last_y());
    let compute_factor = speedup(cpu_modeled.last_y(), gpu_compute.last_y());
    let holds = (2.0..5.0).contains(&total_factor) && (10.0..40.0).contains(&compute_factor);

    Ok(FigureResult {
        id: "fig3".into(),
        title: "single predicate at 60% selectivity, CPU vs GPU".into(),
        x_label: "records".into(),
        y_label: "ms".into(),
        paper_claim: "GPU ~3x faster overall; ~20x faster compute-only".into(),
        observed: format!(
            "GPU {total_factor:.1}x faster overall; {compute_factor:.1}x compute-only"
        ),
        shape_holds: holds,
        series: vec![gpu_total, gpu_compute, cpu_modeled, cpu_wall],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_speedups_match_paper_shape() {
        let fig = run(Scale::Small).unwrap();
        assert!(fig.shape_holds, "{}", fig.observed);
        // GPU total must exceed compute-only (the copy is real work).
        let total = fig.series("GPU total (modeled)").unwrap().last_y();
        let compute = fig.series("GPU compute-only (modeled)").unwrap().last_y();
        assert!(total > compute);
    }
}
