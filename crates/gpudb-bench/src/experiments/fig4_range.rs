//! Figure 4: "Execution time of a range query with 60% selectivity using
//! a GPU-based and a CPU-based algorithm. [...] Considering only
//! computation time, the GPU is nearly 40 times faster"; overall "the GPU
//! is nearly 5.5 times faster".

use crate::harness::{cpu_model, speedup, wall_seconds, Workload};
use crate::report::{FigureResult, Scale, Series};
use gpudb_core::range::range_select;
use gpudb_core::EngineResult;
use gpudb_data::selectivity::range_for_selectivity;

/// Run the Figure 4 reproduction.
pub fn run(scale: Scale) -> EngineResult<FigureResult> {
    let cpu = cpu_model();
    let mut gpu_total = Series::new("GPU total (modeled)");
    let mut gpu_compute = Series::new("GPU compute-only (modeled)");
    let mut cpu_modeled = Series::new("CPU SIMD range scan (modeled Xeon)");
    let mut cpu_wall = Series::new("CPU range wall-clock (this host)");

    for records in scale.sweep() {
        let mut w = Workload::tcpip(records)?;
        let values = w.dataset.columns[0].values.clone();
        // §5.6: "we set the valid range of values between the 20th
        // percentile and 80th percentile of the data values".
        let (low, high, _) = range_for_selectivity(&values, 0.6).expect("non-empty");

        let ((_, count), timing) =
            w.time(|gpu, table| range_select(gpu, table, 0, low, high).unwrap());
        let (bm, cpu_secs) = wall_seconds(3, || gpudb_cpu::cnf::eval_range(&values, low, high));
        assert_eq!(bm.count_ones() as u64, count, "GPU/CPU result mismatch");

        gpu_total.push(records as f64, timing.total() * 1e3);
        gpu_compute.push(records as f64, timing.compute_only() * 1e3);
        cpu_modeled.push(records as f64, cpu.range_seconds(records) * 1e3);
        cpu_wall.push(records as f64, cpu_secs * 1e3);
    }

    let total_factor = speedup(cpu_modeled.last_y(), gpu_total.last_y());
    let compute_factor = speedup(cpu_modeled.last_y(), gpu_compute.last_y());
    let holds = (3.0..9.0).contains(&total_factor) && (15.0..60.0).contains(&compute_factor);

    Ok(FigureResult {
        id: "fig4".into(),
        title: "range query at 60% selectivity (depth-bounds test), CPU vs GPU".into(),
        x_label: "records".into(),
        y_label: "ms".into(),
        paper_claim: "GPU ~5.5x faster overall; ~40x faster compute-only \
                      (range costs the same as one predicate)"
            .into(),
        observed: format!(
            "GPU {total_factor:.1}x faster overall; {compute_factor:.1}x compute-only"
        ),
        shape_holds: holds,
        series: vec![gpu_total, gpu_compute, cpu_modeled, cpu_wall],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::fig3_predicate;

    #[test]
    fn range_speedups_match_paper_shape() {
        let fig = run(Scale::Small).unwrap();
        assert!(fig.shape_holds, "{}", fig.observed);
    }

    #[test]
    fn range_compute_close_to_single_predicate() {
        // §4.2: "the computational time for our algorithm in evaluating
        // Range is comparable to the time required in evaluating a single
        // predicate."
        let range = run(Scale::Small).unwrap();
        let pred = fig3_predicate::run(Scale::Small).unwrap();
        let r = range.series("GPU compute-only (modeled)").unwrap().last_y();
        let p = pred.series("GPU compute-only (modeled)").unwrap().last_y();
        assert!(
            (r / p - 1.0).abs() < 0.25,
            "range compute {r} ms vs predicate compute {p} ms"
        );
    }
}
