//! Figure 8: "Time taken to compute the median using KthLargest and
//! QuickSelect on varying number of records." §5.9 Test 2: "KthLargest on
//! the GPU is nearly twice as fast as QuickSelect on the CPU. Considering
//! only the computational times [...] nearly 2.5 times faster."

use crate::harness::{cpu_model, wall_seconds, Workload};
use crate::report::{FigureResult, Scale, Series};
use gpudb_core::aggregate::median;
use gpudb_core::EngineResult;
use gpudb_cpu::quickselect;

/// Run the Figure 8 reproduction.
pub fn run(scale: Scale) -> EngineResult<FigureResult> {
    let cpu = cpu_model();
    let mut gpu_total = Series::new("GPU median total (modeled)");
    let mut gpu_compute = Series::new("GPU median compute-only (modeled)");
    let mut cpu_modeled = Series::new("CPU QuickSelect median (modeled Xeon)");
    let mut cpu_wall = Series::new("CPU QuickSelect wall-clock (this host)");

    for records in scale.sweep() {
        let mut w = Workload::tcpip(records)?;
        let values = w.dataset.columns[0].values.clone();

        let (gpu_value, timing) = w.time(|gpu, table| median(gpu, table, 0, None).unwrap());
        let k_smallest = records.div_ceil(2);
        let ((cpu_value, stats), cpu_secs) = wall_seconds(3, || {
            quickselect::kth_largest_instrumented(&values, records + 1 - k_smallest)
        });
        assert_eq!(Some(gpu_value), cpu_value, "median mismatch at {records}");

        gpu_total.push(records as f64, timing.total() * 1e3);
        gpu_compute.push(records as f64, timing.compute_only() * 1e3);
        cpu_modeled.push(records as f64, cpu.select_seconds(&stats) * 1e3);
        cpu_wall.push(records as f64, cpu_secs * 1e3);
    }

    let factor = cpu_modeled.last_y() / gpu_total.last_y();
    let band = match scale {
        Scale::Small => 0.5..4.5,
        Scale::Paper => 1.2..4.5,
    };
    let holds = band.contains(&factor);

    Ok(FigureResult {
        id: "fig8".into(),
        title: "median via KthLargest vs QuickSelect, varying record count".into(),
        x_label: "records".into(),
        y_label: "ms".into(),
        paper_claim: "GPU ~2x faster than QuickSelect (~2.5x compute-only)".into(),
        observed: format!("GPU {factor:.1}x faster at the largest size"),
        shape_holds: holds,
        series: vec![gpu_total, gpu_compute, cpu_modeled, cpu_wall],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_scaling_matches_paper_shape() {
        let fig = run(Scale::Small).unwrap();
        assert!(fig.shape_holds, "{}", fig.observed);
        // Both sides grow with record count.
        for label in [
            "GPU median total (modeled)",
            "CPU QuickSelect median (modeled Xeon)",
        ] {
            let s = fig.series(label).unwrap();
            assert!(
                s.points.last().unwrap().1 > s.points.first().unwrap().1,
                "{label} did not grow"
            );
        }
    }
}
