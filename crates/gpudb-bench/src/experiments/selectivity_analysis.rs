//! §5.11 selectivity analysis: "We observed that there is no additional
//! overhead in obtaining the count of selected queries. Given selected
//! data values scattered over a 1000×1000 frame-buffer, we can obtain the
//! number of selected values within 0.25 ms."

use crate::harness::Workload;
use crate::report::{FigureResult, Scale, Series};
use gpudb_core::predicate::compare_select;
use gpudb_core::EngineResult;
use gpudb_data::selectivity::threshold_for_ge;
use gpudb_sim::CompareFunc;

/// Run the §5.11 reproduction.
pub fn run(scale: Scale) -> EngineResult<FigureResult> {
    let records = scale.max_records();
    let mut w = Workload::tcpip(records)?;
    let values = w.dataset.columns[0].values.clone();
    let (threshold, _) = threshold_for_ge(&values, 0.6).expect("non-empty");

    // (a) Count piggybacked on the selection pass: zero extra passes.
    w.gpu.reset_stats();
    let (selection, piggyback_count) = {
        let table = &w.table;
        compare_select(&mut w.gpu, table, 0, CompareFunc::GreaterEqual, threshold)?
    };
    let piggyback_draws = w.gpu.stats().draw_calls;

    // (b) Count retrieval from an existing (scattered) selection. The
    // paper's 0.25 ms bound is the *retrieval* of the query result — a
    // full 1M-pixel counting pass already takes 0.278 ms of fill at the
    // hardware's own rate, so the claim can only refer to fetching the
    // count once the query has been issued. We measure the synchronous
    // result fetch (readback phase) separately from the counting pass's
    // fill time.
    let (standalone_count, timing) = {
        let before = w.gpu.stats().modeled;
        let count = selection.count(&mut w.gpu)?;
        let delta = w.gpu.stats().modeled.since(&before);
        (count, delta)
    };
    assert_eq!(piggyback_count, standalone_count);
    let retrieval_ms = timing.get(gpudb_sim::Phase::Readback) * 1e3;
    let full_pass_ms = timing.total() * 1e3;

    let mut retrieval = Series::new("count retrieval / pipeline drain (modeled)");
    retrieval.push(records as f64, retrieval_ms);
    let mut full = Series::new("full standalone counting pass (modeled)");
    full.push(records as f64, full_pass_ms);
    let mut piggy = Series::new("extra passes when piggybacked");
    piggy.push(records as f64, 0.0);

    // The piggybacked selection used exactly the same number of draws a
    // selection without counting would: copy + comparison (+ clear).
    let no_extra_overhead = piggyback_draws <= 2;
    let within_bound = retrieval_ms <= 0.25;

    Ok(FigureResult {
        id: "sel".into(),
        title: "selectivity analysis: count retrieval cost (§5.11)".into(),
        x_label: "records".into(),
        y_label: "ms".into(),
        paper_claim: "no additional overhead when counting during a selection; the count \
                      of values scattered over a 1000x1000 frame-buffer available within \
                      0.25 ms"
            .into(),
        observed: format!(
            "piggybacked count adds 0 passes ({piggyback_draws} draws total); result \
             retrieval {retrieval_ms:.3} ms (full standalone pass {full_pass_ms:.3} ms) \
             for {records} records"
        ),
        shape_holds: no_extra_overhead && within_bound,
        series: vec![retrieval, full, piggy],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_retrieval_within_paper_bound() {
        let fig = run(Scale::Small).unwrap();
        assert!(fig.shape_holds, "{}", fig.observed);
    }
}
