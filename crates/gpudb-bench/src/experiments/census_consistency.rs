//! §5.1: "The census database consists of 360K records. [...] We have
//! benchmarked our algorithms using the TCP/IP database. Our performance
//! results on the census data are consistent with the results obtained on
//! the TCP/IP database."
//!
//! This experiment re-runs the predicate and range measurements on the
//! census workload and checks that the speedup factors agree with the
//! TCP/IP ones within a modest tolerance.

use crate::harness::{cpu_model, speedup, Workload, SEED};
use crate::report::{FigureResult, Scale, Series};
use gpudb_core::predicate::compare_select;
use gpudb_core::range::range_select;
use gpudb_core::EngineResult;
use gpudb_data::selectivity::{range_for_selectivity, threshold_for_ge};
use gpudb_data::{census, tcpip};
use gpudb_sim::CompareFunc;

/// Speedup factors for one dataset at one size.
struct Factors {
    predicate_total: f64,
    range_total: f64,
}

fn factors_for(dataset: gpudb_data::Dataset, column: usize) -> EngineResult<Factors> {
    let cpu = cpu_model();
    let records = dataset.record_count();
    let values = dataset.columns[column].values.clone();
    let mut w = Workload::from_dataset(dataset)?;

    let (threshold, _) = threshold_for_ge(&values, 0.6).expect("non-empty");
    let (_, pred_timing) = w.time(|gpu, table| {
        compare_select(gpu, table, column, CompareFunc::GreaterEqual, threshold).unwrap()
    });
    let (low, high, _) = range_for_selectivity(&values, 0.6).expect("non-empty");
    let (_, range_timing) =
        w.time(|gpu, table| range_select(gpu, table, column, low, high).unwrap());

    Ok(Factors {
        predicate_total: speedup(cpu.scan_seconds(records), pred_timing.total()),
        range_total: speedup(cpu.range_seconds(records), range_timing.total()),
    })
}

/// Run the census-consistency check.
pub fn run(scale: Scale) -> EngineResult<FigureResult> {
    // The paper's census table is 360K records; scale Small shrinks it.
    let census_records = match scale {
        Scale::Small => 90_000,
        Scale::Paper => census::PAPER_RECORD_COUNT,
    };
    let tcpip_records = scale.max_records();

    let tcpip_factors = factors_for(tcpip::generate(tcpip_records, SEED), 0)?;
    let census_factors = factors_for(census::generate(census_records, SEED), 0)?;

    let mut pred = Series::new("predicate speedup (GPU vs modeled CPU)");
    pred.push(1.0, tcpip_factors.predicate_total);
    pred.push(2.0, census_factors.predicate_total);
    let mut range = Series::new("range speedup (GPU vs modeled CPU)");
    range.push(1.0, tcpip_factors.range_total);
    range.push(2.0, census_factors.range_total);

    let pred_ratio = census_factors.predicate_total / tcpip_factors.predicate_total;
    let range_ratio = census_factors.range_total / tcpip_factors.range_total;
    // "Consistent": the same speedups within ±40% despite the different
    // record count, distribution and bit widths.
    let holds = (0.6..1.67).contains(&pred_ratio) && (0.6..1.67).contains(&range_ratio);

    Ok(FigureResult {
        id: "census".into(),
        title: "census workload consistency check (§5.1)".into(),
        x_label: "dataset (1 = tcpip, 2 = census)".into(),
        y_label: "speedup factor (not ms)".into(),
        paper_claim: "performance results on the census data are consistent with the \
                      TCP/IP database"
            .into(),
        observed: format!(
            "predicate speedup {0:.1}x (tcpip) vs {1:.1}x (census); range {2:.1}x vs {3:.1}x",
            tcpip_factors.predicate_total,
            census_factors.predicate_total,
            tcpip_factors.range_total,
            census_factors.range_total
        ),
        shape_holds: holds,
        series: vec![pred, range],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_results_consistent_with_tcpip() {
        let fig = run(Scale::Small).unwrap();
        assert!(fig.shape_holds, "{}", fig.observed);
    }
}
