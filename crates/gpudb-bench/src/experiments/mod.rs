//! One module per reproduced figure/claim of the paper's evaluation.

pub mod ablations;
pub mod census_consistency;
pub mod fig10_accumulator;
pub mod fig2_copy;
pub mod fig3_predicate;
pub mod fig4_range;
pub mod fig5_multiattr;
pub mod fig6_semilinear;
pub mod fig7_kth;
pub mod fig8_median;
pub mod fig9_kth_selective;
pub mod selectivity_analysis;
pub mod sort_extension;

use crate::report::{FigureResult, Scale};
use gpudb_core::EngineResult;

/// All experiment ids, in paper order.
pub const ALL_EXPERIMENTS: [&str; 18] = [
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "sel",
    "census",
    "abl_mipmap",
    "abl_range",
    "abl_sync",
    "abl_earlyz",
    "abl_wishlist",
    "abl_skew",
    "ext_sort",
];

/// Run one experiment by id.
pub fn run(id: &str, scale: Scale) -> EngineResult<FigureResult> {
    match id {
        "fig2" => fig2_copy::run(scale),
        "fig3" => fig3_predicate::run(scale),
        "fig4" => fig4_range::run(scale),
        "fig5" => fig5_multiattr::run(scale),
        "fig6" => fig6_semilinear::run(scale),
        "fig7" => fig7_kth::run(scale),
        "fig8" => fig8_median::run(scale),
        "fig9" => fig9_kth_selective::run(scale),
        "fig10" => fig10_accumulator::run(scale),
        "sel" => selectivity_analysis::run(scale),
        "census" => census_consistency::run(scale),
        "abl_mipmap" => ablations::mipmap(scale),
        "abl_range" => ablations::range_vs_cnf(scale),
        "abl_sync" => ablations::sync_overhead(scale),
        "abl_earlyz" => ablations::early_z(scale),
        "abl_wishlist" => ablations::wishlist(scale),
        "abl_skew" => ablations::data_independence(scale),
        "ext_sort" => sort_extension::run(scale),
        other => Err(gpudb_core::EngineError::InvalidQuery(format!(
            "unknown experiment {other:?}; known: {ALL_EXPERIMENTS:?}"
        ))),
    }
}
