//! Extension: bitonic sort on the GPU — the paper's §7 future work and
//! its §2.2 assessment that Purcell-style bitonic sorting "can be quite
//! slow for database operations on large databases".

use crate::harness::{wall_seconds, SEED};
use crate::report::{FigureResult, Scale, Series};
use gpudb_core::sort::sort_values;
use gpudb_core::timing::measure;
use gpudb_core::EngineResult;
use gpudb_data::tcpip;
use gpudb_sim::Gpu;

/// Power-of-two sweep sizes for the sort experiment.
fn sizes(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Small => vec![1 << 12, 1 << 13, 1 << 14, 1 << 15],
        Scale::Paper => vec![1 << 16, 1 << 17, 1 << 18, 1 << 19, 1 << 20],
    }
}

/// Run the sort-extension experiment.
pub fn run(scale: Scale) -> EngineResult<FigureResult> {
    let max = *sizes(scale).last().expect("non-empty");
    let dataset = tcpip::generate(max, SEED);
    let all_values = &dataset.columns[0].values;

    let mut gpu_series = Series::new("GPU bitonic sort (modeled)");
    let mut pass_series = Series::new("compare-exchange passes (count, not ms)");
    let mut cpu_series = Series::new("CPU sort_unstable wall-clock");

    for n in sizes(scale) {
        let values = &all_values[..n];
        // Power-of-two grid sized for the run.
        let width = (n as f64).sqrt() as usize;
        let width = width.next_power_of_two().min(1024);
        let height = n.next_power_of_two().div_ceil(width).max(1);
        let mut gpu = Gpu::geforce_fx_5900(width, height);

        let (outcome, timing) = measure(&mut gpu, |gpu| sort_values(gpu, values).unwrap());
        let (mut expected, cpu_secs) = wall_seconds(3, || values.to_vec());
        let (_, sort_secs) = wall_seconds(1, || expected.sort_unstable());
        assert_eq!(outcome.sorted, expected, "GPU sort mismatch at n = {n}");

        gpu_series.push(n as f64, timing.total() * 1e3);
        pass_series.push(n as f64, outcome.passes as f64);
        cpu_series.push(n as f64, (cpu_secs + sort_secs) * 1e3);
    }

    // O(n log^2 n): the pass count must grow as m(m+1)/2.
    let pass_ok = pass_series.points.iter().all(|&(x, passes)| {
        let m = (x as usize).next_power_of_two().trailing_zeros() as f64;
        (passes - m * (m + 1.0) / 2.0).abs() < 0.5
    });

    Ok(FigureResult {
        id: "ext_sort".into(),
        title: "bitonic merge sort on the GPU (future-work extension)".into(),
        x_label: "records".into(),
        y_label: "ms".into(),
        paper_claim: "sorting needs m(m+1)/2 full-texture passes plus a copy per pass \
                      — 'quite slow for database operations on large databases'"
            .into(),
        observed: format!(
            "pass counts match m(m+1)/2 exactly; {:.1} ms modeled at n = {max}",
            gpu_series.last_y()
        ),
        shape_holds: pass_ok,
        series: vec![gpu_series, pass_series, cpu_series],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_extension_pass_counts() {
        let fig = run(Scale::Small).unwrap();
        assert!(fig.shape_holds, "{}", fig.observed);
    }
}
