//! Figure 10: "Time required to sum the values of an attribute by the CPU
//! and by the GPU-based Accumulator algorithm." §5.10: "our GPU algorithm
//! is nearly 20 times slower than the CPU implementation" — the one
//! primitive where the paper's GPU loses, due to the missing integer
//! arithmetic (§6.2.3).

use crate::harness::{cpu_model, wall_seconds, Workload};
use crate::report::{FigureResult, Scale, Series};
use gpudb_core::aggregate::sum;
use gpudb_core::EngineResult;

/// Run the Figure 10 reproduction.
pub fn run(scale: Scale) -> EngineResult<FigureResult> {
    let cpu = cpu_model();
    let mut gpu_series = Series::new("GPU Accumulator (modeled)");
    let mut cpu_modeled = Series::new("CPU SIMD sum (modeled Xeon)");
    let mut cpu_wall = Series::new("CPU sum wall-clock (this host)");

    for records in scale.sweep() {
        let mut w = Workload::tcpip(records)?;
        let values = w.dataset.columns[0].values.clone();

        let (gpu_sum, timing) = w.time(|gpu, table| sum(gpu, table, 0, None).unwrap());
        let (cpu_sum, cpu_secs) = wall_seconds(3, || gpudb_cpu::aggregate::sum(&values));
        assert_eq!(gpu_sum, cpu_sum, "SUM mismatch at {records} records");

        gpu_series.push(records as f64, timing.total() * 1e3);
        cpu_modeled.push(records as f64, cpu.sum_seconds(records) * 1e3);
        cpu_wall.push(records as f64, cpu_secs * 1e3);
    }

    // GPU is SLOWER: the factor is CPU-favoring.
    let slowdown = gpu_series.last_y() / cpu_modeled.last_y();
    let holds = (8.0..40.0).contains(&slowdown);

    Ok(FigureResult {
        id: "fig10".into(),
        title: "SUM: bitwise GPU Accumulator vs CPU".into(),
        x_label: "records".into(),
        y_label: "ms".into(),
        paper_claim: "GPU ~20x SLOWER than the CPU (one shaded pass per bit, \
                      no integer arithmetic in the fragment processor)"
            .into(),
        observed: format!("GPU {slowdown:.1}x slower than the modeled CPU"),
        shape_holds: holds,
        series: vec![gpu_series, cpu_modeled, cpu_wall],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_loses_as_in_the_paper() {
        let fig = run(Scale::Small).unwrap();
        assert!(fig.shape_holds, "{}", fig.observed);
        // The GPU line is above the CPU line at every size.
        let gpu = fig.series("GPU Accumulator (modeled)").unwrap();
        let cpu = fig.series("CPU SIMD sum (modeled Xeon)").unwrap();
        for (g, c) in gpu.points.iter().zip(&cpu.points) {
            assert!(g.1 > c.1, "GPU {g:?} should exceed CPU {c:?}");
        }
    }
}
