//! `bench-smoke` — deterministic perf-regression gate.
//!
//! Runs reduced-scale fixed-seed versions of the paper's figure
//! experiments, writes `BENCH_smoke.json` (modeled costs + exact result
//! checksums + per-operator metrics), prints a summary table, and — when
//! a baseline exists — fails with a readable diff on any cost regression
//! beyond tolerance or any checksum change.
//!
//! ```text
//! bench-smoke [--out PATH] [--baseline PATH] [--tolerance FRACTION]
//!             [--bless] [--no-gate] [--trace-out DIR] [--shards LIST]
//! ```
//!
//! `--trace-out DIR` additionally re-runs every experiment with a span
//! sink attached (cost-free; the gated report is untouched) and writes
//! `<id>.trace.json` / `<id>.folded` / `<id>.spans.jsonl` per
//! experiment — see `docs/observability.md`.
//!
//! `--shards LIST` (e.g. `--shards 1,4,16`) switches to the shard
//! matrix: the sharded smoke queries run at every listed device count,
//! one `BENCH_shards_<n>.json` report plus one `SHARD_results_<n>.txt`
//! checksum digest per count is written next to `--out`, and the run
//! fails unless every count's result checksums are byte-identical —
//! the sharded-merge correctness gate. With `--trace-out DIR`, each
//! count also writes merged span trees (one `shard-i` stage per device)
//! under `DIR/shards-<n>/`.

use gpudb_bench::regress::{self, DEFAULT_TOLERANCE};
use gpudb_bench::smoke::{self, SmokeReport};
use gpudb_bench::traceout;
use gpudb_obs::TraceLevel;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    out: PathBuf,
    baseline: PathBuf,
    tolerance: f64,
    bless: bool,
    gate: bool,
    trace_out: Option<PathBuf>,
    shards: Vec<usize>,
}

fn default_baseline() -> PathBuf {
    // Resolve relative to the crate so the gate works from any cwd.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results/baselines/smoke.json")
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: PathBuf::from("BENCH_smoke.json"),
        baseline: default_baseline(),
        tolerance: DEFAULT_TOLERANCE,
        bless: false,
        gate: true,
        trace_out: None,
        shards: Vec::new(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--baseline" => args.baseline = PathBuf::from(value("--baseline")?),
            "--tolerance" => {
                let raw = value("--tolerance")?;
                args.tolerance = raw
                    .parse::<f64>()
                    .map_err(|e| format!("bad --tolerance {raw:?}: {e}"))?;
                if !(args.tolerance >= 0.0 && args.tolerance.is_finite()) {
                    return Err(format!(
                        "--tolerance must be a finite non-negative fraction, got {raw}"
                    ));
                }
            }
            "--bless" => args.bless = true,
            "--no-gate" => args.gate = false,
            "--trace-out" => args.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--shards" => {
                let raw = value("--shards")?;
                args.shards = raw
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .ok()
                            .filter(|&n| n > 0)
                            .ok_or_else(|| {
                                format!("bad --shards {raw:?}: counts must be positive integers")
                            })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if args.shards.is_empty() {
                    return Err(format!("--shards {raw:?} names no counts"));
                }
            }
            "--help" | "-h" => {
                println!(
                    "bench-smoke [--out PATH] [--baseline PATH] [--tolerance FRACTION] \
                     [--bless] [--no-gate] [--trace-out DIR] [--shards LIST]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}; see --help")),
        }
    }
    Ok(args)
}

fn load_baseline(path: &PathBuf) -> Result<Option<SmokeReport>, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => serde_json::from_str(&text)
            .map(Some)
            .map_err(|e| format!("unreadable baseline {}: {e:?}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(format!("cannot read baseline {}: {e}", path.display())),
    }
}

/// One file next to `out`, named for the shard count.
fn sibling(out: &std::path::Path, name: String) -> PathBuf {
    match out.parent() {
        Some(dir) if dir.as_os_str().is_empty() => PathBuf::from(name),
        Some(dir) => dir.join(name),
        None => PathBuf::from(name),
    }
}

/// The shard matrix: run the sharded smoke queries at every requested
/// device count, write one report + one checksum digest per count, and
/// fail unless the digests are byte-identical across counts.
fn run_shard_matrix(args: &Args) -> Result<ExitCode, String> {
    let mut reference: Option<(usize, String)> = None;
    let mut mismatched = false;
    for &shards in &args.shards {
        let (report, trees) = smoke::run_sharded(shards, args.trace_out.is_some())
            .map_err(|e| format!("sharded run at {shards} shard(s) failed: {e}"))?;
        let json = serde_json::to_string_pretty(&report).map_err(|e| format!("serialize: {e}"))?;
        let report_path = sibling(&args.out, format!("BENCH_shards_{shards}.json"));
        std::fs::write(&report_path, &json)
            .map_err(|e| format!("write {}: {e}", report_path.display()))?;

        // The digest holds only shard-count-invariant fields (id +
        // result checksum), so `cmp` across counts is meaningful.
        let digest: String = report
            .experiments
            .iter()
            .map(|e| format!("{} {}\n", e.id, e.checksum))
            .collect();
        let digest_path = sibling(&args.out, format!("SHARD_results_{shards}.txt"));
        std::fs::write(&digest_path, &digest)
            .map_err(|e| format!("write {}: {e}", digest_path.display()))?;
        println!(
            "wrote {} and {}",
            report_path.display(),
            digest_path.display()
        );
        for exp in &report.experiments {
            println!(
                "  {:<20} shards {:>3}  modeled {:>10.3} ms  {}",
                exp.id,
                shards,
                exp.modeled_ns as f64 / 1e6,
                exp.checksum
            );
        }

        if let Some(dir) = &args.trace_out {
            let subdir = dir.join(format!("shards-{shards}"));
            for (id, tree) in &trees {
                let paths = traceout::write_all(&subdir, id, tree)
                    .map_err(|e| format!("write traces for {id}: {e}"))?;
                println!(
                    "  wrote {} ({} spans)",
                    paths[0].display(),
                    tree.span_count()
                );
            }
        }

        match &reference {
            None => reference = Some((shards, digest)),
            Some((ref_shards, ref_digest)) => {
                if digest != *ref_digest {
                    mismatched = true;
                    eprintln!(
                        "shard matrix FAILED: result checksums differ between {ref_shards} \
                         and {shards} shard(s) — the sharded merge is not exact"
                    );
                }
            }
        }
    }
    if mismatched {
        Ok(ExitCode::FAILURE)
    } else {
        println!(
            "shard matrix PASSED: result checksums byte-identical across {:?} shard(s)",
            args.shards
        );
        Ok(ExitCode::SUCCESS)
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    if !args.shards.is_empty() {
        return run_shard_matrix(&args);
    }
    let report = smoke::run_all().map_err(|e| format!("smoke run failed: {e}"))?;
    let json = serde_json::to_string_pretty(&report).map_err(|e| format!("serialize: {e}"))?;
    std::fs::write(&args.out, &json).map_err(|e| format!("write {}: {e}", args.out.display()))?;
    println!("wrote {}", args.out.display());

    if let Some(dir) = &args.trace_out {
        // Span collection is cost-free, so these re-runs reproduce the
        // gated report exactly; the traces are pure observability output.
        for exp in &report.experiments {
            let (_, tree) = smoke::run_one_spanned(&exp.id, TraceLevel::Passes)
                .map_err(|e| format!("trace run {}: {e}", exp.id))?;
            let paths = traceout::write_all(dir, &exp.id, &tree)
                .map_err(|e| format!("write traces for {}: {e}", exp.id))?;
            println!("wrote {} ({} spans)", paths[0].display(), tree.span_count());
        }
    }

    if args.bless {
        if let Some(dir) = args.baseline.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
        std::fs::write(&args.baseline, &json)
            .map_err(|e| format!("write {}: {e}", args.baseline.display()))?;
        println!("blessed baseline {}", args.baseline.display());
        print!("{}", smoke::summary_table(&report, None));
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = load_baseline(&args.baseline)?;
    print!("{}", smoke::summary_table(&report, baseline.as_ref()));

    let Some(baseline) = baseline else {
        println!(
            "no baseline at {} — run with --bless to create one",
            args.baseline.display()
        );
        // A missing baseline fails the gate: CI must never silently skip
        // the comparison.
        return Ok(if args.gate {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        });
    };

    let comparison = regress::compare(&baseline, &report, args.tolerance);
    let rendered = comparison.render();
    if !rendered.is_empty() {
        println!("{rendered}");
    }
    if comparison.passed() {
        println!(
            "gate PASSED ({} experiments, tolerance {:.1}%)",
            report.experiments.len(),
            args.tolerance * 100.0
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "gate FAILED: {} fatal issue(s); if intentional, refresh with --bless",
            comparison.fatal().len()
        );
        Ok(if args.gate {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        })
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("bench-smoke: {message}");
            ExitCode::FAILURE
        }
    }
}
