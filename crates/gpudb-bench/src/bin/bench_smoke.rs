//! `bench-smoke` — deterministic perf-regression gate.
//!
//! Runs reduced-scale fixed-seed versions of the paper's figure
//! experiments, writes `BENCH_smoke.json` (modeled costs + exact result
//! checksums + per-operator metrics), prints a summary table, and — when
//! a baseline exists — fails with a readable diff on any cost regression
//! beyond tolerance or any checksum change.
//!
//! ```text
//! bench-smoke [--out PATH] [--baseline PATH] [--tolerance FRACTION]
//!             [--bless] [--no-gate] [--trace-out DIR]
//! ```
//!
//! `--trace-out DIR` additionally re-runs every experiment with a span
//! sink attached (cost-free; the gated report is untouched) and writes
//! `<id>.trace.json` / `<id>.folded` / `<id>.spans.jsonl` per
//! experiment — see `docs/observability.md`.

use gpudb_bench::regress::{self, DEFAULT_TOLERANCE};
use gpudb_bench::smoke::{self, SmokeReport};
use gpudb_bench::traceout;
use gpudb_obs::TraceLevel;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    out: PathBuf,
    baseline: PathBuf,
    tolerance: f64,
    bless: bool,
    gate: bool,
    trace_out: Option<PathBuf>,
}

fn default_baseline() -> PathBuf {
    // Resolve relative to the crate so the gate works from any cwd.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results/baselines/smoke.json")
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        out: PathBuf::from("BENCH_smoke.json"),
        baseline: default_baseline(),
        tolerance: DEFAULT_TOLERANCE,
        bless: false,
        gate: true,
        trace_out: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--baseline" => args.baseline = PathBuf::from(value("--baseline")?),
            "--tolerance" => {
                let raw = value("--tolerance")?;
                args.tolerance = raw
                    .parse::<f64>()
                    .map_err(|e| format!("bad --tolerance {raw:?}: {e}"))?;
                if !(args.tolerance >= 0.0 && args.tolerance.is_finite()) {
                    return Err(format!(
                        "--tolerance must be a finite non-negative fraction, got {raw}"
                    ));
                }
            }
            "--bless" => args.bless = true,
            "--no-gate" => args.gate = false,
            "--trace-out" => args.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--help" | "-h" => {
                println!(
                    "bench-smoke [--out PATH] [--baseline PATH] [--tolerance FRACTION] \
                     [--bless] [--no-gate] [--trace-out DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}; see --help")),
        }
    }
    Ok(args)
}

fn load_baseline(path: &PathBuf) -> Result<Option<SmokeReport>, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => serde_json::from_str(&text)
            .map(Some)
            .map_err(|e| format!("unreadable baseline {}: {e:?}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(format!("cannot read baseline {}: {e}", path.display())),
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let report = smoke::run_all().map_err(|e| format!("smoke run failed: {e}"))?;
    let json = serde_json::to_string_pretty(&report).map_err(|e| format!("serialize: {e}"))?;
    std::fs::write(&args.out, &json).map_err(|e| format!("write {}: {e}", args.out.display()))?;
    println!("wrote {}", args.out.display());

    if let Some(dir) = &args.trace_out {
        // Span collection is cost-free, so these re-runs reproduce the
        // gated report exactly; the traces are pure observability output.
        for exp in &report.experiments {
            let (_, tree) = smoke::run_one_spanned(&exp.id, TraceLevel::Passes)
                .map_err(|e| format!("trace run {}: {e}", exp.id))?;
            let paths = traceout::write_all(dir, &exp.id, &tree)
                .map_err(|e| format!("write traces for {}: {e}", exp.id))?;
            println!("wrote {} ({} spans)", paths[0].display(), tree.span_count());
        }
    }

    if args.bless {
        if let Some(dir) = args.baseline.parent() {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
        std::fs::write(&args.baseline, &json)
            .map_err(|e| format!("write {}: {e}", args.baseline.display()))?;
        println!("blessed baseline {}", args.baseline.display());
        print!("{}", smoke::summary_table(&report, None));
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = load_baseline(&args.baseline)?;
    print!("{}", smoke::summary_table(&report, baseline.as_ref()));

    let Some(baseline) = baseline else {
        println!(
            "no baseline at {} — run with --bless to create one",
            args.baseline.display()
        );
        // A missing baseline fails the gate: CI must never silently skip
        // the comparison.
        return Ok(if args.gate {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        });
    };

    let comparison = regress::compare(&baseline, &report, args.tolerance);
    let rendered = comparison.render();
    if !rendered.is_empty() {
        println!("{rendered}");
    }
    if comparison.passed() {
        println!(
            "gate PASSED ({} experiments, tolerance {:.1}%)",
            report.experiments.len(),
            args.tolerance * 100.0
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "gate FAILED: {} fatal issue(s); if intentional, refresh with --bless",
            comparison.fatal().len()
        );
        Ok(if args.gate {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        })
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("bench-smoke: {message}");
            ExitCode::FAILURE
        }
    }
}
