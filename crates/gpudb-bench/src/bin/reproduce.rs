//! Regenerate every figure of the paper's evaluation section.
//!
//! ```sh
//! # quick pass over all experiments at reduced sizes
//! cargo run --release -p gpudb-bench --bin reproduce
//!
//! # the paper's record counts (1M records; minutes of simulation)
//! cargo run --release -p gpudb-bench --bin reproduce -- --scale paper
//!
//! # individual figures, JSON output
//! cargo run --release -p gpudb-bench --bin reproduce -- fig3 fig4 --json results/
//! ```

use gpudb_bench::experiments::{self, ALL_EXPERIMENTS};
use gpudb_bench::report::Scale;
use gpudb_bench::{smoke, traceout};
use gpudb_obs::TraceLevel;
use std::process::ExitCode;

/// The smoke counterpart of a figure id, if one exists. Traces are
/// collected from the smoke-scale run of the same operator family (the
/// span tree's *shape* is scale-independent; only durations grow), so
/// `--trace-out` stays cheap even at `--scale paper`.
fn smoke_counterpart(id: &str) -> Option<&'static str> {
    match id {
        "fig2" => Some("fig2_copy"),
        "fig3" => Some("fig3_predicate"),
        "fig4" => Some("fig4_range"),
        "fig5" => Some("fig5_multiattr_cnf"),
        "fig6" => Some("fig6_semilinear"),
        "fig7" => Some("fig7_kth"),
        "fig8" => Some("fig8_median"),
        "fig9" => Some("fig9_kth_selective"),
        "fig10" => Some("fig10_accumulator"),
        _ => None,
    }
}

fn main() -> ExitCode {
    let mut scale = Scale::Small;
    let mut json_dir: Option<String> = None;
    let mut trace_dir: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => match args.next().as_deref() {
                Some("small") => scale = Scale::Small,
                Some("paper") => scale = Scale::Paper,
                other => {
                    eprintln!("--scale must be 'small' or 'paper', got {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            "--json" => match args.next() {
                Some(dir) => json_dir = Some(dir),
                None => {
                    eprintln!("--json requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--trace-out" => match args.next() {
                Some(dir) => trace_dir = Some(dir),
                None => {
                    eprintln!("--trace-out requires a directory");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: reproduce [--scale small|paper] [--json DIR] [--trace-out DIR] \
                     [EXPERIMENT...]\n\
                     experiments: {ALL_EXPERIMENTS:?} (default: all)"
                );
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string()));
    }

    if let Some(dir) = &json_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
    }

    println!(
        "reproducing {} experiment(s) at {:?} scale\n\
         (GPU timings are the calibrated GeForce FX 5900 cost model; CPU \n\
         timings are the calibrated 2004 Xeon model plus this host's wall-clock)\n",
        ids.len(),
        scale
    );

    let mut failures = 0usize;
    for id in &ids {
        let started = std::time::Instant::now();
        match experiments::run(id, scale) {
            Ok(result) => {
                println!("{}", result.render_text());
                println!(
                    "   [simulated in {:.1} s]\n",
                    started.elapsed().as_secs_f64()
                );
                if !result.shape_holds {
                    failures += 1;
                }
                if let Some(dir) = &json_dir {
                    let path = format!("{dir}/{id}.json");
                    match serde_json::to_string_pretty(&result) {
                        Ok(json) => {
                            if let Err(e) = std::fs::write(&path, json) {
                                eprintln!("cannot write {path}: {e}");
                            }
                        }
                        Err(e) => eprintln!("cannot serialize {id}: {e}"),
                    }
                }
                if let Some(dir) = &trace_dir {
                    match smoke_counterpart(id) {
                        Some(smoke_id) => {
                            match smoke::run_one_spanned(smoke_id, TraceLevel::Passes) {
                                Ok((_, tree)) => match traceout::write_all(
                                    std::path::Path::new(dir),
                                    smoke_id,
                                    &tree,
                                ) {
                                    Ok(paths) => println!("   wrote {}", paths[0].display()),
                                    Err(e) => eprintln!("cannot write traces for {id}: {e}"),
                                },
                                Err(e) => eprintln!("trace run for {id} failed: {e}"),
                            }
                        }
                        None => println!(
                            "   (no smoke counterpart for {id}; no trace artifacts written)"
                        ),
                    }
                }
            }
            Err(e) => {
                eprintln!("experiment {id} failed: {e}\n");
                failures += 1;
            }
        }
    }

    if failures > 0 {
        eprintln!("{failures} experiment(s) diverged or failed");
        ExitCode::FAILURE
    } else {
        println!("all {} experiment shapes hold ✓", ids.len());
        ExitCode::SUCCESS
    }
}
