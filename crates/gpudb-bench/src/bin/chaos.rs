//! `chaos` — seeded fault-injection sweep with CPU-oracle cross-check.
//!
//! Runs the chaos matrix (the same seed → workload → query-shape mapping
//! as `tests/chaos.rs`) against the resilient executor and verifies the
//! robustness contract: every run either matches the CPU oracle exactly
//! or returns a typed `EngineError` the oracle agrees with. Writes a
//! JSON report; on any contract violation the report carries the full
//! fault schedule of the failing run (the replay artifact CI uploads)
//! and the process exits non-zero.
//!
//! ```text
//! chaos [--seeds N] [--start S] [--out PATH] [--faults on|off]
//! ```
//!
//! `--faults off` runs the same matrix with no injector and instead
//! checks that `execute_resilient` is byte-identical (metrics included)
//! to the plain executor — the "resilience is free on a healthy device"
//! half of the contract.

use gpudb_core::cpu_oracle::{self, HostTable};
use gpudb_core::query::ast::{Aggregate, BoolExpr, Query};
use gpudb_core::query::executor::{self, ExecuteOptions};
use gpudb_core::resilience::{execute_resilient, RetryPolicy};
use gpudb_core::table::GpuTable;
use gpudb_sim::{CompareFunc, FaultInjector};
use serde::Serialize;
use std::path::PathBuf;
use std::process::ExitCode;

/// SplitMix64 for workload/query generation (kept in lockstep with
/// `tests/chaos.rs`; the fault schedule uses the injector's own stream).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const RECORDS: usize = 256;
const SHAPES: [&str; 6] = [
    "predicate",
    "range",
    "cnf",
    "semilinear",
    "kth",
    "accumulator",
];

fn workload(seed: u64) -> HostTable {
    let mut rng = Mix(seed.wrapping_mul(0xA076_1D64_78BD_642F) | 1);
    let a: Vec<u32> = (0..RECORDS).map(|_| rng.below(1 << 16) as u32).collect();
    let b: Vec<u32> = (0..RECORDS).map(|_| rng.below(1 << 12) as u32).collect();
    let c: Vec<u32> = (0..RECORDS).map(|_| rng.below(97) as u32).collect();
    HostTable::new("chaos", vec![("a", a), ("b", b), ("c", c)]).expect("valid workload")
}

fn query_shapes(seed: u64) -> Vec<Query> {
    let mut rng = Mix(seed.wrapping_mul(0xD6E8_FEB8_6659_FD93) | 1);
    let cut = rng.below(1 << 16) as u32;
    let lo = rng.below(1 << 16) as u32;
    let hi = rng.below(1 << 16) as u32;
    let k = 1 + rng.below(32) as usize;
    vec![
        Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::pred("a", CompareFunc::Greater, cut),
        ),
        Query::filtered(
            vec![Aggregate::Count, Aggregate::Sum("b".into())],
            BoolExpr::pred("a", CompareFunc::GreaterEqual, lo).and(BoolExpr::pred(
                "a",
                CompareFunc::LessEqual,
                hi,
            )),
        ),
        Query::filtered(
            vec![Aggregate::Count, Aggregate::Max("a".into())],
            BoolExpr::pred("b", CompareFunc::Less, 2048)
                .or(BoolExpr::pred("c", CompareFunc::GreaterEqual, 48))
                .and(BoolExpr::pred("a", CompareFunc::NotEqual, cut)),
        ),
        Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::SemiLinear {
                terms: vec![("a".into(), 1.0), ("b".into(), -2.0)],
                op: CompareFunc::Greater,
                constant: cut as f32 / 3.0,
            },
        ),
        Query::filtered(
            vec![
                Aggregate::Median("a".into()),
                Aggregate::KthLargest("b".into(), k),
            ],
            BoolExpr::pred("c", CompareFunc::Less, 80),
        ),
        Query::filtered(
            vec![
                Aggregate::Sum("a".into()),
                Aggregate::Avg("b".into()),
                Aggregate::Min("b".into()),
            ],
            BoolExpr::pred("c", CompareFunc::GreaterEqual, 20),
        ),
    ]
}

fn injector_for(seed: u64) -> FaultInjector {
    let horizon = if seed.is_multiple_of(2) { 0 } else { 2_000_000 };
    let events = 1 + (seed % 6) as usize;
    FaultInjector::from_seed(seed, events, horizon)
}

/// One scheduled fault event, rendered for the replay artifact.
#[derive(Serialize)]
struct ScheduleEvent {
    at_ns: u64,
    kind: String,
}

/// A contract violation, with everything needed to replay it.
#[derive(Serialize)]
struct Failure {
    seed: u64,
    shape: String,
    schedule: Vec<ScheduleEvent>,
    message: String,
    replay: String,
}

/// The machine-readable sweep report (`--out`).
#[derive(Serialize)]
struct Report {
    faults: String,
    seeds: u64,
    start: u64,
    records_per_workload: usize,
    shapes: Vec<String>,
    runs: u64,
    paths: Vec<(String, u64)>,
    failures: Vec<Failure>,
}

fn schedule_of(injector: &FaultInjector) -> Vec<ScheduleEvent> {
    injector
        .pending()
        .iter()
        .map(|e| ScheduleEvent {
            at_ns: e.at_ns,
            kind: format!("{:?}", e.kind),
        })
        .collect()
}

struct Args {
    seeds: u64,
    start: u64,
    out: PathBuf,
    faults: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: 64,
        start: 0,
        out: PathBuf::from("BENCH_chaos.json"),
        faults: true,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--seeds" => {
                let raw = value("--seeds")?;
                args.seeds = raw
                    .parse::<u64>()
                    .map_err(|e| format!("bad --seeds {raw:?}: {e}"))?;
            }
            "--start" => {
                let raw = value("--start")?;
                args.start = raw
                    .parse::<u64>()
                    .map_err(|e| format!("bad --start {raw:?}: {e}"))?;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--faults" => match value("--faults")?.as_str() {
                "on" => args.faults = true,
                "off" => args.faults = false,
                other => return Err(format!("--faults must be on|off, got {other:?}")),
            },
            "--help" | "-h" => {
                println!("chaos [--seeds N] [--start S] [--out PATH] [--faults on|off]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}; see --help")),
        }
    }
    Ok(args)
}

/// One faulted run; `Ok(path)` names the rung that answered, `Err` is a
/// contract-violation description.
fn run_faulted(seed: u64, shape: usize, query: &Query) -> Result<String, String> {
    let host = workload(seed);
    let mut gpu = GpuTable::device_for(host.record_count(), 16);
    gpu.attach_fault_injector(injector_for(seed));
    let resilient = execute_resilient(
        &mut gpu,
        &host,
        query,
        ExecuteOptions::default(),
        &RetryPolicy::default(),
    );
    let oracle = cpu_oracle::execute(&host, query);
    match (resilient, oracle) {
        (Ok(r), Ok(o)) => {
            if o.agrees_with(r.output.matched, &r.output.rows) {
                Ok(format!("{:?}", r.report.path))
            } else {
                Err(format!(
                    "silent divergence on {} path {:?}: gpu matched {} rows {:?}, oracle {:?}; \
                     ladder {:?}",
                    SHAPES[shape],
                    r.report.path,
                    r.output.matched,
                    r.output.rows,
                    o.rows,
                    r.report.degradations
                ))
            }
        }
        (Err(e), Err(oe)) if e.to_string() == oe.to_string() => Ok("TypedError".to_string()),
        (Err(e), Err(oe)) => Err(format!(
            "error mismatch on {}: engine {e:?}, oracle {oe:?}",
            SHAPES[shape]
        )),
        (Ok(r), Err(oe)) => Err(format!(
            "engine answered {:?} on {} but oracle errors with {oe}",
            r.output.rows, SHAPES[shape]
        )),
        (Err(e), Ok(_)) => Err(format!(
            "engine failed on {} with {e} (class {:?}) but oracle answers",
            SHAPES[shape],
            e.fault_class()
        )),
    }
}

/// One clean run (`--faults off`): resilient output must be
/// byte-identical to the plain executor, metrics included.
fn run_clean(seed: u64, shape: usize, query: &Query) -> Result<String, String> {
    let host = workload(seed);
    let mut gpu = GpuTable::device_for(host.record_count(), 16);
    let resilient = execute_resilient(
        &mut gpu,
        &host,
        query,
        ExecuteOptions::default(),
        &RetryPolicy::default(),
    )
    .map(|r| (r.output.matched, r.output.rows, r.output.metrics));

    let mut gpu2 = GpuTable::device_for(host.record_count(), 16);
    let plain = host.upload(&mut gpu2).and_then(|table| {
        executor::execute_with_options(&mut gpu2, &table, query, ExecuteOptions::default())
            .map(|o| (o.matched, o.rows, o.metrics))
    });
    match (resilient, plain) {
        (Ok(a), Ok(b)) if a == b => Ok("Gpu".to_string()),
        (Err(a), Err(b)) if a.to_string() == b.to_string() => Ok("TypedError".to_string()),
        (a, b) => Err(format!(
            "faults-off divergence on {}: resilient {a:?} vs plain {b:?}",
            SHAPES[shape]
        )),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("chaos: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut path_counts = std::collections::BTreeMap::<String, u64>::new();
    let mut failures = Vec::new();
    let mut runs = 0u64;
    for seed in args.start..args.start + args.seeds {
        for (shape, query) in query_shapes(seed).iter().enumerate() {
            runs += 1;
            let outcome = if args.faults {
                run_faulted(seed, shape, query)
            } else {
                run_clean(seed, shape, query)
            };
            match outcome {
                Ok(path) => *path_counts.entry(path).or_insert(0) += 1,
                Err(message) => {
                    eprintln!("chaos: FAIL seed {seed} shape {}: {message}", SHAPES[shape]);
                    failures.push(Failure {
                        seed,
                        shape: SHAPES[shape].to_string(),
                        schedule: schedule_of(&injector_for(seed)),
                        message,
                        replay: format!(
                            "cargo run -p gpudb-bench --bin chaos -- --seeds 1 --start {seed}"
                        ),
                    });
                }
            }
        }
    }

    let paths: Vec<(String, u64)> = path_counts.into_iter().collect();
    let failure_count = failures.len();
    let report = Report {
        faults: if args.faults { "on" } else { "off" }.to_string(),
        seeds: args.seeds,
        start: args.start,
        records_per_workload: RECORDS,
        shapes: SHAPES.iter().map(|s| s.to_string()).collect(),
        runs,
        paths,
        failures,
    };
    let rendered = match serde_json::to_string_pretty(&report) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("chaos: cannot serialize report: {e:?}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&args.out, rendered + "\n") {
        eprintln!("chaos: cannot write {}: {e}", args.out.display());
        return ExitCode::FAILURE;
    }

    println!(
        "chaos: {} runs across {} seeds (faults {}): paths {:?}, {} failure(s); report {}",
        runs,
        args.seeds,
        if args.faults { "on" } else { "off" },
        report.paths,
        failure_count,
        args.out.display()
    );
    if failure_count == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
