//! `lint-plans` — static validation gate over the smoke experiments.
//!
//! Re-runs every smoke experiment with pass-plan recording enabled
//! (bit-passive: identical results and modeled cost), feeds each
//! recorded plan to `gpudb-lint`, prints a per-experiment summary and
//! writes a machine-readable JSON report. Exit status is the gate:
//! error-severity findings always fail; `--strict` fails on warnings
//! too.
//!
//! ```text
//! lint-plans [--strict] [--out PATH] [--experiment ID]... [--self-test-broken]
//!            [--trace-out DIR]
//! ```
//!
//! `--trace-out DIR` additionally writes span-trace artifacts
//! (`<id>.trace.json` / `<id>.folded` / `<id>.spans.jsonl`) for each
//! linted experiment, so a lint finding can be read next to the
//! timeline of the passes that produced it.
//!
//! `--self-test-broken` checks the validator itself: it lints a
//! deliberately broken plan (an occlusion query that is never ended)
//! and exits successfully only if the expected diagnostic fires — CI
//! runs it so a silently toothless linter cannot pass the gate.

use gpudb_bench::smoke::{self, SCHEMA_VERSION, SMOKE_EXPERIMENTS};
use gpudb_bench::traceout;
use gpudb_lint::{Linter, Report};
use gpudb_obs::TraceLevel;
use gpudb_sim::state::{ColorMask, PipelineState};
use gpudb_sim::trace::{DeviceCaps, DrawPass, PassOp, PassPlan};
use serde::Serialize;
use std::path::PathBuf;
use std::process::ExitCode;

/// Lint results for one smoke experiment.
#[derive(Debug, Clone, PartialEq, Serialize)]
struct ExperimentLint {
    /// Experiment id, e.g. `fig4_range`.
    id: String,
    /// Number of pass plans the experiment recorded.
    plans: usize,
    /// Total draw calls across those plans.
    draws: usize,
    /// The lint report over the recorded plans.
    report: Report,
}

/// The full machine-readable `lint-plans` output.
#[derive(Debug, Clone, PartialEq, Serialize)]
struct LintPlansReport {
    /// Mirrors the smoke report schema version.
    schema_version: u32,
    /// Whether warnings fail the gate.
    strict: bool,
    /// One entry per linted experiment, in run order.
    experiments: Vec<ExperimentLint>,
    /// Error-severity findings across all experiments.
    errors: usize,
    /// Warning-severity findings across all experiments.
    warnings: usize,
}

struct Args {
    strict: bool,
    out: Option<PathBuf>,
    experiments: Vec<String>,
    self_test_broken: bool,
    trace_out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        strict: false,
        out: None,
        experiments: Vec::new(),
        self_test_broken: false,
        trace_out: None,
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| {
            argv.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--strict" => args.strict = true,
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--experiment" => args.experiments.push(value("--experiment")?),
            "--self-test-broken" => args.self_test_broken = true,
            "--trace-out" => args.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--help" | "-h" => {
                println!(
                    "lint-plans [--strict] [--out PATH] [--experiment ID]... \
                     [--self-test-broken] [--trace-out DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}; see --help")),
        }
    }
    Ok(args)
}

/// A deliberately broken plan: the occlusion query is begun but never
/// ended, so L001 must fire. Used by `--self-test-broken`.
fn broken_plan() -> PassPlan {
    let caps = DeviceCaps {
        has_depth_bounds: true,
        has_depth_compare_mask: false,
    };
    let mut state = PipelineState {
        color_mask: ColorMask::NONE,
        ..PipelineState::default()
    };
    state.depth.write_enabled = false;
    let mut plan = PassPlan::new("self-test/unpaired-occlusion", caps);
    plan.ops.push(PassOp::BeginOcclusionQuery);
    plan.ops.push(PassOp::Draw(DrawPass {
        state,
        program: None,
        env0: [0.0; 4],
        depth: 0.5,
        rects: 1,
        occlusion_active: true,
    }));
    plan
}

fn self_test() -> ExitCode {
    let plan = broken_plan();
    let diags = Linter::new().lint(&plan);
    let fired = diags.iter().any(|d| d.rule == "L001");
    for d in &diags {
        println!("{}: {d}", plan.label);
    }
    if fired {
        println!(
            "self-test ok: broken plan produced {} diagnostic(s) including L001",
            diags.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("self-test FAILED: unpaired occlusion query was not flagged");
        ExitCode::FAILURE
    }
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    if args.self_test_broken {
        return Ok(self_test());
    }

    let ids: Vec<String> = if args.experiments.is_empty() {
        SMOKE_EXPERIMENTS.iter().map(|s| s.to_string()).collect()
    } else {
        args.experiments.clone()
    };

    let linter = Linter::new();
    let mut experiments = Vec::with_capacity(ids.len());
    for id in &ids {
        let (_, plans) = smoke::run_one_traced(id).map_err(|e| format!("experiment {id}: {e}"))?;
        let report = linter.lint_all(&plans);
        let draws = plans.iter().map(PassPlan::draw_count).sum();
        println!(
            "{id:<22} {:>3} plan(s) {:>5} draw(s)  {} error(s), {} warning(s)",
            plans.len(),
            draws,
            report.error_count(),
            report.warning_count()
        );
        for plan_report in &report.plans {
            for d in &plan_report.diagnostics {
                println!("  {}: {d}", plan_report.label);
            }
        }
        if let Some(dir) = &args.trace_out {
            let (_, tree) = smoke::run_one_spanned(id, TraceLevel::Passes)
                .map_err(|e| format!("trace run {id}: {e}"))?;
            let paths = traceout::write_all(dir, id, &tree)
                .map_err(|e| format!("write traces for {id}: {e}"))?;
            println!(
                "  wrote {} ({} spans)",
                paths[0].display(),
                tree.span_count()
            );
        }
        experiments.push(ExperimentLint {
            id: id.clone(),
            plans: plans.len(),
            draws,
            report,
        });
    }

    let errors: usize = experiments.iter().map(|e| e.report.error_count()).sum();
    let warnings: usize = experiments.iter().map(|e| e.report.warning_count()).sum();
    let report = LintPlansReport {
        schema_version: SCHEMA_VERSION,
        strict: args.strict,
        experiments,
        errors,
        warnings,
    };
    if let Some(out) = &args.out {
        let json = serde_json::to_string_pretty(&report).map_err(|e| format!("serialize: {e}"))?;
        std::fs::write(out, json).map_err(|e| format!("write {}: {e}", out.display()))?;
        println!("wrote {}", out.display());
    }

    let failed = errors > 0 || (args.strict && warnings > 0);
    if failed {
        println!(
            "lint gate FAILED: {errors} error(s), {warnings} warning(s){}",
            if args.strict { " (strict)" } else { "" }
        );
        Ok(ExitCode::FAILURE)
    } else {
        println!(
            "lint gate PASSED: {} experiment(s), {warnings} warning(s)",
            report.experiments.len()
        );
        Ok(ExitCode::SUCCESS)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("lint-plans: {message}");
            ExitCode::FAILURE
        }
    }
}
