//! # gpudb-lint — static validation of GPU pass plans
//!
//! Every database operator in the reproduction (Compare §4.1, Semilinear
//! §4.2, EvalCNF §4.3, Range §4.4, KthLargest §4.5, Accumulator §4.6) is
//! a hand-assembled sequence of pipeline-state mutations, and a single
//! wrong stencil reference or forgotten color mask silently breaks the
//! paper's semantics — the simulator renders garbage at full modeled
//! cost. This crate checks a recorded [`PassPlan`] against the routines'
//! invariants *statically*, before (or without) executing a single
//! fragment.
//!
//! The IR comes from `gpudb_sim::trace`: enable tracing on a
//! [`gpudb_sim::Gpu`], run an operator, and feed the captured plans to a
//! [`Linter`]:
//!
//! ```
//! use gpudb_lint::Linter;
//! use gpudb_sim::trace::RecordMode;
//!
//! let mut gpu = gpudb_sim::Gpu::geforce_fx_5900(4, 4);
//! gpu.enable_tracing(RecordMode::RecordOnly);
//! gpu.begin_plan("demo");
//! gpu.begin_occlusion_query().unwrap();
//! gpu.draw_full_quad(0.5).unwrap();
//! // forgot end_occlusion_query!
//! let plans = gpu.take_plans();
//! let report = Linter::new().lint_all(&plans);
//! assert!(!report.is_clean());
//! assert_eq!(report.plans[0].diagnostics[0].rule, "L001");
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod rules;

use gpudb_sim::trace::PassPlan;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Suspicious but possibly intentional; strict mode still fails.
    Warning,
    /// A violated routine invariant; the plan is wrong.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding produced by a rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Id of the rule that fired, e.g. `"L001"`.
    pub rule: String,
    /// Finding severity (after any config overrides).
    pub severity: Severity,
    /// Index into [`PassPlan::ops`] of the offending operation, when the
    /// finding anchors to one.
    pub pass_index: Option<usize>,
    /// Human-readable statement of the defect.
    pub message: String,
    /// How to repair the plan.
    pub fix_hint: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.severity, self.rule)?;
        if let Some(i) = self.pass_index {
            write!(f, " op {i}")?;
        }
        write!(f, ": {} (fix: {})", self.message, self.fix_hint)
    }
}

/// A static check over one [`PassPlan`].
///
/// Rules inspect the recorded IR only — they never execute anything —
/// and append [`Diagnostic`]s for each violation found.
pub trait Rule {
    /// Stable rule id (`"L001"` … `"L010"`).
    fn id(&self) -> &'static str;
    /// One-line description, shown in reports and the rule catalog.
    fn description(&self) -> &'static str;
    /// Severity this rule emits unless overridden by [`LintConfig`].
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    /// Append a diagnostic for every violation in `plan`.
    fn check(&self, plan: &PassPlan, out: &mut Vec<Diagnostic>);
}

/// Per-rule allow/deny configuration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LintConfig {
    /// Rule ids whose findings are suppressed entirely.
    pub allow: Vec<String>,
    /// Rule ids whose findings are promoted to [`Severity::Error`].
    pub deny: Vec<String>,
}

impl LintConfig {
    /// Whether `rule` is suppressed.
    pub fn allows(&self, rule: &str) -> bool {
        self.allow.iter().any(|r| r == rule)
    }

    /// Whether `rule` is promoted to error severity.
    pub fn denies(&self, rule: &str) -> bool {
        self.deny.iter().any(|r| r == rule)
    }
}

/// Lint results for one plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanReport {
    /// The plan's label.
    pub label: String,
    /// Findings, ordered by op index then rule id.
    pub diagnostics: Vec<Diagnostic>,
}

/// Machine-readable lint results for a batch of plans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// One entry per linted plan, in input order.
    pub plans: Vec<PlanReport>,
}

impl Report {
    /// All findings across all plans.
    pub fn diagnostics(&self) -> impl Iterator<Item = &Diagnostic> {
        self.plans.iter().flat_map(|p| p.diagnostics.iter())
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether no rule fired at any severity.
    pub fn is_clean(&self) -> bool {
        self.diagnostics().next().is_none()
    }
}

/// The rule engine: a set of [`Rule`]s plus a [`LintConfig`].
pub struct Linter {
    rules: Vec<Box<dyn Rule>>,
    config: LintConfig,
}

impl Linter {
    /// A linter with the full default rule set and default config.
    pub fn new() -> Linter {
        Linter::with_config(LintConfig::default())
    }

    /// A linter with the full default rule set and an explicit config.
    pub fn with_config(config: LintConfig) -> Linter {
        Linter {
            rules: rules::default_rules(),
            config,
        }
    }

    /// A linter over an explicit rule set.
    pub fn with_rules(rules: Vec<Box<dyn Rule>>, config: LintConfig) -> Linter {
        Linter { rules, config }
    }

    /// Lint one plan, returning findings ordered by op index then rule.
    pub fn lint(&self, plan: &PassPlan) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for rule in &self.rules {
            if self.config.allows(rule.id()) {
                continue;
            }
            let start = out.len();
            rule.check(plan, &mut out);
            if self.config.denies(rule.id()) {
                for diag in &mut out[start..] {
                    diag.severity = Severity::Error;
                }
            }
        }
        out.sort_by(|a, b| (a.pass_index, &a.rule).cmp(&(b.pass_index, &b.rule)));
        out
    }

    /// Lint a batch of plans into a machine-readable [`Report`].
    pub fn lint_all(&self, plans: &[PassPlan]) -> Report {
        Report {
            plans: plans
                .iter()
                .map(|plan| PlanReport {
                    label: plan.label.clone(),
                    diagnostics: self.lint(plan),
                })
                .collect(),
        }
    }
}

impl Default for Linter {
    fn default() -> Linter {
        Linter::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpudb_sim::trace::{DeviceCaps, PassOp};

    fn caps() -> DeviceCaps {
        DeviceCaps {
            has_depth_bounds: true,
            has_depth_compare_mask: false,
        }
    }

    fn broken_plan() -> PassPlan {
        let mut plan = PassPlan::new("broken", caps());
        plan.ops.push(PassOp::BeginOcclusionQuery);
        plan
    }

    #[test]
    fn default_rules_have_unique_ids_and_descriptions() {
        let rules = rules::default_rules();
        assert_eq!(rules.len(), 10);
        let mut ids: Vec<_> = rules.iter().map(|r| r.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10, "duplicate rule ids");
        for rule in &rules {
            assert!(!rule.description().is_empty(), "{} undocumented", rule.id());
        }
    }

    #[test]
    fn allow_suppresses_a_rule() {
        let plan = broken_plan();
        assert!(!Linter::new().lint(&plan).is_empty());
        let linter = Linter::with_config(LintConfig {
            allow: vec!["L001".into()],
            deny: vec![],
        });
        assert!(linter.lint(&plan).is_empty());
    }

    #[test]
    fn deny_promotes_to_error() {
        // L010 (dead pass) is a warning by default.
        let mut plan = PassPlan::new("dead", caps());
        plan.ops.push(PassOp::Draw(rules::tests::masked_draw()));
        let diags = Linter::new().lint(&plan);
        assert_eq!(diags[0].severity, Severity::Warning);
        let linter = Linter::with_config(LintConfig {
            allow: vec![],
            deny: vec!["L010".into()],
        });
        let diags = linter.lint(&plan);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn report_counts_and_display() {
        let report = Linter::new().lint_all(&[broken_plan()]);
        assert!(!report.is_clean());
        assert_eq!(report.error_count(), 1);
        assert_eq!(report.warning_count(), 0);
        let text = report.plans[0].diagnostics[0].to_string();
        assert!(text.contains("L001"), "{text}");
        let json = serde_json::to_string(&report).unwrap();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
