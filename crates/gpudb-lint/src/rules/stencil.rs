//! Stencil-protocol rules: the {0,1,2} CNF encoding (L005) and
//! clear-before-write discipline (L006).

use super::{depth_can_fail, diag, establishes_stencil, stencil_write_possible, FULL_MASK};
use crate::{Diagnostic, Rule};
use gpudb_sim::trace::{PassOp, PassPlan};
use std::collections::BTreeSet;

/// **L005** — stencil values must stay inside the CNF encoding {0, 1, 2}.
///
/// EvalCNF §4.3 encodes clause progress in the stencil buffer with
/// exactly three values: 0 (rejected), and an alternating valid/marker
/// pair 1/2 maintained with `Incr`/`Decr`. The rule abstractly
/// interprets the plan — tracking the set of values the buffer can hold
/// after each clear and draw — and fires when any reachable value
/// exceeds 2, which means a mismatched reference or a missing cleanup
/// pass lets markers accumulate and later clauses match garbage.
///
/// Tracking starts at a `ClearStencil` — or at an *establishing* pass
/// (stencil test `Always`, full write mask, value-independent write
/// ops), which the fused selection protocols use in place of the clear:
/// it writes a definite value to every record pixel, so the set of
/// values reachable on record pixels is known from its ops alone.
/// Tracking is abandoned (soundly) when a pass uses a partial stencil
/// write mask, as the DNF bit-plane protocol does.
///
/// ```
/// use gpudb_lint::Linter;
/// use gpudb_sim::state::{ColorMask, CompareFunc, PipelineState, StencilOp};
/// use gpudb_sim::trace::{DeviceCaps, DrawPass, PassOp, PassPlan};
///
/// let caps = DeviceCaps { has_depth_bounds: true, has_depth_compare_mask: false };
/// let mut plan = PassPlan::new("boolean/eval_cnf_count", caps);
/// plan.ops.push(PassOp::ClearStencil { value: 2 }); // should be 1!
/// let mut state = PipelineState { color_mask: ColorMask::NONE, ..Default::default() };
/// state.depth.write_enabled = false;
/// state.stencil.enabled = true;
/// state.stencil.func = CompareFunc::Equal;
/// state.stencil.reference = 2;
/// state.stencil.op_zpass = StencilOp::Incr; // 2 -> 3: escapes the encoding
/// plan.ops.push(PassOp::Draw(DrawPass {
///     state, program: None, env0: [0.0; 4], depth: 0.5, rects: 1,
///     occlusion_active: false,
/// }));
/// let diags = Linter::new().lint(&plan);
/// assert!(diags.iter().any(|d| d.rule == "L005"));
/// ```
pub struct L005StencilEncodingOverflow;

impl Rule for L005StencilEncodingOverflow {
    fn id(&self) -> &'static str {
        "L005"
    }

    fn description(&self) -> &'static str {
        "stencil values must stay inside the CNF encoding {0, 1, 2}"
    }

    fn check(&self, plan: &PassPlan, out: &mut Vec<Diagnostic>) {
        // The set of values the stencil buffer can contain, or `None`
        // while contents are unknown (before any clear, or after a
        // partial-mask write).
        let mut values: Option<BTreeSet<u8>> = None;
        for (i, op) in plan.ops.iter().enumerate() {
            match op {
                PassOp::ClearStencil { value } => {
                    values = Some(BTreeSet::from([*value]));
                }
                PassOp::Draw(pass) => {
                    let st = &pass.state.stencil;
                    if !st.enabled {
                        continue;
                    }
                    if st.write_mask != FULL_MASK {
                        values = None;
                        continue;
                    }
                    let Some(current) = values.take() else {
                        // Unknown contents: an establishing pass defines
                        // every record pixel, so tracking can start here
                        // just as it would at a clear — but the values it
                        // establishes must themselves stay in encoding.
                        if establishes_stencil(pass) {
                            let mut seeded = BTreeSet::from([st.write(0, st.op_zpass)]);
                            if depth_can_fail(pass) {
                                seeded.insert(st.write(0, st.op_zfail));
                            }
                            if let Some(&max) = seeded.iter().next_back() {
                                if max > 2 {
                                    out.push(diag(
                                        self,
                                        i,
                                        format!(
                                            "establishing draw writes stencil value {max}, \
                                             outside the CNF encoding {{0, 1, 2}}"
                                        ),
                                        "an establishing first clause must replace with the \
                                         SELECTED value (1), not an arbitrary reference",
                                    ));
                                }
                            }
                            values = Some(seeded);
                        }
                        continue;
                    };
                    let mut next = BTreeSet::new();
                    for &v in &current {
                        // Pixels outside the drawn rects (or failing the
                        // depth-bounds test, which skips stencil updates)
                        // keep their value.
                        next.insert(v);
                        if st.test(v) {
                            if depth_can_fail(pass) {
                                next.insert(st.write(v, st.op_zfail));
                            }
                            next.insert(st.write(v, st.op_zpass));
                        } else {
                            next.insert(st.write(v, st.op_fail));
                        }
                    }
                    if let Some(&max) = next.iter().next_back() {
                        if max > 2 && !current.iter().any(|&v| v > 2) {
                            out.push(diag(
                                self,
                                i,
                                format!(
                                    "draw can push a stencil value to {max}, outside the CNF \
                                     encoding {{0, 1, 2}}"
                                ),
                                "check the clause reference values and Incr/Decr alternation \
                                 of Routine 4.3",
                            ));
                        }
                    }
                    values = Some(next);
                }
                _ => {}
            }
        }
    }
}

/// **L006** — a pass that can write the stencil buffer needs a
/// `ClearStencil` earlier in the plan.
///
/// The selection protocol (§4.3) starts every stencil-building routine
/// by clearing the buffer; writing over whatever a previous operator
/// left behind merges two unrelated selections. Read-only consumers —
/// the `stencil == SELECTED` masks of `KthLargest` §4.5 and Accumulator
/// §4.6, whose ops are all `Keep` — deliberately reuse the previous
/// selection and are exempt. So is an *establishing* pass (stencil test
/// `Always`, full write mask, value-independent write ops): the fused
/// selection protocols open with one instead of a `ClearStencil`, and it
/// defines every record pixel just as the clear would.
///
/// ```
/// use gpudb_lint::Linter;
/// use gpudb_sim::state::{ColorMask, CompareFunc, PipelineState, StencilOp};
/// use gpudb_sim::trace::{DeviceCaps, DrawPass, PassOp, PassPlan};
///
/// let caps = DeviceCaps { has_depth_bounds: true, has_depth_compare_mask: false };
/// let mut state = PipelineState { color_mask: ColorMask::NONE, ..Default::default() };
/// state.depth.write_enabled = false;
/// state.stencil.enabled = true;
/// state.stencil.func = CompareFunc::Equal;
/// state.stencil.reference = 1;
/// state.stencil.op_zpass = StencilOp::Replace; // writes, but nothing cleared
/// let mut plan = PassPlan::new("filter/cnf", caps);
/// plan.ops.push(PassOp::Draw(DrawPass {
///     state, program: None, env0: [0.0; 4], depth: 0.5, rects: 1,
///     occlusion_active: false,
/// }));
/// let diags = Linter::new().lint(&plan);
/// assert!(diags.iter().any(|d| d.rule == "L006"));
/// ```
pub struct L006StencilWriteWithoutClear;

impl Rule for L006StencilWriteWithoutClear {
    fn id(&self) -> &'static str {
        "L006"
    }

    fn description(&self) -> &'static str {
        "stencil-writing passes need a stencil clear earlier in the plan"
    }

    fn check(&self, plan: &PassPlan, out: &mut Vec<Diagnostic>) {
        let mut cleared = false;
        for (i, op) in plan.ops.iter().enumerate() {
            match op {
                PassOp::ClearStencil { .. } => cleared = true,
                // An establishing pass (fused protocols) defines every
                // record pixel it writes — it *is* the clear.
                PassOp::Draw(pass) if !cleared && establishes_stencil(pass) => cleared = true,
                PassOp::Draw(pass) if !cleared && stencil_write_possible(&pass.state.stencil) => {
                    out.push(diag(
                        self,
                        i,
                        "draw can write the stencil buffer but no ClearStencil precedes it \
                         in this plan",
                        "clear the stencil before building a selection, or use all-Keep ops \
                         to consume an existing one",
                    ));
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{masked_draw, plan};
    use super::*;
    use crate::Linter;
    use gpudb_sim::state::{CompareFunc, StencilOp};
    use gpudb_sim::trace::DrawPass;

    fn stencil_draw(
        func: CompareFunc,
        reference: u8,
        ops: (StencilOp, StencilOp, StencilOp),
    ) -> DrawPass {
        let mut pass = masked_draw();
        pass.state.stencil.enabled = true;
        pass.state.stencil.func = func;
        pass.state.stencil.reference = reference;
        pass.state.stencil.op_fail = ops.0;
        pass.state.stencil.op_zfail = ops.1;
        pass.state.stencil.op_zpass = ops.2;
        pass
    }

    #[test]
    fn cnf_alternation_stays_in_encoding() {
        // Routine 4.3 as implemented: clear 1; clause 1 promotes 1→2
        // (Incr), cleanup zeroes stragglers; clause 2 demotes 2→1 (Decr).
        let mut p = plan();
        p.ops.push(PassOp::ClearStencil { value: 1 });
        let mut promote = stencil_draw(
            CompareFunc::Equal,
            1,
            (StencilOp::Keep, StencilOp::Keep, StencilOp::Incr),
        );
        promote.state.depth.test_enabled = true;
        promote.state.depth.func = CompareFunc::Greater;
        p.ops.push(PassOp::Draw(promote.clone()));
        p.ops.push(PassOp::Draw(promote)); // second disjunct, same clause
        p.ops.push(PassOp::Draw(stencil_draw(
            CompareFunc::Equal,
            1,
            (StencilOp::Keep, StencilOp::Keep, StencilOp::Zero),
        )));
        let mut demote = stencil_draw(
            CompareFunc::Equal,
            2,
            (StencilOp::Keep, StencilOp::Keep, StencilOp::Decr),
        );
        demote.state.depth.test_enabled = true;
        demote.state.depth.func = CompareFunc::Less;
        p.ops.push(PassOp::Draw(demote));
        let diags = Linter::new().lint(&p);
        assert!(!diags.iter().any(|d| d.rule == "L005"), "{diags:?}");
    }

    #[test]
    fn missing_cleanup_overflows_encoding() {
        // Two Incr-promoting clauses with no Decr between them: 1→2→3.
        let mut p = plan();
        p.ops.push(PassOp::ClearStencil { value: 1 });
        for reference in [1u8, 2] {
            let mut pass = stencil_draw(
                CompareFunc::Equal,
                reference,
                (StencilOp::Keep, StencilOp::Keep, StencilOp::Incr),
            );
            pass.state.depth.test_enabled = true;
            pass.state.depth.func = CompareFunc::Greater;
            p.ops.push(PassOp::Draw(pass));
        }
        let l005: Vec<_> = Linter::new()
            .lint(&p)
            .into_iter()
            .filter(|d| d.rule == "L005")
            .collect();
        assert_eq!(l005.len(), 1, "{l005:?}");
        assert_eq!(l005[0].pass_index, Some(2));
    }

    #[test]
    fn partial_write_mask_abandons_tracking() {
        // The DNF protocol: reference 3 with write_mask 0x01 would be an
        // overflow under naive tracking, but partial masks exempt it.
        let mut p = plan();
        p.ops.push(PassOp::ClearStencil { value: 0 });
        let mut pass = stencil_draw(
            CompareFunc::Always,
            3,
            (StencilOp::Keep, StencilOp::Keep, StencilOp::Replace),
        );
        pass.state.stencil.write_mask = 0x02;
        p.ops.push(PassOp::Draw(pass.clone()));
        p.ops.push(PassOp::Draw(pass)); // still untracked afterwards
        assert!(!Linter::new().lint(&p).iter().any(|d| d.rule == "L005"));
    }

    #[test]
    fn read_only_masks_need_no_clear() {
        // KthLargest consuming a selection: Equal + all Keep, no clear.
        let mut p = plan();
        let mut pass = stencil_draw(
            CompareFunc::Equal,
            1,
            (StencilOp::Keep, StencilOp::Keep, StencilOp::Keep),
        );
        pass.occlusion_active = true;
        p.ops.push(PassOp::Draw(pass));
        let diags = Linter::new().lint(&p);
        assert!(!diags.iter().any(|d| d.rule == "L006"), "{diags:?}");
    }

    /// The fused conjunction's opening pass: Always/ref 1, Replace on
    /// depth-pass, Zero on depth-fail, under a failable depth test.
    fn establishing_draw(reference: u8) -> DrawPass {
        let mut pass = stencil_draw(
            CompareFunc::Always,
            reference,
            (StencilOp::Keep, StencilOp::Zero, StencilOp::Replace),
        );
        pass.state.depth.test_enabled = true;
        pass.state.depth.func = CompareFunc::Greater;
        pass
    }

    #[test]
    fn establishing_pass_satisfies_clear_before_write() {
        // The fused protocols open with an establishing pass and no
        // ClearStencil: L006 must accept it, and later writes after it.
        let mut p = plan();
        p.ops.push(PassOp::Draw(establishing_draw(1)));
        p.ops.push(PassOp::Draw(stencil_draw(
            CompareFunc::Equal,
            1,
            (StencilOp::Keep, StencilOp::Zero, StencilOp::Keep),
        )));
        let diags = Linter::new().lint(&p);
        assert!(!diags.iter().any(|d| d.rule == "L006"), "{diags:?}");
    }

    #[test]
    fn non_establishing_first_write_still_fires_l006() {
        // Incr depends on the previous value: not establishing.
        let mut p = plan();
        let mut pass = stencil_draw(
            CompareFunc::Always,
            1,
            (StencilOp::Keep, StencilOp::Keep, StencilOp::Incr),
        );
        pass.state.depth.test_enabled = true;
        pass.state.depth.func = CompareFunc::Greater;
        p.ops.push(PassOp::Draw(pass));
        assert!(Linter::new().lint(&p).iter().any(|d| d.rule == "L006"));

        // A partial write mask can leave stale bits: not establishing.
        let mut p = plan();
        let mut partial = establishing_draw(1);
        partial.state.stencil.write_mask = 0x0F;
        p.ops.push(PassOp::Draw(partial));
        assert!(Linter::new().lint(&p).iter().any(|d| d.rule == "L006"));
    }

    #[test]
    fn establishing_pass_seeds_l005_tracking() {
        // Established {0, 2} (the fused general CNF's first clause),
        // then an Incr at reference 2 pushes to 3: L005 must catch it
        // even though no ClearStencil ever ran.
        let mut p = plan();
        p.ops.push(PassOp::Draw(establishing_draw(2)));
        let mut bad = stencil_draw(
            CompareFunc::Equal,
            2,
            (StencilOp::Keep, StencilOp::Keep, StencilOp::Incr),
        );
        bad.state.depth.test_enabled = true;
        bad.state.depth.func = CompareFunc::Greater;
        p.ops.push(PassOp::Draw(bad));
        let l005: Vec<_> = Linter::new()
            .lint(&p)
            .into_iter()
            .filter(|d| d.rule == "L005")
            .collect();
        assert_eq!(l005.len(), 1, "{l005:?}");
        assert_eq!(l005[0].pass_index, Some(1));
    }

    #[test]
    fn fused_protocol_shape_is_clean() {
        // Establish {0, 2}, demote with Decr at 2, cleanup, count: the
        // fused general CNF's pass sequence stays inside the encoding.
        let mut p = plan();
        p.ops.push(PassOp::Draw(establishing_draw(2)));
        let mut demote = stencil_draw(
            CompareFunc::Equal,
            2,
            (StencilOp::Keep, StencilOp::Keep, StencilOp::Decr),
        );
        demote.state.depth.test_enabled = true;
        demote.state.depth.func = CompareFunc::Less;
        p.ops.push(PassOp::Draw(demote));
        p.ops.push(PassOp::Draw(stencil_draw(
            CompareFunc::Equal,
            2,
            (StencilOp::Keep, StencilOp::Keep, StencilOp::Zero),
        )));
        let diags = Linter::new().lint(&p);
        assert!(
            !diags.iter().any(|d| d.rule == "L005" || d.rule == "L006"),
            "{diags:?}"
        );
    }

    #[test]
    fn zero_write_mask_is_read_only() {
        let mut p = plan();
        let mut pass = stencil_draw(
            CompareFunc::Equal,
            1,
            (StencilOp::Zero, StencilOp::Zero, StencilOp::Zero),
        );
        pass.state.stencil.write_mask = 0;
        pass.occlusion_active = true;
        p.ops.push(PassOp::Draw(pass));
        assert!(!Linter::new().lint(&p).iter().any(|d| d.rule == "L006"));
    }
}
