//! Dead-pass detection (L010).

use super::{diag, draws, stencil_write_possible};
use crate::{Diagnostic, Rule, Severity};
use gpudb_sim::trace::PassPlan;

/// **L010** — every pass must have an observable effect.
///
/// Each draw in the paper's routines produces its result through one of
/// four channels: an active occlusion query (the counting routines), a
/// depth write (`CopyToDepth` §5.4), a stencil write (the selection
/// protocol of §4.3), or a color write (the mipmap/sort feedback
/// paths). A draw with the occlusion query inactive and every write
/// masked off renders fragments nothing can ever consume — it burns a
/// full pass of modeled fill rate for no observable effect, usually
/// because a query begin or a write-enable was dropped. Severity is
/// [`Severity::Warning`]: the pass is useless rather than wrong.
///
/// ```
/// use gpudb_lint::Linter;
/// use gpudb_sim::state::{ColorMask, PipelineState};
/// use gpudb_sim::trace::{DeviceCaps, DrawPass, PassOp, PassPlan};
///
/// let caps = DeviceCaps { has_depth_bounds: true, has_depth_compare_mask: false };
/// let mut state = PipelineState { color_mask: ColorMask::NONE, ..Default::default() };
/// state.depth.write_enabled = false; // no depth write, no stencil, no query
/// let mut plan = PassPlan::new("predicate/compare_count", caps);
/// plan.ops.push(PassOp::Draw(DrawPass {
///     state, program: None, env0: [0.0; 4], depth: 0.5, rects: 1,
///     occlusion_active: false, // forgot begin_occlusion_query!
/// }));
/// let diags = Linter::new().lint(&plan);
/// assert!(diags.iter().any(|d| d.rule == "L010"));
/// ```
pub struct L010DeadPass;

impl Rule for L010DeadPass {
    fn id(&self) -> &'static str {
        "L010"
    }

    fn description(&self) -> &'static str {
        "passes must write something or feed an occlusion query"
    }

    fn default_severity(&self) -> Severity {
        Severity::Warning
    }

    fn check(&self, plan: &PassPlan, out: &mut Vec<Diagnostic>) {
        for (i, pass) in draws(plan) {
            let observable = pass.occlusion_active
                || pass.state.color_mask.any()
                || pass.state.depth.write_enabled
                || stencil_write_possible(&pass.state.stencil);
            if !observable {
                out.push(diag(
                    self,
                    i,
                    "draw has no observable effect: no occlusion query, and color, depth and \
                     stencil writes are all masked off",
                    "begin an occlusion query or enable the write the pass exists to perform",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{masked_draw, plan};
    use super::*;
    use crate::Linter;
    use gpudb_sim::state::StencilOp;
    use gpudb_sim::trace::PassOp;

    #[test]
    fn fully_masked_draw_is_dead() {
        let mut p = plan();
        p.ops.push(PassOp::Draw(masked_draw()));
        let diags = Linter::new().lint(&p);
        assert!(diags.iter().any(|d| d.rule == "L010"));
        assert_eq!(diags[0].severity, Severity::Warning);
    }

    #[test]
    fn each_observable_channel_keeps_a_pass_alive() {
        let mut query = masked_draw();
        query.occlusion_active = true;
        let mut depth = masked_draw();
        depth.state.depth.write_enabled = true;
        let mut stencil = masked_draw();
        stencil.state.stencil.enabled = true;
        stencil.state.stencil.op_zpass = StencilOp::Replace;
        for pass in [query, depth, stencil] {
            let mut p = plan();
            p.ops.push(PassOp::ClearStencil { value: 0 });
            p.ops.push(PassOp::Draw(pass));
            let diags = Linter::new().lint(&p);
            assert!(!diags.iter().any(|d| d.rule == "L010"), "{diags:?}");
        }
    }
}
