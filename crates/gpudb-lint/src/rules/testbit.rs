//! `TestBit` bit-index validation (L008).

use super::{diag, draws};
use crate::{Diagnostic, Rule};
use gpudb_sim::trace::PassPlan;

/// Attribute width of the depth encoding (§3.3): values carry at most
/// 24 bits, so a `TestBit` pass may select bits `0..24` only.
const ATTRIBUTE_BITS: i64 = 24;

/// **L008** — a `TestBit` pass must select a bit index inside
/// `[0, 24)`.
///
/// Accumulator §4.6 sums a column bit-plane by bit-plane: pass `i`
/// binds the `TestBit` program with `env[ENV_SCALE].x = 0.5^(i+1)` so
/// the alpha test isolates bit `i`, and the occlusion count is shifted
/// by `i`. A scale that does not correspond to an integer bit index in
/// `[0, 24)` (24-bit attribute encoding, §3.3) silently contributes a
/// garbage partial sum.
///
/// ```
/// use gpudb_lint::Linter;
/// use gpudb_sim::state::{ColorMask, CompareFunc, PipelineState};
/// use gpudb_sim::trace::{DeviceCaps, DrawPass, PassOp, PassPlan, ProgramInfo};
///
/// let caps = DeviceCaps { has_depth_bounds: true, has_depth_compare_mask: false };
/// let mut state = PipelineState { color_mask: ColorMask::NONE, ..Default::default() };
/// state.depth.write_enabled = false;
/// state.alpha.enabled = true;
/// state.alpha.func = CompareFunc::GreaterEqual;
/// state.alpha.reference = 0.5;
/// let testbit = ProgramInfo {
///     name: "TestBit".into(), instructions: 5, writes_depth: false, has_kil: false,
/// };
/// let mut plan = PassPlan::new("aggregate/accumulator_sum", caps);
/// plan.ops.push(PassOp::Draw(DrawPass {
///     state,
///     program: Some(testbit),
///     env0: [0.5f32.powi(26), 0.0, 0.0, 0.0], // bit 25: out of range
///     depth: 0.0,
///     rects: 1,
///     occlusion_active: true,
/// }));
/// let diags = Linter::new().lint(&plan);
/// assert!(diags.iter().any(|d| d.rule == "L008"));
/// ```
pub struct L008TestBitOutOfRange;

impl Rule for L008TestBitOutOfRange {
    fn id(&self) -> &'static str {
        "L008"
    }

    fn description(&self) -> &'static str {
        "TestBit passes must select a bit index in [0, 24)"
    }

    fn check(&self, plan: &PassPlan, out: &mut Vec<Diagnostic>) {
        for (i, pass) in draws(plan) {
            let Some(program) = &pass.program else {
                continue;
            };
            if program.name != "TestBit" {
                continue;
            }
            let scale = f64::from(pass.env0[0]);
            let fix = "set env[ENV_SCALE].x = 0.5^(i+1) with 0 <= i < 24";
            if !(scale > 0.0 && scale.is_finite()) {
                out.push(diag(
                    self,
                    i,
                    format!("TestBit scale {scale} is not a positive power of 0.5"),
                    fix,
                ));
                continue;
            }
            // scale = 0.5^(i+1)  =>  i = -log2(scale) - 1.
            let exact = -scale.log2() - 1.0;
            let bit = exact.round();
            if (exact - bit).abs() > 1e-6 || !(0..ATTRIBUTE_BITS).contains(&(bit as i64)) {
                out.push(diag(
                    self,
                    i,
                    format!(
                        "TestBit scale {scale} selects bit {exact:.3}, outside [0, {ATTRIBUTE_BITS})"
                    ),
                    fix,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{masked_draw, plan};
    use crate::Linter;
    use gpudb_sim::trace::{PassOp, ProgramInfo};

    fn testbit_draw(scale: f32) -> PassOp {
        let mut pass = masked_draw();
        pass.program = Some(ProgramInfo {
            name: "TestBit".into(),
            instructions: 5,
            writes_depth: false,
            has_kil: false,
        });
        pass.env0 = [scale, 0.0, 0.0, 0.0];
        pass.occlusion_active = true;
        PassOp::Draw(pass)
    }

    #[test]
    fn all_valid_bits_are_clean() {
        let mut p = plan();
        for bit in 0..24 {
            p.ops.push(testbit_draw(0.5f32.powi(bit + 1)));
        }
        let diags = Linter::new().lint(&p);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn bit_24_zero_scale_and_non_power_are_flagged() {
        for scale in [0.5f32.powi(25), 0.0, 0.3] {
            let mut p = plan();
            p.ops.push(testbit_draw(scale));
            assert!(
                Linter::new().lint(&p).iter().any(|d| d.rule == "L008"),
                "scale {scale} should be flagged"
            );
        }
    }

    #[test]
    fn other_programs_ignore_env_scale() {
        let mut pass = masked_draw();
        pass.program = Some(ProgramInfo {
            name: "CopyToDepth".into(),
            instructions: 5,
            writes_depth: true,
            has_kil: false,
        });
        pass.state.depth.write_enabled = true;
        pass.env0 = [0.3, 0.0, 0.0, 0.0];
        let mut p = plan();
        p.ops.push(PassOp::Draw(pass));
        assert!(!Linter::new().lint(&p).iter().any(|d| d.rule == "L008"));
    }
}
