//! Occlusion-query discipline: pairing (L001) and read-after-write
//! hazards (L002).

use super::diag;
use crate::{Diagnostic, Rule};
use gpudb_sim::trace::{PassOp, PassPlan};

/// **L001** — every `BeginOcclusionQuery` must have a matching
/// `EndOcclusionQuery`, with no nesting.
///
/// Every counting routine in the paper (Compare §4.1, Range §4.4,
/// KthLargest §4.5, Accumulator §4.6) returns its result through
/// `NV_occlusion_query`; a begin without an end loses the count, and a
/// begin while another query is active merges two passes' counts.
///
/// ```
/// use gpudb_lint::{Linter, rules::L001UnpairedOcclusionQuery};
/// use gpudb_sim::trace::{DeviceCaps, PassOp, PassPlan};
///
/// let caps = DeviceCaps { has_depth_bounds: true, has_depth_compare_mask: false };
/// let mut plan = PassPlan::new("predicate/compare_count", caps);
/// plan.ops.push(PassOp::BeginOcclusionQuery); // never ended
/// let diags = Linter::new().lint(&plan);
/// assert!(diags.iter().any(|d| d.rule == "L001"));
/// ```
pub struct L001UnpairedOcclusionQuery;

impl Rule for L001UnpairedOcclusionQuery {
    fn id(&self) -> &'static str {
        "L001"
    }

    fn description(&self) -> &'static str {
        "occlusion queries must be begun and ended in strict pairs"
    }

    fn check(&self, plan: &PassPlan, out: &mut Vec<Diagnostic>) {
        let mut active: Option<usize> = None;
        for (i, op) in plan.ops.iter().enumerate() {
            match op {
                PassOp::BeginOcclusionQuery => {
                    if active.is_some() {
                        out.push(diag(
                            self,
                            i,
                            "BeginOcclusionQuery while a query is already active",
                            "end the active query before beginning another",
                        ));
                    }
                    active = Some(i);
                }
                PassOp::EndOcclusionQuery { .. } => {
                    if active.is_none() {
                        out.push(diag(
                            self,
                            i,
                            "EndOcclusionQuery without an active query",
                            "begin a query before ending one",
                        ));
                    }
                    active = None;
                }
                _ => {}
            }
        }
        if let Some(i) = active {
            out.push(diag(
                self,
                i,
                "occlusion query begun here is never ended",
                "call end_occlusion_query or end_occlusion_query_async before the plan ends",
            ));
        }
    }
}

/// **L002** — an occlusion result must not be read while its query is
/// still active (a read-after-write hazard).
///
/// The per-bit loops of KthLargest §4.5 and Accumulator §4.6 consume
/// each pass's count; fetching it before `EndOcclusionQuery` returns a
/// partial count for whatever fragments happened to have drained.
///
/// ```
/// use gpudb_lint::Linter;
/// use gpudb_sim::trace::{DeviceCaps, PassOp, PassPlan};
///
/// let caps = DeviceCaps { has_depth_bounds: true, has_depth_compare_mask: false };
/// let mut plan = PassPlan::new("aggregate/kth_largest", caps);
/// plan.ops.push(PassOp::BeginOcclusionQuery);
/// plan.ops.push(PassOp::ReadOcclusionResult); // before the end!
/// plan.ops.push(PassOp::EndOcclusionQuery { sync: true });
/// let diags = Linter::new().lint(&plan);
/// assert!(diags.iter().any(|d| d.rule == "L002"));
/// ```
pub struct L002OcclusionReadHazard;

impl Rule for L002OcclusionReadHazard {
    fn id(&self) -> &'static str {
        "L002"
    }

    fn description(&self) -> &'static str {
        "occlusion results must not be read before the query ends"
    }

    fn check(&self, plan: &PassPlan, out: &mut Vec<Diagnostic>) {
        let mut active = false;
        for (i, op) in plan.ops.iter().enumerate() {
            match op {
                PassOp::BeginOcclusionQuery => active = true,
                PassOp::EndOcclusionQuery { .. } => active = false,
                PassOp::ReadOcclusionResult if active => {
                    out.push(diag(
                        self,
                        i,
                        "occlusion result read while the query is still active",
                        "end the query (sync or async) before reading its count",
                    ));
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::plan;
    use super::*;
    use crate::Linter;

    #[test]
    fn balanced_queries_are_clean() {
        let mut p = plan();
        p.ops.push(PassOp::BeginOcclusionQuery);
        p.ops.push(PassOp::EndOcclusionQuery { sync: false });
        p.ops.push(PassOp::BeginOcclusionQuery);
        p.ops.push(PassOp::EndOcclusionQuery { sync: true });
        p.ops.push(PassOp::ReadOcclusionResult);
        let diags = Linter::new().lint(&p);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn double_begin_end_without_begin_and_dangling() {
        let mut p = plan();
        p.ops.push(PassOp::EndOcclusionQuery { sync: true }); // end w/o begin
        p.ops.push(PassOp::BeginOcclusionQuery);
        p.ops.push(PassOp::BeginOcclusionQuery); // double begin, dangles
        let diags: Vec<_> = Linter::new()
            .lint(&p)
            .into_iter()
            .filter(|d| d.rule == "L001")
            .collect();
        assert_eq!(diags.len(), 3, "{diags:?}");
        assert_eq!(diags[0].pass_index, Some(0));
        assert_eq!(diags[1].pass_index, Some(2));
    }

    #[test]
    fn read_after_end_is_clean() {
        let mut p = plan();
        p.ops.push(PassOp::BeginOcclusionQuery);
        p.ops.push(PassOp::EndOcclusionQuery { sync: true });
        p.ops.push(PassOp::ReadOcclusionResult);
        assert!(!Linter::new().lint(&p).iter().any(|d| d.rule == "L002"));
    }
}
