//! Depth-path rules: compare-pass purity (L003), 24-bit quantization
//! range (L007), and extension gating for depth bounds (L009).

use super::{diag, draws};
use crate::{Diagnostic, Rule};
use gpudb_sim::state::CompareFunc;
use gpudb_sim::trace::{PassOp, PassPlan};

/// **L003** — a comparison pass must not write depth.
///
/// Compare §4.1 copies the attribute into the depth buffer once, then
/// tests quads against it (`depth func = op.converse()`). If depth
/// writes stay enabled during such a pass, the constant's depth
/// overwrites the stored attributes and every later predicate against
/// the same column silently compares against garbage.
///
/// ```
/// use gpudb_lint::Linter;
/// use gpudb_sim::state::{ColorMask, CompareFunc, PipelineState};
/// use gpudb_sim::trace::{DeviceCaps, DrawPass, PassOp, PassPlan};
///
/// let caps = DeviceCaps { has_depth_bounds: true, has_depth_compare_mask: false };
/// let mut state = PipelineState { color_mask: ColorMask::NONE, ..Default::default() };
/// state.depth.test_enabled = true;
/// state.depth.func = CompareFunc::Greater;
/// state.depth.write_enabled = true; // forgot set_depth_write(false)!
/// let mut plan = PassPlan::new("predicate/compare_count", caps);
/// plan.ops.push(PassOp::Draw(DrawPass {
///     state, program: None, env0: [0.0; 4], depth: 0.5, rects: 1,
///     occlusion_active: true,
/// }));
/// let diags = Linter::new().lint(&plan);
/// assert!(diags.iter().any(|d| d.rule == "L003"));
/// ```
pub struct L003CompareDepthWrite;

impl Rule for L003CompareDepthWrite {
    fn id(&self) -> &'static str {
        "L003"
    }

    fn description(&self) -> &'static str {
        "depth writes must be disabled during comparison passes"
    }

    fn check(&self, plan: &PassPlan, out: &mut Vec<Diagnostic>) {
        for (i, pass) in draws(plan) {
            let depth = &pass.state.depth;
            if depth.test_enabled && depth.func != CompareFunc::Always && depth.write_enabled {
                out.push(diag(
                    self,
                    i,
                    format!(
                        "draw compares stored depth with {:?} while depth writes are enabled — \
                         the pass overwrites the attribute values it is comparing against",
                        depth.func
                    ),
                    "call set_depth_write(false) before the comparison pass",
                ));
            }
        }
    }
}

/// **L007** — depth values must stay inside the 24-bit quantization
/// range `[0, 1]`.
///
/// §3.3 of the paper encodes attributes into the depth buffer as
/// `value / 2^24`; a quad depth, clear depth, or depth-bounds bound
/// outside `[0, 1]` means the attribute or constant exceeded 24 bits
/// and would be clamped, corrupting every comparison against it.
///
/// ```
/// use gpudb_lint::Linter;
/// use gpudb_sim::trace::{DeviceCaps, PassOp, PassPlan};
///
/// let caps = DeviceCaps { has_depth_bounds: true, has_depth_compare_mask: false };
/// let mut plan = PassPlan::new("range/range_count", caps);
/// // encode_depth of a 25-bit constant: > 1.0.
/// plan.ops.push(PassOp::SetDepthBounds { enabled: true, min: 0.5, max: 2.0 });
/// let diags = Linter::new().lint(&plan);
/// assert!(diags.iter().any(|d| d.rule == "L007"));
/// ```
pub struct L007DepthOutOfRange;

impl Rule for L007DepthOutOfRange {
    fn id(&self) -> &'static str {
        "L007"
    }

    fn description(&self) -> &'static str {
        "depth values must lie in [0, 1] (the 24-bit quantization range)"
    }

    fn check(&self, plan: &PassPlan, out: &mut Vec<Diagnostic>) {
        let fix = "encode attributes with encode_depth (value / 2^24) and keep them under 24 bits";
        for (i, op) in plan.ops.iter().enumerate() {
            match op {
                PassOp::Draw(pass) if !(pass.depth >= 0.0 && pass.depth <= 1.0) => {
                    out.push(diag(
                        self,
                        i,
                        format!("quad depth {} outside [0, 1]", pass.depth),
                        fix,
                    ));
                }
                PassOp::ClearDepth { depth } if !(*depth >= 0.0 && *depth <= 1.0) => {
                    out.push(diag(
                        self,
                        i,
                        format!("clear depth {depth} outside [0, 1]"),
                        fix,
                    ));
                }
                PassOp::SetDepthBounds {
                    enabled: true,
                    min,
                    max,
                } if !(*min >= 0.0 && *max <= 1.0 && min <= max) => {
                    out.push(diag(
                        self,
                        i,
                        format!("depth bounds [{min}, {max}] not an ordered subrange of [0, 1]"),
                        fix,
                    ));
                }
                _ => {}
            }
        }
    }
}

/// **L009** — the depth-bounds test requires `EXT_depth_bounds_test`.
///
/// Range §4.4 evaluates `low <= attribute <= high` in a single pass via
/// the depth-bounds test — an NV35 extension. A plan drawing with depth
/// bounds enabled on a device that does not advertise the capability
/// would silently fall back to testing nothing.
///
/// ```
/// use gpudb_lint::Linter;
/// use gpudb_sim::state::{ColorMask, PipelineState};
/// use gpudb_sim::trace::{DeviceCaps, DrawPass, PassOp, PassPlan};
///
/// // A pre-NV35 device: no depth-bounds extension.
/// let caps = DeviceCaps { has_depth_bounds: false, has_depth_compare_mask: false };
/// let mut state = PipelineState { color_mask: ColorMask::NONE, ..Default::default() };
/// state.depth_bounds.enabled = true;
/// state.depth_bounds.min = 0.1;
/// state.depth_bounds.max = 0.9;
/// let mut plan = PassPlan::new("range/range_count", caps);
/// plan.ops.push(PassOp::Draw(DrawPass {
///     state, program: None, env0: [0.0; 4], depth: 0.1, rects: 1,
///     occlusion_active: true,
/// }));
/// let diags = Linter::new().lint(&plan);
/// assert!(diags.iter().any(|d| d.rule == "L009"));
/// ```
pub struct L009DepthBoundsUnsupported;

impl Rule for L009DepthBoundsUnsupported {
    fn id(&self) -> &'static str {
        "L009"
    }

    fn description(&self) -> &'static str {
        "depth-bounds test requires the EXT_depth_bounds_test capability"
    }

    fn check(&self, plan: &PassPlan, out: &mut Vec<Diagnostic>) {
        if plan.caps.has_depth_bounds {
            return;
        }
        for (i, pass) in draws(plan) {
            if pass.state.depth_bounds.enabled {
                out.push(diag(
                    self,
                    i,
                    "draw uses the depth-bounds test but the device lacks EXT_depth_bounds_test",
                    "gate the Range routine on HardwareProfile::has_depth_bounds or use two compare passes",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{masked_draw, plan};
    use super::*;
    use crate::Linter;
    use gpudb_sim::trace::DeviceCaps;

    #[test]
    fn copy_style_pass_is_clean() {
        // CopyToDepth: depth test disabled, writes enabled — not a
        // comparison pass, must not fire L003.
        let mut pass = masked_draw();
        pass.state.depth.test_enabled = false;
        pass.state.depth.write_enabled = true;
        let mut p = plan();
        p.ops.push(PassOp::Draw(pass));
        assert!(!Linter::new().lint(&p).iter().any(|d| d.rule == "L003"));
    }

    #[test]
    fn nan_depth_is_flagged() {
        let mut pass = masked_draw();
        pass.depth = f32::NAN;
        pass.occlusion_active = true; // keep L010 quiet
        let mut p = plan();
        p.ops.push(PassOp::Draw(pass));
        assert!(Linter::new().lint(&p).iter().any(|d| d.rule == "L007"));
    }

    #[test]
    fn inverted_bounds_are_flagged() {
        let mut p = plan();
        p.ops.push(PassOp::SetDepthBounds {
            enabled: true,
            min: 0.9,
            max: 0.1,
        });
        assert!(Linter::new().lint(&p).iter().any(|d| d.rule == "L007"));
    }

    #[test]
    fn depth_bounds_allowed_when_capability_present() {
        let mut pass = masked_draw();
        pass.state.depth_bounds.enabled = true;
        pass.occlusion_active = true;
        let mut p = plan(); // caps() has the extension
        p.ops.push(PassOp::Draw(pass.clone()));
        assert!(!Linter::new().lint(&p).iter().any(|d| d.rule == "L009"));

        let mut p = gpudb_sim::trace::PassPlan::new(
            "no-ext",
            DeviceCaps {
                has_depth_bounds: false,
                has_depth_compare_mask: false,
            },
        );
        p.ops.push(PassOp::Draw(pass));
        assert!(Linter::new().lint(&p).iter().any(|d| d.rule == "L009"));
    }
}
