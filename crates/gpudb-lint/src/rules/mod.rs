//! The default rule set: one module per invariant family.
//!
//! | Rule | Paper routine | Failure prevented |
//! |------|---------------|-------------------|
//! | [`L001UnpairedOcclusionQuery`] | all counting routines (§5.3) | lost / double-begun occlusion counts |
//! | [`L002OcclusionReadHazard`] | KthLargest §4.5, Accumulator §4.6 | reading a count before the query ends |
//! | [`L003CompareDepthWrite`] | Compare §4.1 | compare pass overwrites the stored attributes |
//! | [`L004ColorMaskEnabled`] | Predicates §4.1–§4.4, aggregates §4.5–§4.6 | shading cost + garbage color output in count-only passes |
//! | [`L005StencilEncodingOverflow`] | EvalCNF §4.3 | stencil values escaping the {0,1,2} clause encoding |
//! | [`L006StencilWriteWithoutClear`] | selection protocol (§4.3) | stencil writes over undefined buffer contents |
//! | [`L007DepthOutOfRange`] | attribute encoding §3.3 | values outside the 24-bit depth quantization |
//! | [`L008TestBitOutOfRange`] | Accumulator §4.6 | `TestBit` bit index outside `[0, 24)` |
//! | [`L009DepthBoundsUnsupported`] | Range §4.4 | using `EXT_depth_bounds_test` on hardware without it |
//! | [`L010DeadPass`] | all routines | passes whose writes nothing can ever observe |

mod color;
mod dead;
mod depth;
mod occlusion;
mod stencil;
mod testbit;

pub use color::L004ColorMaskEnabled;
pub use dead::L010DeadPass;
pub use depth::{L003CompareDepthWrite, L007DepthOutOfRange, L009DepthBoundsUnsupported};
pub use occlusion::{L001UnpairedOcclusionQuery, L002OcclusionReadHazard};
pub use stencil::{L005StencilEncodingOverflow, L006StencilWriteWithoutClear};
pub use testbit::L008TestBitOutOfRange;

use crate::{Diagnostic, Rule};
use gpudb_sim::state::{CompareFunc, StencilOp, StencilState};
use gpudb_sim::trace::{DrawPass, PassOp, PassPlan};

/// Every rule, in id order.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(L001UnpairedOcclusionQuery),
        Box::new(L002OcclusionReadHazard),
        Box::new(L003CompareDepthWrite),
        Box::new(L004ColorMaskEnabled),
        Box::new(L005StencilEncodingOverflow),
        Box::new(L006StencilWriteWithoutClear),
        Box::new(L007DepthOutOfRange),
        Box::new(L008TestBitOutOfRange),
        Box::new(L009DepthBoundsUnsupported),
        Box::new(L010DeadPass),
    ]
}

/// Iterate the draw calls of a plan with their op indices.
fn draws(plan: &PassPlan) -> impl Iterator<Item = (usize, &DrawPass)> {
    plan.ops.iter().enumerate().filter_map(|(i, op)| match op {
        PassOp::Draw(pass) => Some((i, pass)),
        _ => None,
    })
}

/// Whether a draw under this stencil state can modify the stencil
/// buffer: the test is enabled, some op is not `Keep`, and at least one
/// bit is writable. Read-only consumers of a selection (the paper's
/// `stencil == SELECTED` masks with all ops `Keep`) are exempt.
fn stencil_write_possible(st: &StencilState) -> bool {
    st.enabled
        && st.write_mask != 0
        && [st.op_fail, st.op_zfail, st.op_zpass]
            .iter()
            .any(|&op| op != StencilOp::Keep)
}

/// Whether the depth test of this draw can reject a fragment.
fn depth_can_fail(pass: &DrawPass) -> bool {
    pass.state.depth.test_enabled && pass.state.depth.func != CompareFunc::Always
}

/// A full-coverage stencil write mask — required both for L005's value
/// tracking and for a pass to count as *establishing* stencil contents.
const FULL_MASK: u8 = 0xFF;

/// Whether a draw **establishes** the stencil contents of every record
/// pixel it covers: the stencil test always passes, every bit is
/// writable, and each reachable outcome writes a value *independent of
/// the previous stencil contents* (`Replace` or `Zero`). The fused
/// selection protocols open with such a pass instead of a
/// `ClearStencil` — it defines the buffer just as a clear does, so L005
/// can seed value tracking from it and L006 treats it as the clear.
/// (`op_fail` is unreachable under an `Always` stencil test and is not
/// consulted.)
fn establishes_stencil(pass: &DrawPass) -> bool {
    let value_independent = |op: StencilOp| matches!(op, StencilOp::Replace | StencilOp::Zero);
    let st = &pass.state.stencil;
    st.enabled
        && st.func == CompareFunc::Always
        && st.write_mask == FULL_MASK
        && value_independent(st.op_zpass)
        && (!depth_can_fail(pass) || value_independent(st.op_zfail))
}

/// Build a diagnostic for `rule` anchored at op `index`.
fn diag(
    rule: &dyn Rule,
    index: usize,
    message: impl Into<String>,
    fix_hint: impl Into<String>,
) -> Diagnostic {
    Diagnostic {
        rule: rule.id().to_string(),
        severity: rule.default_severity(),
        pass_index: Some(index),
        message: message.into(),
        fix_hint: fix_hint.into(),
    }
}

/// Shared constructors for rule unit tests (and the engine tests in
/// `lib.rs`).
#[cfg(test)]
pub(crate) mod tests {
    use gpudb_sim::state::{ColorMask, PipelineState};
    use gpudb_sim::trace::{DeviceCaps, DrawPass, PassPlan};

    /// Caps matching the paper's NV35 (depth bounds, no compare mask).
    pub fn caps() -> DeviceCaps {
        DeviceCaps {
            has_depth_bounds: true,
            has_depth_compare_mask: false,
        }
    }

    /// An empty plan on NV35 caps.
    pub fn plan() -> PassPlan {
        PassPlan::new("test", caps())
    }

    /// A fixed-function draw with all writes masked off — observable by
    /// nothing, the canonical dead pass.
    pub fn masked_draw() -> DrawPass {
        let mut state = PipelineState {
            color_mask: ColorMask::NONE,
            ..PipelineState::default()
        };
        state.depth.write_enabled = false;
        DrawPass {
            state,
            program: None,
            env0: [0.0; 4],
            depth: 0.5,
            rects: 1,
            occlusion_active: false,
        }
    }
}
