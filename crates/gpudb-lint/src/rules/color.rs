//! Color-mask discipline in counting passes (L004).

use super::{depth_can_fail, diag, draws};
use crate::{Diagnostic, Rule};
use gpudb_sim::state::CompareFunc;
use gpudb_sim::trace::PassPlan;

/// **L004** — predicate and aggregate passes must disable color writes.
///
/// Every counting routine (Compare §4.1 through Accumulator §4.6)
/// consumes its result through the stencil buffer or an occlusion
/// query; the color buffer is dead weight. Leaving the color mask
/// enabled burns fill rate on a 2004-era card and, worse, scribbles
/// over a color buffer another routine (e.g. the mipmap reduction) may
/// be using. The rule fires on draws that are recognizably predicate or
/// aggregate passes — an occlusion query active, a non-trivial depth or
/// alpha test, or a stencil test consuming a selection — with any color
/// channel still writable.
///
/// ```
/// use gpudb_lint::Linter;
/// use gpudb_sim::state::{CompareFunc, PipelineState};
/// use gpudb_sim::trace::{DeviceCaps, DrawPass, PassOp, PassPlan};
///
/// let caps = DeviceCaps { has_depth_bounds: true, has_depth_compare_mask: false };
/// let mut state = PipelineState::default(); // color mask: all channels on!
/// state.depth.test_enabled = true;
/// state.depth.func = CompareFunc::Greater;
/// state.depth.write_enabled = false;
/// let mut plan = PassPlan::new("predicate/compare_count", caps);
/// plan.ops.push(PassOp::Draw(DrawPass {
///     state, program: None, env0: [0.0; 4], depth: 0.5, rects: 1,
///     occlusion_active: true,
/// }));
/// let diags = Linter::new().lint(&plan);
/// assert!(diags.iter().any(|d| d.rule == "L004"));
/// ```
pub struct L004ColorMaskEnabled;

impl Rule for L004ColorMaskEnabled {
    fn id(&self) -> &'static str {
        "L004"
    }

    fn description(&self) -> &'static str {
        "predicate/aggregate passes must disable color writes"
    }

    fn check(&self, plan: &PassPlan, out: &mut Vec<Diagnostic>) {
        for (i, pass) in draws(plan) {
            if !pass.state.color_mask.any() {
                continue;
            }
            let stencil = &pass.state.stencil;
            let counting_pass = pass.occlusion_active
                || depth_can_fail(pass)
                || pass.state.alpha.enabled
                || (stencil.enabled && stencil.func != CompareFunc::Always);
            if counting_pass {
                out.push(diag(
                    self,
                    i,
                    "counting pass (occlusion/depth/alpha/stencil test active) leaves color \
                     writes enabled",
                    "call set_color_mask(ColorMask::NONE) before predicate and aggregate passes",
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::{masked_draw, plan};
    use crate::Linter;
    use gpudb_sim::state::ColorMask;
    use gpudb_sim::trace::PassOp;

    #[test]
    fn plain_color_fill_is_allowed() {
        // Drawing color with no tests active (e.g. preparing a texture
        // source) is intentional, not a counting pass.
        let mut pass = masked_draw();
        pass.state.color_mask = ColorMask::default();
        let mut p = plan();
        p.ops.push(PassOp::Draw(pass));
        assert!(!Linter::new().lint(&p).iter().any(|d| d.rule == "L004"));
    }

    #[test]
    fn occlusion_counting_with_color_on_is_flagged() {
        let mut pass = masked_draw();
        pass.state.color_mask = ColorMask::default();
        pass.occlusion_active = true;
        let mut p = plan();
        p.ops.push(PassOp::Draw(pass));
        assert!(Linter::new().lint(&p).iter().any(|d| d.rule == "L004"));
    }

    #[test]
    fn masked_counting_pass_is_clean() {
        let mut pass = masked_draw(); // ColorMask::NONE
        pass.occlusion_active = true;
        let mut p = plan();
        p.ops.push(PassOp::Draw(pass));
        assert!(!Linter::new().lint(&p).iter().any(|d| d.rule == "L004"));
    }
}
