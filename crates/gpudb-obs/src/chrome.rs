//! Chrome trace-event JSON export.
//!
//! Produces the [Trace Event Format] consumed by Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing`: one complete
//! (`"ph":"X"`) event per span and one instant (`"ph":"i"`) event per
//! [`SpanEvent`](crate::SpanEvent). Timestamps are microseconds with
//! fixed three-decimal nanosecond precision, derived from the modeled
//! clock, so the output is byte-identical across runs.
//!
//! The vendored `serde_json` has no dynamic `Value` type, so the JSON is
//! assembled by hand; [`escape`] handles string escaping.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::{Span, SpanTree};
use gpudb_sim::stats::WorkCounters;
use std::fmt::Write;

/// Render a span tree as a Chrome trace-event JSON document.
pub fn trace_json(tree: &SpanTree) -> String {
    let mut events = Vec::new();
    tree.walk(|span, path| push_span(&mut events, span, path.len()));
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

/// Microseconds with three decimals (exact nanoseconds), the unit the
/// trace-event format expects.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// JSON string escaping for the hand-assembled document.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Non-zero counters as JSON `"key":value` pairs, in a fixed field order.
fn counter_args(counters: &WorkCounters) -> String {
    let fields: [(&str, u64); 9] = [
        ("fragments_generated", counters.fragments_generated),
        ("fragments_shaded", counters.fragments_shaded),
        (
            "fragments_early_rejected",
            counters.fragments_early_rejected,
        ),
        ("fragments_passed", counters.fragments_passed),
        ("program_instructions", counters.program_instructions),
        ("draw_calls", counters.draw_calls),
        ("occlusion_readbacks", counters.occlusion_readbacks),
        ("bytes_uploaded", counters.bytes_uploaded),
        ("bytes_read_back", counters.bytes_read_back),
    ];
    fields
        .iter()
        .filter(|(_, v)| *v != 0)
        .map(|(k, v)| format!(",\"{k}\":{v}"))
        .collect()
}

fn push_span(events: &mut Vec<String>, span: &Span, depth: usize) {
    events.push(format!(
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
         \"pid\":1,\"tid\":1,\"args\":{{\"depth\":{}{}}}}}",
        escape(&span.name),
        span.kind.name(),
        micros(span.start_ns),
        micros(span.duration_ns()),
        depth,
        counter_args(&span.counters),
    ));
    for event in &span.events {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":{},\"s\":\"t\",\
             \"pid\":1,\"tid\":1,\"args\":{{\"detail\":\"{}\"}}}}",
            escape(&event.name),
            micros(event.at_ns),
            escape(&event.detail),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpanEvent, TraceLevel};
    use gpudb_sim::span::SpanKind;

    fn tiny_tree() -> SpanTree {
        SpanTree {
            roots: vec![Span {
                kind: SpanKind::Operator,
                name: "filter/\"cnf\"".to_string(),
                start_ns: 1_234,
                end_ns: 5_678,
                counters: WorkCounters {
                    draw_calls: 3,
                    ..WorkCounters::default()
                },
                events: vec![SpanEvent {
                    name: "clear:depth".to_string(),
                    detail: "a\nb".to_string(),
                    at_ns: 2_000,
                }],
                children: Vec::new(),
            }],
        }
    }

    #[test]
    fn emits_complete_and_instant_events() {
        let json = trace_json(&tiny_tree());
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ts\":1.234"));
        assert!(json.contains("\"dur\":4.444"));
        assert!(json.contains("\"draw_calls\":3"));
        assert!(!json.contains("fragments_shaded"), "zero counters omitted");
    }

    #[test]
    fn escapes_quotes_and_control_characters() {
        let json = trace_json(&tiny_tree());
        assert!(json.contains("filter/\\\"cnf\\\""));
        assert!(json.contains("a\\nb"));
    }

    #[test]
    fn micros_formats_exact_nanoseconds() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(1_000), "1.000");
        assert_eq!(micros(1_234_567), "1234.567");
    }

    #[test]
    fn export_is_deterministic_for_a_real_device() {
        use gpudb_sim::device::Gpu;
        let run = || {
            let mut gpu = Gpu::geforce_fx_5900(8, 8);
            gpu.attach_span_sink(Box::new(crate::SpanCollector::new(TraceLevel::Full)));
            gpu.span_begin(SpanKind::Operator, "op");
            gpu.clear_depth(1.0);
            gpu.draw_full_quad(0.5).unwrap();
            gpu.span_end();
            let tree = crate::SpanCollector::recover(gpu.take_span_sink().unwrap())
                .unwrap()
                .finish();
            trace_json(&tree)
        };
        assert_eq!(run(), run());
    }
}
