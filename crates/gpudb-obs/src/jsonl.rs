//! JSONL span dump: one flat JSON object per span, depth-first.
//!
//! Unlike the Chrome export this keeps the full counter struct and the
//! span's ancestry path, making it convenient for `grep`/`jq`-style
//! analysis and for diffing traces between runs.

use crate::{SpanEvent, SpanTree};
use gpudb_sim::span::SpanKind;
use gpudb_sim::stats::WorkCounters;
use serde::Serialize;

/// One exported span, flattened for line-oriented consumption.
///
/// Owned fields only: the vendored `serde_derive` does not handle
/// generic (lifetime-parameterized) types.
#[derive(Debug, Clone, PartialEq, Serialize)]
struct SpanLine {
    /// Nesting depth (`0` for roots).
    depth: usize,
    /// Ancestor names joined with `/`, excluding this span.
    path: String,
    /// Span kind name.
    kind: String,
    /// Span name.
    name: String,
    /// Modeled clock at open, nanoseconds.
    start_ns: u64,
    /// Modeled clock at close, nanoseconds.
    end_ns: u64,
    /// Inclusive duration, nanoseconds.
    duration_ns: u64,
    /// Duration not covered by children, nanoseconds.
    self_ns: u64,
    /// Work counter deltas over the span.
    counters: WorkCounters,
    /// Instant events inside the span.
    events: Vec<SpanEvent>,
}

/// Render a span tree as JSONL, one span per line.
///
/// # Panics
/// Never: serialization of the plain-data [`SpanLine`] cannot fail.
pub fn spans(tree: &SpanTree) -> String {
    let mut out = String::new();
    tree.walk(|span, path| {
        let line = SpanLine {
            depth: path.len(),
            path: path.join("/"),
            kind: span.kind.name().to_string(),
            name: span.name.clone(),
            start_ns: span.start_ns,
            end_ns: span.end_ns,
            duration_ns: span.duration_ns(),
            self_ns: span.self_ns(),
            counters: span.counters,
            events: span.events.clone(),
        };
        out.push_str(&serde_json::to_string(&line).expect("span serialization"));
        out.push('\n');
    });
    out
}

/// All distinct span kinds, useful to documentation and tests.
pub const ALL_KINDS: [SpanKind; 7] = [
    SpanKind::Query,
    SpanKind::Stage,
    SpanKind::Operator,
    SpanKind::Pass,
    SpanKind::Readback,
    SpanKind::Upload,
    SpanKind::Other,
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Span;

    #[test]
    fn one_line_per_span_with_paths() {
        let tree = SpanTree {
            roots: vec![Span {
                kind: SpanKind::Query,
                name: "q".to_string(),
                start_ns: 0,
                end_ns: 10,
                counters: WorkCounters::default(),
                events: Vec::new(),
                children: vec![Span {
                    kind: SpanKind::Operator,
                    name: "op".to_string(),
                    start_ns: 2,
                    end_ns: 8,
                    counters: WorkCounters::default(),
                    events: Vec::new(),
                    children: Vec::new(),
                }],
            }],
        };
        let text = spans(&tree);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"name\":\"q\""));
        assert!(lines[0].contains("\"depth\":0"));
        assert!(lines[1].contains("\"path\":\"q\""));
        assert!(lines[1].contains("\"duration_ns\":6"));
    }
}
