//! Folded-stack flamegraph export.
//!
//! One line per span in `frame;frame;frame weight` form, where the weight
//! is the span's *self* time in modeled nanoseconds — the format consumed
//! by Brendan Gregg's `flamegraph.pl` and by `inferno-flamegraph`.
//! Frame separators (`;`) inside span names are replaced with `:` so the
//! stack structure survives arbitrary names.

use crate::SpanTree;

/// Render a span tree as folded-stack lines, one span per line.
pub fn folded(tree: &SpanTree) -> String {
    let mut out = String::new();
    tree.walk(|span, path| {
        for frame in path {
            out.push_str(&sanitize(frame));
            out.push(';');
        }
        out.push_str(&sanitize(&span.name));
        out.push(' ');
        out.push_str(&span.self_ns().to_string());
        out.push('\n');
    });
    out
}

/// Make a span name safe for use as a folded-stack frame.
fn sanitize(name: &str) -> String {
    name.replace([';', '\n'], ":")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Span;
    use gpudb_sim::span::SpanKind;
    use gpudb_sim::stats::WorkCounters;

    fn span(name: &str, start: u64, end: u64, children: Vec<Span>) -> Span {
        Span {
            kind: SpanKind::Operator,
            name: name.to_string(),
            start_ns: start,
            end_ns: end,
            counters: WorkCounters::default(),
            events: Vec::new(),
            children,
        }
    }

    #[test]
    fn emits_self_time_per_stack() {
        let tree = SpanTree {
            roots: vec![span(
                "query",
                0,
                100,
                vec![
                    span("op;a", 10, 40, Vec::new()),
                    span("op-b", 40, 90, Vec::new()),
                ],
            )],
        };
        assert_eq!(folded(&tree), "query 20\nquery;op:a 30\nquery;op-b 50\n");
    }
}
