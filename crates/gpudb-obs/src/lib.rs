//! # gpudb-obs — deterministic hierarchical tracing for gpudb
//!
//! The simulated device ([`gpudb_sim::device::Gpu`]) drives a
//! [`SpanSink`](gpudb_sim::span::SpanSink) with begin/end pairs and instant
//! events, timestamped on the **modeled clock** (cumulative modeled cost in
//! nanoseconds) rather than wall clock. This crate provides the standard
//! sink — [`SpanCollector`] — which assembles those callbacks into a
//! [`SpanTree`] (`query → plan stage → operator → pass/readback/upload`),
//! plus three exporters:
//!
//! * [`chrome::trace_json`] — Chrome trace-event JSON, loadable in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`;
//! * [`flame::folded`] — folded-stack lines for `flamegraph.pl` /
//!   `inferno-flamegraph`;
//! * [`jsonl::spans`] — one flat JSON object per span, for ad-hoc
//!   analysis with line-oriented tools.
//!
//! Because every timestamp derives from the deterministic cost model, two
//! runs of the same workload produce **byte-identical** exports; CI
//! enforces this on the smoke experiments.
//!
//! ## Example
//!
//! ```
//! use gpudb_obs::{SpanCollector, TraceLevel};
//! use gpudb_sim::device::Gpu;
//! use gpudb_sim::span::SpanKind;
//!
//! let mut gpu = Gpu::geforce_fx_5900(4, 4);
//! gpu.attach_span_sink(Box::new(SpanCollector::new(TraceLevel::Passes)));
//! gpu.span_begin(SpanKind::Operator, "count");
//! gpu.draw_full_quad(0.5).unwrap();
//! gpu.span_end();
//! let tree = SpanCollector::recover(gpu.take_span_sink().unwrap())
//!     .unwrap()
//!     .finish();
//! assert_eq!(tree.roots.len(), 1);
//! assert_eq!(tree.roots[0].children[0].name, "pass:fixed-function");
//! let json = gpudb_obs::chrome::trace_json(&tree);
//! assert!(json.starts_with("{\"traceEvents\":["));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod chrome;
pub mod flame;
pub mod jsonl;

use gpudb_sim::span::{SpanKind, SpanSink};
use gpudb_sim::stats::WorkCounters;
use serde::{Deserialize, Serialize};
use std::any::Any;

/// A zero-duration event attached to a span (clear, occlusion begin, ...).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Event name, e.g. `clear:depth`.
    pub name: String,
    /// Free-form detail (often empty; occlusion ends carry the count).
    pub detail: String,
    /// Modeled-clock timestamp in nanoseconds.
    pub at_ns: u64,
}

/// One node of the span tree: a named interval on the modeled clock with
/// the device work it enclosed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Level in the hierarchy.
    pub kind: SpanKind,
    /// Span name, e.g. `filter/cnf` or `pass:TestBit`.
    pub name: String,
    /// Modeled clock at open, nanoseconds.
    pub start_ns: u64,
    /// Modeled clock at close, nanoseconds.
    pub end_ns: u64,
    /// Device work counters accumulated while the span was open.
    pub counters: WorkCounters,
    /// Instant events recorded inside this span (only at
    /// [`TraceLevel::Full`]).
    pub events: Vec<SpanEvent>,
    /// Child spans, in open order.
    pub children: Vec<Span>,
}

impl Span {
    /// Inclusive duration on the modeled clock.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Duration not covered by child spans (flamegraph "self time").
    pub fn self_ns(&self) -> u64 {
        let children: u64 = self.children.iter().map(Span::duration_ns).sum();
        self.duration_ns().saturating_sub(children)
    }

    /// Number of spans in this subtree, including `self`.
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(Span::span_count).sum::<usize>()
    }

    /// Depth-first visit of this subtree; `depth` starts at `0` for
    /// `self` and the `path` slice holds the names of the ancestors.
    fn walk_inner<'a>(&'a self, path: &mut Vec<&'a str>, f: &mut dyn FnMut(&'a Span, &[&str])) {
        f(self, path);
        path.push(&self.name);
        for child in &self.children {
            child.walk_inner(path, f);
        }
        path.pop();
    }
}

/// A forest of completed spans, as assembled by [`SpanCollector`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SpanTree {
    /// Top-level spans, in open order.
    pub roots: Vec<Span>,
}

impl SpanTree {
    /// Total number of spans in the tree.
    pub fn span_count(&self) -> usize {
        self.roots.iter().map(Span::span_count).sum()
    }

    /// Depth-first visit of every span. The callback receives the span and
    /// the names of its ancestors, outermost first.
    pub fn walk<'a>(&'a self, mut f: impl FnMut(&'a Span, &[&str])) {
        let mut path = Vec::new();
        for root in &self.roots {
            root.walk_inner(&mut path, &mut f);
        }
    }

    /// All spans of a given kind, in depth-first order.
    pub fn spans_of_kind(&self, kind: SpanKind) -> Vec<&Span> {
        let mut out = Vec::new();
        self.walk(|span, _| {
            if span.kind == kind {
                out.push(span);
            }
        });
        out
    }
}

/// Merge the per-shard traces of a sharded query into one tree: a
/// synthetic `query` root with one `shard-{i}` stage child per shard, in
/// shard order, each holding that shard's root spans.
///
/// Every shard device runs its own modeled clock starting at `t = 0`, so
/// shard timestamps overlap rather than interleave — which is exactly the
/// parallel-execution semantics. The root's extent is the slowest shard's
/// extent (the critical path) and its counters are the sum of all shard
/// work.
pub fn merge_shard_trees(shards: Vec<SpanTree>) -> SpanTree {
    let mut children = Vec::with_capacity(shards.len());
    let mut counters = WorkCounters::default();
    let mut end_ns = 0u64;
    for (i, tree) in shards.into_iter().enumerate() {
        let shard_end = tree.roots.iter().map(|s| s.end_ns).max().unwrap_or(0);
        let shard_counters = tree
            .roots
            .iter()
            .fold(WorkCounters::default(), |acc, s| acc.plus(&s.counters));
        end_ns = end_ns.max(shard_end);
        counters = counters.plus(&shard_counters);
        children.push(Span {
            kind: SpanKind::Stage,
            name: format!("shard-{i}"),
            start_ns: 0,
            end_ns: shard_end,
            counters: shard_counters,
            events: Vec::new(),
            children: tree.roots,
        });
    }
    SpanTree {
        roots: vec![Span {
            kind: SpanKind::Query,
            name: "query".to_string(),
            start_ns: 0,
            end_ns,
            counters,
            events: Vec::new(),
            children,
        }],
    }
}

/// How much of the span hierarchy a [`SpanCollector`] keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceLevel {
    /// Query, plan-stage, and operator spans only.
    Operators,
    /// Everything down to device leaves (passes, readbacks, uploads).
    Passes,
    /// All spans plus instant events (clears, occlusion markers).
    Full,
}

impl TraceLevel {
    /// Whether spans of `kind` are kept at this level.
    fn keeps(self, kind: SpanKind) -> bool {
        match self {
            TraceLevel::Operators => kind.depth() <= SpanKind::Operator.depth(),
            TraceLevel::Passes | TraceLevel::Full => true,
        }
    }
}

/// An open span under construction.
struct Frame {
    span: Span,
    kept: bool,
    begin_counters: WorkCounters,
}

/// The standard [`SpanSink`]: assembles device callbacks into a
/// [`SpanTree`], filtering by [`TraceLevel`].
///
/// Attach with [`gpudb_sim::device::Gpu::attach_span_sink`], detach with
/// `take_span_sink`, downcast back with [`SpanCollector::recover`], and
/// call [`SpanCollector::finish`] to obtain the tree. The collector
/// tolerates unbalanced calls: an `end` with nothing open is ignored, and
/// `finish` closes any spans an error path left open at the last observed
/// clock value.
pub struct SpanCollector {
    level: TraceLevel,
    roots: Vec<Span>,
    stack: Vec<Frame>,
    last_clock_ns: u64,
}

impl SpanCollector {
    /// Create an empty collector keeping spans at `level`.
    pub fn new(level: TraceLevel) -> SpanCollector {
        SpanCollector {
            level,
            roots: Vec::new(),
            stack: Vec::new(),
            last_clock_ns: 0,
        }
    }

    /// The level this collector filters at.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Downcast a sink taken from the device back into a collector.
    /// Returns `None` when the sink is some other [`SpanSink`] impl.
    pub fn recover(sink: Box<dyn SpanSink>) -> Option<SpanCollector> {
        sink.into_any().downcast::<SpanCollector>().ok().map(|b| *b)
    }

    /// Close any still-open spans and return the assembled tree.
    pub fn finish(mut self) -> SpanTree {
        while !self.stack.is_empty() {
            let clock = self.last_clock_ns;
            let counters = self
                .stack
                .last()
                .map(|f| f.begin_counters)
                .unwrap_or_default();
            // Close with a zero counter delta: we cannot know the device's
            // counters here, only that the span ends at the last clock.
            self.close_top(clock, &counters);
        }
        SpanTree { roots: self.roots }
    }

    /// Pop the top frame, stamp its end, and attach it (or its children,
    /// when filtered) to the parent.
    fn close_top(&mut self, clock_ns: u64, counters: &WorkCounters) {
        let Some(mut frame) = self.stack.pop() else {
            return;
        };
        frame.span.end_ns = clock_ns.max(frame.span.start_ns);
        frame.span.counters = counters.since(&frame.begin_counters);
        let dest = match self.stack.last_mut() {
            Some(parent) => &mut parent.span.children,
            None => &mut self.roots,
        };
        if frame.kept {
            dest.push(frame.span);
        } else {
            // A filtered span is spliced out; its kept children move up.
            dest.append(&mut frame.span.children);
        }
    }
}

impl SpanSink for SpanCollector {
    fn begin_span(&mut self, kind: SpanKind, name: &str, clock_ns: u64, counters: &WorkCounters) {
        self.last_clock_ns = clock_ns;
        self.stack.push(Frame {
            span: Span {
                kind,
                name: name.to_string(),
                start_ns: clock_ns,
                end_ns: clock_ns,
                counters: WorkCounters::default(),
                events: Vec::new(),
                children: Vec::new(),
            },
            kept: self.level.keeps(kind),
            begin_counters: *counters,
        });
    }

    fn end_span(&mut self, clock_ns: u64, counters: &WorkCounters) {
        self.last_clock_ns = clock_ns;
        self.close_top(clock_ns, counters);
    }

    fn instant(&mut self, name: &str, detail: &str, clock_ns: u64) {
        self.last_clock_ns = clock_ns;
        if self.level != TraceLevel::Full {
            return;
        }
        if let Some(frame) = self.stack.last_mut() {
            frame.span.events.push(SpanEvent {
                name: name.to_string(),
                detail: detail.to_string(),
                at_ns: clock_ns,
            });
        }
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(draws: u64) -> WorkCounters {
        WorkCounters {
            draw_calls: draws,
            ..WorkCounters::default()
        }
    }

    #[test]
    fn merge_shard_trees_wraps_shards_under_one_query_root() {
        let shard = |end: u64, draws: u64| SpanTree {
            roots: vec![Span {
                kind: SpanKind::Stage,
                name: "selection".into(),
                start_ns: 0,
                end_ns: end,
                counters: counters(draws),
                events: Vec::new(),
                children: Vec::new(),
            }],
        };
        let merged = merge_shard_trees(vec![shard(100, 2), shard(250, 3)]);
        assert_eq!(merged.roots.len(), 1);
        let root = &merged.roots[0];
        assert_eq!(root.kind, SpanKind::Query);
        // Critical path: the slowest shard bounds the merged extent.
        assert_eq!(root.end_ns, 250);
        assert_eq!(root.counters.draw_calls, 5);
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[0].name, "shard-0");
        assert_eq!(root.children[1].name, "shard-1");
        assert_eq!(root.children[1].end_ns, 250);
        assert_eq!(root.children[0].children[0].name, "selection");
    }

    #[test]
    fn collector_nests_spans_and_diffs_counters() {
        let mut c = SpanCollector::new(TraceLevel::Full);
        c.begin_span(SpanKind::Query, "q", 0, &counters(0));
        c.begin_span(SpanKind::Operator, "op", 10, &counters(1));
        c.begin_span(SpanKind::Pass, "pass:TestBit", 10, &counters(1));
        c.end_span(40, &counters(2));
        c.instant("clear:depth", "", 40);
        c.end_span(50, &counters(2));
        c.end_span(60, &counters(2));
        let tree = c.finish();

        assert_eq!(tree.span_count(), 3);
        let q = &tree.roots[0];
        assert_eq!((q.start_ns, q.end_ns, q.duration_ns()), (0, 60, 60));
        assert_eq!(q.counters.draw_calls, 2);
        let op = &q.children[0];
        assert_eq!(op.name, "op");
        assert_eq!(op.counters.draw_calls, 1);
        assert_eq!(op.self_ns(), 40 - 30);
        assert_eq!(
            op.events,
            vec![SpanEvent {
                name: "clear:depth".into(),
                detail: "".into(),
                at_ns: 40,
            }]
        );
        let pass = &op.children[0];
        assert_eq!(pass.duration_ns(), 30);
        assert_eq!(pass.self_ns(), 30);
    }

    #[test]
    fn operator_level_splices_out_pass_leaves() {
        let mut c = SpanCollector::new(TraceLevel::Operators);
        c.begin_span(SpanKind::Operator, "op", 0, &counters(0));
        c.begin_span(SpanKind::Pass, "pass:A", 0, &counters(0));
        c.end_span(5, &counters(1));
        c.instant("clear:depth", "", 5);
        c.end_span(9, &counters(1));
        let tree = c.finish();
        assert_eq!(tree.span_count(), 1);
        let op = &tree.roots[0];
        assert!(op.children.is_empty());
        assert!(op.events.is_empty(), "events dropped below Full");
        assert_eq!(op.duration_ns(), 9);
    }

    #[test]
    fn unbalanced_calls_are_tolerated() {
        let mut c = SpanCollector::new(TraceLevel::Passes);
        c.end_span(5, &counters(0)); // end with nothing open: ignored
        c.begin_span(SpanKind::Query, "q", 10, &counters(0));
        c.begin_span(SpanKind::Operator, "op", 20, &counters(0));
        // finish() closes both open spans at the last observed clock.
        let tree = c.finish();
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].end_ns, 20);
        assert_eq!(tree.roots[0].children[0].end_ns, 20);
    }

    #[test]
    fn recover_roundtrip() {
        let sink: Box<dyn SpanSink> = Box::new(SpanCollector::new(TraceLevel::Full));
        let c = SpanCollector::recover(sink).unwrap();
        assert_eq!(c.level(), TraceLevel::Full);
    }

    #[test]
    fn tree_walk_reports_paths() {
        let mut c = SpanCollector::new(TraceLevel::Passes);
        c.begin_span(SpanKind::Query, "q", 0, &counters(0));
        c.begin_span(SpanKind::Operator, "op", 0, &counters(0));
        c.end_span(1, &counters(0));
        c.end_span(2, &counters(0));
        let tree = c.finish();
        let mut seen = Vec::new();
        tree.walk(|span, path| seen.push((span.name.clone(), path.join(";"))));
        assert_eq!(
            seen,
            vec![
                ("q".to_string(), String::new()),
                ("op".to_string(), "q".to_string())
            ]
        );
        assert_eq!(tree.spans_of_kind(SpanKind::Operator).len(), 1);
    }
}
