//! Property-based tests for the query planner and executor: any boolean
//! filter expression over simple predicates must select exactly the
//! records a direct row-by-row evaluation of the expression selects —
//! regardless of which physical plan (CNF, conjunction fast path, or
//! depth-bounds range) the planner chooses.

use gpudb_core::query::{execute, plan_selection, Aggregate, BoolExpr, Query, SelectionPlan};
use gpudb_core::table::GpuTable;
use gpudb_sim::CompareFunc;
use proptest::prelude::*;

const OPS: [CompareFunc; 6] = [
    CompareFunc::Less,
    CompareFunc::LessEqual,
    CompareFunc::Greater,
    CompareFunc::GreaterEqual,
    CompareFunc::Equal,
    CompareFunc::NotEqual,
];

const COLUMNS: [&str; 2] = ["a", "b"];

/// Host-side truth semantics of a filter expression.
fn eval_expr(expr: &BoolExpr, row: &[u32]) -> bool {
    match expr {
        BoolExpr::Pred {
            column,
            op,
            constant,
        } => {
            let idx = COLUMNS.iter().position(|c| c == column).unwrap();
            op.eval(row[idx], *constant)
        }
        BoolExpr::Between { column, low, high } => {
            let idx = COLUMNS.iter().position(|c| c == column).unwrap();
            row[idx] >= *low && row[idx] <= *high
        }
        BoolExpr::And(x, y) => eval_expr(x, row) && eval_expr(y, row),
        BoolExpr::Or(x, y) => eval_expr(x, row) || eval_expr(y, row),
        BoolExpr::Not(x) => !eval_expr(x, row),
        other => unreachable!("not generated: {other:?}"),
    }
}

/// Random boolean expression trees over predicates and BETWEENs.
fn expr_strategy() -> impl Strategy<Value = BoolExpr> {
    let leaf = prop_oneof![
        (0usize..2, 0usize..6, 0u32..64).prop_map(|(col, op, c)| BoolExpr::Pred {
            column: COLUMNS[col].to_string(),
            op: OPS[op],
            constant: c,
        }),
        (0usize..2, 0u32..64, 0u32..64).prop_map(|(col, x, y)| BoolExpr::Between {
            column: COLUMNS[col].to_string(),
            low: x.min(y),
            high: x.max(y),
        }),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| BoolExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| BoolExpr::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| BoolExpr::Not(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn planned_execution_matches_row_semantics(
        col_a in prop::collection::vec(0u32..64, 30..60),
        col_b in prop::collection::vec(0u32..64, 30..60),
        expr in expr_strategy(),
    ) {
        let n = col_a.len().min(col_b.len());
        let a = &col_a[..n];
        let b = &col_b[..n];
        let mut gpu = GpuTable::device_for(n, 8);
        let table = GpuTable::upload(&mut gpu, "t", &[("a", a), ("b", b)]).unwrap();

        let query = Query::filtered(vec![Aggregate::Count], expr.clone());
        let result = execute(&mut gpu, &table, &query);
        let out = match result {
            Ok(out) => out,
            // The only legitimate failure is the CNF clause-explosion guard.
            Err(gpudb_core::EngineError::InvalidQuery(msg)) => {
                prop_assert!(msg.contains("clauses"), "unexpected InvalidQuery: {}", msg);
                return Ok(());
            }
            Err(other) => return Err(TestCaseError::fail(format!("{other}"))),
        };

        let expected = (0..n)
            .filter(|&i| eval_expr(&expr, &[a[i], b[i]]))
            .count() as u64;
        prop_assert_eq!(out.matched, expected, "expr: {:?}", expr);
    }

    #[test]
    fn range_patterns_get_range_plans(
        col in 0usize..2,
        x in 0u32..1000,
        y in 0u32..1000,
    ) {
        let (low, high) = (x.min(y), x.max(y));
        let values: Vec<u32> = (0..20).collect();
        let mut gpu = GpuTable::device_for(20, 5);
        let table = GpuTable::upload(&mut gpu, "t", &[("a", &values), ("b", &values)]).unwrap();

        // Both spellings must produce a Range plan on the right column.
        let between = BoolExpr::Between {
            column: COLUMNS[col].to_string(),
            low,
            high,
        };
        let spelled = BoolExpr::pred(COLUMNS[col], CompareFunc::GreaterEqual, low)
            .and(BoolExpr::pred(COLUMNS[col], CompareFunc::LessEqual, high));
        for expr in [between, spelled] {
            match plan_selection(&table, Some(&expr)).unwrap() {
                SelectionPlan::Range { column, low: l, high: h } => {
                    prop_assert_eq!(column, col);
                    prop_assert_eq!(l, low);
                    prop_assert_eq!(h, high);
                }
                other => prop_assert!(false, "expected Range plan, got {:?}", other),
            }
        }
    }
}
