//! Continuous queries over streams — the paper's closing future-work item
//! (§7: "perform continuous queries over streams using GPUs").
//!
//! A [`StreamWindow`] keeps the most recent `capacity` records of a stream
//! resident in a device texture as a ring buffer. Appending a batch
//! overwrites the oldest texels in place with `glTexSubImage2D`-style
//! sub-image updates (costed over AGP at exactly the batch's byte size —
//! no re-upload of the whole window), after which any of the paper's
//! operations run over the live window: counts, range counts, order
//! statistics, sums.
//!
//! Ring-buffer semantics mean a query sees the window's records in
//! arbitrary texel order — which is fine, because every primitive in this
//! library is order-independent (selections and aggregates over sets).

use crate::aggregate;
use crate::error::{EngineError, EngineResult};
use crate::predicate::compare_count;
use crate::range::range_count;
use crate::table::GpuTable;
use gpudb_sim::{CompareFunc, Gpu};

/// A sliding window over a stream of single-attribute records, resident on
/// the device.
#[derive(Debug)]
pub struct StreamWindow {
    table: GpuTable,
    capacity: usize,
    /// Next texel to overwrite.
    head: usize,
    /// Live records (≤ capacity).
    len: usize,
    /// Upper bound on the bit width of any value ever pushed (monotone; an
    /// evicted wide value may leave harmless extra bit passes behind).
    bits: u32,
}

impl StreamWindow {
    /// Create an empty window of `capacity` records on the device. The
    /// device framebuffer must cover the window grid.
    pub fn new(
        gpu: &mut Gpu,
        name: impl Into<String>,
        capacity: usize,
    ) -> EngineResult<StreamWindow> {
        if capacity == 0 {
            return Err(EngineError::InvalidQuery(
                "stream window capacity must be positive".to_string(),
            ));
        }
        let zeros = vec![0u32; capacity];
        let table = GpuTable::upload(gpu, name, &[("value", &zeros)])?;
        Ok(StreamWindow {
            table,
            capacity,
            head: 0,
            len: 0,
            bits: 0,
        })
    }

    /// Window capacity in records.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live records currently in the window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window holds no records yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying table (for direct use of other primitives).
    pub fn table(&self) -> &GpuTable {
        &self.table
    }

    /// Append a batch of new records, overwriting the oldest. Values must
    /// fit the 24-bit encoding. Batches larger than the capacity keep only
    /// their most recent `capacity` values (the rest would already have
    /// been evicted).
    pub fn push(&mut self, gpu: &mut Gpu, values: &[u32]) -> EngineResult<()> {
        if let Some(&bad) = values.iter().find(|&&v| v >= (1 << 24)) {
            return Err(EngineError::AttributeTooWide {
                column: "value".to_string(),
                bits: 32 - bad.leading_zeros(),
            });
        }
        let values = if values.len() > self.capacity {
            &values[values.len() - self.capacity..]
        } else {
            values
        };
        // Keep the bitwise algorithms' pass count (b_max) in sync with the
        // widest value ever stored — upload-time metadata went stale the
        // moment the first sub-image update landed.
        let batch_bits = values
            .iter()
            .copied()
            .max()
            .map_or(0, |m| 32 - m.leading_zeros());
        if batch_bits > self.bits {
            self.bits = batch_bits;
            self.table.override_column_bits(0, self.bits)?;
        }
        let width = self.table.width();
        let texture = self.table.texture_for(0)?;

        // Write in up to two contiguous runs (ring wrap), each split into
        // row-aligned sub-image updates.
        let mut remaining = values;
        while !remaining.is_empty() {
            let run = (self.capacity - self.head).min(remaining.len());
            let (chunk, rest) = remaining.split_at(run);
            let mut offset = self.head;
            let mut data = chunk;
            while !data.is_empty() {
                let x = offset % width;
                let y = offset / width;
                let row_space = width - x;
                let take = row_space.min(data.len());
                let (row_chunk, tail) = data.split_at(take);
                let floats: Vec<f32> = row_chunk.iter().map(|&v| v as f32).collect();
                gpu.update_texture_sub_image(texture, x, y, take, 1, &floats)?;
                offset += take;
                data = tail;
            }
            self.head = (self.head + run) % self.capacity;
            remaining = rest;
        }
        self.len = (self.len + values.len()).min(self.capacity);
        Ok(())
    }

    /// Ensure the window has live records before an aggregate.
    fn require_nonempty(&self) -> EngineResult<()> {
        if self.len == 0 {
            Err(EngineError::EmptyInput)
        } else {
            Ok(())
        }
    }

    /// The stale-record mask: when the window is not yet full, texels
    /// beyond `len` still hold the zero fill. Queries account for them
    /// explicitly.
    fn stale(&self) -> u64 {
        (self.capacity - self.len) as u64
    }

    /// COUNT of window records satisfying `value op constant`.
    pub fn count(&self, gpu: &mut Gpu, op: CompareFunc, constant: u32) -> EngineResult<u64> {
        let raw = compare_count(gpu, &self.table, 0, op, constant)?;
        // Stale texels hold 0: subtract their contribution.
        let stale_match = if op.eval(0u32, constant) {
            self.stale()
        } else {
            0
        };
        Ok(raw - stale_match)
    }

    /// COUNT of window records in `[low, high]`.
    pub fn range_count(&self, gpu: &mut Gpu, low: u32, high: u32) -> EngineResult<u64> {
        let raw = range_count(gpu, &self.table, 0, low, high)?;
        let stale_match = if low == 0 { self.stale() } else { 0 };
        Ok(raw - stale_match)
    }

    /// SUM of the live window (stale zeros contribute nothing).
    pub fn sum(&self, gpu: &mut Gpu) -> EngineResult<u64> {
        aggregate::sum(gpu, &self.table, 0, None)
    }

    /// MAX of the live window.
    pub fn max(&self, gpu: &mut Gpu) -> EngineResult<u32> {
        self.require_nonempty()?;
        aggregate::max(gpu, &self.table, 0, None)
    }

    /// The k-th largest value of the live window (stale zeros sort last,
    /// so ranks within `len` are unaffected unless the window contains
    /// zeros — which tie with stale texels harmlessly, since the k-th
    /// largest of any k ≤ len is then still correct).
    pub fn kth_largest(&self, gpu: &mut Gpu, k: usize) -> EngineResult<u32> {
        if k == 0 || k > self.len {
            return Err(EngineError::InvalidK {
                k,
                available: self.len as u64,
            });
        }
        aggregate::kth_largest(gpu, &self.table, 0, k, None)
    }

    /// The (lower) median of the live window.
    pub fn median(&self, gpu: &mut Gpu) -> EngineResult<u32> {
        self.require_nonempty()?;
        self.kth_largest(gpu, self.len + 1 - self.len.div_ceil(2))
    }

    /// Release the window's device resources.
    pub fn free(self, gpu: &mut Gpu) -> EngineResult<()> {
        self.table.free(gpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Host mirror of the window contents for verification.
    struct Mirror {
        window: Vec<u32>,
        capacity: usize,
    }

    impl Mirror {
        fn new(capacity: usize) -> Mirror {
            Mirror {
                window: Vec::new(),
                capacity,
            }
        }
        fn push(&mut self, values: &[u32]) {
            self.window.extend_from_slice(values);
            if self.window.len() > self.capacity {
                self.window.drain(..self.window.len() - self.capacity);
            }
        }
    }

    fn device(capacity: usize) -> Gpu {
        GpuTable::device_for(capacity, 8)
    }

    #[test]
    fn window_fills_then_slides() {
        let capacity = 20;
        let mut gpu = device(capacity);
        let mut w = StreamWindow::new(&mut gpu, "s", capacity).unwrap();
        let mut mirror = Mirror::new(capacity);
        assert!(w.is_empty());

        let mut next = 1u32;
        for batch_size in [5usize, 7, 20, 3, 40, 1, 13] {
            let batch: Vec<u32> = (0..batch_size as u32)
                .map(|i| (next + i) * 3 % 1000)
                .collect();
            next += batch_size as u32;
            w.push(&mut gpu, &batch).unwrap();
            mirror.push(&batch);
            assert_eq!(w.len(), mirror.window.len());

            // Every aggregate agrees with the host mirror.
            assert_eq!(
                w.sum(&mut gpu).unwrap(),
                mirror.window.iter().map(|&v| v as u64).sum::<u64>()
            );
            assert_eq!(
                w.max(&mut gpu).unwrap(),
                *mirror.window.iter().max().unwrap()
            );
            assert_eq!(
                w.count(&mut gpu, CompareFunc::GreaterEqual, 500).unwrap(),
                mirror.window.iter().filter(|&&v| v >= 500).count() as u64
            );
            assert_eq!(
                w.range_count(&mut gpu, 100, 700).unwrap(),
                mirror
                    .window
                    .iter()
                    .filter(|&&v| (100..=700).contains(&v))
                    .count() as u64
            );
        }
    }

    #[test]
    fn partial_window_counts_exclude_stale_texels() {
        let mut gpu = device(16);
        let mut w = StreamWindow::new(&mut gpu, "s", 16).unwrap();
        w.push(&mut gpu, &[5, 10, 15]).unwrap();
        // op that zero WOULD satisfy: stale texels must not leak in.
        assert_eq!(w.count(&mut gpu, CompareFunc::Less, 100).unwrap(), 3);
        assert_eq!(w.count(&mut gpu, CompareFunc::GreaterEqual, 0).unwrap(), 3);
        assert_eq!(w.range_count(&mut gpu, 0, 100).unwrap(), 3);
        assert_eq!(w.count(&mut gpu, CompareFunc::Greater, 7).unwrap(), 2);
    }

    #[test]
    fn order_statistics_over_live_records() {
        let mut gpu = device(8);
        let mut w = StreamWindow::new(&mut gpu, "s", 8).unwrap();
        w.push(&mut gpu, &[50, 10, 40]).unwrap();
        assert_eq!(w.kth_largest(&mut gpu, 1).unwrap(), 50);
        assert_eq!(w.kth_largest(&mut gpu, 3).unwrap(), 10);
        assert_eq!(w.median(&mut gpu).unwrap(), 40);
        assert!(matches!(
            w.kth_largest(&mut gpu, 4).unwrap_err(),
            EngineError::InvalidK { k: 4, available: 3 }
        ));

        // Slide past capacity: the evicted 50 must not influence results.
        w.push(&mut gpu, &[1, 2, 3, 4, 5, 6, 7]).unwrap();
        assert_eq!(w.len(), 8);
        assert_eq!(w.kth_largest(&mut gpu, 1).unwrap(), 40);
        assert_eq!(w.max(&mut gpu).unwrap(), 40);
    }

    #[test]
    fn oversized_batch_keeps_most_recent() {
        let mut gpu = device(4);
        let mut w = StreamWindow::new(&mut gpu, "s", 4).unwrap();
        let batch: Vec<u32> = (1..=10).collect();
        w.push(&mut gpu, &batch).unwrap();
        assert_eq!(w.len(), 4);
        assert_eq!(w.sum(&mut gpu).unwrap(), 7 + 8 + 9 + 10);
    }

    #[test]
    fn push_cost_is_proportional_to_batch() {
        let mut gpu = device(1000);
        let mut w = StreamWindow::new(&mut gpu, "s", 1000).unwrap();
        gpu.reset_stats();
        w.push(&mut gpu, &[1, 2, 3, 4, 5]).unwrap();
        // 5 records × 4 bytes — not a whole-window re-upload.
        assert_eq!(gpu.stats().bytes_uploaded, 20);
    }

    #[test]
    fn validation() {
        let mut gpu = device(4);
        assert!(StreamWindow::new(&mut gpu, "s", 0).is_err());
        let mut w = StreamWindow::new(&mut gpu, "s", 4).unwrap();
        assert!(matches!(
            w.push(&mut gpu, &[1 << 24]).unwrap_err(),
            EngineError::AttributeTooWide { .. }
        ));
        assert!(matches!(
            w.max(&mut gpu).unwrap_err(),
            EngineError::EmptyInput
        ));
        assert!(matches!(
            w.median(&mut gpu).unwrap_err(),
            EngineError::EmptyInput
        ));
        let base = gpu.vram_used();
        w.free(&mut gpu).unwrap();
        assert!(gpu.vram_used() < base);
    }
}
