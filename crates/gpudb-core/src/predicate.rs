//! Predicate evaluation via the depth test — the paper's `Compare`
//! (Routine 4.1) and `CopyToDepth`.
//!
//! A predicate `attribute op constant` is evaluated by copying the
//! attribute into the depth buffer with a fragment program and rendering a
//! screen-filling quad at the constant's depth with the depth comparison
//! configured; the result lands in the stencil buffer and/or an occlusion
//! query's pass count.

use crate::error::EngineResult;
use crate::ops::{depth_func_for_predicate, encode_depth, DEPTH_SCALE_INV_F32};
use crate::selection::{Selection, SELECTED};
use crate::table::GpuTable;
use gpudb_sim::program::builtin;
use gpudb_sim::state::ColorMask;
use gpudb_sim::{CompareFunc, Gpu, Phase, StencilOp};

/// Copy an attribute column into the depth buffer (the paper's
/// `CopyToDepth`, §5.4): bind the column's texture, run the 4-instruction
/// copy program over the record quad with depth writes enabled.
///
/// The stencil test is disabled for the copy pass so it cannot disturb a
/// selection being built (e.g. inside `EvalCNF`).
pub fn copy_to_depth(gpu: &mut Gpu, table: &GpuTable, column: usize) -> EngineResult<()> {
    let meta = table.column(column)?;
    let texture = table.texture_for(column)?;

    gpu.set_phase(Phase::CopyToDepth);
    gpu.reset_state();
    gpu.bind_texture(0, Some(texture))?;
    gpu.bind_program(Some(builtin::copy_to_depth()));
    gpu.set_program_env(builtin::ENV_SCALE, [DEPTH_SCALE_INV_F32, 0.0, 0.0, 0.0])?;
    gpu.set_program_env(
        builtin::ENV_CHANNEL,
        builtin::channel_selector(meta.channel),
    )?;
    gpu.set_color_mask(ColorMask::NONE);
    gpu.set_depth_test(false, CompareFunc::Always);
    gpu.set_depth_write(true);
    gpu.draw_quad(table.rects(), 0.0)?;
    gpu.bind_program(None);
    gpu.reset_state();
    Ok(())
}

/// How a comparison pass's occlusion count is retrieved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OcclusionMode {
    /// No occlusion query at all (e.g. inside `EvalCNF`, where the stencil
    /// carries the result).
    None,
    /// Asynchronous fetch: the count is a final result, its retrieval
    /// overlaps subsequent work (§5.3 — no added overhead).
    Async,
    /// Synchronous fetch: the next pass depends on the count, so the
    /// pipeline drains (the per-bit loop of `KthLargest`).
    Sync,
}

/// One depth-test comparison pass over attribute values already copied
/// into the depth buffer: renders the record quad at the constant's depth
/// with the predicate's depth function, leaving stencil state to the
/// caller, and returns the occlusion pass count (0 for
/// [`OcclusionMode::None`]).
///
/// This is the inner pass shared by the standalone predicate, `EvalCNF`
/// and `KthLargest` (which re-renders this pass once per bit without
/// re-copying).
pub fn comparison_pass(
    gpu: &mut Gpu,
    table: &GpuTable,
    op: CompareFunc,
    constant: u32,
    occlusion: OcclusionMode,
) -> EngineResult<u64> {
    gpu.set_phase(Phase::Compute);
    gpu.set_color_mask(ColorMask::NONE);
    gpu.set_depth_test(true, depth_func_for_predicate(op));
    gpu.set_depth_write(false);
    if occlusion != OcclusionMode::None {
        gpu.begin_occlusion_query()?;
    }
    gpu.draw_quad(table.rects(), encode_depth(constant))?;
    match occlusion {
        OcclusionMode::None => Ok(0),
        OcclusionMode::Async => Ok(gpu.end_occlusion_query_async()?),
        OcclusionMode::Sync => Ok(gpu.end_occlusion_query()?),
    }
}

/// Evaluate `attribute op constant` and materialize the result as a
/// [`Selection`] (stencil = 1 on matching records), returning the match
/// count from the same pass — the paper's observation in §5.11 that
/// selectivity comes for free with the selection.
pub fn compare_select(
    gpu: &mut Gpu,
    table: &GpuTable,
    column: usize,
    op: CompareFunc,
    constant: u32,
) -> EngineResult<(Selection, u64)> {
    copy_to_depth(gpu, table, column)?;
    gpu.set_phase(Phase::Compute);
    gpu.clear_stencil(0);
    gpu.set_stencil_func(true, CompareFunc::Always, SELECTED, 0xFF);
    gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, StencilOp::Replace);
    let count = comparison_pass(gpu, table, op, constant, OcclusionMode::Async)?;
    gpu.reset_state();
    Ok((Selection::over_table(table), count))
}

/// Evaluate `attribute op constant` and return only the match count —
/// copy, one comparison pass, one occlusion readback.
pub fn compare_count(
    gpu: &mut Gpu,
    table: &GpuTable,
    column: usize,
    op: CompareFunc,
    constant: u32,
) -> EngineResult<u64> {
    copy_to_depth(gpu, table, column)?;
    let count = comparison_pass(gpu, table, op, constant, OcclusionMode::Async)?;
    gpu.reset_state();
    Ok(count)
}

/// Evaluate many predicates over the *same* column with a single
/// `CopyToDepth`: the copy dominates a predicate's cost (Figure 3), so
/// batching amortizes it — `1 copy + n` fixed-function passes instead of
/// `n` copies + `n` passes. Returns the match count of each predicate.
pub fn compare_many(
    gpu: &mut Gpu,
    table: &GpuTable,
    column: usize,
    predicates: &[(CompareFunc, u32)],
) -> EngineResult<Vec<u64>> {
    copy_to_depth(gpu, table, column)?;
    let mut counts = Vec::with_capacity(predicates.len());
    for &(op, constant) in predicates {
        counts.push(comparison_pass(
            gpu,
            table,
            op,
            constant,
            OcclusionMode::Async,
        )?);
    }
    gpu.reset_state();
    Ok(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpudb_sim::CompareFunc::*;

    fn setup(values: &[u32]) -> (Gpu, GpuTable) {
        let mut gpu = GpuTable::device_for(values.len(), 4);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", values)]).unwrap();
        (gpu, t)
    }

    #[test]
    fn all_operators_match_reference() {
        let values: Vec<u32> = vec![5, 17, 0, 42, 17, 9, 100, 3, 64, 17];
        for op in [Less, LessEqual, Greater, GreaterEqual, Equal, NotEqual] {
            for c in [0u32, 3, 17, 42, 1000] {
                let (mut gpu, t) = setup(&values);
                let (sel, count) = compare_select(&mut gpu, &t, 0, op, c).unwrap();
                let expected: Vec<bool> = values.iter().map(|&v| op.eval(v, c)).collect();
                assert_eq!(
                    sel.read_mask(&mut gpu).unwrap(),
                    expected,
                    "op {op:?} c {c}"
                );
                assert_eq!(
                    count,
                    expected.iter().filter(|&&b| b).count() as u64,
                    "op {op:?} c {c}"
                );
                // The selection's own count agrees.
                assert_eq!(sel.count(&mut gpu).unwrap(), count);
            }
        }
    }

    #[test]
    fn boundary_values_at_24_bits() {
        let max = (1u32 << 24) - 1;
        let values = vec![0, 1, max - 1, max];
        let (mut gpu, t) = setup(&values);
        let (_, count) = compare_select(&mut gpu, &t, 0, GreaterEqual, max).unwrap();
        assert_eq!(count, 1);
        let (_, count) = compare_select(&mut gpu, &t, 0, LessEqual, 0).unwrap();
        assert_eq!(count, 1);
        let (_, count) = compare_select(&mut gpu, &t, 0, Equal, max - 1).unwrap();
        assert_eq!(count, 1);
        // Adjacent top-of-range values must not collapse.
        let (_, count) = compare_select(&mut gpu, &t, 0, Greater, max - 1).unwrap();
        assert_eq!(count, 1);
    }

    #[test]
    fn compare_count_equals_select_count() {
        let values: Vec<u32> = (0..100).map(|i| (i * 37) % 64).collect();
        let (mut gpu, t) = setup(&values);
        let c1 = compare_count(&mut gpu, &t, 0, Less, 32).unwrap();
        let (_, c2) = compare_select(&mut gpu, &t, 0, Less, 32).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(c1, values.iter().filter(|&&v| v < 32).count() as u64);
    }

    #[test]
    fn second_column_comparison() {
        let a: Vec<u32> = vec![1; 8];
        let b: Vec<u32> = (0..8).collect();
        let mut gpu = GpuTable::device_for(8, 4);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", &a), ("b", &b)]).unwrap();
        let (sel, count) = compare_select(&mut gpu, &t, 1, GreaterEqual, 5).unwrap();
        assert_eq!(count, 3);
        assert_eq!(
            sel.read_indices(&mut gpu).unwrap(),
            vec![5, 6, 7],
            "channel selection must pick the right attribute"
        );
    }

    #[test]
    fn copy_to_depth_preserves_stencil() {
        let values: Vec<u32> = (0..10).collect();
        let (mut gpu, t) = setup(&values);
        gpu.clear_stencil(7);
        copy_to_depth(&mut gpu, &t, 0).unwrap();
        assert!(gpu.read_stencil_buffer().unwrap().iter().all(|&s| s == 7));
    }

    #[test]
    fn copy_places_attributes_in_depth_buffer() {
        let values: Vec<u32> = vec![3, 141, 59, 26, 535];
        let (mut gpu, t) = setup(&values);
        copy_to_depth(&mut gpu, &t, 0).unwrap();
        let raw = gpu.read_depth_buffer_raw().unwrap();
        assert_eq!(&raw[..5], &values[..]);
    }

    #[test]
    fn phases_attributed_copy_vs_compute() {
        let values: Vec<u32> = (0..100).collect();
        let (mut gpu, t) = setup(&values);
        gpu.reset_stats();
        compare_count(&mut gpu, &t, 0, Less, 50).unwrap();
        let stats = gpu.stats();
        assert!(stats.modeled.get(Phase::CopyToDepth) > 0.0);
        assert!(stats.modeled.get(Phase::Compute) > 0.0);
        assert!(
            stats.modeled.get(Phase::CopyToDepth) > stats.modeled.get(Phase::Compute),
            "the copy (5-cycle program) must dominate the fixed-function compare"
        );
    }

    #[test]
    fn compare_many_amortizes_the_copy() {
        let values: Vec<u32> = (0..200).map(|i| (i * 13) % 150).collect();
        let (mut gpu, t) = setup(&values);
        let predicates = [
            (Less, 50u32),
            (GreaterEqual, 100),
            (Equal, 13),
            (NotEqual, 13),
        ];
        gpu.reset_stats();
        let counts = compare_many(&mut gpu, &t, 0, &predicates).unwrap();
        // One copy + four comparison passes.
        assert_eq!(gpu.stats().draw_calls, 5);
        assert_eq!(gpu.stats().fragments_shaded, 200, "only the copy shades");
        for ((op, c), count) in predicates.iter().zip(&counts) {
            let expected = values.iter().filter(|&&v| op.eval(v, *c)).count() as u64;
            assert_eq!(*count, expected, "{op:?} {c}");
        }
        // Empty batch is a no-op beyond the copy.
        assert!(compare_many(&mut gpu, &t, 0, &[]).unwrap().is_empty());
    }

    #[test]
    fn empty_table_comparison() {
        let (mut gpu, t) = setup(&[]);
        let (sel, count) = compare_select(&mut gpu, &t, 0, Less, 10).unwrap();
        assert_eq!(count, 0);
        assert!(sel.read_mask(&mut gpu).unwrap().is_empty());
    }
}
