//! Structured per-operator metrics records.
//!
//! Every database operator can be run under [`observe`], which snapshots
//! the device's architectural work counters and phase-attributed modeled
//! clock around the operation and emits a [`MetricsRecord`] tagged with
//! the operator name and input size. Records deliberately contain **no
//! wall-clock** component: everything in them is a deterministic function
//! of the input, so two runs of the same workload produce byte-identical
//! records — the property the perf-regression harness in `gpudb-bench`
//! is built on.
//!
//! [`ops`] provides instrumented entry points for each operator family of
//! the paper (predicate, range, CNF/DNF, semi-linear, k-th, accumulator);
//! the query executor emits one record per plan stage into
//! [`crate::query::QueryOutput::metrics`].

use crate::error::EngineResult;
use gpudb_sim::span::SpanKind;
use gpudb_sim::{Gpu, PhaseTimes, WorkCounters};
use serde::{Deserialize, Serialize};

/// Modeled time split by phase, in integer nanoseconds. Rounding the
/// simulator's f64 seconds to whole nanoseconds keeps the serialized form
/// exact and diff-friendly without losing meaningful precision (the model
/// resolves microseconds at best).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseNanos {
    /// Host → device upload.
    pub upload: u64,
    /// Attribute copy into the depth buffer (§5.4).
    pub copy_to_depth: u64,
    /// Computation passes.
    pub compute: u64,
    /// Occlusion/result readback.
    pub readback: u64,
    /// Unattributed time.
    pub other: u64,
}

impl PhaseNanos {
    /// Convert a phase-time delta (seconds) to whole nanoseconds.
    ///
    /// Rounding each phase independently can make [`PhaseNanos::total`]
    /// disagree with the rounded whole-delta by a few nanoseconds, so the
    /// phases are reconciled by largest remainder: floor each phase, then
    /// hand out the nanoseconds still missing from the rounded total to
    /// the phases with the largest fractional parts (ties broken by phase
    /// order, deterministically). `total()` therefore always equals the
    /// rounded sum of the phase times.
    pub fn from_phases(delta: &PhaseTimes) -> PhaseNanos {
        use gpudb_sim::stats::ALL_PHASES;
        // Guard against tiny negative deltas from float cancellation.
        let raw: [f64; 5] = ALL_PHASES.map(|p| (delta.get(p) * 1e9).max(0.0));
        let mut ns: [u64; 5] = raw.map(|v| v as u64); // truncation == floor for v >= 0
        let target = (delta.total().max(0.0) * 1e9).round() as u64;
        let assigned: u64 = ns.iter().sum();
        let mut order: [usize; 5] = [0, 1, 2, 3, 4];
        order.sort_by(|&a, &b| {
            let frac = |i: usize| raw[i] - raw[i] as u64 as f64;
            // Fractions are finite (clamped to >= 0 above), but never
            // panic on a comparison: fall back to index order.
            frac(b)
                .partial_cmp(&frac(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        for i in 0..target.saturating_sub(assigned) as usize {
            ns[order[i % 5]] += 1;
        }
        PhaseNanos {
            upload: ns[0],
            copy_to_depth: ns[1],
            compute: ns[2],
            readback: ns[3],
            other: ns[4],
        }
    }

    /// Total modeled nanoseconds across phases.
    pub fn total(&self) -> u64 {
        self.upload + self.copy_to_depth + self.compute + self.readback + self.other
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &PhaseNanos) -> PhaseNanos {
        PhaseNanos {
            upload: self.upload + other.upload,
            copy_to_depth: self.copy_to_depth + other.copy_to_depth,
            compute: self.compute + other.compute,
            readback: self.readback + other.readback,
            other: self.other + other.other,
        }
    }
}

/// One operator execution: its name, input size, the architectural work
/// it generated, and the modeled time that work costs on the paper's 2004
/// hardware. Fully deterministic — no wall-clock fields.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsRecord {
    /// Operator name, e.g. `predicate/compare_count` or `agg/SUM(a)`.
    pub operator: String,
    /// Number of input records the operator ran over.
    pub input_records: u64,
    /// Work-counter deltas attributed to this operation.
    pub counters: WorkCounters,
    /// Modeled time by phase, in nanoseconds.
    pub modeled_ns: PhaseNanos,
}

impl MetricsRecord {
    /// Total modeled nanoseconds.
    pub fn modeled_total_ns(&self) -> u64 {
        self.modeled_ns.total()
    }

    /// Total modeled milliseconds (for display).
    pub fn modeled_ms(&self) -> f64 {
        self.modeled_ns.total() as f64 / 1e6
    }
}

/// Run `op` against the device and capture a [`MetricsRecord`] for it.
pub fn observe<T>(
    gpu: &mut Gpu,
    operator: impl Into<String>,
    input_records: u64,
    op: impl FnOnce(&mut Gpu) -> T,
) -> (T, MetricsRecord) {
    let operator = operator.into();
    // When the device is tracing, each observed operator gets its own
    // pass plan so validators can attribute diagnostics to it.
    if gpu.is_recording() {
        gpu.begin_plan(&operator);
    }
    // When a span sink is attached, the same boundary opens an operator
    // span; the device's leaf spans (passes, readbacks) nest inside it.
    gpu.span_begin(SpanKind::Operator, &operator);
    let counters_before = gpu.stats().counters();
    let modeled_before = gpu.stats().modeled;
    let result = op(gpu);
    gpu.span_end();
    let stats = gpu.stats();
    let record = MetricsRecord {
        operator,
        input_records,
        counters: stats.counters().since(&counters_before),
        modeled_ns: PhaseNanos::from_phases(&stats.modeled.since(&modeled_before)),
    };
    (result, record)
}

/// An append-only collection of [`MetricsRecord`]s from one workload run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsLog {
    /// Records in execution order.
    pub records: Vec<MetricsRecord>,
}

impl MetricsLog {
    /// An empty log.
    pub fn new() -> MetricsLog {
        MetricsLog::default()
    }

    /// Append a record.
    pub fn push(&mut self, record: MetricsRecord) {
        self.records.push(record);
    }

    /// Append every record of another log.
    pub fn extend(&mut self, other: MetricsLog) {
        self.records.extend(other.records);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total modeled nanoseconds across all records.
    pub fn modeled_total_ns(&self) -> u64 {
        self.records
            .iter()
            .map(MetricsRecord::modeled_total_ns)
            .sum()
    }

    /// Merge the log per operator name: counters, phase times and input
    /// sizes are summed across every record with the same operator. The
    /// returned summaries are in first-appearance order, so the output is
    /// stable across runs.
    pub fn by_operator(&self) -> Vec<OperatorSummary> {
        let mut out: Vec<OperatorSummary> = Vec::new();
        for record in &self.records {
            match out.iter_mut().find(|s| s.operator == record.operator) {
                Some(summary) => {
                    summary.invocations += 1;
                    summary.input_records += record.input_records;
                    summary.counters = summary.counters.plus(&record.counters);
                    summary.modeled_ns = summary.modeled_ns.plus(&record.modeled_ns);
                }
                None => out.push(OperatorSummary {
                    operator: record.operator.clone(),
                    invocations: 1,
                    input_records: record.input_records,
                    counters: record.counters,
                    modeled_ns: record.modeled_ns,
                }),
            }
        }
        out
    }
}

/// Per-operator aggregation of a [`MetricsLog`], from
/// [`MetricsLog::by_operator`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperatorSummary {
    /// Operator name shared by the merged records.
    pub operator: String,
    /// Number of records merged.
    pub invocations: u64,
    /// Summed input sizes.
    pub input_records: u64,
    /// Summed work counters.
    pub counters: WorkCounters,
    /// Summed modeled phase times.
    pub modeled_ns: PhaseNanos,
}

/// Instrumented entry points for the paper's operator families. Each is a
/// thin wrapper over the corresponding primitive that also returns the
/// operation's [`MetricsRecord`].
pub mod ops {
    use super::{observe, MetricsRecord};
    use crate::aggregate;
    use crate::boolean::{eval_cnf_count, eval_dnf_count, GpuCnf, GpuDnf};
    use crate::predicate::{compare_count, copy_to_depth};
    use crate::range::range_count;
    use crate::selection::Selection;
    use crate::semilinear::semilinear_count;
    use crate::table::GpuTable;
    use gpudb_sim::{CompareFunc, Gpu};

    use super::EngineResult;

    /// Hoist the `EngineResult` out of an `observe` closure's return value.
    fn lift<T>(
        (result, record): (EngineResult<T>, MetricsRecord),
    ) -> EngineResult<(T, MetricsRecord)> {
        result.map(|value| (value, record))
    }

    /// Instrumented `CopyToDepth` (Routine 4.1's setup step).
    pub fn copy_to_depth_op(
        gpu: &mut Gpu,
        table: &GpuTable,
        column: usize,
    ) -> EngineResult<((), MetricsRecord)> {
        let n = table.record_count() as u64;
        lift(observe(gpu, "predicate/copy_to_depth", n, |gpu| {
            copy_to_depth(gpu, table, column)
        }))
    }

    /// Instrumented predicate count (Routine 4.1).
    pub fn predicate_count(
        gpu: &mut Gpu,
        table: &GpuTable,
        column: usize,
        op: CompareFunc,
        constant: u32,
    ) -> EngineResult<(u64, MetricsRecord)> {
        let n = table.record_count() as u64;
        lift(observe(gpu, "predicate/compare_count", n, |gpu| {
            compare_count(gpu, table, column, op, constant)
        }))
    }

    /// Instrumented range count (Routine 4.4, depth-bounds test).
    pub fn range_count_op(
        gpu: &mut Gpu,
        table: &GpuTable,
        column: usize,
        low: u32,
        high: u32,
    ) -> EngineResult<(u64, MetricsRecord)> {
        let n = table.record_count() as u64;
        lift(observe(gpu, "range/range_count", n, |gpu| {
            range_count(gpu, table, column, low, high)
        }))
    }

    /// Instrumented CNF evaluation (Routine 4.3).
    pub fn cnf_count(
        gpu: &mut Gpu,
        table: &GpuTable,
        cnf: &GpuCnf,
    ) -> EngineResult<(u64, MetricsRecord)> {
        let n = table.record_count() as u64;
        lift(observe(gpu, "boolean/eval_cnf_count", n, |gpu| {
            eval_cnf_count(gpu, table, cnf)
        }))
    }

    /// Instrumented DNF evaluation.
    pub fn dnf_count(
        gpu: &mut Gpu,
        table: &GpuTable,
        dnf: &GpuDnf,
    ) -> EngineResult<(u64, MetricsRecord)> {
        let n = table.record_count() as u64;
        lift(observe(gpu, "boolean/eval_dnf_count", n, |gpu| {
            eval_dnf_count(gpu, table, dnf)
        }))
    }

    /// Instrumented semi-linear query count (Routine 4.2).
    pub fn semilinear_count_op(
        gpu: &mut Gpu,
        table: &GpuTable,
        coefficients: &[f32],
        op: CompareFunc,
        constant: f32,
    ) -> EngineResult<(u64, MetricsRecord)> {
        let n = table.record_count() as u64;
        lift(observe(gpu, "semilinear/semilinear_count", n, |gpu| {
            semilinear_count(gpu, table, coefficients, op, constant)
        }))
    }

    /// Instrumented k-th largest (Routine 4.5, bit descent).
    pub fn kth_largest_op(
        gpu: &mut Gpu,
        table: &GpuTable,
        column: usize,
        k: usize,
        selection: Option<&Selection>,
    ) -> EngineResult<(u32, MetricsRecord)> {
        let n = table.record_count() as u64;
        lift(observe(gpu, "aggregate/kth_largest", n, |gpu| {
            aggregate::kth_largest(gpu, table, column, k, selection)
        }))
    }

    /// Instrumented median (k-th at the selection midpoint).
    pub fn median_op(
        gpu: &mut Gpu,
        table: &GpuTable,
        column: usize,
        selection: Option<&Selection>,
    ) -> EngineResult<(u32, MetricsRecord)> {
        let n = table.record_count() as u64;
        lift(observe(gpu, "aggregate/median", n, |gpu| {
            aggregate::median(gpu, table, column, selection)
        }))
    }

    /// Instrumented bitwise-accumulator SUM (Routine 4.6).
    pub fn accumulator_sum(
        gpu: &mut Gpu,
        table: &GpuTable,
        column: usize,
        selection: Option<&Selection>,
    ) -> EngineResult<(u64, MetricsRecord)> {
        let n = table.record_count() as u64;
        lift(observe(gpu, "aggregate/accumulator_sum", n, |gpu| {
            aggregate::sum(gpu, table, column, selection)
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::GpuTable;
    use gpudb_sim::{CompareFunc, Phase};

    fn setup(n: u32) -> (Gpu, GpuTable, Vec<u32>) {
        let values: Vec<u32> = (0..n).map(|i| (i * 37) % 500).collect();
        let mut gpu = GpuTable::device_for(values.len(), 50);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", &values)]).unwrap();
        (gpu, t, values)
    }

    #[test]
    fn observe_attributes_work_to_the_operator() {
        let (mut gpu, t, values) = setup(400);
        let ((), before_record) = ops::copy_to_depth_op(&mut gpu, &t, 0).unwrap();
        assert_eq!(before_record.operator, "predicate/copy_to_depth");
        assert_eq!(before_record.input_records, 400);
        assert!(before_record.counters.fragments_generated >= 400);
        assert!(before_record.modeled_ns.copy_to_depth > 0);
        assert_eq!(before_record.modeled_ns.upload, 0);

        let (count, record) =
            ops::predicate_count(&mut gpu, &t, 0, CompareFunc::Less, 250).unwrap();
        assert_eq!(count, values.iter().filter(|&&v| v < 250).count() as u64);
        assert!(record.counters.draw_calls > 0);
        assert!(record.modeled_total_ns() > 0);
        assert!(record.modeled_ms() > 0.0);
    }

    #[test]
    fn records_are_deterministic_across_runs() {
        let run = || {
            let (mut gpu, t, _) = setup(300);
            let (_, a) = ops::predicate_count(&mut gpu, &t, 0, CompareFunc::Greater, 100).unwrap();
            let (_, b) = ops::range_count_op(&mut gpu, &t, 0, 50, 350).unwrap();
            let (_, c) = ops::kth_largest_op(&mut gpu, &t, 0, 7, None).unwrap();
            let (_, d) = ops::accumulator_sum(&mut gpu, &t, 0, None).unwrap();
            (a, b, c, d)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn metrics_log_accumulates() {
        let (mut gpu, t, _) = setup(200);
        let mut log = MetricsLog::new();
        assert!(log.is_empty());
        let (_, r1) = ops::predicate_count(&mut gpu, &t, 0, CompareFunc::Less, 100).unwrap();
        let (_, r2) = ops::range_count_op(&mut gpu, &t, 0, 10, 90).unwrap();
        let sum = r1.modeled_total_ns() + r2.modeled_total_ns();
        log.push(r1);
        log.push(r2);
        assert_eq!(log.len(), 2);
        assert_eq!(log.modeled_total_ns(), sum);

        let mut merged = MetricsLog::new();
        merged.extend(log.clone());
        assert_eq!(merged, log);
    }

    #[test]
    fn phase_nanos_round_trip_and_sum() {
        let mut phases = PhaseTimes::default();
        phases.add(Phase::Compute, 1.5e-3);
        phases.add(Phase::Readback, 2.5e-6);
        let ns = PhaseNanos::from_phases(&phases);
        assert_eq!(ns.compute, 1_500_000);
        assert_eq!(ns.readback, 2_500);
        assert_eq!(ns.total(), 1_502_500);
        let doubled = ns.plus(&ns);
        assert_eq!(doubled.total(), 3_005_000);
    }

    #[test]
    fn phase_nanos_total_matches_rounded_delta() {
        // The historical bug: per-phase rounding drifted from the rounded
        // whole-delta. 0.4 ns + 0.4 ns rounds per-phase to 0 + 0 but the
        // 0.8 ns total rounds to 1.
        let mut phases = PhaseTimes::default();
        phases.add(Phase::Compute, 0.4e-9);
        phases.add(Phase::Readback, 0.4e-9);
        let ns = PhaseNanos::from_phases(&phases);
        assert_eq!(ns.total(), 1);
        // The missing nanosecond goes to a phase that has time, not to a
        // zero phase.
        assert_eq!(ns.upload, 0);
        assert_eq!(ns.other, 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(256))]
        #[test]
        fn phase_nanos_total_is_the_rounded_phase_sum(
            upload in 0.0f64..1e-2,
            copy in 0.0f64..1e-2,
            compute in 0.0f64..1e-2,
            readback in 0.0f64..1e-2,
            o in 0.0f64..1e-2,
        ) {
            let mut phases = PhaseTimes::default();
            phases.add(Phase::Upload, upload);
            phases.add(Phase::CopyToDepth, copy);
            phases.add(Phase::Compute, compute);
            phases.add(Phase::Readback, readback);
            phases.add(Phase::Other, o);
            let ns = PhaseNanos::from_phases(&phases);
            proptest::prop_assert_eq!(ns.total(), (phases.total() * 1e9).round() as u64);
            // Each phase is within 1 ns of its independent rounding.
            let near = |v: u64, s: f64| v.abs_diff((s * 1e9).round() as u64) <= 1;
            proptest::prop_assert!(near(ns.upload, upload));
            proptest::prop_assert!(near(ns.copy_to_depth, copy));
            proptest::prop_assert!(near(ns.compute, compute));
            proptest::prop_assert!(near(ns.readback, readback));
            proptest::prop_assert!(near(ns.other, o));
        }
    }

    #[test]
    fn by_operator_merges_in_first_appearance_order() {
        let (mut gpu, t, _) = setup(200);
        let mut log = MetricsLog::new();
        let (_, r) = ops::predicate_count(&mut gpu, &t, 0, CompareFunc::Less, 100).unwrap();
        log.push(r);
        let (_, r) = ops::range_count_op(&mut gpu, &t, 0, 10, 90).unwrap();
        log.push(r);
        let (_, r) = ops::predicate_count(&mut gpu, &t, 0, CompareFunc::Greater, 50).unwrap();
        log.push(r);

        let summary = log.by_operator();
        assert_eq!(summary.len(), 2);
        assert_eq!(summary[0].operator, "predicate/compare_count");
        assert_eq!(summary[0].invocations, 2);
        assert_eq!(summary[0].input_records, 400);
        assert_eq!(summary[1].operator, "range/range_count");
        assert_eq!(summary[1].invocations, 1);
        // Merging conserves counters and modeled time.
        let total: u64 = summary.iter().map(|s| s.modeled_ns.total()).sum();
        assert_eq!(total, log.modeled_total_ns());
        let draws: u64 = summary.iter().map(|s| s.counters.draw_calls).sum();
        let raw_draws: u64 = log.records.iter().map(|r| r.counters.draw_calls).sum();
        assert_eq!(draws, raw_draws);
    }

    #[test]
    fn serialization_round_trips() {
        let (mut gpu, t, _) = setup(150);
        let (_, record) = ops::predicate_count(&mut gpu, &t, 0, CompareFunc::Equal, 37).unwrap();
        let json = serde_json::to_string(&record).unwrap();
        let back: MetricsRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);

        let mut log = MetricsLog::new();
        log.push(record);
        let json = serde_json::to_string_pretty(&log).unwrap();
        let back: MetricsLog = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log);
    }
}
