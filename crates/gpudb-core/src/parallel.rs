//! Sharded multi-device parallel execution.
//!
//! Following the partition-parallel designs of tile-based GPU analytics
//! engines, a query is executed by splitting the table into contiguous
//! row-range shards, giving every shard its own simulated device (own
//! modeled clock, own framebuffer), running the selection and aggregate
//! passes on real OS threads, and merging per-shard partial results
//! exactly:
//!
//! * selection bitmaps concatenate in shard order;
//! * `COUNT`/`SUM` add, `AVG` divides the merged sum by the merged count,
//!   `MIN`/`MAX` fold per-shard extrema;
//! * order statistics (`KthLargest`, `KthSmallest`, `MEDIAN`,
//!   `PERCENTILE`) run the paper's Routine 4.5 bit descent *globally*:
//!   the coordinator walks bits MSB-first and each shard answers the
//!   per-bit `count >= m` occlusion query on its partition, so the
//!   summed counts equal the single-device counts and Lemma 1 applies
//!   unchanged.
//!
//! The merged result is therefore byte-identical to single-device
//! execution at every shard count — the property the
//! `sharded_equivalence` differential suite pins down.
//!
//! ## Determinism
//!
//! Worker threads run concurrently but all communication is gathered in
//! shard-index order, every shard device starts its modeled clock at
//! `t = 0`, and the modeled merge cost ([`merge_cost_ns`]) is a pure
//! function of the shard and aggregate counts. Results, per-shard
//! metrics, and modeled costs are reproducible bit-for-bit regardless of
//! OS scheduling.
//!
//! ## Resilience
//!
//! Each shard runs the same recovery ladder as
//! [`crate::resilience::execute_resilient`] for its selection phase
//! (retry transient faults with modeled backoff, fall back to the CPU
//! oracle on resource/device faults), and degrades to the CPU for the
//! remainder of the query if a fault lands mid-aggregate. A fault on one
//! shard never disturbs the others.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::Instant;

use crate::aggregate;
use crate::cpu_oracle::{self, HostTable};
use crate::error::{EngineError, EngineResult};
use crate::metrics::{self, MetricsRecord, PhaseNanos};
use crate::predicate::{comparison_pass, copy_to_depth, OcclusionMode};
use crate::query::ast::{Aggregate, BoolExpr, Query};
use crate::query::executor::{
    execute_selection, plan_operator, AggValue, ExecuteOptions, QueryOutput,
};
use crate::query::planner::plan_selection;
use crate::resilience::{marker_record, ResiliencePath, RetryPolicy};
use crate::selection::{Selection, SELECTED};
use crate::table::GpuTable;
use crate::timing::OpTiming;
use gpudb_lint::{Linter, Severity};
use gpudb_obs::{merge_shard_trees, SpanCollector, SpanTree};
use gpudb_sim::span::SpanKind;
use gpudb_sim::trace::PassPlan;
use gpudb_sim::{CompareFunc, FaultClass, FaultInjector, Gpu, Phase, RecordMode, StencilOp};

/// Modeled cost of one merge step, in nanoseconds. The coordinator's
/// merge work is `shards * (aggregates + 1)` steps: one bitmap-count
/// combine per shard plus one partial-aggregate combine per shard per
/// aggregate.
pub const MERGE_STEP_NS: u64 = 250;

/// Modeled cost of merging `shards` partial results for a query with
/// `aggregates` aggregate expressions. Pure and deterministic.
pub fn merge_cost_ns(shards: usize, aggregates: usize) -> u64 {
    (shards as u64) * (aggregates as u64 + 1) * MERGE_STEP_NS
}

/// Split `n` records into contiguous row ranges, one per shard. Ranges
/// are half-open `(start, end)`, cover `0..n` exactly, and differ in
/// size by at most one chunk. An empty table yields a single empty
/// shard so the executor always has at least one device.
pub fn plan_shards(n: usize, shards: usize) -> Vec<(usize, usize)> {
    let chunk = n.div_ceil(shards.max(1)).max(1);
    let mut ranges = Vec::new();
    let mut start = 0usize;
    while start < n.max(1) {
        let end = (start + chunk).min(n);
        ranges.push((start, end));
        if end >= n {
            break;
        }
        start = end;
    }
    ranges
}

/// Knobs for sharded execution.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Number of shards (and devices). Clamped to at least 1.
    pub shards: usize,
    /// Texture width of each shard's device (records per row).
    pub device_width: usize,
    /// Per-shard execution options (plan validation, tracing, fusion).
    pub options: ExecuteOptions,
    /// Per-shard recovery ladder knobs.
    pub policy: RetryPolicy,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            shards: 4,
            device_width: 16,
            options: ExecuteOptions::default(),
            policy: RetryPolicy::default(),
        }
    }
}

/// What one shard did: its row range, the path it answered on, and its
/// recovery and cost ledger.
#[derive(Debug, Clone)]
pub struct ShardRun {
    /// First row of the shard's range.
    pub start: usize,
    /// Number of records in the shard.
    pub records: usize,
    /// Where the shard's answers came from.
    pub path: ResiliencePath,
    /// Selection attempts made (1 = first try succeeded).
    pub attempts: u32,
    /// Transient retries among those attempts.
    pub retries: u32,
    /// Human-readable log of every degradation step taken.
    pub degradations: Vec<String>,
    /// The shard device's total modeled time, nanoseconds.
    pub modeled_ns: u64,
}

/// The merged cost picture of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Per-shard ledgers, in shard order.
    pub shards: Vec<ShardRun>,
    /// Modeled merge cost ([`merge_cost_ns`]).
    pub merge_ns: u64,
    /// Modeled end-to-end cost: the slowest shard (critical path) plus
    /// the merge.
    pub merged_ns: u64,
}

/// A sharded query result: the merged output, the concatenated
/// selection bitmap, and the per-shard report.
#[derive(Debug, Clone)]
pub struct ShardedOutput {
    /// Merged query output, byte-identical to single-device execution.
    pub output: QueryOutput,
    /// Per-record selection mask, concatenated in shard order.
    pub mask: Vec<bool>,
    /// Per-shard execution report.
    pub report: ShardReport,
}

/// Execute `query` over `host`'s data on `opts.shards` simulated devices
/// and merge the partial results exactly.
pub fn execute_sharded(
    host: &HostTable,
    query: &Query,
    opts: &ShardOptions,
) -> EngineResult<ShardedOutput> {
    execute_sharded_with_faults(host, query, opts, Vec::new())
}

/// [`execute_sharded`] with a deterministic fault injector attached to
/// selected shards: `faults[i]` (if present and `Some`) is installed on
/// shard `i`'s device before execution. Missing entries mean no faults.
pub fn execute_sharded_with_faults(
    host: &HostTable,
    query: &Query,
    opts: &ShardOptions,
    mut faults: Vec<Option<FaultInjector>>,
) -> EngineResult<ShardedOutput> {
    let n = host.record_count();
    let ranges = plan_shards(n, opts.shards);
    faults.resize_with(ranges.len(), || None);
    let wall_start = Instant::now();

    std::thread::scope(|scope| {
        let mut links: Vec<Link> = Vec::with_capacity(ranges.len());
        for (&(start, end), fault) in ranges.iter().zip(faults.drain(..)) {
            let (req_tx, req_rx) = channel::<Req>();
            let (resp_tx, resp_rx) = channel::<Resp>();
            let slice = host.slice(start, end);
            let filter = query.filter.clone();
            let options = opts.options;
            let policy = opts.policy.clone();
            let width = opts.device_width;
            scope.spawn(move || {
                let worker = Worker::new(slice, filter, options, policy, width, fault);
                worker_main(worker, req_rx, resp_tx);
            });
            links.push((req_tx, resp_rx));
        }
        coordinate(host, query, &ranges, links, wall_start)
    })
}

// ---------------------------------------------------------------------
// Coordinator <-> worker protocol
// ---------------------------------------------------------------------

/// A request from the coordinator to one shard worker.
#[derive(Debug, Clone)]
enum Req {
    /// Open an aggregate window (span + metrics). No response.
    BeginAgg {
        label: String,
        /// Merged matched count, recorded as the aggregate's input size.
        input: u64,
    },
    /// Close the aggregate window; responds `Ack` (lint result).
    EndAgg,
    /// Partial sum of a column over the shard's selection.
    Sum(usize),
    /// Partial MIN/MAX of a column over the shard's selection.
    Extremum { column: usize, is_min: bool },
    /// Copy a column to depth in preparation for a global bit descent.
    BeginDescent(usize),
    /// One descent step: count selected records with value `>= m`.
    CountGe(u32),
    /// Tear down and return the shard's ledger.
    Finish,
}

/// A response from a shard worker.
enum Resp {
    /// Selection finished (or failed): matched count and mask.
    Ready(EngineResult<ShardInit>),
    /// A partial count or sum.
    Value(EngineResult<u64>),
    /// A partial extremum; `None` when the shard selected no records.
    Extremum(EngineResult<Option<u32>>),
    /// Acknowledgement for `BeginDescent` / `EndAgg`.
    Ack(EngineResult<()>),
    /// The shard's final ledger.
    Done(Box<ShardDone>),
}

/// Phase-1 result: the shard's selection outcome.
struct ShardInit {
    matched: u64,
    mask: Vec<bool>,
}

/// Everything a worker reports when finishing.
struct ShardDone {
    path: ResiliencePath,
    attempts: u32,
    retries: u32,
    degradations: Vec<String>,
    metrics: Vec<MetricsRecord>,
    timing: OpTiming,
    modeled_ns: u64,
    trace: Option<SpanTree>,
}

type Link = (Sender<Req>, Receiver<Resp>);

fn disconnected() -> EngineError {
    EngineError::InvalidQuery("shard worker disconnected".into())
}

fn protocol_error() -> EngineError {
    EngineError::InvalidQuery("unexpected shard response".into())
}

fn recv(rx: &Receiver<Resp>) -> EngineResult<Resp> {
    rx.recv().map_err(|_| disconnected())
}

fn broadcast(links: &[Link], req: &Req) -> EngineResult<()> {
    for (tx, _) in links {
        tx.send(req.clone()).map_err(|_| disconnected())?;
    }
    Ok(())
}

/// Broadcast a request and sum the per-shard `Value` responses in shard
/// order.
fn gather_sum(links: &[Link], req: Req) -> EngineResult<u64> {
    broadcast(links, &req)?;
    let mut total = 0u64;
    for (_, rx) in links {
        match recv(rx)? {
            Resp::Value(v) => total += v?,
            _ => return Err(protocol_error()),
        }
    }
    Ok(total)
}

/// Broadcast a request and gather per-shard `Ack` responses.
fn gather_acks(links: &[Link], req: Req) -> EngineResult<()> {
    broadcast(links, &req)?;
    for (_, rx) in links {
        match recv(rx)? {
            Resp::Ack(r) => r?,
            _ => return Err(protocol_error()),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------

fn coordinate(
    host: &HostTable,
    query: &Query,
    ranges: &[(usize, usize)],
    links: Vec<Link>,
    wall_start: Instant,
) -> EngineResult<ShardedOutput> {
    let n = host.record_count();

    // Phase 1: every shard plans and executes its own selection; gather
    // outcomes in shard order so errors surface deterministically.
    let mut matched_total = 0u64;
    let mut mask = Vec::with_capacity(n);
    for (_, rx) in &links {
        match recv(rx)? {
            Resp::Ready(init) => {
                let init = init?;
                matched_total += init.matched;
                mask.extend_from_slice(&init.mask);
            }
            _ => return Err(protocol_error()),
        }
    }

    // Phase 2: aggregates, strictly in SELECT order — validation errors
    // (unknown column, invalid k, empty input) surface in exactly the
    // order single-device execution reports them.
    let mut rows = Vec::with_capacity(query.aggregates.len());
    for agg in &query.aggregates {
        let label = agg.label();
        broadcast(
            &links,
            &Req::BeginAgg {
                label: label.clone(),
                input: matched_total,
            },
        )?;
        let value = merge_aggregate(host, agg, matched_total, &links)?;
        gather_acks(&links, Req::EndAgg)?;
        rows.push((label, value));
    }

    // Finish: collect per-shard ledgers, again in shard order.
    broadcast(&links, &Req::Finish)?;
    let mut all_metrics: Vec<MetricsRecord> = Vec::new();
    let mut timing = OpTiming::default();
    let mut shards = Vec::with_capacity(links.len());
    let mut traces = Vec::new();
    for ((_, rx), &(start, end)) in links.iter().zip(ranges) {
        let done = match recv(rx)? {
            Resp::Done(d) => *d,
            _ => return Err(protocol_error()),
        };
        all_metrics.extend(done.metrics);
        timing = timing.plus(&done.timing);
        if let Some(tree) = done.trace {
            traces.push(tree);
        }
        shards.push(ShardRun {
            start,
            records: end - start,
            path: done.path,
            attempts: done.attempts,
            retries: done.retries,
            degradations: done.degradations,
            modeled_ns: done.modeled_ns,
        });
    }
    all_metrics.push(marker_record("parallel/merge", n as u64));

    let merge_ns = merge_cost_ns(shards.len(), query.aggregates.len());
    let merged_ns = shards.iter().map(|s| s.modeled_ns).max().unwrap_or(0) + merge_ns;
    timing.wall = wall_start.elapsed().as_secs_f64();
    let trace = if traces.is_empty() {
        None
    } else {
        Some(merge_shard_trees(traces))
    };
    let selectivity = if n == 0 {
        0.0
    } else {
        matched_total as f64 / n as f64
    };
    Ok(ShardedOutput {
        output: QueryOutput {
            matched: matched_total,
            selectivity,
            rows,
            timing,
            metrics: all_metrics,
            trace,
        },
        mask,
        report: ShardReport {
            shards,
            merge_ns,
            merged_ns,
        },
    })
}

/// Validate and compute one aggregate from per-shard partials, matching
/// single-device semantics (and error ordering) exactly.
fn merge_aggregate(
    host: &HostTable,
    agg: &Aggregate,
    matched: u64,
    links: &[Link],
) -> EngineResult<AggValue> {
    Ok(match agg {
        Aggregate::Count => AggValue::Count(matched),
        Aggregate::Sum(col) => {
            let idx = host.column_index(col)?;
            AggValue::Sum(gather_sum(links, Req::Sum(idx))?)
        }
        Aggregate::Avg(col) => {
            let idx = host.column_index(col)?;
            if matched == 0 {
                return Err(EngineError::EmptyInput);
            }
            AggValue::Avg(gather_sum(links, Req::Sum(idx))? as f64 / matched as f64)
        }
        Aggregate::Min(col) | Aggregate::Max(col) => {
            let idx = host.column_index(col)?;
            if matched == 0 {
                return Err(EngineError::InvalidK { k: 1, available: 0 });
            }
            let is_min = matches!(agg, Aggregate::Min(_));
            broadcast(
                links,
                &Req::Extremum {
                    column: idx,
                    is_min,
                },
            )?;
            let mut best: Option<u32> = None;
            for (_, rx) in links {
                let partial = match recv(rx)? {
                    Resp::Extremum(v) => v?,
                    _ => return Err(protocol_error()),
                };
                best = match (best, partial) {
                    (Some(a), Some(b)) => Some(if is_min { a.min(b) } else { a.max(b) }),
                    (a, b) => a.or(b),
                };
            }
            AggValue::Value(best.ok_or(EngineError::InvalidK {
                k: 1,
                available: matched,
            })?)
        }
        Aggregate::KthLargest(col, k) => {
            let idx = host.column_index(col)?;
            if *k == 0 || *k as u64 > matched {
                return Err(EngineError::InvalidK {
                    k: *k,
                    available: matched,
                });
            }
            AggValue::Value(descend(host, links, idx, *k)?)
        }
        Aggregate::KthSmallest(col, k) => {
            let idx = host.column_index(col)?;
            if *k == 0 || *k as u64 > matched {
                return Err(EngineError::InvalidK {
                    k: *k,
                    available: matched,
                });
            }
            AggValue::Value(descend(host, links, idx, matched as usize + 1 - k)?)
        }
        Aggregate::Median(col) => {
            let idx = host.column_index(col)?;
            if matched == 0 {
                return Err(EngineError::EmptyInput);
            }
            let rank = (matched as usize).div_ceil(2);
            AggValue::Value(descend(host, links, idx, matched as usize + 1 - rank)?)
        }
        Aggregate::Percentile(col, p) => {
            let idx = host.column_index(col)?;
            if matched == 0 {
                return Err(EngineError::EmptyInput);
            }
            let rank =
                ((p.clamp(0.0, 1.0) * matched as f64).ceil() as usize).clamp(1, matched as usize);
            AggValue::Value(descend(host, links, idx, matched as usize + 1 - rank)?)
        }
    })
}

/// The global bit descent of Routine 4.5, distributed: the coordinator
/// fixes one bit of the answer per round; every shard contributes its
/// partial `count >= m` from its own comparison pass, and the counts
/// add because the shards partition the records.
///
/// The bit width is derived from the full column's maximum — the same
/// `32 - leading_zeros(max)` that [`crate::table::ColumnMeta`] stores —
/// so the descent runs the identical bit sequence as one device would.
fn descend(host: &HostTable, links: &[Link], column: usize, k: usize) -> EngineResult<u32> {
    gather_acks(links, Req::BeginDescent(column))?;
    let max = host
        .column_values(column)?
        .iter()
        .copied()
        .max()
        .unwrap_or(0);
    let bits = 32 - max.leading_zeros();
    let mut x = 0u32;
    for i in (0..bits).rev() {
        let m = x + (1 << i);
        let count = gather_sum(links, Req::CountGe(m))?;
        if count > (k - 1) as u64 {
            x = m;
        }
    }
    Ok(x)
}

// ---------------------------------------------------------------------
// Shard worker
// ---------------------------------------------------------------------

/// Where a shard's aggregate answers come from after phase 1.
enum Backend {
    /// Data lives on the shard device; `selection` masks the aggregates.
    Gpu {
        table: GpuTable,
        selection: Option<Selection>,
    },
    /// The shard degraded: answers come from the host slice + mask.
    Cpu,
}

/// An open aggregate measurement window (counter snapshot at BeginAgg).
struct AggWindow {
    label: String,
    input: u64,
    counters: gpudb_sim::WorkCounters,
    modeled: gpudb_sim::PhaseTimes,
}

struct Worker {
    gpu: Gpu,
    slice: HostTable,
    filter: Option<BoolExpr>,
    fuse: bool,
    validate: bool,
    policy: RetryPolicy,
    backend: Backend,
    mask: Vec<bool>,
    matched: u64,
    descent_column: Option<usize>,
    path: ResiliencePath,
    attempts: u32,
    retries: u32,
    degradations: Vec<String>,
    metrics: Vec<MetricsRecord>,
    window: Option<AggWindow>,
}

fn worker_main(mut worker: Worker, reqs: Receiver<Req>, resps: Sender<Resp>) {
    let init = worker.run_selection();
    let failed = init.is_err();
    let _ = resps.send(Resp::Ready(init));
    if failed {
        // The coordinator aborts on a failed shard; nothing more to serve.
        return;
    }
    while let Ok(req) = reqs.recv() {
        match req {
            Req::BeginAgg { label, input } => worker.begin_agg(label, input),
            Req::EndAgg => {
                let r = worker.end_agg();
                let _ = resps.send(Resp::Ack(r));
            }
            Req::Sum(column) => {
                let r = worker.op_sum(column);
                let _ = resps.send(Resp::Value(r));
            }
            Req::Extremum { column, is_min } => {
                let r = worker.op_extremum(column, is_min);
                let _ = resps.send(Resp::Extremum(r));
            }
            Req::BeginDescent(column) => {
                let r = worker.op_begin_descent(column);
                let _ = resps.send(Resp::Ack(r));
            }
            Req::CountGe(m) => {
                let r = worker.op_count_ge(m);
                let _ = resps.send(Resp::Value(r));
            }
            Req::Finish => {
                let _ = resps.send(Resp::Done(Box::new(worker.finish())));
                return;
            }
        }
    }
}

/// Restrict a descent comparison pass to the shard's selection — the
/// read-only stencil mask of Routine 4.5.
fn arm_mask(gpu: &mut Gpu, masked: bool) {
    if masked {
        gpu.set_stencil_func(true, CompareFunc::Equal, SELECTED, 0xFF);
        gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, StencilOp::Keep);
    } else {
        gpu.set_stencil_func(false, CompareFunc::Always, 0, 0xFF);
    }
}

/// Lint recorded plans; the first error-severity diagnostic fails the
/// shard with [`EngineError::PlanValidation`].
fn lint_plans(plans: &[PassPlan]) -> EngineResult<()> {
    let linter = Linter::new();
    for plan in plans {
        let errors: Vec<String> = linter
            .lint(plan)
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(ToString::to_string)
            .collect();
        if !errors.is_empty() {
            return Err(EngineError::PlanValidation {
                operator: plan.label.clone(),
                diagnostics: errors,
            });
        }
    }
    Ok(())
}

impl Worker {
    fn new(
        slice: HostTable,
        filter: Option<BoolExpr>,
        options: ExecuteOptions,
        policy: RetryPolicy,
        width: usize,
        fault: Option<FaultInjector>,
    ) -> Worker {
        let mut gpu = GpuTable::device_for(slice.record_count(), width);
        if let Some(injector) = fault {
            gpu.attach_fault_injector(injector);
        }
        if let Some(level) = options.trace {
            gpu.attach_span_sink(Box::new(SpanCollector::new(level)));
        }
        Worker {
            gpu,
            slice,
            filter,
            fuse: options.fuse_passes,
            validate: options.validate_plans,
            policy,
            backend: Backend::Cpu,
            mask: Vec::new(),
            matched: 0,
            descent_column: None,
            path: ResiliencePath::Gpu,
            attempts: 0,
            retries: 0,
            degradations: Vec::new(),
            metrics: Vec::new(),
            window: None,
        }
    }

    /// Drop any recorded plans and stop recording — run after a failed
    /// attempt or a mid-aggregate degradation, where a half-executed
    /// routine may have left unpaired occlusion ops that would trip the
    /// linter spuriously.
    fn drop_recording(&mut self) {
        if self.gpu.is_recording() {
            let _ = self.gpu.take_plans();
            self.gpu.disable_tracing();
        }
    }

    /// The selection recovery ladder, mirroring
    /// [`crate::resilience::execute_resilient`]: retry transients with
    /// modeled backoff, fall back to the CPU oracle on resource/device
    /// faults or retry exhaustion (when the policy allows), surface
    /// logic errors untouched.
    fn run_selection(&mut self) -> EngineResult<ShardInit> {
        let max_attempts = self.policy.max_attempts.max(1);
        loop {
            self.attempts += 1;
            let error = match self.selection_attempt() {
                Ok(()) => {
                    return Ok(ShardInit {
                        matched: self.matched,
                        mask: self.mask.clone(),
                    })
                }
                Err(e) => e,
            };
            self.drop_recording();
            match error.fault_class() {
                FaultClass::Logic => return Err(error),
                FaultClass::Transient if self.attempts < max_attempts => {
                    self.retries += 1;
                    let pause = self.policy.base_backoff_s
                        * self
                            .policy
                            .multiplier
                            .powi(self.retries.saturating_sub(1) as i32);
                    let records = self.slice.record_count() as u64;
                    let ((), record) = metrics::observe(
                        &mut self.gpu,
                        "resilience/retry-backoff",
                        records,
                        |gpu| gpu.charge_backoff(pause),
                    );
                    self.metrics.push(record);
                    self.degradations.push(format!(
                        "transient fault ({error}); retry {} after {pause:.6}s modeled backoff",
                        self.retries
                    ));
                }
                FaultClass::Transient => {
                    let exhausted = EngineError::RetriesExhausted {
                        attempts: self.attempts,
                        last: Box::new(error),
                    };
                    if !self.policy.cpu_fallback {
                        return Err(exhausted);
                    }
                    self.degradations
                        .push(format!("{exhausted}; shard answering on the CPU"));
                    return self.cpu_fallback();
                }
                class => {
                    if !self.policy.cpu_fallback {
                        return Err(error);
                    }
                    let kind = if class == FaultClass::Resource {
                        "resource"
                    } else {
                        "device"
                    };
                    self.degradations.push(format!(
                        "{kind} fault ({error}); shard answering on the CPU"
                    ));
                    return self.cpu_fallback();
                }
            }
        }
    }

    /// One selection attempt: upload the slice, plan, execute (fused by
    /// default), lint the recorded plan when validating, and read back
    /// the per-record mask. On success the uploaded table and selection
    /// stay resident for the aggregate phase.
    fn selection_attempt(&mut self) -> EngineResult<()> {
        let table = self.slice.upload(&mut self.gpu)?;
        match self.selection_on(&table) {
            Ok((selection, matched, mask, record)) => {
                self.metrics.push(record);
                self.matched = matched;
                self.mask = mask;
                self.backend = Backend::Gpu { table, selection };
                Ok(())
            }
            Err(e) => {
                // Best-effort free: on a reset device this may fail too.
                let _ = table.free(&mut self.gpu);
                Err(e)
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn selection_on(
        &mut self,
        table: &GpuTable,
    ) -> EngineResult<(Option<Selection>, u64, Vec<bool>, MetricsRecord)> {
        let plan = plan_selection(table, self.filter.as_ref())?;
        if self.validate {
            self.gpu.enable_tracing(RecordMode::RecordAndExecute);
        }
        self.gpu.span_begin(SpanKind::Stage, "selection");
        let fuse = self.fuse;
        let (result, record) = metrics::observe(
            &mut self.gpu,
            plan_operator(&plan),
            table.record_count() as u64,
            |gpu| execute_selection(gpu, table, &plan, fuse),
        );
        self.gpu.span_end();
        let lint = if self.validate {
            let plans = self.gpu.take_plans();
            self.gpu.disable_tracing();
            lint_plans(&plans)
        } else {
            Ok(())
        };
        let (selection, matched) = result?;
        lint?;
        let mask = match &selection {
            Some(sel) => sel.read_mask(&mut self.gpu)?,
            None => vec![true; table.record_count()],
        };
        Ok((selection, matched, mask, record))
    }

    /// Answer the whole shard from the CPU oracle.
    fn cpu_fallback(&mut self) -> EngineResult<ShardInit> {
        let bitmap = cpu_oracle::filter_mask(&self.slice, self.filter.as_ref())?;
        let records = self.slice.record_count();
        self.mask = (0..records).map(|i| bitmap.get(i)).collect();
        self.matched = bitmap.count_ones() as u64;
        self.backend = Backend::Cpu;
        self.path = ResiliencePath::Cpu;
        self.metrics
            .push(marker_record("parallel/shard-cpu", records as u64));
        Ok(ShardInit {
            matched: self.matched,
            mask: self.mask.clone(),
        })
    }

    /// Degrade the rest of this shard's query to the CPU, or surface the
    /// error when it is a logic fault or the policy forbids fallback.
    fn degrade_or(&mut self, error: EngineError) -> EngineResult<()> {
        if error.fault_class() == FaultClass::Logic || !self.policy.cpu_fallback {
            return Err(error);
        }
        self.drop_recording();
        self.degradations.push(format!(
            "aggregate fault ({error}); shard answering on the CPU"
        ));
        self.metrics.push(marker_record(
            "parallel/shard-cpu",
            self.slice.record_count() as u64,
        ));
        self.path = ResiliencePath::Cpu;
        self.backend = Backend::Cpu;
        Ok(())
    }

    fn begin_agg(&mut self, label: String, input: u64) {
        self.gpu
            .span_begin(SpanKind::Stage, &format!("aggregate:{label}"));
        if self.validate && matches!(self.backend, Backend::Gpu { .. }) {
            self.gpu.enable_tracing(RecordMode::RecordAndExecute);
            self.gpu.begin_plan(&format!("agg/{label}"));
        }
        self.gpu
            .span_begin(SpanKind::Operator, &format!("agg/{label}"));
        self.window = Some(AggWindow {
            label,
            input,
            counters: self.gpu.stats().counters(),
            modeled: self.gpu.stats().modeled,
        });
    }

    fn end_agg(&mut self) -> EngineResult<()> {
        self.gpu.span_end(); // operator
        let lint = if self.gpu.is_recording() {
            let plans = self.gpu.take_plans();
            self.gpu.disable_tracing();
            lint_plans(&plans)
        } else {
            Ok(())
        };
        if let Some(window) = self.window.take() {
            let counters = self.gpu.stats().counters().since(&window.counters);
            let modeled = self.gpu.stats().modeled.since(&window.modeled);
            self.metrics.push(MetricsRecord {
                operator: format!("agg/{}", window.label),
                input_records: window.input,
                counters,
                modeled_ns: PhaseNanos::from_phases(&modeled),
            });
        }
        self.gpu.span_end(); // stage
        self.gpu.reset_state();
        lint
    }

    fn op_sum(&mut self, column: usize) -> EngineResult<u64> {
        if self.matched == 0 {
            return Ok(0);
        }
        let gpu_result = match &self.backend {
            Backend::Gpu { table, selection } => Some(aggregate::sum(
                &mut self.gpu,
                table,
                column,
                selection.as_ref(),
            )),
            Backend::Cpu => None,
        };
        match gpu_result {
            Some(Ok(v)) => return Ok(v),
            Some(Err(e)) => self.degrade_or(e)?,
            None => {}
        }
        let values = self.slice.column_values(column)?;
        Ok(values
            .iter()
            .zip(&self.mask)
            .filter(|&(_, &selected)| selected)
            .map(|(&v, _)| v as u64)
            .sum())
    }

    fn op_extremum(&mut self, column: usize, is_min: bool) -> EngineResult<Option<u32>> {
        if self.matched == 0 {
            return Ok(None);
        }
        let gpu_result = match &self.backend {
            Backend::Gpu { table, selection } => Some(if is_min {
                aggregate::min(&mut self.gpu, table, column, selection.as_ref())
            } else {
                aggregate::max(&mut self.gpu, table, column, selection.as_ref())
            }),
            Backend::Cpu => None,
        };
        match gpu_result {
            Some(Ok(v)) => return Ok(Some(v)),
            Some(Err(e)) => self.degrade_or(e)?,
            None => {}
        }
        let values = self.slice.column_values(column)?;
        let selected = values
            .iter()
            .zip(&self.mask)
            .filter(|&(_, &selected)| selected)
            .map(|(&v, _)| v);
        Ok(if is_min {
            selected.min()
        } else {
            selected.max()
        })
    }

    fn op_begin_descent(&mut self, column: usize) -> EngineResult<()> {
        self.descent_column = Some(column);
        if self.matched == 0 {
            // An all-filtered shard contributes zero to every count; the
            // copy-to-depth would be dead work.
            return Ok(());
        }
        let gpu_result = match &self.backend {
            Backend::Gpu { table, .. } => Some(copy_to_depth(&mut self.gpu, table, column)),
            Backend::Cpu => None,
        };
        match gpu_result {
            Some(Ok(())) | None => Ok(()),
            Some(Err(e)) => self.degrade_or(e),
        }
    }

    fn op_count_ge(&mut self, m: u32) -> EngineResult<u64> {
        if self.matched == 0 {
            return Ok(0);
        }
        let gpu_result = match &self.backend {
            Backend::Gpu { table, selection } => {
                self.gpu.set_phase(Phase::Compute);
                arm_mask(&mut self.gpu, selection.is_some());
                Some(comparison_pass(
                    &mut self.gpu,
                    table,
                    CompareFunc::GreaterEqual,
                    m,
                    OcclusionMode::Sync,
                ))
            }
            Backend::Cpu => None,
        };
        match gpu_result {
            Some(Ok(count)) => return Ok(count),
            Some(Err(e)) => self.degrade_or(e)?,
            None => {}
        }
        let column = self
            .descent_column
            .ok_or_else(|| EngineError::InvalidQuery("descent step before BeginDescent".into()))?;
        let values = self.slice.column_values(column)?;
        Ok(values
            .iter()
            .zip(&self.mask)
            .filter(|&(&v, &selected)| selected && v >= m)
            .count() as u64)
    }

    fn finish(mut self) -> ShardDone {
        let trace = self
            .gpu
            .take_span_sink()
            .and_then(SpanCollector::recover)
            .map(SpanCollector::finish);
        let modeled = self.gpu.stats().modeled;
        ShardDone {
            path: self.path,
            attempts: self.attempts,
            retries: self.retries,
            degradations: self.degradations,
            metrics: self.metrics,
            timing: OpTiming::from_phases(&modeled, 0.0),
            modeled_ns: (modeled.total().max(0.0) * 1e9).round() as u64,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpudb_sim::{FaultEvent, FaultKind};

    fn host_table(records: usize) -> HostTable {
        let a: Vec<u32> = (0..records as u32).map(|i| (i * 37 + 11) % 2000).collect();
        let b: Vec<u32> = (0..records as u32).map(|i| (i * 101 + 7) % 500).collect();
        HostTable::new("t", vec![("a", a), ("b", b)]).expect("host table")
    }

    fn full_query() -> Query {
        Query {
            aggregates: vec![
                Aggregate::Count,
                Aggregate::Sum("a".into()),
                Aggregate::Avg("b".into()),
                Aggregate::Min("a".into()),
                Aggregate::Max("b".into()),
                Aggregate::Median("a".into()),
                Aggregate::KthLargest("b".into(), 3),
            ],
            filter: Some(BoolExpr::pred("a", CompareFunc::Greater, 700)),
        }
    }

    fn single_device(host: &HostTable, query: &Query) -> QueryOutput {
        let mut gpu = GpuTable::device_for(host.record_count(), 16);
        let table = host.upload(&mut gpu).expect("upload");
        crate::query::executor::execute(&mut gpu, &table, query).expect("single-device execute")
    }

    #[test]
    fn plan_shards_covers_and_balances() {
        assert_eq!(plan_shards(0, 4), vec![(0, 0)]);
        assert_eq!(plan_shards(10, 1), vec![(0, 10)]);
        assert_eq!(plan_shards(10, 3), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(plan_shards(3, 8), vec![(0, 1), (1, 2), (2, 3)]);
        // Always a partition of 0..n.
        for n in [0usize, 1, 7, 100] {
            for shards in [1usize, 2, 3, 7, 16] {
                let ranges = plan_shards(n, shards);
                let mut cursor = 0;
                for &(start, end) in &ranges {
                    assert_eq!(start, cursor);
                    assert!(end >= start);
                    cursor = end;
                }
                assert_eq!(cursor, n);
            }
        }
    }

    #[test]
    fn sharded_matches_single_device_at_every_shard_count() {
        let host = host_table(137);
        let query = full_query();
        let reference = single_device(&host, &query);
        for shards in [1usize, 2, 3, 5, 16] {
            let opts = ShardOptions {
                shards,
                ..ShardOptions::default()
            };
            let out = execute_sharded(&host, &query, &opts).expect("sharded execute");
            assert_eq!(out.output.matched, reference.matched, "shards={shards}");
            assert_eq!(out.output.rows, reference.rows, "shards={shards}");
            assert_eq!(out.mask.len(), host.record_count());
            assert_eq!(out.report.shards.len(), plan_shards(137, shards).len());
        }
    }

    #[test]
    fn merged_cost_is_critical_path_plus_merge() {
        let host = host_table(64);
        let query = full_query();
        let opts = ShardOptions {
            shards: 4,
            ..ShardOptions::default()
        };
        let out = execute_sharded(&host, &query, &opts).expect("sharded execute");
        let slowest = out
            .report
            .shards
            .iter()
            .map(|s| s.modeled_ns)
            .max()
            .unwrap_or(0);
        assert!(slowest > 0);
        assert_eq!(
            out.report.merge_ns,
            merge_cost_ns(4, query.aggregates.len())
        );
        assert_eq!(out.report.merged_ns, slowest + out.report.merge_ns);
    }

    #[test]
    fn aggregate_errors_surface_in_select_order() {
        let host = host_table(32);
        // KthLargest with k=0 comes first: its InvalidK must win over the
        // later unknown column, exactly as single-device execution orders
        // them.
        let query = Query {
            aggregates: vec![
                Aggregate::KthLargest("a".into(), 0),
                Aggregate::Sum("nope".into()),
            ],
            filter: None,
        };
        let err = execute_sharded(&host, &query, &ShardOptions::default())
            .expect_err("invalid k must fail");
        assert!(matches!(err, EngineError::InvalidK { k: 0, .. }), "{err}");
    }

    #[test]
    fn single_shard_fault_degrades_only_that_shard() {
        let host = host_table(96);
        let query = full_query();
        let opts = ShardOptions {
            shards: 3,
            ..ShardOptions::default()
        };
        let reference = execute_sharded(&host, &query, &opts).expect("clean run");
        // Reset shard 1's device at t=0: it degrades to the CPU; the
        // others stay on the GPU and the merged answer is unchanged.
        let faults = vec![
            None,
            Some(FaultInjector::with_schedule(vec![FaultEvent {
                at_ns: 0,
                kind: FaultKind::DeviceReset,
            }])),
            None,
        ];
        let out = execute_sharded_with_faults(&host, &query, &opts, faults).expect("faulted run");
        assert_eq!(out.output.rows, reference.output.rows);
        assert_eq!(out.mask, reference.mask);
        assert_eq!(out.report.shards[0].path, ResiliencePath::Gpu);
        assert_eq!(out.report.shards[1].path, ResiliencePath::Cpu);
        assert_eq!(out.report.shards[2].path, ResiliencePath::Gpu);
        assert!(!out.report.shards[1].degradations.is_empty());
        assert!(out.report.shards[0].degradations.is_empty());
    }

    #[test]
    fn empty_table_executes_and_counts_zero() {
        let host = HostTable::new("t", vec![("a", Vec::new())]).expect("empty table");
        let query = Query {
            aggregates: vec![Aggregate::Count],
            filter: None,
        };
        let out = execute_sharded(&host, &query, &ShardOptions::default()).expect("empty run");
        assert_eq!(out.output.matched, 0);
        assert!(out.mask.is_empty());
        assert_eq!(
            out.output.rows,
            vec![("COUNT(*)".to_string(), AggValue::Count(0))]
        );
    }

    #[test]
    fn validate_and_trace_modes_hold_result_parity() {
        let host = host_table(80);
        let query = full_query();
        let reference = single_device(&host, &query);
        let opts = ShardOptions {
            shards: 3,
            options: ExecuteOptions {
                validate_plans: true,
                trace: Some(gpudb_obs::TraceLevel::Operators),
                ..ExecuteOptions::default()
            },
            ..ShardOptions::default()
        };
        let out = execute_sharded(&host, &query, &opts).expect("validated traced run");
        assert_eq!(out.output.rows, reference.rows);
        let trace = out.output.trace.expect("merged trace");
        assert_eq!(trace.roots.len(), 1);
        assert_eq!(trace.roots[0].children.len(), 3);
        assert_eq!(trace.roots[0].children[0].name, "shard-0");
    }
}
