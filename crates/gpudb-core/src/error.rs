//! Error types for the database engine layer.

use gpudb_sim::{FaultClass, GpuError};
use std::fmt;

/// Errors raised by the GPU database operations.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// An underlying device error.
    Gpu(GpuError),
    /// A referenced column name does not exist in the table.
    ColumnNotFound(String),
    /// A column index was out of range.
    ColumnIndexOutOfRange(usize),
    /// Table upload received columns of differing lengths.
    MismatchedColumnLengths,
    /// An attribute value exceeds the 24-bit GPU encoding (§3.3 of the
    /// paper: floats "can precisely represent integers up to 24 bits").
    AttributeTooWide {
        /// Offending column name.
        column: String,
        /// Bits required by the widest value.
        bits: u32,
    },
    /// The device framebuffer cannot hold the table's record grid.
    FramebufferTooSmall {
        /// Rows needed for the record count at the table width.
        needed: usize,
        /// Rows available on the device.
        available: usize,
    },
    /// An operation that requires records was applied to an empty table or
    /// empty selection.
    EmptyInput,
    /// `k` was zero or exceeded the number of (selected) records.
    InvalidK {
        /// Requested rank.
        k: usize,
        /// Records available.
        available: u64,
    },
    /// A semi-linear query referenced more attributes than supported.
    TooManyAttributes(usize),
    /// A query referenced a table that is not loaded.
    TableNotFound(String),
    /// A malformed query (planner/executor-level validation).
    InvalidQuery(String),
    /// An operator's recorded pass plan violated a paper-routine
    /// invariant (gpudb-lint, error severity).
    PlanValidation {
        /// The operator whose plan failed validation.
        operator: String,
        /// Rendered diagnostics from the validator.
        diagnostics: Vec<String>,
    },
    /// The retry budget was exhausted without a successful attempt; the
    /// last transient error is carried for diagnostics. Classified as a
    /// *device* fault: persistent transience means the device is not
    /// cooperating and a non-GPU path should take over.
    RetriesExhausted {
        /// Attempts made (initial try plus retries).
        attempts: u32,
        /// The error from the final attempt.
        last: Box<EngineError>,
    },
}

impl EngineError {
    /// Classify this error for the retry/degradation policy: transient
    /// device faults are retryable, resource exhaustion invites a
    /// smaller-footprint strategy, device loss invites a CPU fallback, and
    /// everything else is a logic error that no amount of retrying fixes.
    pub fn fault_class(&self) -> FaultClass {
        match self {
            EngineError::Gpu(e) => e.fault_class(),
            EngineError::RetriesExhausted { .. } => FaultClass::Device,
            _ => FaultClass::Logic,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Gpu(e) => write!(f, "device error: {e}"),
            EngineError::ColumnNotFound(name) => write!(f, "column {name:?} not found"),
            EngineError::ColumnIndexOutOfRange(i) => write!(f, "column index {i} out of range"),
            EngineError::MismatchedColumnLengths => write!(f, "columns have differing lengths"),
            EngineError::AttributeTooWide { column, bits } => write!(
                f,
                "column {column:?} needs {bits} bits; the GPU encoding holds at most 24"
            ),
            EngineError::FramebufferTooSmall { needed, available } => write!(
                f,
                "framebuffer too small: need {needed} rows, have {available}"
            ),
            EngineError::EmptyInput => write!(f, "operation requires at least one record"),
            EngineError::InvalidK { k, available } => {
                write!(f, "k = {k} out of range for {available} records")
            }
            EngineError::TooManyAttributes(n) => {
                write!(
                    f,
                    "semi-linear query over {n} attributes unsupported (max 8)"
                )
            }
            EngineError::TableNotFound(name) => write!(f, "table {name:?} not found"),
            EngineError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            EngineError::PlanValidation {
                operator,
                diagnostics,
            } => {
                write!(
                    f,
                    "pass plan for {operator:?} failed validation: {}",
                    diagnostics.join("; ")
                )
            }
            EngineError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Gpu(e) => Some(e),
            EngineError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

impl From<GpuError> for EngineError {
    fn from(e: GpuError) -> Self {
        EngineError::Gpu(e)
    }
}

/// Convenience alias for engine results.
pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(EngineError, &str)> = vec![
            (EngineError::ColumnNotFound("x".into()), "x"),
            (EngineError::ColumnIndexOutOfRange(7), "7"),
            (
                EngineError::AttributeTooWide {
                    column: "big".into(),
                    bits: 30,
                },
                "30",
            ),
            (
                EngineError::FramebufferTooSmall {
                    needed: 100,
                    available: 10,
                },
                "100",
            ),
            (EngineError::InvalidK { k: 5, available: 3 }, "5"),
            (EngineError::TableNotFound("t".into()), "t"),
        ];
        for (err, fragment) in cases {
            assert!(
                err.to_string().contains(fragment),
                "{err} missing {fragment:?}"
            );
        }
    }

    #[test]
    fn gpu_error_wraps_with_source() {
        let e = EngineError::from(GpuError::InvalidTexture(3));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("device error"));
    }

    /// One instance of every variant with a Display fragment and its
    /// fault class. A new variant not added here fails the count check.
    fn all_variants() -> Vec<(EngineError, &'static str, FaultClass)> {
        vec![
            (
                EngineError::Gpu(GpuError::InvalidTexture(1)),
                "device error",
                FaultClass::Logic,
            ),
            (
                EngineError::ColumnNotFound("rate".into()),
                "\"rate\" not found",
                FaultClass::Logic,
            ),
            (
                EngineError::ColumnIndexOutOfRange(7),
                "index 7 out of range",
                FaultClass::Logic,
            ),
            (
                EngineError::MismatchedColumnLengths,
                "differing lengths",
                FaultClass::Logic,
            ),
            (
                EngineError::AttributeTooWide {
                    column: "big".into(),
                    bits: 30,
                },
                "30",
                FaultClass::Logic,
            ),
            (
                EngineError::FramebufferTooSmall {
                    needed: 100,
                    available: 10,
                },
                "100",
                FaultClass::Logic,
            ),
            (
                EngineError::EmptyInput,
                "at least one record",
                FaultClass::Logic,
            ),
            (
                EngineError::InvalidK { k: 5, available: 3 },
                "5",
                FaultClass::Logic,
            ),
            (EngineError::TooManyAttributes(9), "9", FaultClass::Logic),
            (
                EngineError::TableNotFound("t".into()),
                "t",
                FaultClass::Logic,
            ),
            (
                EngineError::InvalidQuery("no".into()),
                "invalid query: no",
                FaultClass::Logic,
            ),
            (
                EngineError::PlanValidation {
                    operator: "filter/range".into(),
                    diagnostics: vec!["L003".into()],
                },
                "filter/range",
                FaultClass::Logic,
            ),
            (
                EngineError::RetriesExhausted {
                    attempts: 3,
                    last: Box::new(EngineError::Gpu(GpuError::OcclusionQueryLost)),
                },
                "gave up after 3 attempts",
                FaultClass::Device,
            ),
        ]
    }

    #[test]
    fn every_variant_displays_and_classifies() {
        let variants = all_variants();
        // Keep this table exhaustive: bump when adding a variant.
        assert_eq!(variants.len(), 13);
        for (err, fragment, class) in variants {
            assert!(
                err.to_string().contains(fragment),
                "{err} missing {fragment:?}"
            );
            assert_eq!(err.fault_class(), class, "{err}");
        }
    }

    #[test]
    fn gpu_fault_classes_pass_through_the_wrapper() {
        let cases = [
            (GpuError::OcclusionQueryLost, FaultClass::Transient),
            (
                GpuError::ReadbackCorrupted {
                    buffer: "depth",
                    bytes: 64,
                },
                FaultClass::Transient,
            ),
            (
                GpuError::OutOfVideoMemory {
                    requested: 1,
                    available: 0,
                },
                FaultClass::Resource,
            ),
            (GpuError::DeviceReset, FaultClass::Device),
            (GpuError::InvalidChannelCount(5), FaultClass::Logic),
        ];
        for (gpu_err, class) in cases {
            assert_eq!(EngineError::from(gpu_err).fault_class(), class);
        }
    }

    #[test]
    fn retries_exhausted_chains_to_the_last_error() {
        let e = EngineError::RetriesExhausted {
            attempts: 4,
            last: Box::new(EngineError::Gpu(GpuError::ReadbackCorrupted {
                buffer: "stencil",
                bytes: 512,
            })),
        };
        // Display carries the inner error; source() walks to it, and one
        // level deeper to the device error.
        assert!(e.to_string().contains("stencil"));
        let inner = std::error::Error::source(&e).expect("source");
        assert!(inner.to_string().contains("device error"));
        assert!(std::error::Error::source(inner).is_some());
    }
}
