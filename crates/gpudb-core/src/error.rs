//! Error types for the database engine layer.

use gpudb_sim::GpuError;
use std::fmt;

/// Errors raised by the GPU database operations.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// An underlying device error.
    Gpu(GpuError),
    /// A referenced column name does not exist in the table.
    ColumnNotFound(String),
    /// A column index was out of range.
    ColumnIndexOutOfRange(usize),
    /// Table upload received columns of differing lengths.
    MismatchedColumnLengths,
    /// An attribute value exceeds the 24-bit GPU encoding (§3.3 of the
    /// paper: floats "can precisely represent integers up to 24 bits").
    AttributeTooWide {
        /// Offending column name.
        column: String,
        /// Bits required by the widest value.
        bits: u32,
    },
    /// The device framebuffer cannot hold the table's record grid.
    FramebufferTooSmall {
        /// Rows needed for the record count at the table width.
        needed: usize,
        /// Rows available on the device.
        available: usize,
    },
    /// An operation that requires records was applied to an empty table or
    /// empty selection.
    EmptyInput,
    /// `k` was zero or exceeded the number of (selected) records.
    InvalidK {
        /// Requested rank.
        k: usize,
        /// Records available.
        available: u64,
    },
    /// A semi-linear query referenced more attributes than supported.
    TooManyAttributes(usize),
    /// A query referenced a table that is not loaded.
    TableNotFound(String),
    /// A malformed query (planner/executor-level validation).
    InvalidQuery(String),
    /// An operator's recorded pass plan violated a paper-routine
    /// invariant (gpudb-lint, error severity).
    PlanValidation {
        /// The operator whose plan failed validation.
        operator: String,
        /// Rendered diagnostics from the validator.
        diagnostics: Vec<String>,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Gpu(e) => write!(f, "device error: {e}"),
            EngineError::ColumnNotFound(name) => write!(f, "column {name:?} not found"),
            EngineError::ColumnIndexOutOfRange(i) => write!(f, "column index {i} out of range"),
            EngineError::MismatchedColumnLengths => write!(f, "columns have differing lengths"),
            EngineError::AttributeTooWide { column, bits } => write!(
                f,
                "column {column:?} needs {bits} bits; the GPU encoding holds at most 24"
            ),
            EngineError::FramebufferTooSmall { needed, available } => write!(
                f,
                "framebuffer too small: need {needed} rows, have {available}"
            ),
            EngineError::EmptyInput => write!(f, "operation requires at least one record"),
            EngineError::InvalidK { k, available } => {
                write!(f, "k = {k} out of range for {available} records")
            }
            EngineError::TooManyAttributes(n) => {
                write!(
                    f,
                    "semi-linear query over {n} attributes unsupported (max 8)"
                )
            }
            EngineError::TableNotFound(name) => write!(f, "table {name:?} not found"),
            EngineError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            EngineError::PlanValidation {
                operator,
                diagnostics,
            } => {
                write!(
                    f,
                    "pass plan for {operator:?} failed validation: {}",
                    diagnostics.join("; ")
                )
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Gpu(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GpuError> for EngineError {
    fn from(e: GpuError) -> Self {
        EngineError::Gpu(e)
    }
}

/// Convenience alias for engine results.
pub type EngineResult<T> = Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(EngineError, &str)> = vec![
            (EngineError::ColumnNotFound("x".into()), "x"),
            (EngineError::ColumnIndexOutOfRange(7), "7"),
            (
                EngineError::AttributeTooWide {
                    column: "big".into(),
                    bits: 30,
                },
                "30",
            ),
            (
                EngineError::FramebufferTooSmall {
                    needed: 100,
                    available: 10,
                },
                "100",
            ),
            (EngineError::InvalidK { k: 5, available: 3 }, "5"),
            (EngineError::TableNotFound("t".into()), "t"),
        ];
        for (err, fragment) in cases {
            assert!(
                err.to_string().contains(fragment),
                "{err} missing {fragment:?}"
            );
        }
    }

    #[test]
    fn gpu_error_wraps_with_source() {
        let e = EngineError::from(GpuError::InvalidTexture(3));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("device error"));
    }
}
