//! Per-operation timing breakdowns.
//!
//! The paper's figures separate total time from "computation time only"
//! (excluding the copy into the depth buffer). [`measure`] snapshots the
//! device's phase-attributed modeled clock around an operation and returns
//! both views, plus the simulator's wall-clock for transparency.

use gpudb_sim::{Gpu, Phase, PhaseTimes};
use serde::{Deserialize, Serialize};

/// Modeled timing breakdown of one operation, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OpTiming {
    /// Host → device upload time.
    pub upload: f64,
    /// Attribute copy-to-depth time (§5.4).
    pub copy: f64,
    /// Computation passes.
    pub compute: f64,
    /// Occlusion/result readback.
    pub readback: f64,
    /// Unattributed time.
    pub other: f64,
    /// Wall-clock seconds the simulation itself took (not a 2004 claim).
    pub wall: f64,
}

impl OpTiming {
    /// Total modeled time including the copy — the paper's headline
    /// "GPU timings include time to copy data values into the depth
    /// buffer" number.
    pub fn total(&self) -> f64 {
        self.upload + self.copy + self.compute + self.readback + self.other
    }

    /// Modeled time excluding the copy — the paper's "considering only
    /// computation time" number.
    pub fn compute_only(&self) -> f64 {
        self.total() - self.copy
    }

    /// Build from a phase-time delta.
    pub fn from_phases(delta: &PhaseTimes, wall: f64) -> OpTiming {
        OpTiming {
            upload: delta.get(Phase::Upload),
            copy: delta.get(Phase::CopyToDepth),
            compute: delta.get(Phase::Compute),
            readback: delta.get(Phase::Readback),
            other: delta.get(Phase::Other),
            wall,
        }
    }

    /// Component-wise sum, for aggregating repeated runs.
    pub fn plus(&self, other: &OpTiming) -> OpTiming {
        OpTiming {
            upload: self.upload + other.upload,
            copy: self.copy + other.copy,
            compute: self.compute + other.compute,
            readback: self.readback + other.readback,
            other: self.other + other.other,
            wall: self.wall + other.wall,
        }
    }

    /// Component-wise scale, for averaging repeated runs.
    pub fn scaled(&self, factor: f64) -> OpTiming {
        OpTiming {
            upload: self.upload * factor,
            copy: self.copy * factor,
            compute: self.compute * factor,
            readback: self.readback * factor,
            other: self.other * factor,
            wall: self.wall * factor,
        }
    }
}

/// Run `op` against the device and capture its timing breakdown.
pub fn measure<T>(gpu: &mut Gpu, op: impl FnOnce(&mut Gpu) -> T) -> (T, OpTiming) {
    let before = gpu.stats().modeled;
    let wall_before = std::time::Instant::now();
    let result = op(gpu);
    let wall = wall_before.elapsed().as_secs_f64();
    let after = gpu.stats().modeled;
    (result, OpTiming::from_phases(&after.since(&before), wall))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::compare_count;
    use crate::table::GpuTable;
    use gpudb_sim::CompareFunc;

    #[test]
    fn measure_separates_copy_from_compute() {
        let values: Vec<u32> = (0..500).collect();
        let mut gpu = GpuTable::device_for(values.len(), 25);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", &values)]).unwrap();
        let (count, timing) = measure(&mut gpu, |gpu| {
            compare_count(gpu, &t, 0, CompareFunc::Less, 250).unwrap()
        });
        assert_eq!(count, 250);
        assert!(timing.copy > 0.0);
        assert!(timing.compute > 0.0);
        // The count is fetched asynchronously (§5.3), so no readback drain.
        assert_eq!(timing.readback, 0.0);
        assert_eq!(timing.upload, 0.0, "no upload inside the measured op");
        assert!((timing.total() - timing.compute_only() - timing.copy).abs() < 1e-15);
        assert!(timing.total() > timing.compute_only());
        assert!(timing.wall > 0.0);
    }

    #[test]
    fn plus_and_scaled() {
        let a = OpTiming {
            upload: 1.0,
            copy: 2.0,
            compute: 3.0,
            readback: 4.0,
            other: 5.0,
            wall: 6.0,
        };
        let b = a.plus(&a);
        assert_eq!(b.total(), 2.0 * a.total());
        let half = b.scaled(0.5);
        assert_eq!(half, a);
    }
}
