//! Out-of-core execution: tables larger than the device.
//!
//! §6.1 of the paper ("Memory Management"): "due to the limited video
//! memory, we may not be able to copy very large databases (with tens of
//! millions of records) into GPU memory. In such situations, we would use
//! out-of-core techniques and swap textures in and out of video memory."
//!
//! [`ChunkedTable`] implements exactly that: host-resident columns are
//! streamed through the device one chunk at a time, paying the modeled
//! AGP upload for every swap. Decomposable aggregates (COUNT, SUM, MIN,
//! MAX) combine per-chunk results; `KthLargest` runs its global bit
//! descent with one swap-in per chunk per bit — the honest cost of order
//! statistics over data that does not fit, and a direct illustration of
//! why the paper flags bus bandwidth as a limiting factor.

use crate::aggregate;
use crate::error::{EngineError, EngineResult};
use crate::ops::ATTRIBUTE_BITS;
use crate::predicate::{comparison_pass, copy_to_depth, OcclusionMode};
use crate::range::range_count;
use crate::table::GpuTable;
use gpudb_sim::{CompareFunc, Gpu};

/// A host-resident table processed through the device in chunks.
#[derive(Debug, Clone)]
pub struct ChunkedTable<'a> {
    name: String,
    columns: Vec<(&'a str, &'a [u32])>,
    chunk_records: usize,
    record_count: usize,
}

impl<'a> ChunkedTable<'a> {
    /// Wrap host columns with a chunk size. Columns must be equal-length
    /// and the chunk size positive.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<(&'a str, &'a [u32])>,
        chunk_records: usize,
    ) -> EngineResult<ChunkedTable<'a>> {
        if chunk_records == 0 {
            return Err(EngineError::InvalidQuery(
                "chunk size must be positive".to_string(),
            ));
        }
        let record_count = columns.first().map_or(0, |(_, v)| v.len());
        if columns.iter().any(|(_, v)| v.len() != record_count) {
            return Err(EngineError::MismatchedColumnLengths);
        }
        Ok(ChunkedTable {
            name: name.into(),
            columns,
            chunk_records,
            record_count,
        })
    }

    /// Total records across all chunks.
    pub fn record_count(&self) -> usize {
        self.record_count
    }

    /// Number of chunks.
    pub fn chunk_count(&self) -> usize {
        self.record_count.div_ceil(self.chunk_records)
    }

    /// A device sized for one chunk at the given grid width.
    pub fn device_for_chunks(&self, width: usize) -> Gpu {
        GpuTable::device_for(self.chunk_records.min(self.record_count.max(1)), width)
    }

    /// Resolve a column name.
    pub fn column_index(&self, name: &str) -> EngineResult<usize> {
        self.columns
            .iter()
            .position(|(n, _)| *n == name)
            .ok_or_else(|| EngineError::ColumnNotFound(name.to_string()))
    }

    /// Stream one column through the device chunk by chunk: each chunk is
    /// uploaded (costed over AGP), handed to `f`, and freed.
    fn for_each_chunk<T>(
        &self,
        gpu: &mut Gpu,
        column: usize,
        mut f: impl FnMut(&mut Gpu, &GpuTable) -> EngineResult<T>,
    ) -> EngineResult<Vec<T>> {
        let (col_name, values) = self
            .columns
            .get(column)
            .ok_or(EngineError::ColumnIndexOutOfRange(column))?;
        let mut results = Vec::with_capacity(self.chunk_count());
        for (index, chunk) in values.chunks(self.chunk_records).enumerate() {
            let table = GpuTable::upload(
                gpu,
                format!("{}#{}", self.name, index),
                &[(col_name, chunk)],
            )?;
            let result = f(gpu, &table);
            table.free(gpu)?;
            results.push(result?);
        }
        Ok(results)
    }

    /// COUNT of records satisfying `column op constant`, combining
    /// per-chunk occlusion counts.
    pub fn count(
        &self,
        gpu: &mut Gpu,
        column: usize,
        op: CompareFunc,
        constant: u32,
    ) -> EngineResult<u64> {
        let counts = self.for_each_chunk(gpu, column, |gpu, table| {
            crate::predicate::compare_count(gpu, table, 0, op, constant)
        })?;
        Ok(counts.into_iter().sum())
    }

    /// COUNT of records in `[low, high]`, via the depth-bounds test per
    /// chunk.
    pub fn range_count(
        &self,
        gpu: &mut Gpu,
        column: usize,
        low: u32,
        high: u32,
    ) -> EngineResult<u64> {
        let counts = self.for_each_chunk(gpu, column, |gpu, table| {
            range_count(gpu, table, 0, low, high)
        })?;
        Ok(counts.into_iter().sum())
    }

    /// Exact SUM via the per-chunk bitwise accumulator.
    pub fn sum(&self, gpu: &mut Gpu, column: usize) -> EngineResult<u64> {
        let sums = self.for_each_chunk(gpu, column, |gpu, table| {
            aggregate::sum(gpu, table, 0, None)
        })?;
        Ok(sums.into_iter().sum())
    }

    /// Global MAX: the maximum of per-chunk maxima.
    pub fn max(&self, gpu: &mut Gpu, column: usize) -> EngineResult<u32> {
        if self.record_count == 0 {
            return Err(EngineError::EmptyInput);
        }
        let maxima = self.for_each_chunk(gpu, column, |gpu, table| {
            aggregate::max(gpu, table, 0, None)
        })?;
        Ok(maxima.into_iter().max().expect("non-empty"))
    }

    /// Global MIN: the minimum of per-chunk minima.
    pub fn min(&self, gpu: &mut Gpu, column: usize) -> EngineResult<u32> {
        if self.record_count == 0 {
            return Err(EngineError::EmptyInput);
        }
        let minima = self.for_each_chunk(gpu, column, |gpu, table| {
            aggregate::min(gpu, table, 0, None)
        })?;
        Ok(minima.into_iter().min().expect("non-empty"))
    }

    /// Global k-th largest via the bit-descent of Routine 4.5, with the
    /// per-bit count summed across chunk swaps: `bits × chunks` uploads —
    /// the price of order statistics out of core.
    pub fn kth_largest(&self, gpu: &mut Gpu, column: usize, k: usize) -> EngineResult<u32> {
        if k == 0 || k > self.record_count {
            return Err(EngineError::InvalidK {
                k,
                available: self.record_count as u64,
            });
        }
        let (_, values) = self
            .columns
            .get(column)
            .ok_or(EngineError::ColumnIndexOutOfRange(column))?;
        let bits = values
            .iter()
            .copied()
            .max()
            .map_or(0, |m| 32 - m.leading_zeros())
            .min(ATTRIBUTE_BITS);

        let mut x = 0u32;
        for i in (0..bits).rev() {
            let m = x + (1 << i);
            // Count values >= m across all chunks (swap each chunk in).
            let counts = self.for_each_chunk(gpu, column, |gpu, table| {
                copy_to_depth(gpu, table, 0)?;
                let c = comparison_pass(
                    gpu,
                    table,
                    CompareFunc::GreaterEqual,
                    m,
                    OcclusionMode::Sync,
                )?;
                gpu.reset_state();
                Ok(c)
            })?;
            let count: u64 = counts.into_iter().sum();
            if count > (k - 1) as u64 {
                x = m;
            }
        }
        Ok(x)
    }

    /// Global (lower) median.
    pub fn median(&self, gpu: &mut Gpu, column: usize) -> EngineResult<u32> {
        if self.record_count == 0 {
            return Err(EngineError::EmptyInput);
        }
        let k_smallest = self.record_count.div_ceil(2);
        self.kth_largest(gpu, column, self.record_count + 1 - k_smallest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(n: usize, chunk: usize) -> (Vec<u32>, usize) {
        let values: Vec<u32> = (0..n as u32)
            .map(|i| i.wrapping_mul(2654435761) % (1 << 16))
            .collect();
        (values, chunk)
    }

    #[test]
    fn chunked_count_matches_whole_table() {
        let (values, chunk) = setup(10_000, 1_024);
        let ct = ChunkedTable::new("big", vec![("a", &values)], chunk).unwrap();
        assert_eq!(ct.chunk_count(), 10);
        let mut gpu = ct.device_for_chunks(64);
        let count = ct
            .count(&mut gpu, 0, CompareFunc::GreaterEqual, 30_000)
            .unwrap();
        let expected = values.iter().filter(|&&v| v >= 30_000).count() as u64;
        assert_eq!(count, expected);
    }

    #[test]
    fn chunked_range_and_sum() {
        let (values, chunk) = setup(5_000, 777); // non-divisible chunking
        let ct = ChunkedTable::new("big", vec![("a", &values)], chunk).unwrap();
        let mut gpu = ct.device_for_chunks(40);
        assert_eq!(
            ct.range_count(&mut gpu, 0, 1_000, 50_000).unwrap(),
            values
                .iter()
                .filter(|&&v| (1_000..=50_000).contains(&v))
                .count() as u64
        );
        assert_eq!(
            ct.sum(&mut gpu, 0).unwrap(),
            values.iter().map(|&v| v as u64).sum::<u64>()
        );
    }

    #[test]
    fn chunked_min_max_median_kth() {
        let (values, chunk) = setup(3_000, 512);
        let ct = ChunkedTable::new("big", vec![("a", &values)], chunk).unwrap();
        let mut gpu = ct.device_for_chunks(32);
        assert_eq!(ct.max(&mut gpu, 0).unwrap(), *values.iter().max().unwrap());
        assert_eq!(ct.min(&mut gpu, 0).unwrap(), *values.iter().min().unwrap());

        let mut sorted = values.clone();
        sorted.sort_unstable();
        for k in [1usize, 100, 1_500, 3_000] {
            assert_eq!(
                ct.kth_largest(&mut gpu, 0, k).unwrap(),
                sorted[sorted.len() - k],
                "k = {k}"
            );
        }
        assert_eq!(
            ct.median(&mut gpu, 0).unwrap(),
            sorted[values.len().div_ceil(2) - 1]
        );
    }

    #[test]
    fn vram_stays_bounded_by_one_chunk() {
        let (values, chunk) = setup(8_000, 1_000);
        let ct = ChunkedTable::new("big", vec![("a", &values)], chunk).unwrap();
        let mut gpu = ct.device_for_chunks(50);
        // Budget: framebuffer + exactly one chunk texture.
        gpu.set_vram_budget(gpu.vram_used() + chunk * 4 + 64);
        // If chunks leaked, the second upload would exhaust VRAM.
        assert!(ct.sum(&mut gpu, 0).is_ok());
        assert!(ct.count(&mut gpu, 0, CompareFunc::Less, 100).is_ok());
    }

    #[test]
    fn upload_cost_scales_with_swaps() {
        let (values, _) = setup(4_096, 0);
        let ct = ChunkedTable::new("big", vec![("a", &values)], 512).unwrap();
        let mut gpu = ct.device_for_chunks(32);
        gpu.reset_stats();
        ct.count(&mut gpu, 0, CompareFunc::Less, 100).unwrap();
        let one_pass_uploads = gpu.stats().bytes_uploaded;
        assert_eq!(one_pass_uploads, 4_096 * 4, "each record uploaded once");

        gpu.reset_stats();
        ct.kth_largest(&mut gpu, 0, 1).unwrap();
        // 16-bit values: 16 bit passes × full table re-upload.
        assert_eq!(gpu.stats().bytes_uploaded, 16 * 4_096 * 4);
    }

    #[test]
    fn validation_errors() {
        let a = vec![1u32, 2, 3];
        let b = vec![1u32];
        assert!(matches!(
            ChunkedTable::new("t", vec![("a", &a), ("b", &b)], 2).unwrap_err(),
            EngineError::MismatchedColumnLengths
        ));
        assert!(ChunkedTable::new("t", vec![("a", &a)], 0).is_err());

        let ct = ChunkedTable::new("t", vec![("a", &a)], 2).unwrap();
        let mut gpu = ct.device_for_chunks(2);
        assert!(matches!(
            ct.kth_largest(&mut gpu, 0, 0).unwrap_err(),
            EngineError::InvalidK { .. }
        ));
        assert!(matches!(
            ct.kth_largest(&mut gpu, 0, 4).unwrap_err(),
            EngineError::InvalidK { .. }
        ));
        assert!(matches!(
            ct.count(&mut gpu, 5, CompareFunc::Less, 1).unwrap_err(),
            EngineError::ColumnIndexOutOfRange(5)
        ));
        assert!(matches!(
            ct.column_index("zz").unwrap_err(),
            EngineError::ColumnNotFound(_)
        ));
        assert_eq!(ct.column_index("a").unwrap(), 0);
    }

    #[test]
    fn empty_table() {
        let empty: Vec<u32> = vec![];
        let ct = ChunkedTable::new("t", vec![("a", &empty)], 4).unwrap();
        let mut gpu = ct.device_for_chunks(4);
        assert_eq!(ct.count(&mut gpu, 0, CompareFunc::Less, 1).unwrap(), 0);
        assert_eq!(ct.sum(&mut gpu, 0).unwrap(), 0);
        assert!(matches!(
            ct.max(&mut gpu, 0).unwrap_err(),
            EngineError::EmptyInput
        ));
        assert!(matches!(
            ct.median(&mut gpu, 0).unwrap_err(),
            EngineError::EmptyInput
        ));
    }
}
