//! CPU oracle: a reference implementation of the query engine that
//! never touches the (simulated) device.
//!
//! The oracle exists for two reasons:
//!
//! 1. **Fallback** — when the device is faulty beyond what retry and
//!    degradation can absorb, [`crate::resilience::execute_resilient`]
//!    answers the query here instead of failing the caller.
//! 2. **Ground truth** — the chaos suite compares every fault-injected
//!    GPU run against this oracle; any divergence is silent corruption.
//!
//! Both uses demand *exact* agreement with the GPU path, including
//! error-for-error parity. Three things make that subtle:
//!
//! - Semi-linear predicates are evaluated by the GPU in `f32` with a
//!   specific association order (one DP4 per four-channel texture group,
//!   groups summed left to right). [`gpu_order_dot`] replicates that
//!   order; anything else diverges on queries whose dot products lose
//!   precision.
//! - The GPU compares `dot − b` against zero; the oracle compares `dot`
//!   against `b`. These agree for every IEEE `f32` pair because the
//!   rounded difference of two finite floats is zero iff they are equal
//!   and otherwise carries the exact sign (gradual underflow).
//! - Validation errors must fire in the same order as the planner and
//!   the paper routines (column resolution before shape checks, `InvalidK`
//!   before any work, aggregates evaluated in SELECT order).
//!
//! Scans and order statistics route through `gpudb-cpu`'s optimized
//! baselines ([`gpudb_cpu::aggregate`], [`gpudb_cpu::quickselect`]) so a
//! fallback run costs what the paper's CPU competitor costs, not a naive
//! reimplementation.

use crate::error::{EngineError, EngineResult};
use crate::ops::ATTRIBUTE_BITS;
use crate::query::ast::{Aggregate, BoolExpr, Query};
use crate::query::executor::AggValue;
use crate::semilinear::MAX_SEMILINEAR_ATTRIBUTES;
use crate::table::GpuTable;
use gpudb_cpu::aggregate as cpu_agg;
use gpudb_cpu::quickselect;
use gpudb_cpu::Bitmap;
use gpudb_sim::{CompareFunc, Gpu};

/// A host-resident table: the same schema rules as [`GpuTable`], but the
/// column data lives in ordinary memory. The resilience layer keeps one
/// of these alongside every device table so queries can be re-uploaded
/// after a device reset, chunked for out-of-core execution, or answered
/// entirely on the CPU.
#[derive(Debug, Clone)]
pub struct HostTable {
    name: String,
    columns: Vec<(String, Vec<u32>)>,
    record_count: usize,
}

impl HostTable {
    /// Build a host table, enforcing the same invariants as
    /// [`GpuTable::upload`] (equal column lengths, attributes within the
    /// paper's 24-bit encoding) so that errors surface before any device
    /// work and with the same variants the GPU path would produce.
    pub fn new(
        name: impl Into<String>,
        columns: Vec<(impl Into<String>, Vec<u32>)>,
    ) -> EngineResult<HostTable> {
        let columns: Vec<(String, Vec<u32>)> =
            columns.into_iter().map(|(n, v)| (n.into(), v)).collect();
        let record_count = columns.first().map_or(0, |(_, v)| v.len());
        for (_, values) in &columns {
            if values.len() != record_count {
                return Err(EngineError::MismatchedColumnLengths);
            }
        }
        for (col_name, values) in &columns {
            let max = values.iter().copied().max().unwrap_or(0);
            let bits = 32 - max.leading_zeros();
            if bits > ATTRIBUTE_BITS {
                return Err(EngineError::AttributeTooWide {
                    column: col_name.clone(),
                    bits,
                });
            }
        }
        Ok(HostTable {
            name: name.into(),
            columns,
            record_count,
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of records.
    pub fn record_count(&self) -> usize {
        self.record_count
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|(n, _)| n.as_str())
    }

    /// Resolve a column name to its index, with the same error the GPU
    /// table produces.
    pub fn column_index(&self, name: &str) -> EngineResult<usize> {
        self.columns
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| EngineError::ColumnNotFound(name.to_string()))
    }

    /// Values of the column at `index`.
    pub fn column_values(&self, index: usize) -> EngineResult<&[u32]> {
        self.columns
            .get(index)
            .map(|(_, v)| v.as_slice())
            .ok_or(EngineError::ColumnIndexOutOfRange(index))
    }

    /// Borrowed `(name, values)` view, as [`GpuTable::upload`] expects.
    pub fn column_refs(&self) -> Vec<(&str, &[u32])> {
        self.columns
            .iter()
            .map(|(n, v)| (n.as_str(), v.as_slice()))
            .collect()
    }

    /// Upload the table to the device.
    pub fn upload(&self, gpu: &mut Gpu) -> EngineResult<GpuTable> {
        GpuTable::upload(gpu, &self.name, &self.column_refs())
    }

    /// A host table holding the record range `[start, end)` of this one —
    /// the unit of out-of-core chunked execution.
    pub fn slice(&self, start: usize, end: usize) -> HostTable {
        let end = end.min(self.record_count);
        let start = start.min(end);
        HostTable {
            name: format!("{}[{start}..{end}]", self.name),
            columns: self
                .columns
                .iter()
                .map(|(n, v)| (n.clone(), v[start..end].to_vec()))
                .collect(),
            record_count: end - start,
        }
    }
}

/// The oracle's answer: the device-independent parts of
/// [`crate::query::executor::QueryOutput`].
#[derive(Debug, Clone, PartialEq)]
pub struct OracleOutput {
    /// Records passing the filter.
    pub matched: u64,
    /// `matched / record_count` (0.0 for an empty table).
    pub selectivity: f64,
    /// One `(label, value)` row per aggregate, in SELECT order.
    pub rows: Vec<(String, AggValue)>,
}

impl OracleOutput {
    /// Exact agreement with a GPU run's device-independent outputs.
    pub fn agrees_with(&self, matched: u64, rows: &[(String, AggValue)]) -> bool {
        self.matched == matched && self.rows == rows
    }
}

/// Execute a query entirely on the CPU, with exact GPU parity (results
/// and errors alike).
pub fn execute(table: &HostTable, query: &Query) -> EngineResult<OracleOutput> {
    let mask = filter_mask(table, query.filter.as_ref())?;
    let matched = mask.count_ones() as u64;
    let selectivity = if table.record_count() == 0 {
        0.0
    } else {
        matched as f64 / table.record_count() as f64
    };
    let mut rows = Vec::with_capacity(query.aggregates.len());
    for agg in &query.aggregates {
        rows.push((agg.label(), compute_aggregate(table, agg, &mask, matched)?));
    }
    Ok(OracleOutput {
        matched,
        selectivity,
        rows,
    })
}

/// Evaluate the filter to a per-record bitmap, mirroring the planner's
/// structure: standalone semi-linear atoms (possibly under NOT) first,
/// then the general boolean tree with NOT pushed to the leaves.
pub fn filter_mask(table: &HostTable, filter: Option<&BoolExpr>) -> EngineResult<Bitmap> {
    let Some(filter) = filter else {
        return Ok(Bitmap::ones(table.record_count()));
    };
    if let Some(mask) = semilinear_atom_mask(table, filter, false)? {
        return Ok(mask);
    }
    boolean_mask(table, filter, false)
}

/// Mirror of `plan_semilinear_atom`: a whole-filter semi-linear or
/// column-comparison atom, with an odd number of enclosing NOTs folded
/// into the operator.
fn semilinear_atom_mask(
    table: &HostTable,
    expr: &BoolExpr,
    negated: bool,
) -> EngineResult<Option<Bitmap>> {
    match expr {
        BoolExpr::Not(inner) => semilinear_atom_mask(table, inner, !negated),
        BoolExpr::CompareColumns { left, op, right } => {
            let li = table.column_index(left)?;
            let ri = table.column_index(right)?;
            let op = if negated { op.negate() } else { *op };
            let width = li.max(ri) + 1;
            let mut coefficients = vec![0.0f32; width];
            coefficients[li] += 1.0;
            coefficients[ri] -= 1.0;
            semilinear_mask(table, &coefficients, op, 0.0).map(Some)
        }
        BoolExpr::SemiLinear {
            terms,
            op,
            constant,
        } => {
            let op = if negated { op.negate() } else { *op };
            let mut width = 0usize;
            let mut resolved = Vec::with_capacity(terms.len());
            for (name, coeff) in terms {
                let idx = table.column_index(name)?;
                width = width.max(idx + 1);
                resolved.push((idx, *coeff));
            }
            let mut coefficients = vec![0.0f32; width];
            for (idx, coeff) in resolved {
                coefficients[idx] += coeff;
            }
            semilinear_mask(table, &coefficients, op, *constant).map(Some)
        }
        _ => Ok(None),
    }
}

/// The dot product `s · a_row` in the GPU fragment program's `f32`
/// association order: one DP4 per texture group of four channels
/// (accumulated left to right within the group), group results summed.
/// Channels past `s.len()` carry coefficient zero on the GPU and adding
/// `+0.0` never changes a finite sum, so they are skipped here.
fn gpu_order_dot(table: &HostTable, s: &[f32], row: usize) -> f32 {
    let mut total = 0.0f32;
    for (group, chunk) in s.chunks(4).enumerate() {
        let mut group_sum = 0.0f32;
        for (lane, &coeff) in chunk.iter().enumerate() {
            let idx = group * 4 + lane;
            // Safe: semilinear_mask validated s.len() <= column_count.
            let value = self::column_value(table, idx, row);
            group_sum += coeff * value;
        }
        total += group_sum;
    }
    total
}

fn column_value(table: &HostTable, idx: usize, row: usize) -> f32 {
    table
        .column_values(idx)
        .map(|v| v[row] as f32)
        .unwrap_or(0.0)
}

/// Mirror of `semilinear::semilinear_select`: same validation, same
/// error order, then the per-record `f32` comparison. The GPU compares
/// `dot − b` against zero; comparing `dot` against `b` is equivalent for
/// every finite `f32` pair (the rounded difference is zero iff the
/// operands are equal, and otherwise has the exact sign).
fn semilinear_mask(table: &HostTable, s: &[f32], op: CompareFunc, b: f32) -> EngineResult<Bitmap> {
    if s.is_empty() || s.len() > MAX_SEMILINEAR_ATTRIBUTES {
        return Err(EngineError::TooManyAttributes(s.len()));
    }
    if s.len() > table.column_count() {
        return Err(EngineError::ColumnIndexOutOfRange(s.len() - 1));
    }
    Ok(Bitmap::from_fn(table.record_count(), |row| {
        op.eval(gpu_order_dot(table, s, row), b)
    }))
}

/// Evaluate a general predicate tree with NOT pushed to the leaves by
/// operator inversion and De Morgan — the same rewrite as the planner's
/// `to_nnf`, evaluated directly instead of materialized.
fn boolean_mask(table: &HostTable, expr: &BoolExpr, negated: bool) -> EngineResult<Bitmap> {
    match expr {
        BoolExpr::Pred {
            column,
            op,
            constant,
        } => {
            let values = table.column_values(table.column_index(column)?)?;
            let op = if negated { op.negate() } else { *op };
            Ok(Bitmap::from_fn(values.len(), |i| {
                op.eval(values[i], *constant)
            }))
        }
        BoolExpr::InList { column, values } => {
            // The planner rewrites an empty list to a Never predicate and
            // a non-empty one to an OR of equalities; either way the
            // column is resolved, so resolve it here too.
            let col = table.column_values(table.column_index(column)?)?;
            Ok(Bitmap::from_fn(col.len(), |i| {
                values.contains(&col[i]) != negated
            }))
        }
        BoolExpr::Between { column, low, high } => {
            let col = table.column_values(table.column_index(column)?)?;
            Ok(Bitmap::from_fn(col.len(), |i| {
                (*low..=*high).contains(&col[i]) != negated
            }))
        }
        BoolExpr::And(a, b) => {
            let mut lhs = boolean_mask(table, a, negated)?;
            let rhs = boolean_mask(table, b, negated)?;
            // De Morgan: ¬(a ∧ b) = ¬a ∨ ¬b.
            if negated {
                lhs.or_assign(&rhs);
            } else {
                lhs.and_assign(&rhs);
            }
            Ok(lhs)
        }
        BoolExpr::Or(a, b) => {
            let mut lhs = boolean_mask(table, a, negated)?;
            let rhs = boolean_mask(table, b, negated)?;
            if negated {
                lhs.and_assign(&rhs);
            } else {
                lhs.or_assign(&rhs);
            }
            Ok(lhs)
        }
        BoolExpr::Not(inner) => boolean_mask(table, inner, !negated),
        BoolExpr::CompareColumns { .. } | BoolExpr::SemiLinear { .. } => {
            Err(EngineError::InvalidQuery(
                "semi-linear atoms cannot be combined with other predicates".to_string(),
            ))
        }
    }
}

/// One aggregate over the filtered records, with the GPU routines' exact
/// edge-case semantics (`InvalidK` / `EmptyInput` parity included).
fn compute_aggregate(
    table: &HostTable,
    agg: &Aggregate,
    mask: &Bitmap,
    matched: u64,
) -> EngineResult<AggValue> {
    let selected = |col: &str| -> EngineResult<Vec<u32>> {
        let values = table.column_values(table.column_index(col)?)?;
        Ok(cpu_agg::extract_masked(values, mask))
    };
    Ok(match agg {
        Aggregate::Count => AggValue::Count(matched),
        Aggregate::Sum(col) => {
            let values = table.column_values(table.column_index(col)?)?;
            AggValue::Sum(cpu_agg::sum_masked(values, mask))
        }
        Aggregate::Avg(col) => {
            let values = table.column_values(table.column_index(col)?)?;
            AggValue::Avg(cpu_agg::avg_masked(values, mask).ok_or(EngineError::EmptyInput)?)
        }
        Aggregate::Min(col) => {
            AggValue::Value(order_statistic(&selected(col)?, Rank::Smallest(1))?)
        }
        Aggregate::Max(col) => AggValue::Value(order_statistic(&selected(col)?, Rank::Largest(1))?),
        Aggregate::Median(col) => {
            let data = selected(col)?;
            if data.is_empty() {
                return Err(EngineError::EmptyInput);
            }
            let k = data.len().div_ceil(2);
            AggValue::Value(order_statistic(&data, Rank::Smallest(k))?)
        }
        Aggregate::KthLargest(col, k) => {
            AggValue::Value(order_statistic(&selected(col)?, Rank::Largest(*k))?)
        }
        Aggregate::KthSmallest(col, k) => {
            AggValue::Value(order_statistic(&selected(col)?, Rank::Smallest(*k))?)
        }
        Aggregate::Percentile(col, p) => {
            let data = selected(col)?;
            if data.is_empty() {
                return Err(EngineError::EmptyInput);
            }
            let rank =
                ((p.clamp(0.0, 1.0) * data.len() as f64).ceil() as usize).clamp(1, data.len());
            AggValue::Value(order_statistic(&data, Rank::Smallest(rank))?)
        }
    })
}

enum Rank {
    Largest(usize),
    Smallest(usize),
}

/// Order statistic via `gpudb-cpu`'s QuickSelect, with the GPU bit
/// descent's `InvalidK` validation.
fn order_statistic(data: &[u32], rank: Rank) -> EngineResult<u32> {
    let available = data.len();
    let (k, value) = match rank {
        Rank::Largest(k) => (k, quickselect::kth_largest(data, k)),
        Rank::Smallest(k) => (k, quickselect::kth_smallest(data, k)),
    };
    value.ok_or(EngineError::InvalidK {
        k,
        available: available as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ast::BoolExpr;
    use crate::query::executor::{execute, ExecuteOptions};
    fn host() -> HostTable {
        HostTable::new(
            "t",
            vec![
                ("a", vec![5u32, 17, 9, 200, 42, 9, 0, 77]),
                ("b", vec![3u32, 17, 10, 100, 42, 8, 1, 80]),
            ],
        )
        .unwrap()
    }

    fn gpu_run(host: &HostTable, query: &Query) -> EngineResult<(u64, Vec<(String, AggValue)>)> {
        let mut gpu = GpuTable::device_for(host.record_count(), 4);
        let table = host.upload(&mut gpu)?;
        let out = execute(&mut gpu, &table, query)?;
        Ok((out.matched, out.rows))
    }

    fn assert_parity(host: &HostTable, query: &Query) {
        let oracle = super::execute(host, query);
        let gpu = gpu_run(host, query);
        match (oracle, gpu) {
            (Ok(o), Ok((matched, rows))) => {
                assert!(
                    o.agrees_with(matched, &rows),
                    "oracle {o:?} vs gpu {matched} {rows:?}"
                );
            }
            (Err(oe), Err(ge)) => {
                assert_eq!(oe.to_string(), ge.to_string(), "error parity");
            }
            (o, g) => panic!("oracle {o:?} but gpu {g:?}"),
        }
    }

    #[test]
    fn validates_like_gpu_upload() {
        assert!(matches!(
            HostTable::new("t", vec![("a", vec![1u32]), ("b", vec![1, 2])]).unwrap_err(),
            EngineError::MismatchedColumnLengths
        ));
        assert!(matches!(
            HostTable::new("t", vec![("wide", vec![1u32 << 24])]).unwrap_err(),
            EngineError::AttributeTooWide { bits: 25, .. }
        ));
    }

    #[test]
    fn predicate_range_cnf_parity() {
        let host = host();
        for query in [
            Query::aggregate_all(vec![Aggregate::Count, Aggregate::Sum("a".into())]),
            Query::filtered(
                vec![Aggregate::Count, Aggregate::Avg("b".into())],
                BoolExpr::pred("a", CompareFunc::Greater, 9),
            ),
            Query::filtered(
                vec![Aggregate::Count, Aggregate::Min("a".into())],
                BoolExpr::pred("a", CompareFunc::GreaterEqual, 5).and(BoolExpr::pred(
                    "a",
                    CompareFunc::LessEqual,
                    77,
                )),
            ),
            // Inverted range: const-empty short circuit on the GPU side.
            Query::filtered(
                vec![Aggregate::Count, Aggregate::Sum("a".into())],
                BoolExpr::pred("a", CompareFunc::GreaterEqual, 100).and(BoolExpr::pred(
                    "a",
                    CompareFunc::LessEqual,
                    5,
                )),
            ),
            Query::filtered(
                vec![Aggregate::Count, Aggregate::Max("b".into())],
                BoolExpr::pred("a", CompareFunc::Less, 10)
                    .or(BoolExpr::pred("b", CompareFunc::Greater, 50))
                    .not(),
            ),
            Query::filtered(
                vec![Aggregate::Median("a".into())],
                BoolExpr::InList {
                    column: "a".into(),
                    values: vec![9, 42, 200],
                },
            ),
        ] {
            assert_parity(&host, &query);
        }
    }

    #[test]
    fn semilinear_and_compare_columns_parity() {
        let host = host();
        for query in [
            Query::filtered(
                vec![Aggregate::Count],
                BoolExpr::CompareColumns {
                    left: "a".into(),
                    op: CompareFunc::Greater,
                    right: "b".into(),
                },
            ),
            Query::filtered(
                vec![Aggregate::Count, Aggregate::Sum("b".into())],
                BoolExpr::Not(Box::new(BoolExpr::SemiLinear {
                    terms: vec![("a".into(), 0.5), ("b".into(), -0.25)],
                    op: CompareFunc::LessEqual,
                    constant: 10.0,
                })),
            ),
        ] {
            assert_parity(&host, &query);
        }
    }

    #[test]
    fn error_parity_with_gpu() {
        let host = host();
        // Unknown column, nested semilinear, invalid k, empty-selection AVG.
        for query in [
            Query::filtered(
                vec![Aggregate::Count],
                BoolExpr::pred("missing", CompareFunc::Equal, 1),
            ),
            Query::filtered(
                vec![Aggregate::Count],
                BoolExpr::pred("a", CompareFunc::Greater, 1).and(BoolExpr::CompareColumns {
                    left: "a".into(),
                    op: CompareFunc::Less,
                    right: "b".into(),
                }),
            ),
            Query::aggregate_all(vec![Aggregate::KthLargest("a".into(), 0)]),
            Query::aggregate_all(vec![Aggregate::KthLargest("a".into(), 99)]),
            Query::filtered(
                vec![Aggregate::Avg("a".into())],
                BoolExpr::pred("a", CompareFunc::Greater, 1 << 23),
            ),
            Query::filtered(
                vec![Aggregate::Count],
                BoolExpr::InList {
                    column: "nope".into(),
                    values: vec![],
                },
            ),
        ] {
            assert_parity(&host, &query);
        }
    }

    #[test]
    fn slice_covers_whole_table() {
        let host = host();
        let mut total = 0u64;
        for start in (0..host.record_count()).step_by(3) {
            let chunk = host.slice(start, start + 3);
            let out =
                super::execute(&chunk, &Query::aggregate_all(vec![Aggregate::Count])).unwrap();
            total += out.matched;
        }
        assert_eq!(total, host.record_count() as u64);
    }

    #[test]
    fn options_do_not_change_results() {
        // Sanity: executor options used by resilience (validated plans)
        // agree with the defaults the parity tests use.
        let host = host();
        let query = Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::pred("a", CompareFunc::Greater, 9),
        );
        let mut gpu = GpuTable::device_for(host.record_count(), 4);
        let table = host.upload(&mut gpu).unwrap();
        let out = crate::query::executor::execute_with_options(
            &mut gpu,
            &table,
            &query,
            ExecuteOptions::default(),
        )
        .unwrap();
        let oracle = super::execute(&host, &query).unwrap();
        assert!(oracle.agrees_with(out.matched, &out.rows));
    }
}
