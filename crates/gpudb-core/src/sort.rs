//! Bitonic merge sort on the GPU — the paper's §7 future work
//! ("we would like to develop algorithms for other database operations
//! and queries including sorting"), following the Purcell et al. approach
//! the paper cites in §2.2: "the output routing from one step to another
//! is known in advance. The algorithm is implemented as a fragment program
//! and each stage of the sorting algorithm is performed as one rendering
//! pass."
//!
//! Because the pipeline has no random-access writes (§6.1 "No Random
//! Writes"), each compare-exchange step is a full-grid pass: every pixel
//! computes its partner's linear index arithmetically in the fragment
//! program, fetches both values, and outputs min or max. The color buffer
//! is then copied back into the source texture (`glCopyTexSubImage2D`)
//! for the next pass. Sorting `n` values takes `m(m+1)/2` passes for
//! `n ≤ 2^m` — the O(n log² n) cost that made the paper judge sorting
//! "quite slow for database operations on large databases".

use crate::error::{EngineError, EngineResult};
use crate::table::GpuTable;
use gpudb_sim::program::{assemble, FragmentProgram};
use gpudb_sim::raster::Rect;
use gpudb_sim::texture::{Texture, TextureFormat};
use gpudb_sim::{CompareFunc, Gpu, Phase};

/// Sentinel padding value, strictly greater than any 24-bit attribute
/// (exactly representable in f32).
const PAD_SENTINEL: f32 = (1u32 << 25) as f32;

/// Environment parameter layout for the compare-exchange program.
const ENV_STEP: usize = 0; // [j, -2j, 1/(2j), W]
const ENV_STAGE: usize = 1; // [1/2^(k+2), 1/W, -W, 0.5]

/// Build the compare-exchange fragment program for one bitonic pass.
///
/// Per-fragment: reconstruct the linear index `l` from the window
/// position, derive the partner index `l ^ j` and the sort direction from
/// bit `k+1` of `l` arithmetically (the ISA has no integer ops — §6.1
/// "Integer Arithmetic Instructions"), fetch both elements, and emit
/// min or max.
pub fn build_compare_exchange_program() -> FragmentProgram {
    assemble(
        "!!ARBfp1.0
         # Bitonic compare-exchange (one step).
         # env[0] = {j, -2j, 1/(2j), W}   env[1] = {1/2^(k+2), 1/W, -W, 0.5}
         TEMP pos, l, s, partner, a, b, lo, hi, t;
         # integer pixel coords
         SUB pos.x, fragment.position.x, 0.5;
         SUB pos.y, fragment.position.y, 0.5;
         # linear index l = y*W + x
         MAD l.x, pos.y, program.env[0].w, pos.x;
         # s.x = bit_j(l): frac(l / 2j) >= 0.5
         MUL s.x, l.x, program.env[0].z;
         FRC s.x, s.x;
         SGE s.x, s.x, program.env[1].w;
         # s.y = ascending flag: frac(l / 2^(k+2)) < 0.5
         MUL s.y, l.x, program.env[1].x;
         FRC s.y, s.y;
         SLT s.y, s.y, program.env[1].w;
         # partner = l + j - 2j*bit  (= l XOR j)
         MAD partner.x, s.x, program.env[0].y, program.env[0].x;
         ADD partner.x, l.x, partner.x;
         # partner coords: y' = floor(partner/W); x' = partner - W*y'
         MUL partner.y, partner.x, program.env[1].y;
         FLR partner.y, partner.y;
         MAD partner.x, partner.y, program.env[1].z, partner.x;
         # fetch own and partner values
         TEX a, fragment.texcoord[0], texture[0], 2D;
         TEX b, partner, texture[0], 2D;
         MIN lo, a, b;
         MAX hi, a, b;
         # want_min = bit XOR ascending
         MUL t.x, s.x, s.y;
         ADD t.y, s.x, s.y;
         MAD t.x, t.x, -2.0, t.y;
         SUB t.x, t.x, program.env[1].w;
         # t.x < 0 -> keep max, else keep min
         CMP result.color, t.x, hi, lo;
         END",
    )
    .expect("compare-exchange program must assemble")
}

/// Result of a GPU sort.
#[derive(Debug, Clone, PartialEq)]
pub struct SortOutcome {
    /// The values in ascending order.
    pub sorted: Vec<u32>,
    /// Compare-exchange passes executed (`m(m+1)/2` for `2^m` elements).
    pub passes: u32,
}

/// Width of the power-of-two sort grid for `padded` elements on a device
/// `fb_width` wide.
fn sort_grid_width(padded: usize, fb_width: usize) -> usize {
    let mut w = 1usize;
    while w * 2 <= fb_width && w * 2 <= padded {
        w *= 2;
    }
    w
}

/// Sort a table column ascending on the GPU and read back the result.
///
/// The device framebuffer must accommodate the power-of-two sort grid:
/// `n` values are padded to `2^m` with an above-range sentinel and laid
/// out on a `W × (2^m / W)` grid with power-of-two `W`, so all index
/// arithmetic in the fragment program is exact in f32.
pub fn sort_column(gpu: &mut Gpu, table: &GpuTable, column: usize) -> EngineResult<SortOutcome> {
    let values = table.read_column(gpu, column)?;
    sort_values(gpu, &values)
}

/// Sort raw values ascending on the GPU (the host slice is uploaded to a
/// scratch texture first).
pub fn sort_values(gpu: &mut Gpu, values: &[u32]) -> EngineResult<SortOutcome> {
    if values.is_empty() {
        return Ok(SortOutcome {
            sorted: Vec::new(),
            passes: 0,
        });
    }
    let padded = values.len().next_power_of_two();
    let width = sort_grid_width(padded, gpu.width());
    let height = padded / width;
    if height > gpu.height() {
        return Err(EngineError::FramebufferTooSmall {
            needed: height,
            available: gpu.height(),
        });
    }

    // Upload values padded with the +inf sentinel.
    gpu.set_phase(Phase::Upload);
    let mut data: Vec<f32> = values.iter().map(|&v| v as f32).collect();
    data.resize(padded, PAD_SENTINEL);
    let texture =
        Texture::from_data(width, height, TextureFormat::R, data).map_err(EngineError::from)?;
    let tex_id = gpu.create_texture(texture)?;

    gpu.set_phase(Phase::Compute);
    gpu.reset_state();
    gpu.set_depth_test(false, CompareFunc::Always);
    gpu.set_depth_write(false);
    gpu.bind_texture(0, Some(tex_id))?;
    gpu.bind_program(Some(build_compare_exchange_program()));

    let rect = Rect::new(0, 0, width, height);
    let m = padded.trailing_zeros();
    let mut passes = 0u32;
    for k in 0..m {
        for j_exp in (0..=k).rev() {
            let j = (1u64 << j_exp) as f32;
            let two_j_inv = 0.5f32.powi(j_exp as i32 + 1);
            let stage_inv = 0.5f32.powi(k as i32 + 2);
            gpu.set_program_env(ENV_STEP, [j, -2.0 * j, two_j_inv, width as f32])?;
            gpu.set_program_env(
                ENV_STAGE,
                [stage_inv, 1.0 / width as f32, -(width as f32), 0.5],
            )?;
            gpu.draw_quad(&[rect], 0.0)?;
            gpu.copy_color_to_texture(tex_id, 0, 0, width, height)?;
            passes += 1;
        }
    }
    gpu.bind_program(None);
    gpu.reset_state();

    // Read back and strip padding.
    let tex = gpu.texture(tex_id)?;
    let sorted: Vec<u32> = tex
        .data()
        .iter()
        .take(values.len())
        .map(|&v| gpudb_sim::texture::decode_u32(v))
        .collect();
    gpu.delete_texture(tex_id)?;
    Ok(SortOutcome { sorted, passes })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device_for_sort(n: usize) -> Gpu {
        let padded = n.next_power_of_two().max(1);
        let width = sort_grid_width(padded, 64);
        Gpu::geforce_fx_5900(width.max(4), (padded / width).max(4))
    }

    fn check_sort(values: &[u32]) {
        let mut gpu = device_for_sort(values.len());
        let outcome = sort_values(&mut gpu, values).unwrap();
        let mut expected = values.to_vec();
        expected.sort_unstable();
        assert_eq!(outcome.sorted, expected, "input {values:?}");
    }

    #[test]
    fn sorts_exact_power_of_two() {
        let values: Vec<u32> = (0..64u32)
            .map(|i| i.wrapping_mul(2654435761) % 1000)
            .collect();
        check_sort(&values);
    }

    #[test]
    fn sorts_non_power_of_two_with_padding() {
        let values: Vec<u32> = (0..37u32).map(|i| (i * 7919) % 512).collect();
        check_sort(&values);
    }

    #[test]
    fn sorts_with_duplicates_and_extremes() {
        let max = (1u32 << 24) - 1;
        check_sort(&[5, 5, 5, 1, max, 0, max, 3]);
    }

    #[test]
    fn sorts_already_sorted_and_reversed() {
        let asc: Vec<u32> = (0..32).collect();
        check_sort(&asc);
        let desc: Vec<u32> = (0..32).rev().collect();
        check_sort(&desc);
    }

    #[test]
    fn tiny_inputs() {
        check_sort(&[]);
        check_sort(&[42]);
        check_sort(&[2, 1]);
        check_sort(&[3, 1, 2]);
    }

    #[test]
    fn multi_row_grid_sort() {
        // Force a grid taller than one row so the index<->coordinate
        // arithmetic in the program is exercised across rows.
        let values: Vec<u32> = (0..256u32).map(|i| i.wrapping_mul(40503) % 4096).collect();
        let mut gpu = Gpu::geforce_fx_5900(16, 16);
        let outcome = sort_values(&mut gpu, &values).unwrap();
        let mut expected = values.clone();
        expected.sort_unstable();
        assert_eq!(outcome.sorted, expected);
    }

    #[test]
    fn pass_count_is_m_m_plus_1_over_2() {
        let values: Vec<u32> = (0..64).rev().collect(); // 2^6
        let mut gpu = device_for_sort(64);
        let outcome = sort_values(&mut gpu, &values).unwrap();
        assert_eq!(outcome.passes, 6 * 7 / 2);
    }

    #[test]
    fn rejects_grid_taller_than_framebuffer() {
        let mut gpu = Gpu::geforce_fx_5900(2, 2);
        let values: Vec<u32> = (0..64).collect();
        assert!(matches!(
            sort_values(&mut gpu, &values).unwrap_err(),
            EngineError::FramebufferTooSmall { .. }
        ));
    }

    #[test]
    fn sort_column_from_table() {
        let values: Vec<u32> = (0..32u32).map(|i| (i * 13) % 29).collect();
        let mut gpu = Gpu::geforce_fx_5900(8, 4);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", &values)]).unwrap();
        let outcome = sort_column(&mut gpu, &t, 0).unwrap();
        let mut expected = values.clone();
        expected.sort_unstable();
        assert_eq!(outcome.sorted, expected);
    }
}
