//! # gpudb-core — database operations on a (simulated) GPU
//!
//! The primary contribution of Govindaraju, Lloyd, Wang, Lin & Manocha,
//! *Fast Computation of Database Operations using Graphics Processors*
//! (SIGMOD 2004), implemented on the `gpudb-sim` substrate:
//!
//! * [`table`] — relations as textures (attributes packed in channels);
//! * [`predicate`] — `Compare` / `CopyToDepth` (Routine 4.1);
//! * [`semilinear`] — `Semilinear` dot-product queries (Routine 4.2);
//! * [`boolean`] — `EvalCNF` with the 3-value stencil encoding
//!   (Routine 4.3);
//! * [`range`] — single-pass range queries via the depth-bounds test
//!   (Routine 4.4);
//! * [`aggregate`] — COUNT (occlusion queries), `KthLargest`
//!   (Routine 4.5), the bitwise `Accumulator` (Routine 4.6), and the
//!   rejected mipmap-SUM alternative;
//! * [`selection`] — the stencil buffer as a composable record mask;
//! * [`out_of_core`] — chunked execution for tables larger than video
//!   memory (§6.1);
//! * [`olap`] — histograms and GROUP BY roll-ups built from the paper's
//!   primitives (the §7 OLAP future work);
//! * [`stream`] — sliding-window continuous queries (§7: "continuous
//!   queries over streams");
//! * [`timing`] — per-operation modeled timing breakdowns matching the
//!   paper's "with copy" / "computation only" split;
//! * [`metrics`] — structured per-operator metrics records (work
//!   counters + modeled phase times) backing the perf-regression
//!   harness in `gpudb-bench`;
//! * [`cpu_oracle`] — a device-free reference engine with exact GPU
//!   parity (results and errors alike), backing the fault-injection
//!   chaos suite and the CPU rung of the recovery ladder;
//! * [`resilience`] — retry with deterministic modeled backoff,
//!   capability/resource degradation, and CPU fallback for queries on a
//!   faulty device.
//!
//! ## Example
//!
//! ```
//! use gpudb_core::table::GpuTable;
//! use gpudb_core::predicate::compare_select;
//! use gpudb_core::aggregate;
//! use gpudb_sim::CompareFunc;
//!
//! let flows: Vec<u32> = (0..1000).map(|i| (i * 37) % 4096).collect();
//! let mut gpu = GpuTable::device_for(flows.len(), 100);
//! let table = GpuTable::upload(&mut gpu, "flows", &[("rate", &flows)]).unwrap();
//!
//! // SELECT COUNT(*) FROM flows WHERE rate >= 2048
//! let (sel, count) = compare_select(&mut gpu, &table, 0,
//!     CompareFunc::GreaterEqual, 2048).unwrap();
//! assert_eq!(count, flows.iter().filter(|&&v| v >= 2048).count() as u64);
//!
//! // SELECT MAX(rate) FROM flows WHERE rate >= 2048
//! let max = aggregate::max(&mut gpu, &table, 0, Some(&sel)).unwrap();
//! assert_eq!(max, *flows.iter().filter(|&&v| v >= 2048).max().unwrap());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]
// Fallible device paths must surface typed errors, not panic: unwrap is
// banned in library code (tests may unwrap freely).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod aggregate;
pub mod boolean;
pub mod cpu_oracle;
pub mod error;
pub mod metrics;
pub mod olap;
pub mod ops;
pub mod out_of_core;
pub mod parallel;
pub mod predicate;
pub mod query;
pub mod range;
pub mod resilience;
pub mod selection;
pub mod semilinear;
pub mod sort;
pub mod stream;
pub mod table;
pub mod timing;

pub use boolean::{GpuClause, GpuCnf, GpuDnf, GpuPredicate, GpuTerm};
pub use cpu_oracle::{HostTable, OracleOutput};
pub use error::{EngineError, EngineResult};
pub use metrics::{MetricsLog, MetricsRecord};
pub use parallel::{
    execute_sharded, execute_sharded_with_faults, ShardOptions, ShardReport, ShardRun,
    ShardedOutput,
};
pub use resilience::{ResiliencePath, ResilienceReport, ResilientOutput, RetryPolicy};
pub use selection::Selection;
pub use table::GpuTable;
pub use timing::OpTiming;

// Re-export the device-facing types users need alongside this crate.
pub use gpudb_sim::{CompareFunc, Gpu};
