//! COUNT and selectivity analysis (§4.3.1, §5.11).
//!
//! COUNT is an occlusion query over a boolean query's passes; when the
//! selection was just materialized, the count is available from the same
//! pass with "no additional overhead" (§5.11). This module adds the
//! standalone wrappers used by the query executor and the selectivity
//! estimation entry point.

use crate::error::EngineResult;
use crate::selection::Selection;
use crate::table::GpuTable;
use gpudb_sim::Gpu;

/// COUNT(*) over a selection — one stencil-tested occlusion pass.
pub fn count(gpu: &mut Gpu, selection: &Selection) -> EngineResult<u64> {
    selection.count(gpu)
}

/// COUNT(*) over a whole table — no device work needed, the record count
/// is table metadata.
pub fn count_all(table: &GpuTable) -> u64 {
    table.record_count() as u64
}

/// Selectivity of a selection in `[0, 1]` — the quantity join-ordering
/// optimizers consume ("Recently, several algorithms have been designed to
/// implement join operations efficiently using selectivity estimation",
/// §5.11).
pub fn selectivity(gpu: &mut Gpu, selection: &Selection) -> EngineResult<f64> {
    selection.selectivity(gpu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::compare_select;
    use gpudb_sim::CompareFunc;

    #[test]
    fn count_and_selectivity_agree() {
        let values: Vec<u32> = (0..200).collect();
        let mut gpu = GpuTable::device_for(values.len(), 16);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", &values)]).unwrap();
        assert_eq!(count_all(&t), 200);
        let (sel, c) = compare_select(&mut gpu, &t, 0, CompareFunc::Less, 50).unwrap();
        assert_eq!(count(&mut gpu, &sel).unwrap(), c);
        assert_eq!(c, 50);
        assert!((selectivity(&mut gpu, &sel).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn selectivity_readback_within_paper_bound() {
        // §5.11: "we can obtain the number of selected values within
        // 0.25 ms" on a 1000×1000 frame-buffer. The counting pass costs one
        // quad fill + one synchronous occlusion fetch.
        let values: Vec<u32> = (0..100).collect();
        let mut gpu = GpuTable::device_for(values.len(), 10);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", &values)]).unwrap();
        let (sel, _) = compare_select(&mut gpu, &t, 0, CompareFunc::Less, 50).unwrap();
        gpu.reset_stats();
        sel.count(&mut gpu).unwrap();
        let readback = gpu.stats().modeled.get(gpudb_sim::Phase::Readback);
        assert!(readback <= 0.25e-3, "readback {readback}s");
    }
}
