//! The float-mipmap SUM alternative (§4.3.3) — implemented for the
//! ablation that quantifies why the paper rejected it.
//!
//! Problems the paper lists, all reproduced here:
//! 1. "reading and writing floating-point textures can be slow" — modeled
//!    via the configurable write penalty;
//! 2. "if we are interested in the sum of only a subset of values [...]
//!    then introduce conditionals" — the mipmap path simply cannot honor a
//!    stencil selection, so this module exposes whole-column SUM only;
//! 3. "the floating point representation may not have enough precision to
//!    give an exact sum" — the reduction runs in genuine f32, so the error
//!    is observable (and asserted on in the tests).

use crate::error::EngineResult;
use crate::table::GpuTable;
use gpudb_sim::{Gpu, MipmapReduction};

/// The float-texture write penalty applied per mipmap level, reflecting
/// the slow floating-point render-to-texture path of the hardware
/// generation (§4.3.3).
pub const FLOAT_WRITE_PENALTY: f64 = 4.0;

/// Approximate SUM of a column via a float mipmap pyramid.
///
/// Padding texels beyond the record count are zero and thus do not perturb
/// the sum. Returns the full [`MipmapReduction`] so callers can inspect
/// the precision loss and modeled cost.
pub fn mipmap_sum(gpu: &mut Gpu, table: &GpuTable, column: usize) -> EngineResult<MipmapReduction> {
    let meta = table.column(column)?;
    let texture = table.texture_for(column)?;
    Ok(gpu.mipmap_sum(texture, meta.channel, FLOAT_WRITE_PENALTY)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::accumulator;

    fn setup(values: &[u32], width: usize) -> (Gpu, GpuTable) {
        let mut gpu = GpuTable::device_for(values.len(), width);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", values)]).unwrap();
        (gpu, t)
    }

    #[test]
    fn exact_for_small_values() {
        let values: Vec<u32> = (1..=64).collect();
        let (mut gpu, t) = setup(&values, 8);
        let r = mipmap_sum(&mut gpu, &t, 0).unwrap();
        assert_eq!(r.sum, (1..=64u64).sum::<u64>() as f64);
    }

    #[test]
    fn padding_does_not_perturb_sum() {
        // 10 records on an 8-wide grid: 6 zero padding texels.
        let values: Vec<u32> = (1..=10).collect();
        let (mut gpu, t) = setup(&values, 8);
        let r = mipmap_sum(&mut gpu, &t, 0).unwrap();
        assert_eq!(r.sum, 55.0);
    }

    #[test]
    fn loses_precision_where_accumulator_is_exact() {
        // The paper's problem 3: with large 24-bit values the f32
        // averaging drifts while the bitwise accumulator stays exact.
        let values: Vec<u32> = (0..4096u32).map(|i| (1 << 23) + (i % 117) + 1).collect();
        let exact: u64 = values.iter().map(|&v| v as u64).sum();
        let (mut gpu, t) = setup(&values, 64);
        let bitwise = accumulator::sum(&mut gpu, &t, 0, None).unwrap();
        assert_eq!(bitwise, exact, "the accumulator must be exact");
        let mip = mipmap_sum(&mut gpu, &t, 0).unwrap();
        assert!(
            (mip.sum - exact as f64).abs() > 0.0,
            "expected f32 drift, got exact {exact}"
        );
    }

    #[test]
    fn write_penalty_reflected_in_cost() {
        let values: Vec<u32> = (0..256).collect();
        let (mut gpu, t) = setup(&values, 16);
        let r = mipmap_sum(&mut gpu, &t, 0).unwrap();
        assert!(r.modeled_seconds > 0.0);
        assert!(r.levels >= 4);
    }
}
