//! SUM and AVG via the bitwise accumulator — the paper's `Accumulator`
//! (Routine 4.6).
//!
//! The sum `Σ x_j = Σ_i 2^i · |{j : bit i of x_j set}|` is computed with
//! one pass per bit plane: the `TestBit` fragment program writes
//! `frac(v / 2^(i+1))` into the fragment's alpha, the alpha test rejects
//! fragments with alpha < 0.5 (bit clear), and an occlusion query counts
//! the survivors. The result is exact to arbitrary precision — the
//! property the float-mipmap alternative lacks (§4.3.3).

use crate::error::{EngineError, EngineResult};
use crate::selection::{Selection, SELECTED};
use crate::table::GpuTable;
use gpudb_sim::program::builtin;
use gpudb_sim::state::ColorMask;
use gpudb_sim::{CompareFunc, Gpu, Phase, StencilOp};

/// Exact SUM of a column, optionally restricted to a selection
/// ("Accumulator can be used for summing only a subset of the records in
/// tex that have been selected using the stencil buffer").
pub fn sum(
    gpu: &mut Gpu,
    table: &GpuTable,
    column: usize,
    selection: Option<&Selection>,
) -> EngineResult<u64> {
    // A constant-empty selection has no stencil backing: testing the
    // stencil buffer would read pixels that were never established.
    if selection.is_some_and(Selection::is_const_empty) {
        return Ok(0);
    }
    let meta = table.column(column)?;
    let bits = meta.bits;
    let texture = table.texture_for(column)?;
    let channel = meta.channel;

    gpu.set_phase(Phase::Compute);
    gpu.reset_state();
    gpu.bind_texture(0, Some(texture))?;
    gpu.bind_program(Some(builtin::test_bit()));
    gpu.set_program_env(builtin::ENV_CHANNEL, builtin::channel_selector(channel))?;
    gpu.set_color_mask(ColorMask::NONE);
    gpu.set_depth_test(false, CompareFunc::Always);
    gpu.set_depth_write(false);
    // Line 1 of Routine 4.6: alpha test passes with alpha >= 0.5.
    gpu.set_alpha_test(true, CompareFunc::GreaterEqual, 0.5);
    if selection.is_some() {
        gpu.set_stencil_func(true, CompareFunc::Equal, SELECTED, 0xFF);
        gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, StencilOp::Keep);
    }

    let mut total = 0u64;
    for i in 0..bits {
        // env[0].x = 1 / 2^(i+1); exact in f32 for i < 126.
        let scale = 0.5f32.powi(i as i32 + 1);
        gpu.set_program_env(builtin::ENV_SCALE, [scale, 0.0, 0.0, 0.0])?;
        gpu.begin_occlusion_query()?;
        gpu.draw_quad(table.rects(), 0.0)?;
        // The bit-plane counts are independent: all queries can be issued
        // and harvested asynchronously (§5.3).
        let count = gpu.end_occlusion_query_async()?;
        total += count << i;
    }
    gpu.bind_program(None);
    gpu.reset_state();
    Ok(total)
}

/// Exact SUM via the §6.1 *depth compare mask* hardware extension: one
/// copy-to-depth, then one **fixed-function** pass per bit plane (depth
/// func `Equal` under a single-bit mask) instead of one fully-shaded
/// TestBit pass — the improvement the paper predicts from its hardware
/// wishlist ("A simplest mechanism is to copy the i-th bit of the texel
/// into the alpha value of a fragment. This can lead to significant
/// improvement in performance", §6.2.3).
///
/// Requires a device whose profile advertises
/// `has_depth_compare_mask`; errors with `UnsupportedFeature` otherwise.
pub fn sum_with_depth_mask(
    gpu: &mut Gpu,
    table: &GpuTable,
    column: usize,
    selection: Option<&Selection>,
) -> EngineResult<u64> {
    if selection.is_some_and(Selection::is_const_empty) {
        return Ok(0);
    }
    let bits = table.column(column)?.bits;
    crate::predicate::copy_to_depth(gpu, table, column)?;

    gpu.set_phase(Phase::Compute);
    gpu.set_color_mask(ColorMask::NONE);
    gpu.set_depth_write(false);
    if selection.is_some() {
        gpu.set_stencil_func(true, CompareFunc::Equal, SELECTED, 0xFF);
        gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, StencilOp::Keep);
    }

    let mut total = 0u64;
    for i in 0..bits {
        gpu.set_depth_compare_mask(1 << i)?;
        gpu.set_depth_test(true, CompareFunc::Equal);
        gpu.begin_occlusion_query()?;
        // Incoming depth encodes 2^i: under the single-bit mask the test
        // passes exactly on records with bit i set.
        gpu.draw_quad(table.rects(), crate::ops::encode_depth(1 << i))?;
        let count = gpu.end_occlusion_query_async()?;
        total += count << i;
    }
    gpu.set_depth_compare_mask(gpudb_sim::state::DEPTH_COMPARE_MASK_ALL)?;
    gpu.reset_state();
    Ok(total)
}

/// AVG = SUM / COUNT (§4.3.3). Errors on an empty domain.
pub fn avg(
    gpu: &mut Gpu,
    table: &GpuTable,
    column: usize,
    selection: Option<&Selection>,
) -> EngineResult<f64> {
    let count = match selection {
        Some(sel) => sel.count(gpu)?,
        None => table.record_count() as u64,
    };
    if count == 0 {
        return Err(EngineError::EmptyInput);
    }
    let total = sum(gpu, table, column, selection)?;
    Ok(total as f64 / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::compare_select;

    fn setup(values: &[u32]) -> (Gpu, GpuTable) {
        let mut gpu = GpuTable::device_for(values.len(), 8);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", values)]).unwrap();
        (gpu, t)
    }

    #[test]
    fn sum_matches_reference() {
        let values: Vec<u32> = (0..300u32)
            .map(|i| i.wrapping_mul(2654435761) % 100_000)
            .collect();
        let expected: u64 = values.iter().map(|&v| v as u64).sum();
        let (mut gpu, t) = setup(&values);
        assert_eq!(sum(&mut gpu, &t, 0, None).unwrap(), expected);
    }

    #[test]
    fn sum_exact_at_full_24_bit_width() {
        // Large values stress every bit plane; the result must be exact —
        // the paper's headline advantage over the mipmap approach.
        let max = (1u32 << 24) - 1;
        let values = vec![max, max - 1, 1, 0, max / 2];
        let expected: u64 = values.iter().map(|&v| v as u64).sum();
        let (mut gpu, t) = setup(&values);
        assert_eq!(sum(&mut gpu, &t, 0, None).unwrap(), expected);
    }

    #[test]
    fn sum_of_zeros_and_empty() {
        let (mut gpu, t) = setup(&[0, 0, 0]);
        assert_eq!(sum(&mut gpu, &t, 0, None).unwrap(), 0);
        let (mut gpu, t) = setup(&[]);
        assert_eq!(sum(&mut gpu, &t, 0, None).unwrap(), 0);
    }

    #[test]
    fn pass_count_equals_bit_width() {
        let values = vec![0b1010_1010u32; 10]; // 8 bits
        let (mut gpu, t) = setup(&values);
        gpu.reset_stats();
        sum(&mut gpu, &t, 0, None).unwrap();
        assert_eq!(gpu.stats().draw_calls, 8);
        assert_eq!(gpu.stats().occlusion_readbacks, 8);
    }

    #[test]
    fn every_fragment_is_shaded() {
        // §6.2.3: the accumulator cannot benefit from early-z — the alpha
        // test depends on the program's output. All fragments pay the
        // 5-instruction TestBit program, which is why the GPU loses
        // Figure 10.
        let values: Vec<u32> = (1..=50).collect(); // 6 bits
        let (mut gpu, t) = setup(&values);
        gpu.reset_stats();
        sum(&mut gpu, &t, 0, None).unwrap();
        let stats = gpu.stats();
        assert_eq!(stats.fragments_generated, 50 * 6);
        assert_eq!(stats.fragments_shaded, 50 * 6);
    }

    #[test]
    fn masked_sum_restricted_to_selection() {
        let values: Vec<u32> = (0..100).collect();
        let (mut gpu, t) = setup(&values);
        let (sel, _) = compare_select(&mut gpu, &t, 0, CompareFunc::GreaterEqual, 50).unwrap();
        let expected: u64 = (50..100).sum::<u64>();
        assert_eq!(sum(&mut gpu, &t, 0, Some(&sel)).unwrap(), expected);
    }

    #[test]
    fn avg_plain_and_masked() {
        let values = vec![10u32, 20, 30, 40];
        let (mut gpu, t) = setup(&values);
        assert_eq!(avg(&mut gpu, &t, 0, None).unwrap(), 25.0);
        let (sel, _) = compare_select(&mut gpu, &t, 0, CompareFunc::Greater, 20).unwrap();
        assert_eq!(avg(&mut gpu, &t, 0, Some(&sel)).unwrap(), 35.0);
    }

    #[test]
    fn avg_empty_errors() {
        let (mut gpu, t) = setup(&[]);
        assert!(matches!(
            avg(&mut gpu, &t, 0, None).unwrap_err(),
            EngineError::EmptyInput
        ));
        // Empty selection over a non-empty table.
        let values = vec![1u32, 2, 3];
        let (mut gpu, t) = setup(&values);
        let (sel, count) = compare_select(&mut gpu, &t, 0, CompareFunc::Greater, 100).unwrap();
        assert_eq!(count, 0);
        assert!(matches!(
            avg(&mut gpu, &t, 0, Some(&sel)).unwrap_err(),
            EngineError::EmptyInput
        ));
    }

    #[test]
    fn const_empty_selection_sums_to_zero_without_device_work() {
        let values = vec![1u32, 2, 3];
        let (mut gpu, t) = setup(&values);
        // Pollute the stencil: the const-empty guard must not consult it.
        gpu.clear_stencil(SELECTED);
        let sel = Selection::const_empty(&t);
        let counters = gpu.stats().counters();
        assert_eq!(sum(&mut gpu, &t, 0, Some(&sel)).unwrap(), 0);
        assert_eq!(gpu.stats().counters(), counters);
        assert!(matches!(
            avg(&mut gpu, &t, 0, Some(&sel)).unwrap_err(),
            EngineError::EmptyInput
        ));
    }

    #[test]
    fn second_channel_summed_correctly() {
        let a = vec![1u32; 6];
        let b = vec![100u32, 200, 300, 400, 500, 600];
        let mut gpu = GpuTable::device_for(6, 3);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", &a), ("b", &b)]).unwrap();
        assert_eq!(sum(&mut gpu, &t, 1, None).unwrap(), 2100);
        assert_eq!(sum(&mut gpu, &t, 0, None).unwrap(), 6);
    }

    #[test]
    fn depth_mask_sum_matches_standard_accumulator() {
        use gpudb_sim::HardwareProfile;
        let values: Vec<u32> = (0..500u32)
            .map(|i| i.wrapping_mul(2654435761) % (1 << 19))
            .collect();
        let expected: u64 = values.iter().map(|&v| v as u64).sum();
        let mut gpu =
            gpudb_sim::Gpu::new(HardwareProfile::geforce_fx_5900_with_depth_mask(), 25, 20);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", &values)]).unwrap();
        assert_eq!(
            sum_with_depth_mask(&mut gpu, &t, 0, None).unwrap(),
            expected
        );
        assert_eq!(sum(&mut gpu, &t, 0, None).unwrap(), expected);
    }

    #[test]
    fn depth_mask_sum_is_fixed_function_and_cheaper() {
        use gpudb_sim::HardwareProfile;
        // Large enough that fill cost dominates the per-pass draw
        // overhead (at tiny sizes the masked variant's extra copy pass
        // costs more than the shading it saves).
        let values: Vec<u32> = (1..=20_000u32).map(|v| v % 256).collect(); // 8 bits
        let mut gpu =
            gpudb_sim::Gpu::new(HardwareProfile::geforce_fx_5900_with_depth_mask(), 200, 100);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", &values)]).unwrap();

        gpu.reset_stats();
        sum(&mut gpu, &t, 0, None).unwrap();
        let standard_shaded = gpu.stats().fragments_shaded;
        let standard_ms = gpu.stats().modeled_total();

        gpu.reset_stats();
        sum_with_depth_mask(&mut gpu, &t, 0, None).unwrap();
        let masked_shaded = gpu.stats().fragments_shaded;
        let masked_ms = gpu.stats().modeled_total();

        // Only the single copy pass is shaded; every bit pass is pure
        // fixed function.
        assert_eq!(masked_shaded, values.len() as u64);
        assert_eq!(standard_shaded, values.len() as u64 * 8);
        assert!(masked_ms < standard_ms);
    }

    #[test]
    fn depth_mask_sum_respects_selection() {
        use gpudb_sim::HardwareProfile;
        let values: Vec<u32> = (0..100).collect();
        let mut gpu =
            gpudb_sim::Gpu::new(HardwareProfile::geforce_fx_5900_with_depth_mask(), 10, 10);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", &values)]).unwrap();
        let (sel, _) = compare_select(&mut gpu, &t, 0, CompareFunc::Less, 50).unwrap();
        assert_eq!(
            sum_with_depth_mask(&mut gpu, &t, 0, Some(&sel)).unwrap(),
            (0..50u64).sum::<u64>()
        );
    }

    #[test]
    fn depth_mask_sum_requires_capability() {
        let values = vec![1u32, 2, 3];
        let (mut gpu, t) = setup(&values);
        assert!(matches!(
            sum_with_depth_mask(&mut gpu, &t, 0, None).unwrap_err(),
            crate::EngineError::Gpu(gpudb_sim::GpuError::UnsupportedFeature(_))
        ));
    }

    #[test]
    fn million_scale_smoke() {
        // A smaller grid but full 19-bit values, checking no drift at scale.
        let values: Vec<u32> = (0..10_000u32)
            .map(|i| i.wrapping_mul(2654435761) % (1 << 19))
            .collect();
        let expected: u64 = values.iter().map(|&v| v as u64).sum();
        let mut gpu = GpuTable::device_for(values.len(), 100);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", &values)]).unwrap();
        assert_eq!(sum(&mut gpu, &t, 0, None).unwrap(), expected);
    }
}
