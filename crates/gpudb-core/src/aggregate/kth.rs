//! Order statistics: `KthLargest` (Routine 4.5) and its derivatives MIN,
//! MAX, median and percentile.
//!
//! The algorithm constructs the k-th largest value one bit at a time from
//! the MSB, using an occlusion-query count per bit ("Our algorithm
//! utilizes the binary data representation for computing the k-th largest
//! value in time that is linear in the number of bits"). It needs no data
//! rearrangement and its running time is independent of `k` — both
//! properties the paper verifies experimentally (Figure 7).

use crate::error::{EngineError, EngineResult};
use crate::predicate::{comparison_pass, copy_to_depth, OcclusionMode};
use crate::selection::{Selection, SELECTED};
use crate::table::GpuTable;
use gpudb_sim::{CompareFunc, Gpu, Phase, StencilOp};

/// Restrict subsequent comparison passes to the selection, if any:
/// the stencil test passes only on selected pixels and never writes.
fn apply_selection_mask(gpu: &mut Gpu, selection: Option<&Selection>) {
    if selection.is_some() {
        gpu.set_stencil_func(true, CompareFunc::Equal, SELECTED, 0xFF);
        gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, StencilOp::Keep);
    } else {
        gpu.set_stencil_func(false, CompareFunc::Always, 0, 0xFF);
    }
}

/// Number of records the k-th largest ranges over: the selection count if
/// masked, the table's record count otherwise.
fn domain_count(
    gpu: &mut Gpu,
    table: &GpuTable,
    selection: Option<&Selection>,
) -> EngineResult<u64> {
    match selection {
        Some(sel) => sel.count(gpu),
        None => Ok(table.record_count() as u64),
    }
}

/// Compute the k-th largest value (1-based; `k = 1` is the maximum) of a
/// column, optionally restricted to a selection.
///
/// Routine 4.5: one copy-to-depth, then `b_max` comparison passes, each
/// counting values `>= x + 2^i` with an occlusion query and fixing bit `i`
/// of the result by the paper's Lemma 1.
pub fn kth_largest(
    gpu: &mut Gpu,
    table: &GpuTable,
    column: usize,
    k: usize,
    selection: Option<&Selection>,
) -> EngineResult<u32> {
    let available = domain_count(gpu, table, selection)?;
    if k == 0 || k as u64 > available {
        return Err(EngineError::InvalidK { k, available });
    }
    let bits = table.column(column)?.bits;
    copy_to_depth(gpu, table, column)?;
    let x = bit_descent(gpu, table, k, bits, selection)?;
    gpu.reset_state();
    Ok(x)
}

/// The per-bit binary search of Routine 4.5, assuming the attribute is
/// already in the depth buffer. Shared by the single and batched entry
/// points.
fn bit_descent(
    gpu: &mut Gpu,
    table: &GpuTable,
    k: usize,
    bits: u32,
    selection: Option<&Selection>,
) -> EngineResult<u32> {
    gpu.set_phase(Phase::Compute);
    apply_selection_mask(gpu, selection);
    let mut x = 0u32;
    for i in (0..bits).rev() {
        let m = x + (1 << i);
        // Count values >= m among the (selected) records.
        // Synchronous fetch: bit i+1's threshold depends on this count.
        let count = comparison_pass(
            gpu,
            table,
            CompareFunc::GreaterEqual,
            m,
            OcclusionMode::Sync,
        )?;
        if count > (k - 1) as u64 {
            x = m;
        }
        // Re-arm the selection mask (comparison_pass leaves stencil state
        // untouched, but keep the invariant explicit).
        apply_selection_mask(gpu, selection);
    }
    Ok(x)
}

/// Compute several order statistics of the same column with a single
/// `CopyToDepth`: the bit descents never write depth, so the copied
/// attribute survives across them. For `q` quantiles this saves `q - 1`
/// copy passes — the same amortization that makes `compare_many` cheap.
pub fn kth_largest_many(
    gpu: &mut Gpu,
    table: &GpuTable,
    column: usize,
    ks: &[usize],
    selection: Option<&Selection>,
) -> EngineResult<Vec<u32>> {
    let available = domain_count(gpu, table, selection)?;
    for &k in ks {
        if k == 0 || k as u64 > available {
            return Err(EngineError::InvalidK { k, available });
        }
    }
    let bits = table.column(column)?.bits;
    copy_to_depth(gpu, table, column)?;
    let mut out = Vec::with_capacity(ks.len());
    for &k in ks {
        out.push(bit_descent(gpu, table, k, bits, selection)?);
    }
    gpu.reset_state();
    Ok(out)
}

/// The k-th smallest value (1-based), via the rank identity
/// `kth_smallest(k) = kth_largest(n + 1 - k)` over the (selected) domain.
pub fn kth_smallest(
    gpu: &mut Gpu,
    table: &GpuTable,
    column: usize,
    k: usize,
    selection: Option<&Selection>,
) -> EngineResult<u32> {
    let available = domain_count(gpu, table, selection)?;
    if k == 0 || k as u64 > available {
        return Err(EngineError::InvalidK { k, available });
    }
    kth_largest(gpu, table, column, (available as usize) + 1 - k, selection)
}

/// MAX: the 1st largest (§4.3.2 — "The query to find the minimum or
/// maximum value of an attribute is a special case of the kth largest
/// number").
pub fn max(
    gpu: &mut Gpu,
    table: &GpuTable,
    column: usize,
    selection: Option<&Selection>,
) -> EngineResult<u32> {
    kth_largest(gpu, table, column, 1, selection)
}

/// MIN: the 1st smallest.
pub fn min(
    gpu: &mut Gpu,
    table: &GpuTable,
    column: usize,
    selection: Option<&Selection>,
) -> EngineResult<u32> {
    kth_smallest(gpu, table, column, 1, selection)
}

/// The (lower) median: the ⌈n/2⌉-th smallest value.
pub fn median(
    gpu: &mut Gpu,
    table: &GpuTable,
    column: usize,
    selection: Option<&Selection>,
) -> EngineResult<u32> {
    let available = domain_count(gpu, table, selection)?;
    if available == 0 {
        return Err(EngineError::EmptyInput);
    }
    kth_smallest(
        gpu,
        table,
        column,
        (available as usize).div_ceil(2),
        selection,
    )
}

/// Select the top-k records of a column: find the k-th largest value with
/// the bit descent, then materialize `attribute >= v_k` as a selection —
/// one extra comparison pass. With duplicates at the threshold the
/// selection may exceed `k` records (ties are all included); the returned
/// count reports the actual size.
pub fn top_k_select(
    gpu: &mut Gpu,
    table: &GpuTable,
    column: usize,
    k: usize,
) -> EngineResult<(crate::selection::Selection, u64)> {
    let threshold = kth_largest(gpu, table, column, k, None)?;
    crate::predicate::compare_select(gpu, table, column, CompareFunc::GreaterEqual, threshold)
}

/// The p-th percentile (0.0–1.0) by nearest rank.
pub fn percentile(
    gpu: &mut Gpu,
    table: &GpuTable,
    column: usize,
    p: f64,
    selection: Option<&Selection>,
) -> EngineResult<u32> {
    let available = domain_count(gpu, table, selection)?;
    if available == 0 {
        return Err(EngineError::EmptyInput);
    }
    let rank =
        ((p.clamp(0.0, 1.0) * available as f64).ceil() as usize).clamp(1, available as usize);
    kth_smallest(gpu, table, column, rank, selection)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::compare_select;

    fn setup(values: &[u32]) -> (Gpu, GpuTable) {
        let mut gpu = GpuTable::device_for(values.len(), 8);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", values)]).unwrap();
        (gpu, t)
    }

    fn reference_kth_largest(values: &[u32], k: usize) -> u32 {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        sorted[sorted.len() - k]
    }

    #[test]
    fn kth_largest_matches_sort_reference() {
        let values: Vec<u32> = (0..200u32)
            .map(|i| i.wrapping_mul(2654435761) % 5000)
            .collect();
        let (mut gpu, t) = setup(&values);
        for k in [1usize, 2, 7, 100, 199, 200] {
            assert_eq!(
                kth_largest(&mut gpu, &t, 0, k, None).unwrap(),
                reference_kth_largest(&values, k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn duplicates_handled() {
        let values = vec![7u32, 7, 7, 3, 3, 9];
        let (mut gpu, t) = setup(&values);
        assert_eq!(kth_largest(&mut gpu, &t, 0, 1, None).unwrap(), 9);
        assert_eq!(kth_largest(&mut gpu, &t, 0, 2, None).unwrap(), 7);
        assert_eq!(kth_largest(&mut gpu, &t, 0, 4, None).unwrap(), 7);
        assert_eq!(kth_largest(&mut gpu, &t, 0, 5, None).unwrap(), 3);
        assert_eq!(kth_largest(&mut gpu, &t, 0, 6, None).unwrap(), 3);
    }

    #[test]
    fn invalid_k_rejected() {
        let values = vec![1u32, 2, 3];
        let (mut gpu, t) = setup(&values);
        assert!(matches!(
            kth_largest(&mut gpu, &t, 0, 0, None).unwrap_err(),
            EngineError::InvalidK { k: 0, available: 3 }
        ));
        assert!(matches!(
            kth_largest(&mut gpu, &t, 0, 4, None).unwrap_err(),
            EngineError::InvalidK { k: 4, available: 3 }
        ));
    }

    #[test]
    fn min_max_median() {
        let values = vec![42u32, 17, 99, 3, 64, 17, 80, 5, 21];
        let (mut gpu, t) = setup(&values);
        assert_eq!(max(&mut gpu, &t, 0, None).unwrap(), 99);
        assert_eq!(min(&mut gpu, &t, 0, None).unwrap(), 3);
        // 9 values, lower median = 5th smallest = 21.
        assert_eq!(median(&mut gpu, &t, 0, None).unwrap(), 21);
    }

    #[test]
    fn kth_smallest_is_dual() {
        let values: Vec<u32> = (0..50u32).map(|i| (i * 31) % 97).collect();
        let (mut gpu, t) = setup(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for k in [1usize, 5, 25, 50] {
            assert_eq!(
                kth_smallest(&mut gpu, &t, 0, k, None).unwrap(),
                sorted[k - 1],
                "k = {k}"
            );
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let values: Vec<u32> = (1..=100).collect();
        let (mut gpu, t) = setup(&values);
        assert_eq!(percentile(&mut gpu, &t, 0, 0.0, None).unwrap(), 1);
        assert_eq!(percentile(&mut gpu, &t, 0, 0.5, None).unwrap(), 50);
        assert_eq!(percentile(&mut gpu, &t, 0, 1.0, None).unwrap(), 100);
    }

    #[test]
    fn masked_kth_largest_ignores_unselected() {
        // The paper's §5.9 Test 3: KthLargest over an 80%-selectivity
        // subset. Select values < 60, then take order statistics within.
        let values: Vec<u32> = (0..100).collect();
        let (mut gpu, t) = setup(&values);
        let (sel, count) = compare_select(&mut gpu, &t, 0, CompareFunc::Less, 60).unwrap();
        assert_eq!(count, 60);
        assert_eq!(kth_largest(&mut gpu, &t, 0, 1, Some(&sel)).unwrap(), 59);
        assert_eq!(kth_largest(&mut gpu, &t, 0, 60, Some(&sel)).unwrap(), 0);
        assert_eq!(median(&mut gpu, &t, 0, Some(&sel)).unwrap(), 29);
        assert!(matches!(
            kth_largest(&mut gpu, &t, 0, 61, Some(&sel)).unwrap_err(),
            EngineError::InvalidK {
                k: 61,
                available: 60
            }
        ));
    }

    #[test]
    fn pass_count_is_independent_of_k() {
        // Figure 7's flat line: the bit-descent always runs b_max passes.
        let values: Vec<u32> = (0..128).collect(); // 7 bits
        let (mut gpu, t) = setup(&values);
        let mut draws = Vec::new();
        for k in [1usize, 30, 128] {
            gpu.reset_stats();
            kth_largest(&mut gpu, &t, 0, k, None).unwrap();
            draws.push(gpu.stats().draw_calls);
        }
        assert_eq!(draws[0], draws[1]);
        assert_eq!(draws[1], draws[2]);
    }

    #[test]
    fn masked_run_costs_same_as_unmasked() {
        // §5.9 Test 3: "KthLargest with 80% selectivity requires exactly
        // the same amount of time as performing KthLargest with 100%
        // selectivity" — same passes, same fragments.
        let values: Vec<u32> = (0..100).collect();
        let (mut gpu, t) = setup(&values);
        let (sel, _) = compare_select(&mut gpu, &t, 0, CompareFunc::Less, 80).unwrap();

        gpu.reset_stats();
        kth_largest(&mut gpu, &t, 0, 10, None).unwrap();
        let unmasked_fragments = gpu.stats().fragments_generated;

        gpu.reset_stats();
        // Note: the masked call runs one extra counting pass for `available`.
        kth_largest(&mut gpu, &t, 0, 10, Some(&sel)).unwrap();
        let masked_fragments = gpu.stats().fragments_generated;
        let per_pass = values.len() as u64;
        assert_eq!(masked_fragments, unmasked_fragments + per_pass);
    }

    #[test]
    fn batched_kth_shares_one_copy() {
        let values: Vec<u32> = (0..200u32).map(|i| (i * 37) % 512).collect();
        let (mut gpu, t) = setup(&values);
        let ks = [1usize, 20, 100, 200];

        gpu.reset_stats();
        let batched = kth_largest_many(&mut gpu, &t, 0, &ks, None).unwrap();
        let batched_shaded = gpu.stats().fragments_shaded;

        let mut singles = Vec::new();
        gpu.reset_stats();
        for &k in &ks {
            singles.push(kth_largest(&mut gpu, &t, 0, k, None).unwrap());
        }
        let single_shaded = gpu.stats().fragments_shaded;

        assert_eq!(batched, singles);
        // One copy instead of four.
        assert_eq!(batched_shaded, 200);
        assert_eq!(single_shaded, 200 * 4);

        let mut sorted = values.clone();
        sorted.sort_unstable();
        for (&k, &v) in ks.iter().zip(&batched) {
            assert_eq!(v, sorted[sorted.len() - k], "k = {k}");
        }
    }

    #[test]
    fn batched_kth_validates_all_ranks_first() {
        let values: Vec<u32> = (0..10).collect();
        let (mut gpu, t) = setup(&values);
        assert!(matches!(
            kth_largest_many(&mut gpu, &t, 0, &[1, 11], None).unwrap_err(),
            EngineError::InvalidK { k: 11, .. }
        ));
        assert!(kth_largest_many(&mut gpu, &t, 0, &[], None)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn top_k_selects_largest_records() {
        let values: Vec<u32> = (0..100u32)
            .map(|i| i.wrapping_mul(2654435761) % 10_000)
            .collect();
        let (mut gpu, t) = setup(&values);
        let (sel, count) = top_k_select(&mut gpu, &t, 0, 10).unwrap();
        assert_eq!(count, 10, "distinct values: exactly k records");
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let threshold = sorted[sorted.len() - 10];
        let indices = sel.read_indices(&mut gpu).unwrap();
        assert_eq!(indices.len(), 10);
        for i in indices {
            assert!(
                values[i] >= threshold,
                "record {i} below the top-10 threshold"
            );
        }
    }

    #[test]
    fn top_k_includes_ties() {
        let values = vec![5u32, 9, 9, 9, 1];
        let (mut gpu, t) = setup(&values);
        // k = 2, but three records tie at 9: all included.
        let (_, count) = top_k_select(&mut gpu, &t, 0, 2).unwrap();
        assert_eq!(count, 3);
        assert!(matches!(
            top_k_select(&mut gpu, &t, 0, 6).unwrap_err(),
            EngineError::InvalidK { .. }
        ));
    }

    #[test]
    fn single_value_column() {
        let values = vec![13u32];
        let (mut gpu, t) = setup(&values);
        assert_eq!(kth_largest(&mut gpu, &t, 0, 1, None).unwrap(), 13);
        assert_eq!(median(&mut gpu, &t, 0, None).unwrap(), 13);
    }

    #[test]
    fn zero_valued_column() {
        let values = vec![0u32; 5];
        let (mut gpu, t) = setup(&values);
        assert_eq!(kth_largest(&mut gpu, &t, 0, 3, None).unwrap(), 0);
        assert_eq!(max(&mut gpu, &t, 0, None).unwrap(), 0);
    }

    #[test]
    fn empty_median_errors() {
        let (mut gpu, t) = setup(&[]);
        assert!(matches!(
            median(&mut gpu, &t, 0, None).unwrap_err(),
            EngineError::EmptyInput
        ));
    }
}
