//! Aggregation queries (§4.3): COUNT via occlusion queries, MIN/MAX/median
//! via the bitwise `KthLargest`, SUM/AVG via the bitwise `Accumulator`,
//! plus the rejected mipmap-SUM alternative for the ablation study.

pub mod accumulator;
pub mod count;
pub mod kth;
pub mod mipmap_sum;

pub use accumulator::{avg, sum, sum_with_depth_mask};
pub use count::{count, count_all, selectivity};
pub use kth::{
    kth_largest, kth_largest_many, kth_smallest, max, median, min, percentile, top_k_select,
};
pub use mipmap_sum::mipmap_sum;
