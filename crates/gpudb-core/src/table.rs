//! Relational tables on the GPU.
//!
//! §4 of the paper: "To perform these operations on a relational table
//! using GPUs, we store the attributes of each record in multiple channels
//! of a single texel, or the same texel location in multiple textures."
//! This module does both: attributes are packed four per RGBA texture, and
//! a table with more than four attributes spans several textures. Records
//! are laid out row-major in a `width × height` grid (the paper uses
//! 1000 × 1000 textures for its million-record database).

use crate::error::{EngineError, EngineResult};
use crate::ops::ATTRIBUTE_BITS;
use gpudb_sim::raster::Rect;
use gpudb_sim::texture::{Texture, TextureFormat};
use gpudb_sim::{Gpu, Phase, TextureId};

/// Default texture width, matching the paper's 1000-wide layout.
pub const DEFAULT_WIDTH: usize = 1000;

/// Metadata for one attribute column resident on the GPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnMeta {
    /// Attribute name.
    pub name: String,
    /// Index into the table's texture list.
    pub texture_index: usize,
    /// Channel within that texture (0 = R … 3 = A).
    pub channel: usize,
    /// Bits required by the widest value (the `b_max` of the bitwise
    /// algorithms).
    pub bits: u32,
    /// Largest value present, for range planning.
    pub max_value: u32,
}

/// A table uploaded to the device.
#[derive(Debug)]
pub struct GpuTable {
    name: String,
    width: usize,
    height: usize,
    record_count: usize,
    columns: Vec<ColumnMeta>,
    textures: Vec<TextureId>,
    rects: Vec<Rect>,
}

impl GpuTable {
    /// Create a device sized to hold `records` records at the given grid
    /// width (the framebuffer must cover the record grid).
    pub fn device_for(records: usize, width: usize) -> Gpu {
        let width = width.max(1);
        let height = records.div_ceil(width).max(1);
        Gpu::geforce_fx_5900(width, height)
    }

    /// Upload columnar data as a new table. Columns must be non-ragged and
    /// every value must fit in 24 bits. The device framebuffer width fixes
    /// the record grid width.
    pub fn upload(
        gpu: &mut Gpu,
        name: impl Into<String>,
        columns: &[(&str, &[u32])],
    ) -> EngineResult<GpuTable> {
        let name = name.into();
        let record_count = columns.first().map_or(0, |(_, v)| v.len());
        if columns.iter().any(|(_, v)| v.len() != record_count) {
            return Err(EngineError::MismatchedColumnLengths);
        }
        for (col_name, values) in columns {
            let bits = values
                .iter()
                .copied()
                .max()
                .map_or(0, |m| 32 - m.leading_zeros());
            if bits > ATTRIBUTE_BITS {
                return Err(EngineError::AttributeTooWide {
                    column: (*col_name).to_string(),
                    bits,
                });
            }
        }

        let width = gpu.width();
        let height = record_count.div_ceil(width).max(1);
        if height > gpu.height() {
            return Err(EngineError::FramebufferTooSmall {
                needed: height,
                available: gpu.height(),
            });
        }

        gpu.set_phase(Phase::Upload);
        let mut metas = Vec::with_capacity(columns.len());
        let mut textures = Vec::new();
        for (group_index, group) in columns.chunks(4).enumerate() {
            let channels = group.len();
            let format = TextureFormat::from_channels(channels as u8)?;
            // Interleave the group's columns into one texture, padding the
            // grid tail with zeros.
            let mut data = vec![0.0f32; width * height * channels];
            for (channel, (_, values)) in group.iter().enumerate() {
                for (i, &v) in values.iter().enumerate() {
                    data[i * channels + channel] = v as f32;
                }
            }
            let texture =
                Texture::from_data(width, height, format, data).map_err(EngineError::from)?;
            let id = gpu.create_texture(texture)?;
            textures.push(id);
            for (channel, (col_name, values)) in group.iter().enumerate() {
                let max_value = values.iter().copied().max().unwrap_or(0);
                metas.push(ColumnMeta {
                    name: (*col_name).to_string(),
                    texture_index: group_index,
                    channel,
                    bits: 32 - max_value.leading_zeros(),
                    max_value,
                });
            }
        }

        Ok(GpuTable {
            name,
            width,
            height,
            record_count,
            columns: metas,
            textures,
            rects: Rect::covering_prefix(record_count, width),
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record grid width in texels/pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Record grid height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of records.
    pub fn record_count(&self) -> usize {
        self.record_count
    }

    /// Number of attribute columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Column metadata by index.
    pub fn column(&self, index: usize) -> EngineResult<&ColumnMeta> {
        self.columns
            .get(index)
            .ok_or(EngineError::ColumnIndexOutOfRange(index))
    }

    /// Resolve a column name to its index.
    pub fn column_index(&self, name: &str) -> EngineResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| EngineError::ColumnNotFound(name.to_string()))
    }

    /// All column metadata.
    pub fn columns(&self) -> &[ColumnMeta] {
        &self.columns
    }

    /// Device texture holding a column.
    pub fn texture_for(&self, column: usize) -> EngineResult<TextureId> {
        let meta = self.column(column)?;
        Ok(self.textures[meta.texture_index])
    }

    /// All device textures backing the table, in group order.
    pub fn textures(&self) -> &[TextureId] {
        &self.textures
    }

    /// The screen rectangles covering exactly this table's records.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Override a column's recorded bit width (the `b_max` driving the
    /// bitwise algorithms). Needed when texel contents change after upload
    /// (e.g. streaming sub-image updates) so that pass counts stay correct.
    /// Clamped to the 24-bit encoding limit; widening is always safe
    /// (extra passes count empty bit planes).
    pub fn override_column_bits(&mut self, column: usize, bits: u32) -> EngineResult<()> {
        let meta = self
            .columns
            .get_mut(column)
            .ok_or(EngineError::ColumnIndexOutOfRange(column))?;
        meta.bits = bits.min(ATTRIBUTE_BITS);
        Ok(())
    }

    /// Release the table's textures from the device.
    pub fn free(self, gpu: &mut Gpu) -> EngineResult<()> {
        for id in self.textures {
            gpu.delete_texture(id)?;
        }
        Ok(())
    }

    /// Read a column back from the device texture (host-side verification
    /// helper; the real hardware would pay a readback for this).
    pub fn read_column(&self, gpu: &Gpu, column: usize) -> EngineResult<Vec<u32>> {
        let meta = self.column(column)?;
        let tex = gpu.texture(self.textures[meta.texture_index])?;
        let channels = tex.format().channels();
        Ok(tex
            .data()
            .chunks_exact(channels)
            .take(self.record_count)
            .map(|texel| gpudb_sim::texture::decode_u32(texel[meta.channel]))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_table(gpu: &mut Gpu) -> GpuTable {
        let a: Vec<u32> = (0..10).collect();
        let b: Vec<u32> = (0..10).map(|i| i * 100).collect();
        GpuTable::upload(gpu, "t", &[("a", &a), ("b", &b)]).unwrap()
    }

    #[test]
    fn upload_and_readback() {
        let mut gpu = GpuTable::device_for(10, 4);
        let t = small_table(&mut gpu);
        assert_eq!(t.record_count(), 10);
        assert_eq!(t.column_count(), 2);
        assert_eq!(t.width(), 4);
        assert_eq!(t.height(), 3);
        assert_eq!(t.read_column(&gpu, 0).unwrap(), (0..10).collect::<Vec<_>>());
        assert_eq!(
            t.read_column(&gpu, 1).unwrap(),
            (0..10).map(|i| i * 100).collect::<Vec<_>>()
        );
    }

    #[test]
    fn rects_cover_records_exactly() {
        let mut gpu = GpuTable::device_for(10, 4);
        let t = small_table(&mut gpu);
        let area: usize = t.rects().iter().map(Rect::area).sum();
        assert_eq!(area, 10);
    }

    #[test]
    fn two_columns_share_one_texture() {
        let mut gpu = GpuTable::device_for(10, 4);
        let t = small_table(&mut gpu);
        assert_eq!(t.textures().len(), 1);
        assert_eq!(t.column(0).unwrap().channel, 0);
        assert_eq!(t.column(1).unwrap().channel, 1);
    }

    #[test]
    fn five_columns_span_two_textures() {
        let cols: Vec<Vec<u32>> = (0..5).map(|c| vec![c as u32; 6]).collect();
        let named: Vec<(&str, &[u32])> = ["a", "b", "c", "d", "e"]
            .iter()
            .zip(&cols)
            .map(|(n, v)| (*n, v.as_slice()))
            .collect();
        let mut gpu = GpuTable::device_for(6, 3);
        let t = GpuTable::upload(&mut gpu, "wide", &named).unwrap();
        assert_eq!(t.textures().len(), 2);
        assert_eq!(t.column(4).unwrap().texture_index, 1);
        assert_eq!(t.column(4).unwrap().channel, 0);
        assert_eq!(t.read_column(&gpu, 4).unwrap(), vec![4; 6]);
    }

    #[test]
    fn column_lookup_by_name() {
        let mut gpu = GpuTable::device_for(10, 4);
        let t = small_table(&mut gpu);
        assert_eq!(t.column_index("b").unwrap(), 1);
        assert_eq!(
            t.column_index("zz").unwrap_err(),
            EngineError::ColumnNotFound("zz".into())
        );
        assert!(matches!(
            t.column(9).unwrap_err(),
            EngineError::ColumnIndexOutOfRange(9)
        ));
    }

    #[test]
    fn rejects_ragged_columns() {
        let mut gpu = GpuTable::device_for(4, 2);
        let a = vec![1u32, 2];
        let b = vec![1u32];
        let err = GpuTable::upload(&mut gpu, "t", &[("a", &a), ("b", &b)]).unwrap_err();
        assert_eq!(err, EngineError::MismatchedColumnLengths);
    }

    #[test]
    fn rejects_values_wider_than_24_bits() {
        let mut gpu = GpuTable::device_for(2, 2);
        let a = vec![1u32 << 24];
        let err = GpuTable::upload(&mut gpu, "t", &[("a", &a)]).unwrap_err();
        assert!(matches!(
            err,
            EngineError::AttributeTooWide { bits: 25, .. }
        ));
    }

    #[test]
    fn rejects_oversized_tables() {
        let mut gpu = Gpu::geforce_fx_5900(2, 2);
        let a: Vec<u32> = (0..100).collect();
        let err = GpuTable::upload(&mut gpu, "t", &[("a", &a)]).unwrap_err();
        assert!(matches!(err, EngineError::FramebufferTooSmall { .. }));
    }

    #[test]
    fn bits_and_max_metadata() {
        let mut gpu = GpuTable::device_for(3, 3);
        let a = vec![5u32, 1000, 3];
        let t = GpuTable::upload(&mut gpu, "t", &[("a", &a)]).unwrap();
        assert_eq!(t.column(0).unwrap().bits, 10);
        assert_eq!(t.column(0).unwrap().max_value, 1000);
    }

    #[test]
    fn empty_table_uploads() {
        let mut gpu = GpuTable::device_for(0, 4);
        let a: Vec<u32> = vec![];
        let t = GpuTable::upload(&mut gpu, "t", &[("a", &a)]).unwrap();
        assert_eq!(t.record_count(), 0);
        assert!(t.rects().is_empty());
    }

    #[test]
    fn free_releases_textures() {
        let mut gpu = GpuTable::device_for(10, 4);
        let before = gpu.vram_used();
        let t = small_table(&mut gpu);
        assert!(gpu.vram_used() > before);
        t.free(&mut gpu).unwrap();
        assert_eq!(gpu.vram_used(), before);
    }

    #[test]
    fn upload_attributed_to_upload_phase() {
        let mut gpu = GpuTable::device_for(10, 4);
        let _t = small_table(&mut gpu);
        assert!(gpu.stats().modeled.get(Phase::Upload) > 0.0);
    }
}
