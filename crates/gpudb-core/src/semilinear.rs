//! Semi-linear queries — the paper's `Semilinear` (Routine 4.2).
//!
//! Evaluates `(s · a) op b` per record: a fragment program fetches the
//! attribute texel(s), computes the dot product with the coefficient
//! vector via `DP4` ("Semilinear maps very well to the parallel pixel
//! processing as well as vector processing capabilities available on the
//! GPUs"), and `KIL`s fragments that fail the comparison. Attribute
//! vectors longer than four channels span multiple textures, exactly as
//! §4.1.2 describes ("Longer vectors can be split into multiple textures,
//! each with four components").

use crate::error::{EngineError, EngineResult};
use crate::selection::{Selection, SELECTED};
use crate::table::GpuTable;
use gpudb_sim::program::{assemble, FragmentProgram};
use gpudb_sim::state::ColorMask;
use gpudb_sim::{CompareFunc, Gpu, Phase, StencilOp};

/// Maximum number of attributes in a semi-linear query (two RGBA
/// textures' worth; extendable, but the paper's experiments use four).
pub const MAX_SEMILINEAR_ATTRIBUTES: usize = 8;

/// First environment parameter holding per-texture coefficient vectors;
/// the comparison constant follows the last coefficient vector.
const ENV_COEFF_BASE: usize = 2;

/// Build the `SemilinearFP` fragment program for `groups` attribute
/// textures and comparison operator `op`.
///
/// Register plan: `R0`/`R1` hold fetched texels, `R2` accumulates the dot
/// product, `R3` the pass flag. `program.env[2 + g]` holds the coefficient
/// vector for texture group `g`; `program.env[2 + groups]` holds the
/// constant `b` (broadcast).
pub fn build_semilinear_program(groups: usize, op: CompareFunc) -> FragmentProgram {
    assert!((1..=2).contains(&groups), "1 or 2 texture groups supported");
    let mut src = String::from("!!ARBfp1.0\n# SemilinearFP (generated)\n");
    for g in 0..groups {
        src.push_str(&format!(
            "TEX R{g}, fragment.texcoord[0], texture[{g}], 2D;\n"
        ));
    }
    src.push_str(&format!("DP4 R2.x, R0, program.env[{ENV_COEFF_BASE}];\n"));
    if groups == 2 {
        src.push_str(&format!(
            "DP4 R3.x, R1, program.env[{}];\nADD R2.x, R2.x, R3.x;\n",
            ENV_COEFF_BASE + 1
        ));
    }
    let const_env = ENV_COEFF_BASE + groups;
    // R2.x = dot(s, a) - b
    src.push_str(&format!("SUB R2.x, R2.x, program.env[{const_env}].x;\n"));
    // R3.x = pass flag in {0, 1}
    let flag = match op {
        CompareFunc::Less => "SLT R3.x, R2.x, 0.0;\n".to_string(),
        CompareFunc::LessEqual => "SGE R3.x, -R2.x, 0.0;\n".to_string(),
        CompareFunc::Greater => "SLT R3.x, -R2.x, 0.0;\n".to_string(),
        CompareFunc::GreaterEqual => "SGE R3.x, R2.x, 0.0;\n".to_string(),
        CompareFunc::Equal => "ABS R3.x, R2.x;\nSGE R3.x, -R3.x, 0.0;\n".to_string(),
        CompareFunc::NotEqual => "ABS R3.x, R2.x;\nSLT R3.x, -R3.x, 0.0;\n".to_string(),
        CompareFunc::Always => "SGE R3.x, 0.0, 0.0;\n".to_string(),
        CompareFunc::Never => "SLT R3.x, 0.0, 0.0;\n".to_string(),
    };
    src.push_str(&flag);
    src.push_str("SUB R3.x, R3.x, 0.5;\nKIL R3.x;\nMOV result.color, R0;\nEND\n");
    assemble(&src).expect("generated semilinear program must assemble")
}

/// Evaluate `sum_j s[j] * column_j op b` over the table's first
/// `s.len()` columns, materializing a [`Selection`] and returning the
/// match count from the same pass.
///
/// The coefficients pair with columns in declaration order; columns beyond
/// `s.len()` within the same texture group contribute with coefficient 0.
pub fn semilinear_select(
    gpu: &mut Gpu,
    table: &GpuTable,
    s: &[f32],
    op: CompareFunc,
    b: f32,
) -> EngineResult<(Selection, u64)> {
    if s.is_empty() || s.len() > MAX_SEMILINEAR_ATTRIBUTES {
        return Err(EngineError::TooManyAttributes(s.len()));
    }
    if s.len() > table.column_count() {
        return Err(EngineError::ColumnIndexOutOfRange(s.len() - 1));
    }
    let groups = s.len().div_ceil(4);

    gpu.set_phase(Phase::Compute);
    gpu.reset_state();
    gpu.clear_stencil(0);
    for g in 0..groups {
        gpu.bind_texture(g, Some(table.textures()[g]))?;
    }
    gpu.bind_program(Some(build_semilinear_program(groups, op)));
    for g in 0..groups {
        let mut coeffs = [0.0f32; 4];
        for (c, coeff) in coeffs.iter_mut().enumerate() {
            if let Some(&value) = s.get(g * 4 + c) {
                *coeff = value;
            }
        }
        gpu.set_program_env(ENV_COEFF_BASE + g, coeffs)?;
    }
    gpu.set_program_env(ENV_COEFF_BASE + groups, [b; 4])?;
    gpu.set_color_mask(ColorMask::NONE);
    gpu.set_depth_test(false, CompareFunc::Always);
    gpu.set_depth_write(false);
    gpu.set_stencil_func(true, CompareFunc::Always, SELECTED, 0xFF);
    gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, StencilOp::Replace);
    gpu.begin_occlusion_query()?;
    gpu.draw_quad(table.rects(), 0.0)?;
    let count = gpu.end_occlusion_query_async()?;
    gpu.bind_program(None);
    gpu.reset_state();
    Ok((Selection::over_table(table), count))
}

/// Evaluate a semi-linear query and return only the match count.
pub fn semilinear_count(
    gpu: &mut Gpu,
    table: &GpuTable,
    s: &[f32],
    op: CompareFunc,
    b: f32,
) -> EngineResult<u64> {
    let (_, count) = semilinear_select(gpu, table, s, op, b)?;
    Ok(count)
}

/// Evaluate the degree-2 polynomial query
/// `Σ q_j·a_j² + Σ s_j·a_j  op  b` in a single kill pass — the extension
/// §4.1.2 anticipates: "This algorithm can also be extended for evaluating
/// polynomial queries."
///
/// The generated program squares the fetched texel component-wise (`MUL`)
/// and accumulates two `DP4`s; everything else matches the semi-linear
/// pass. Quadratic terms of 24-bit attributes can reach 2^48 — well within
/// f32 *range*, but precision follows f32 rules, exactly as it would have
/// on the hardware.
pub fn polynomial_select(
    gpu: &mut Gpu,
    table: &GpuTable,
    quadratic: &[f32],
    linear: &[f32],
    op: CompareFunc,
    b: f32,
) -> EngineResult<(Selection, u64)> {
    let width = quadratic.len().max(linear.len());
    if width == 0 || width > 4 {
        // One texture group: the paper's 4-attribute experiments.
        return Err(EngineError::TooManyAttributes(width));
    }
    if width > table.column_count() {
        return Err(EngineError::ColumnIndexOutOfRange(width - 1));
    }

    gpu.set_phase(Phase::Compute);
    gpu.reset_state();
    gpu.clear_stencil(0);
    gpu.bind_texture(0, Some(table.textures()[0]))?;

    // R0 = a; R1 = a*a; R2.x = dot(q, a^2) + dot(s, a) - b; R3 = flag.
    let flag = match op {
        CompareFunc::Less => "SLT R3.x, R2.x, 0.0;\n",
        CompareFunc::LessEqual => "SGE R3.x, -R2.x, 0.0;\n",
        CompareFunc::Greater => "SLT R3.x, -R2.x, 0.0;\n",
        CompareFunc::GreaterEqual => "SGE R3.x, R2.x, 0.0;\n",
        CompareFunc::Equal => "ABS R3.x, R2.x;\nSGE R3.x, -R3.x, 0.0;\n",
        CompareFunc::NotEqual => "ABS R3.x, R2.x;\nSLT R3.x, -R3.x, 0.0;\n",
        CompareFunc::Always => "SGE R3.x, 0.0, 0.0;\n",
        CompareFunc::Never => "SLT R3.x, 0.0, 0.0;\n",
    };
    let source = format!(
        "!!ARBfp1.0
         # PolynomialFP (generated): quadratic + linear form.
         TEX R0, fragment.texcoord[0], texture[0], 2D;
         MUL R1, R0, R0;
         DP4 R2.x, R1, program.env[{q}];
         DP4 R3.x, R0, program.env[{s}];
         ADD R2.x, R2.x, R3.x;
         SUB R2.x, R2.x, program.env[{c}].x;
         {flag}SUB R3.x, R3.x, 0.5;
         KIL R3.x;
         MOV result.color, R0;
         END",
        q = ENV_COEFF_BASE,
        s = ENV_COEFF_BASE + 1,
        c = ENV_COEFF_BASE + 2,
    );
    gpu.bind_program(Some(
        assemble(&source).expect("generated polynomial program must assemble"),
    ));

    let mut qv = [0.0f32; 4];
    qv[..quadratic.len()].copy_from_slice(quadratic);
    let mut sv = [0.0f32; 4];
    sv[..linear.len()].copy_from_slice(linear);
    gpu.set_program_env(ENV_COEFF_BASE, qv)?;
    gpu.set_program_env(ENV_COEFF_BASE + 1, sv)?;
    gpu.set_program_env(ENV_COEFF_BASE + 2, [b; 4])?;

    gpu.set_color_mask(ColorMask::NONE);
    gpu.set_depth_test(false, CompareFunc::Always);
    gpu.set_depth_write(false);
    gpu.set_stencil_func(true, CompareFunc::Always, SELECTED, 0xFF);
    gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, StencilOp::Replace);
    gpu.begin_occlusion_query()?;
    gpu.draw_quad(table.rects(), 0.0)?;
    let count = gpu.end_occlusion_query_async()?;
    gpu.bind_program(None);
    gpu.reset_state();
    Ok((Selection::over_table(table), count))
}

/// Compare two attributes (`a_i op a_j`) by rewriting as the semi-linear
/// query `a_i - a_j op 0` (§4.1.2).
pub fn compare_attributes(
    gpu: &mut Gpu,
    table: &GpuTable,
    col_i: usize,
    col_j: usize,
    op: CompareFunc,
) -> EngineResult<(Selection, u64)> {
    let n = table.column_count();
    if col_i >= n {
        return Err(EngineError::ColumnIndexOutOfRange(col_i));
    }
    if col_j >= n {
        return Err(EngineError::ColumnIndexOutOfRange(col_j));
    }
    let width = col_i.max(col_j) + 1;
    if width > MAX_SEMILINEAR_ATTRIBUTES {
        return Err(EngineError::TooManyAttributes(width));
    }
    let mut s = vec![0.0f32; width];
    s[col_i] += 1.0;
    s[col_j] -= 1.0;
    semilinear_select(gpu, table, &s, op, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpudb_sim::CompareFunc::*;

    fn setup(columns: &[(&str, &[u32])]) -> (Gpu, GpuTable) {
        let n = columns.first().map_or(0, |(_, v)| v.len());
        let mut gpu = GpuTable::device_for(n, 8);
        let t = GpuTable::upload(&mut gpu, "t", columns).unwrap();
        (gpu, t)
    }

    /// f32 dot product in the exact order the GPU program computes it.
    fn gpu_order_dot(cols: &[&[u32]], s: &[f32], row: usize) -> f32 {
        let mut total = 0.0f32;
        for (g, chunk) in s.chunks(4).enumerate() {
            let mut group = 0.0f32;
            for (c, &coeff) in chunk.iter().enumerate() {
                let idx = g * 4 + c;
                let v = if idx < cols.len() {
                    cols[idx][row] as f32
                } else {
                    0.0
                };
                group += coeff * v;
            }
            total += group;
        }
        total
    }

    #[test]
    fn four_attribute_query_matches_reference() {
        let cols: Vec<Vec<u32>> = (0..4)
            .map(|c| (0..100u32).map(|i| (i * (c + 2) + c) % 77).collect())
            .collect();
        let named: Vec<(&str, &[u32])> = ["a", "b", "c", "d"]
            .iter()
            .zip(&cols)
            .map(|(n, v)| (*n, v.as_slice()))
            .collect();
        let refs: Vec<&[u32]> = cols.iter().map(|v| v.as_slice()).collect();
        let s = [0.5f32, -1.25, 2.0, 0.3];
        for op in [Less, LessEqual, Greater, GreaterEqual, Equal, NotEqual] {
            let (mut gpu, t) = setup(&named);
            let (sel, count) = semilinear_select(&mut gpu, &t, &s, op, 40.0).unwrap();
            let expected: Vec<bool> = (0..100)
                .map(|row| op.eval(gpu_order_dot(&refs, &s, row), 40.0))
                .collect();
            assert_eq!(sel.read_mask(&mut gpu).unwrap(), expected, "op {op:?}");
            assert_eq!(count, expected.iter().filter(|&&b| b).count() as u64);
        }
    }

    #[test]
    fn eight_attribute_query_spans_two_textures() {
        let cols: Vec<Vec<u32>> = (0..8)
            .map(|c| (0..50u32).map(|i| (i + c * 11) % 64).collect())
            .collect();
        let names = ["a", "b", "c", "d", "e", "f", "g", "h"];
        let named: Vec<(&str, &[u32])> = names
            .iter()
            .zip(&cols)
            .map(|(n, v)| (*n, v.as_slice()))
            .collect();
        let refs: Vec<&[u32]> = cols.iter().map(|v| v.as_slice()).collect();
        let s: Vec<f32> = (0..8).map(|i| (i as f32 - 3.5) * 0.25).collect();
        let (mut gpu, t) = setup(&named);
        let (sel, count) = semilinear_select(&mut gpu, &t, &s, GreaterEqual, 1.0).unwrap();
        let expected: Vec<bool> = (0..50)
            .map(|row| gpu_order_dot(&refs, &s, row) >= 1.0)
            .collect();
        assert_eq!(sel.read_mask(&mut gpu).unwrap(), expected);
        assert_eq!(count, expected.iter().filter(|&&b| b).count() as u64);
    }

    #[test]
    fn fewer_coefficients_than_table_columns() {
        // s shorter than the texture's channel count: trailing channels get
        // coefficient 0 and must not influence the result.
        let a: Vec<u32> = (0..20).collect();
        let b: Vec<u32> = (0..20).map(|i| i * 1000).collect();
        let (mut gpu, t) = setup(&[("a", &a), ("b", &b)]);
        let (_, count) = semilinear_select(&mut gpu, &t, &[1.0], GreaterEqual, 10.0).unwrap();
        assert_eq!(count, 10, "only column a participates");
    }

    #[test]
    fn attribute_comparison_rewrite() {
        let a: Vec<u32> = vec![5, 10, 15, 20, 25];
        let b: Vec<u32> = vec![7, 10, 12, 30, 25];
        let (mut gpu, t) = setup(&[("a", &a), ("b", &b)]);
        let (sel, count) = compare_attributes(&mut gpu, &t, 0, 1, Greater).unwrap();
        assert_eq!(count, 1);
        assert_eq!(sel.read_indices(&mut gpu).unwrap(), vec![2]);
        let (_, count) = compare_attributes(&mut gpu, &t, 0, 1, Equal).unwrap();
        assert_eq!(count, 2);
        let (_, count) = compare_attributes(&mut gpu, &t, 1, 0, Greater).unwrap();
        assert_eq!(count, 2);
    }

    #[test]
    fn comparing_a_column_with_itself() {
        let a: Vec<u32> = (0..10).collect();
        let (mut gpu, t) = setup(&[("a", &a)]);
        // a - a == 0 for every record.
        let (_, count) = compare_attributes(&mut gpu, &t, 0, 0, Equal).unwrap();
        assert_eq!(count, 10);
        let (_, count) = compare_attributes(&mut gpu, &t, 0, 0, NotEqual).unwrap();
        assert_eq!(count, 0);
    }

    #[test]
    fn invalid_coefficient_counts_rejected() {
        let a: Vec<u32> = (0..4).collect();
        let (mut gpu, t) = setup(&[("a", &a)]);
        assert!(matches!(
            semilinear_select(&mut gpu, &t, &[], Less, 0.0).unwrap_err(),
            EngineError::TooManyAttributes(0)
        ));
        assert!(matches!(
            semilinear_select(&mut gpu, &t, &[0.0; 9], Less, 0.0).unwrap_err(),
            EngineError::TooManyAttributes(9)
        ));
        assert!(matches!(
            semilinear_select(&mut gpu, &t, &[1.0, 1.0], Less, 0.0).unwrap_err(),
            EngineError::ColumnIndexOutOfRange(1)
        ));
    }

    #[test]
    fn program_shape_matches_paper() {
        // One group: TEX + DP4 + SUB + flag + SUB + KIL + MOV — the "few
        // instructions" shape of Routine 4.2.
        let p = build_semilinear_program(1, GreaterEqual);
        assert!(p.has_kil);
        assert!(!p.writes_depth);
        assert_eq!(p.len(), 7);
        // Two groups add TEX + DP4 + ADD.
        let p2 = build_semilinear_program(2, GreaterEqual);
        assert_eq!(p2.len(), 10);
        assert_eq!(p2.texture_units, 0b11);
    }

    /// Mirror of the generated polynomial program's f32 evaluation order.
    fn gpu_order_poly(cols: &[&[u32]], q: &[f32], s: &[f32], row: usize) -> f32 {
        let fetch = |j: usize| -> f32 {
            if j < cols.len() {
                cols[j][row] as f32
            } else {
                0.0
            }
        };
        let mut qv = [0.0f32; 4];
        qv[..q.len()].copy_from_slice(q);
        let mut sv = [0.0f32; 4];
        sv[..s.len()].copy_from_slice(s);
        let a: [f32; 4] = [fetch(0), fetch(1), fetch(2), fetch(3)];
        let sq: [f32; 4] = [a[0] * a[0], a[1] * a[1], a[2] * a[2], a[3] * a[3]];
        let qdot = sq[0] * qv[0] + sq[1] * qv[1] + sq[2] * qv[2] + sq[3] * qv[3];
        let sdot = a[0] * sv[0] + a[1] * sv[1] + a[2] * sv[2] + a[3] * sv[3];
        qdot + sdot
    }

    #[test]
    fn polynomial_query_matches_reference() {
        let cols: Vec<Vec<u32>> = (0..2)
            .map(|c| (0..120u32).map(|i| (i * (c + 3)) % 200).collect())
            .collect();
        let named: Vec<(&str, &[u32])> = ["a", "b"]
            .iter()
            .zip(&cols)
            .map(|(n, v)| (*n, v.as_slice()))
            .collect();
        let refs: Vec<&[u32]> = cols.iter().map(|v| v.as_slice()).collect();
        let q = [0.5f32, -0.25];
        let s = [3.0f32, 1.0];
        for op in [Less, GreaterEqual, NotEqual] {
            let (mut gpu, t) = setup(&named);
            let (sel, count) = polynomial_select(&mut gpu, &t, &q, &s, op, 5_000.0).unwrap();
            let expected: Vec<bool> = (0..120)
                .map(|row| op.eval(gpu_order_poly(&refs, &q, &s, row), 5_000.0))
                .collect();
            assert_eq!(sel.read_mask(&mut gpu).unwrap(), expected, "op {op:?}");
            assert_eq!(count, expected.iter().filter(|&&b| b).count() as u64);
        }
    }

    #[test]
    fn polynomial_degenerates_to_semilinear() {
        // Zero quadratic coefficients: must agree with the linear pass
        // (same evaluation order for one texture group).
        let a: Vec<u32> = (0..50u32).map(|i| (i * 7) % 99).collect();
        let b: Vec<u32> = (0..50u32).map(|i| (i * 13) % 99).collect();
        let (mut gpu, t) = setup(&[("a", &a), ("b", &b)]);
        let s = [2.0f32, -1.0];
        let (_, poly_count) =
            polynomial_select(&mut gpu, &t, &[0.0, 0.0], &s, GreaterEqual, 10.0).unwrap();
        let (_, lin_count) = semilinear_select(&mut gpu, &t, &s, GreaterEqual, 10.0).unwrap();
        assert_eq!(poly_count, lin_count);
    }

    #[test]
    fn polynomial_circle_query() {
        // Points inside a circle: x² + y² <= r² — the canonical GIS
        // polynomial predicate.
        let x: Vec<u32> = (0..200u32).map(|i| i % 100).collect();
        let y: Vec<u32> = (0..200u32).map(|i| (i * 37) % 100).collect();
        let (mut gpu, t) = setup(&[("x", &x), ("y", &y)]);
        let r2 = 50.0f32 * 50.0;
        let (_, count) = polynomial_select(&mut gpu, &t, &[1.0, 1.0], &[], LessEqual, r2).unwrap();
        let expected = (0..200)
            .filter(|&i| {
                let (fx, fy) = (x[i] as f32, y[i] as f32);
                fx * fx + fy * fy <= r2
            })
            .count() as u64;
        assert_eq!(count, expected);
    }

    #[test]
    fn polynomial_validation() {
        let a: Vec<u32> = (0..4).collect();
        let (mut gpu, t) = setup(&[("a", &a)]);
        assert!(matches!(
            polynomial_select(&mut gpu, &t, &[], &[], Less, 0.0).unwrap_err(),
            EngineError::TooManyAttributes(0)
        ));
        assert!(matches!(
            polynomial_select(&mut gpu, &t, &[0.0; 5], &[], Less, 0.0).unwrap_err(),
            EngineError::TooManyAttributes(5)
        ));
        assert!(matches!(
            polynomial_select(&mut gpu, &t, &[1.0, 1.0], &[], Less, 0.0).unwrap_err(),
            EngineError::ColumnIndexOutOfRange(1)
        ));
    }

    #[test]
    fn count_variant_agrees() {
        let a: Vec<u32> = (0..30).collect();
        let (mut gpu, t) = setup(&[("a", &a)]);
        let c1 = semilinear_count(&mut gpu, &t, &[2.0], Less, 30.0).unwrap();
        assert_eq!(c1, 15);
    }
}
