//! Shared encoding helpers and operator semantics for the GPU operations.

use gpudb_sim::buffers::DEPTH_SCALE;
use gpudb_sim::CompareFunc;

/// Maximum attribute bit width representable in the GPU data encoding.
pub const ATTRIBUTE_BITS: u32 = 24;

/// Largest encodable attribute value.
pub const MAX_ATTRIBUTE: u32 = (1 << ATTRIBUTE_BITS) - 1;

/// The exact f32 normalization factor `2^-24` applied by `CopyToDepth`.
pub const DEPTH_SCALE_INV_F32: f32 = 1.0 / DEPTH_SCALE as f32;

/// Encode an attribute value as a normalized depth, exactly (`v * 2^-24`
/// is an exact f32 operation for 24-bit `v`).
#[inline]
pub fn encode_depth(value: u32) -> f32 {
    debug_assert!(value <= MAX_ATTRIBUTE);
    value as f32 * DEPTH_SCALE_INV_F32
}

/// Encode an attribute value as a normalized depth in f64 (for the
/// depth-bounds test, which the device evaluates in f64).
#[inline]
pub fn encode_depth_f64(value: u32) -> f64 {
    debug_assert!(value <= MAX_ATTRIBUTE);
    value as f64 / DEPTH_SCALE
}

/// The depth function implementing the predicate `attribute op constant`.
///
/// The depth test evaluates `incoming func stored` with the *constant* as
/// the incoming quad depth and the *attribute* in the depth buffer
/// (Routine 4.1 renders `RenderQuad(d)` over attribute values copied by
/// `CopyToDepth`), so the predicate's operator must be converted to its
/// converse.
#[inline]
pub fn depth_func_for_predicate(op: CompareFunc) -> CompareFunc {
    op.converse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpudb_sim::buffers::quantize_depth;

    #[test]
    fn encoding_roundtrips_exactly_for_all_widths() {
        for v in [0u32, 1, 2, 999, (1 << 19) - 1, (1 << 23) + 1, MAX_ATTRIBUTE] {
            assert_eq!(quantize_depth(encode_depth(v) as f64), v, "v = {v}");
            assert_eq!(quantize_depth(encode_depth_f64(v)), v, "v = {v}");
        }
    }

    #[test]
    fn adjacent_values_stay_distinct() {
        // The fatal failure mode of a wrong normalization convention is two
        // adjacent attribute values collapsing to one depth cell.
        for base in [1u32 << 10, 1 << 19, 1 << 23, MAX_ATTRIBUTE - 1] {
            assert_ne!(
                quantize_depth(encode_depth(base) as f64),
                quantize_depth(encode_depth(base + 1) as f64),
                "collapse at {base}"
            );
        }
    }

    #[test]
    fn depth_func_conversion_realizes_predicate() {
        // For every operator, `attr op const` must equal
        // `func.eval(const, attr)` with func = depth_func_for_predicate(op).
        use CompareFunc::*;
        for op in [Less, LessEqual, Greater, GreaterEqual, Equal, NotEqual] {
            for attr in 0..5u32 {
                for c in 0..5u32 {
                    let func = depth_func_for_predicate(op);
                    assert_eq!(
                        op.eval(attr, c),
                        func.eval(c, attr),
                        "op {op:?} attr {attr} const {c}"
                    );
                }
            }
        }
    }
}
