//! Resilient query execution: retry, degradation, and CPU fallback.
//!
//! The paper's routines assume a device that answers every occlusion
//! query and returns every readback intact. Under the fault model of
//! `gpudb-sim` (see `docs/resilience.md`) that assumption breaks in
//! typed, classified ways — [`gpudb_sim::FaultClass`] — and this module
//! turns each class into a recovery ladder instead of a failed query:
//!
//! - **Transient** (lost occlusion query, corrupted readback): retry the
//!   whole query up to [`RetryPolicy::max_attempts`] times, separated by
//!   exponential backoff charged to the *modeled* clock
//!   ([`Gpu::charge_backoff`]) so recovery cost is deterministic and
//!   visible in metrics. Exhausted retries wrap the last error in
//!   [`EngineError::RetriesExhausted`].
//! - **Resource** (video-memory allocation failure): degrade to chunked
//!   out-of-core execution — the table is re-uploaded in
//!   [`RetryPolicy::oom_chunks`] slices and decomposable aggregates
//!   (COUNT/SUM/AVG/MIN/MAX) are combined across chunks. Holistic
//!   aggregates (median, k-th, percentile) are not chunk-decomposable
//!   and skip to the CPU rung.
//! - **Device** (reset, persistent faults): answer on the CPU via
//!   [`crate::cpu_oracle`], whose operators route through `gpudb-cpu`'s
//!   optimized baselines and agree with the GPU path result-for-result
//!   and error-for-error.
//! - **Logic** (bad query, invalid k, unknown column): never retried —
//!   the error is the answer, and it is identical on every rung.
//!
//! Every recovery step emits a `resilience/*` [`MetricsRecord`] into the
//! output so EXPLAIN ANALYZE and the span timeline show what the engine
//! actually did. With no injected faults, `execute_resilient` takes the
//! plain GPU path and produces byte-identical records to
//! [`executor::execute_with_options`] — the perf harness's determinism
//! gate stays intact.

use crate::cpu_oracle::{self, HostTable};
use crate::error::{EngineError, EngineResult};
use crate::metrics::{self, MetricsRecord, PhaseNanos};
use crate::query::ast::{Aggregate, Query};
use crate::query::executor::{self, AggValue, ExecuteOptions, QueryOutput};
use crate::timing::OpTiming;
use gpudb_sim::{FaultClass, Gpu, WorkCounters};

/// Knobs for the recovery ladder.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum GPU attempts for transient faults (including the first);
    /// clamped to at least 1.
    pub max_attempts: u32,
    /// Modeled backoff before the first retry, in seconds.
    pub base_backoff_s: f64,
    /// Backoff growth factor per retry.
    pub multiplier: f64,
    /// Number of slices for the out-of-core degradation rung.
    pub oom_chunks: usize,
    /// Whether Device-class faults and exhausted retries may fall back
    /// to the CPU oracle. When `false` the typed error is returned
    /// instead — useful for tests and for callers that must not accept
    /// CPU latency silently.
    pub cpu_fallback: bool,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_s: 1e-3,
            multiplier: 2.0,
            oom_chunks: 4,
            cpu_fallback: true,
        }
    }
}

/// Which rung of the ladder produced the answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResiliencePath {
    /// The plain device path (possibly after retries).
    Gpu,
    /// Chunked out-of-core execution after an allocation failure.
    OutOfCore,
    /// The CPU oracle.
    Cpu,
}

/// What the ladder did to produce the answer.
#[derive(Debug, Clone)]
pub struct ResilienceReport {
    /// Rung that produced the result.
    pub path: ResiliencePath,
    /// GPU attempts made (1 when the first try succeeded).
    pub attempts: u32,
    /// Retries after transient faults.
    pub retries: u32,
    /// Total modeled backoff charged, in seconds.
    pub backoff_s: f64,
    /// Human-readable ladder steps, in order.
    pub degradations: Vec<String>,
}

/// A query answer plus the story of how it was obtained.
#[derive(Debug, Clone)]
pub struct ResilientOutput {
    /// The query result (GPU-parity regardless of rung).
    pub output: QueryOutput,
    /// Recovery ledger.
    pub report: ResilienceReport,
}

/// Execute `query` against `host`'s data, riding the recovery ladder as
/// faults demand. The device table is (re)uploaded from the host copy on
/// every attempt, so a device reset between attempts is survivable.
pub fn execute_resilient(
    gpu: &mut Gpu,
    host: &HostTable,
    query: &Query,
    options: ExecuteOptions,
    policy: &RetryPolicy,
) -> EngineResult<ResilientOutput> {
    let max_attempts = policy.max_attempts.max(1);
    let mut attempts = 0u32;
    let mut retries = 0u32;
    let mut backoff_s = 0.0f64;
    let mut degradations = Vec::new();
    let mut resilience_metrics: Vec<MetricsRecord> = Vec::new();

    loop {
        attempts += 1;
        let error = match gpu_attempt(gpu, host, query, options) {
            Ok(mut output) => {
                output.metrics.extend(resilience_metrics);
                return Ok(ResilientOutput {
                    output,
                    report: ResilienceReport {
                        path: ResiliencePath::Gpu,
                        attempts,
                        retries,
                        backoff_s,
                        degradations,
                    },
                });
            }
            Err(e) => e,
        };

        match error.fault_class() {
            FaultClass::Logic => return Err(error),
            FaultClass::Transient if attempts < max_attempts => {
                retries += 1;
                let pause = policy.base_backoff_s
                    * policy.multiplier.powi(retries.saturating_sub(1) as i32);
                let ((), record) = metrics::observe(
                    gpu,
                    "resilience/retry-backoff",
                    host.record_count() as u64,
                    |gpu| gpu.charge_backoff(pause),
                );
                resilience_metrics.push(record);
                backoff_s += pause;
                degradations.push(format!(
                    "transient fault ({error}); retry {retries} after {pause:.6}s modeled backoff"
                ));
            }
            FaultClass::Transient => {
                let exhausted = EngineError::RetriesExhausted {
                    attempts,
                    last: Box::new(error),
                };
                if !policy.cpu_fallback {
                    return Err(exhausted);
                }
                degradations.push(format!("{exhausted}; answering on the CPU"));
                return cpu_rung(
                    host,
                    query,
                    attempts,
                    retries,
                    backoff_s,
                    degradations,
                    resilience_metrics,
                );
            }
            FaultClass::Resource => {
                degradations.push(format!(
                    "resource fault ({error}); degrading to out-of-core execution \
                     in {} chunks",
                    policy.oom_chunks.max(1)
                ));
                if query_is_chunkable(query) {
                    match execute_out_of_core(gpu, host, query, options, policy.oom_chunks) {
                        Ok(mut output) => {
                            output.metrics.extend(resilience_metrics);
                            return Ok(ResilientOutput {
                                output,
                                report: ResilienceReport {
                                    path: ResiliencePath::OutOfCore,
                                    attempts,
                                    retries,
                                    backoff_s,
                                    degradations,
                                },
                            });
                        }
                        Err(e) if e.fault_class() == FaultClass::Logic => return Err(e),
                        Err(e) => {
                            if !policy.cpu_fallback {
                                return Err(e);
                            }
                            degradations.push(format!(
                                "out-of-core rung failed ({e}); answering on the CPU"
                            ));
                        }
                    }
                } else {
                    degradations.push(
                        "holistic aggregate is not chunk-decomposable; answering on the CPU"
                            .to_string(),
                    );
                    if !policy.cpu_fallback {
                        return Err(error);
                    }
                }
                if !policy.cpu_fallback {
                    return Err(error);
                }
                return cpu_rung(
                    host,
                    query,
                    attempts,
                    retries,
                    backoff_s,
                    degradations,
                    resilience_metrics,
                );
            }
            FaultClass::Device => {
                if !policy.cpu_fallback {
                    return Err(error);
                }
                degradations.push(format!("device fault ({error}); answering on the CPU"));
                return cpu_rung(
                    host,
                    query,
                    attempts,
                    retries,
                    backoff_s,
                    degradations,
                    resilience_metrics,
                );
            }
        }
    }
}

/// One full GPU attempt: upload from the host copy, execute, free.
fn gpu_attempt(
    gpu: &mut Gpu,
    host: &HostTable,
    query: &Query,
    options: ExecuteOptions,
) -> EngineResult<QueryOutput> {
    let table = host.upload(gpu)?;
    let result = executor::execute_with_options(gpu, &table, query, options);
    let freed = table.free(gpu);
    let output = result?;
    freed?;
    Ok(output)
}

/// Whether every aggregate combines across chunks. COUNT/SUM/AVG/MIN/MAX
/// do; order statistics (median, k-th, percentile) need the whole domain.
fn query_is_chunkable(query: &Query) -> bool {
    query.aggregates.iter().all(|agg| {
        matches!(
            agg,
            Aggregate::Count
                | Aggregate::Sum(_)
                | Aggregate::Avg(_)
                | Aggregate::Min(_)
                | Aggregate::Max(_)
        )
    })
}

/// How each aggregate of the original SELECT list is reassembled from
/// per-chunk partials.
enum Reassemble {
    Count,
    /// Sum over per-chunk sums at `sums[idx]`.
    Sum(usize),
    /// Sum at `sums[idx]` divided by the total matched count.
    Avg(usize),
    /// Fold over per-chunk extrema at `extrema[idx]`.
    Extremum(usize),
}

/// Out-of-core degradation: execute the query over `chunks` host slices,
/// each uploaded separately, and combine the decomposable partials. The
/// caller has already checked [`query_is_chunkable`].
fn execute_out_of_core(
    gpu: &mut Gpu,
    host: &HostTable,
    query: &Query,
    options: ExecuteOptions,
    chunks: usize,
) -> EngineResult<QueryOutput> {
    let n = host.record_count();
    let chunk_records = n.div_ceil(chunks.max(1)).max(1);

    // Per-chunk basis: COUNT plus one SUM per SUM/AVG aggregate, and a
    // second pass of MIN/MAX aggregates for chunks with matches (MIN/MAX
    // over an empty chunk is a typed error, not zero).
    let mut basis = vec![Aggregate::Count];
    let mut extrema_aggs: Vec<Aggregate> = Vec::new();
    let mut plan: Vec<Reassemble> = Vec::new();
    for agg in &query.aggregates {
        match agg {
            Aggregate::Count => plan.push(Reassemble::Count),
            Aggregate::Sum(c) => {
                plan.push(Reassemble::Sum(basis.len() - 1));
                basis.push(Aggregate::Sum(c.clone()));
            }
            Aggregate::Avg(c) => {
                plan.push(Reassemble::Avg(basis.len() - 1));
                basis.push(Aggregate::Sum(c.clone()));
            }
            Aggregate::Min(_) | Aggregate::Max(_) => {
                plan.push(Reassemble::Extremum(extrema_aggs.len()));
                extrema_aggs.push(agg.clone());
            }
            _ => unreachable!("query_is_chunkable checked"),
        }
    }

    let mut matched_total = 0u64;
    let mut sums = vec![0u64; basis.len() - 1];
    let mut extrema: Vec<Option<u32>> = vec![None; extrema_aggs.len()];
    let mut all_metrics: Vec<MetricsRecord> = Vec::new();
    let mut timing = OpTiming::default();

    let with_filter = |aggs: Vec<Aggregate>| match query.filter.clone() {
        Some(f) => Query::filtered(aggs, f),
        None => Query::aggregate_all(aggs),
    };

    // `0..n.max(1)`: an empty table still runs one empty chunk so schema
    // and plan validation fire exactly as they would on the full table.
    let mut start = 0usize;
    while start < n.max(1) {
        let chunk = host.slice(start, start + chunk_records);
        let table = chunk.upload(gpu)?;
        let result = (|| -> EngineResult<()> {
            let out =
                executor::execute_with_options(gpu, &table, &with_filter(basis.clone()), options)?;
            matched_total += out.matched;
            for (row, sum) in out.rows.iter().skip(1).zip(sums.iter_mut()) {
                if let (_, AggValue::Sum(v)) = row {
                    *sum += v;
                }
            }
            accumulate_timing(&mut timing, &out.timing);
            all_metrics.extend(out.metrics);
            if out.matched > 0 && !extrema_aggs.is_empty() {
                let out2 = executor::execute_with_options(
                    gpu,
                    &table,
                    &with_filter(extrema_aggs.clone()),
                    options,
                )?;
                for ((slot, agg), row) in extrema.iter_mut().zip(&extrema_aggs).zip(&out2.rows) {
                    if let (_, AggValue::Value(v)) = row {
                        *slot = Some(match (*slot, agg) {
                            (None, _) => *v,
                            (Some(cur), Aggregate::Min(_)) => cur.min(*v),
                            (Some(cur), _) => cur.max(*v),
                        });
                    }
                }
                accumulate_timing(&mut timing, &out2.timing);
                all_metrics.extend(out2.metrics);
            }
            Ok(())
        })();
        let freed = table.free(gpu);
        result?;
        freed?;
        start += chunk_records;
    }

    let mut rows = Vec::with_capacity(query.aggregates.len());
    for (agg, step) in query.aggregates.iter().zip(&plan) {
        let value = match step {
            Reassemble::Count => AggValue::Count(matched_total),
            Reassemble::Sum(i) => AggValue::Sum(sums[*i]),
            Reassemble::Avg(i) => {
                if matched_total == 0 {
                    return Err(EngineError::EmptyInput);
                }
                AggValue::Avg(sums[*i] as f64 / matched_total as f64)
            }
            Reassemble::Extremum(i) => {
                AggValue::Value(extrema[*i].ok_or(EngineError::InvalidK {
                    k: 1,
                    available: matched_total,
                })?)
            }
        };
        rows.push((agg.label(), value));
    }

    all_metrics.push(marker_record("resilience/out-of-core", n as u64));
    Ok(QueryOutput {
        matched: matched_total,
        selectivity: if n == 0 {
            0.0
        } else {
            matched_total as f64 / n as f64
        },
        rows,
        timing,
        metrics: all_metrics,
        trace: None,
    })
}

fn accumulate_timing(total: &mut OpTiming, delta: &OpTiming) {
    total.upload += delta.upload;
    total.copy += delta.copy;
    total.compute += delta.compute;
    total.readback += delta.readback;
    total.other += delta.other;
    total.wall += delta.wall;
}

/// Final rung: the CPU oracle. No device work, so the metrics record is
/// a zero-cost marker and timing is all zeros.
fn cpu_rung(
    host: &HostTable,
    query: &Query,
    attempts: u32,
    retries: u32,
    backoff_s: f64,
    degradations: Vec<String>,
    mut resilience_metrics: Vec<MetricsRecord>,
) -> EngineResult<ResilientOutput> {
    let oracle = cpu_oracle::execute(host, query)?;
    resilience_metrics.push(marker_record(
        "resilience/cpu-fallback",
        host.record_count() as u64,
    ));
    Ok(ResilientOutput {
        output: QueryOutput {
            matched: oracle.matched,
            selectivity: oracle.selectivity,
            rows: oracle.rows,
            timing: OpTiming::default(),
            metrics: resilience_metrics,
            trace: None,
        },
        report: ResilienceReport {
            path: ResiliencePath::Cpu,
            attempts,
            retries,
            backoff_s,
            degradations,
        },
    })
}

/// A metrics record for a step that did no device work: EXPLAIN ANALYZE
/// still shows the stage (satellite of the same guarantee that
/// const-empty selections emit a record) with all-zero cost.
pub(crate) fn marker_record(operator: &str, input_records: u64) -> MetricsRecord {
    MetricsRecord {
        operator: operator.to_string(),
        input_records,
        counters: WorkCounters::default(),
        modeled_ns: PhaseNanos::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ast::BoolExpr;
    use crate::table::GpuTable;
    use gpudb_sim::CompareFunc;
    use gpudb_sim::{FaultEvent, FaultInjector, FaultKind, GpuError};

    fn host() -> HostTable {
        HostTable::new(
            "t",
            vec![
                ("a", (0u32..64).collect::<Vec<u32>>()),
                ("b", (0u32..64).map(|v| v * 3 % 97).collect::<Vec<u32>>()),
            ],
        )
        .unwrap()
    }

    fn count_sum_query() -> Query {
        Query::filtered(
            vec![
                Aggregate::Count,
                Aggregate::Sum("b".into()),
                Aggregate::Avg("b".into()),
                Aggregate::Min("b".into()),
                Aggregate::Max("b".into()),
            ],
            BoolExpr::pred("a", CompareFunc::GreaterEqual, 8).and(BoolExpr::pred(
                "a",
                CompareFunc::LessEqual,
                40,
            )),
        )
    }

    fn device(host: &HostTable) -> Gpu {
        GpuTable::device_for(host.record_count(), 8)
    }

    #[test]
    fn clean_run_takes_gpu_path_with_plain_metrics() {
        let host = host();
        let query = count_sum_query();
        let mut gpu = device(&host);
        let resilient = execute_resilient(
            &mut gpu,
            &host,
            &query,
            ExecuteOptions::default(),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(resilient.report.path, ResiliencePath::Gpu);
        assert_eq!(resilient.report.attempts, 1);
        assert_eq!(resilient.report.retries, 0);
        assert!(resilient.report.degradations.is_empty());

        // Byte-equal to the plain executor path (modulo wall clock).
        let mut gpu2 = device(&host);
        let table = host.upload(&mut gpu2).unwrap();
        let plain =
            executor::execute_with_options(&mut gpu2, &table, &query, ExecuteOptions::default())
                .unwrap();
        assert_eq!(resilient.output.matched, plain.matched);
        assert_eq!(resilient.output.rows, plain.rows);
        assert_eq!(resilient.output.metrics, plain.metrics);
    }

    #[test]
    fn transient_fault_retries_and_recovers() {
        let host = host();
        let query = count_sum_query();
        let mut gpu = device(&host);
        gpu.attach_fault_injector(FaultInjector::with_schedule(vec![FaultEvent {
            at_ns: 0,
            kind: FaultKind::OcclusionLoss,
        }]));
        let resilient = execute_resilient(
            &mut gpu,
            &host,
            &query,
            ExecuteOptions::default(),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(resilient.report.path, ResiliencePath::Gpu);
        assert_eq!(resilient.report.retries, 1);
        assert!(resilient.report.backoff_s > 0.0);
        assert!(resilient
            .output
            .metrics
            .iter()
            .any(|m| m.operator == "resilience/retry-backoff"));

        let oracle = cpu_oracle::execute(&host, &query).unwrap();
        assert!(oracle.agrees_with(resilient.output.matched, &resilient.output.rows));
    }

    #[test]
    fn exhausted_retries_surface_typed_error_without_fallback() {
        let host = host();
        let query = count_sum_query();
        let mut gpu = device(&host);
        // More lost queries than the policy has attempts.
        gpu.attach_fault_injector(FaultInjector::with_schedule(
            (0..64)
                .map(|_| FaultEvent {
                    at_ns: 0,
                    kind: FaultKind::OcclusionLoss,
                })
                .collect(),
        ));
        let policy = RetryPolicy {
            cpu_fallback: false,
            ..RetryPolicy::default()
        };
        let err = execute_resilient(&mut gpu, &host, &query, ExecuteOptions::default(), &policy)
            .unwrap_err();
        match err {
            EngineError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, policy.max_attempts);
                assert!(matches!(
                    *last,
                    EngineError::Gpu(GpuError::OcclusionQueryLost)
                ));
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn exhausted_retries_fall_back_to_cpu_with_parity() {
        let host = host();
        let query = count_sum_query();
        let mut gpu = device(&host);
        gpu.attach_fault_injector(FaultInjector::with_schedule(
            (0..64)
                .map(|_| FaultEvent {
                    at_ns: 0,
                    kind: FaultKind::OcclusionLoss,
                })
                .collect(),
        ));
        let resilient = execute_resilient(
            &mut gpu,
            &host,
            &query,
            ExecuteOptions::default(),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(resilient.report.path, ResiliencePath::Cpu);
        let oracle = cpu_oracle::execute(&host, &query).unwrap();
        assert!(oracle.agrees_with(resilient.output.matched, &resilient.output.rows));
        assert!(resilient
            .output
            .metrics
            .iter()
            .any(|m| m.operator == "resilience/cpu-fallback"));
    }

    #[test]
    fn allocation_failure_degrades_to_out_of_core() {
        let host = host();
        let query = count_sum_query();
        let mut gpu = device(&host);
        gpu.attach_fault_injector(FaultInjector::with_schedule(vec![FaultEvent {
            at_ns: 0,
            kind: FaultKind::AllocationFail,
        }]));
        let resilient = execute_resilient(
            &mut gpu,
            &host,
            &query,
            ExecuteOptions::default(),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(resilient.report.path, ResiliencePath::OutOfCore);
        let oracle = cpu_oracle::execute(&host, &query).unwrap();
        assert!(oracle.agrees_with(resilient.output.matched, &resilient.output.rows));
        assert!(resilient
            .output
            .metrics
            .iter()
            .any(|m| m.operator == "resilience/out-of-core"));
    }

    #[test]
    fn allocation_failure_with_holistic_aggregate_uses_cpu() {
        let host = host();
        let query = Query::aggregate_all(vec![Aggregate::Median("b".into())]);
        let mut gpu = device(&host);
        gpu.attach_fault_injector(FaultInjector::with_schedule(vec![FaultEvent {
            at_ns: 0,
            kind: FaultKind::AllocationFail,
        }]));
        let resilient = execute_resilient(
            &mut gpu,
            &host,
            &query,
            ExecuteOptions::default(),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(resilient.report.path, ResiliencePath::Cpu);
        let oracle = cpu_oracle::execute(&host, &query).unwrap();
        assert!(oracle.agrees_with(resilient.output.matched, &resilient.output.rows));
    }

    #[test]
    fn device_reset_falls_back_to_cpu() {
        let host = host();
        let query = count_sum_query();
        let mut gpu = device(&host);
        gpu.attach_fault_injector(FaultInjector::with_schedule(vec![FaultEvent {
            at_ns: 0,
            kind: FaultKind::DeviceReset,
        }]));
        let resilient = execute_resilient(
            &mut gpu,
            &host,
            &query,
            ExecuteOptions::default(),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(resilient.report.path, ResiliencePath::Cpu);
        let oracle = cpu_oracle::execute(&host, &query).unwrap();
        assert!(oracle.agrees_with(resilient.output.matched, &resilient.output.rows));
    }

    #[test]
    fn logic_errors_are_never_retried_or_masked() {
        let host = host();
        let query = Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::pred("missing", CompareFunc::Equal, 1),
        );
        let mut gpu = device(&host);
        let err = execute_resilient(
            &mut gpu,
            &host,
            &query,
            ExecuteOptions::default(),
            &RetryPolicy::default(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::ColumnNotFound(_)));
    }

    #[test]
    fn out_of_core_matches_oracle_on_empty_selection() {
        let host = host();
        // Inverted range: zero matches; AVG must error identically.
        let query = Query::filtered(
            vec![Aggregate::Count, Aggregate::Sum("b".into())],
            BoolExpr::pred("a", CompareFunc::GreaterEqual, 50).and(BoolExpr::pred(
                "a",
                CompareFunc::LessEqual,
                10,
            )),
        );
        let mut gpu = device(&host);
        gpu.attach_fault_injector(FaultInjector::with_schedule(vec![FaultEvent {
            at_ns: 0,
            kind: FaultKind::AllocationFail,
        }]));
        let resilient = execute_resilient(
            &mut gpu,
            &host,
            &query,
            ExecuteOptions::default(),
            &RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(resilient.output.matched, 0);
        let oracle = cpu_oracle::execute(&host, &query).unwrap();
        assert!(oracle.agrees_with(resilient.output.matched, &resilient.output.rows));
    }
}
