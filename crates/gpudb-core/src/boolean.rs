//! Boolean combinations of predicates — the paper's `EvalCNF`
//! (Routine 4.3).
//!
//! A CNF `A1 ∧ A2 ∧ ... ∧ Ak` with clauses `Ai = B1 ∨ ... ∨ Bmi` is
//! evaluated with three stencil values {0, 1, 2}: 0 marks invalidated
//! records, and the "valid" marker alternates between 1 (before odd
//! clauses) and 2 (before even clauses). Within clause `i`, every true
//! disjunct promotes still-valid records to the other marker
//! (`INCR`/`DECR`); a cleanup pass then zeroes records left at the old
//! marker (they satisfied no disjunct).

use crate::error::{EngineError, EngineResult};
use crate::predicate::{comparison_pass, copy_to_depth, OcclusionMode};
use crate::selection::{Selection, SELECTED};
use crate::table::GpuTable;
use gpudb_sim::state::ColorMask;
use gpudb_sim::{CompareFunc, Gpu, Phase, StencilOp};

/// A simple predicate `column op constant` for GPU evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuPredicate {
    /// Column index within the table.
    pub column: usize,
    /// Comparison operator.
    pub op: CompareFunc,
    /// Constant operand (≤ 24 bits).
    pub constant: u32,
}

impl GpuPredicate {
    /// Construct a predicate.
    pub fn new(column: usize, op: CompareFunc, constant: u32) -> GpuPredicate {
        GpuPredicate {
            column,
            op,
            constant,
        }
    }

    /// Eliminate a logical NOT by inverting the operator (§4.2: "If a
    /// simple predicate in this expression has a NOT operator, we can
    /// invert the comparison operation and eliminate the NOT operator").
    pub fn negated(self) -> GpuPredicate {
        GpuPredicate {
            op: self.op.negate(),
            ..self
        }
    }
}

/// A disjunction of simple predicates.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GpuClause {
    /// The OR-ed predicates.
    pub predicates: Vec<GpuPredicate>,
}

impl GpuClause {
    /// A single-predicate clause.
    pub fn single(p: GpuPredicate) -> GpuClause {
        GpuClause {
            predicates: vec![p],
        }
    }

    /// A clause OR-ing several predicates.
    pub fn any(predicates: Vec<GpuPredicate>) -> GpuClause {
        GpuClause { predicates }
    }
}

/// A conjunction of clauses.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GpuCnf {
    /// The AND-ed clauses.
    pub clauses: Vec<GpuClause>,
}

impl GpuCnf {
    /// The empty conjunction — TRUE, selecting every record (`C0` in the
    /// paper's recursion).
    pub fn always_true() -> GpuCnf {
        GpuCnf::default()
    }

    /// Build a CNF from clauses.
    pub fn new(clauses: Vec<GpuClause>) -> GpuCnf {
        GpuCnf { clauses }
    }

    /// A pure conjunction of simple predicates — the multi-attribute query
    /// of the paper's Figure 5.
    pub fn all_of(predicates: Vec<GpuPredicate>) -> GpuCnf {
        GpuCnf {
            clauses: predicates.into_iter().map(GpuClause::single).collect(),
        }
    }

    /// Number of simple predicates across all clauses.
    pub fn predicate_count(&self) -> usize {
        self.clauses.iter().map(|c| c.predicates.len()).sum()
    }

    /// Validate all column references against a table.
    fn validate(&self, table: &GpuTable) -> EngineResult<()> {
        for clause in &self.clauses {
            for p in &clause.predicates {
                if p.column >= table.column_count() {
                    return Err(EngineError::ColumnIndexOutOfRange(p.column));
                }
            }
        }
        Ok(())
    }
}

/// Evaluate a CNF over a table, materializing the result as a
/// [`Selection`] and returning the matching-record count.
///
/// Dispatches to the one-pass-per-predicate conjunction fast path when
/// every clause is a single predicate (the multi-attribute AND shape of
/// Figure 5); general CNFs run the full Routine 4.3 protocol. Both
/// paths run **pass-fused** (see [`eval_conjunction_select_fused`] and
/// [`eval_cnf_general_select_fused`]): adjacent predicates over the same
/// column share one `Compare` depth copy, and the opening stencil clear
/// is folded into the first predicate pass. Fusion only removes passes —
/// the selection and count are bit-identical to the unfused protocol
/// ([`eval_cnf_select_unfused`]).
pub fn eval_cnf_select(
    gpu: &mut Gpu,
    table: &GpuTable,
    cnf: &GpuCnf,
) -> EngineResult<(Selection, u64)> {
    if !cnf.clauses.is_empty() && cnf.clauses.iter().all(|c| c.predicates.len() == 1) {
        cnf.validate(table)?;
        let predicates: Vec<GpuPredicate> = cnf.clauses.iter().map(|c| c.predicates[0]).collect();
        return eval_conjunction_select_fused(gpu, table, &predicates);
    }
    eval_cnf_general_select_fused(gpu, table, cnf)
}

/// [`eval_cnf_select`] without pass fusion — the paper's literal
/// protocols, kept callable so the differential tests and ablation
/// benchmarks can compare fused against unfused execution.
pub fn eval_cnf_select_unfused(
    gpu: &mut Gpu,
    table: &GpuTable,
    cnf: &GpuCnf,
) -> EngineResult<(Selection, u64)> {
    if !cnf.clauses.is_empty() && cnf.clauses.iter().all(|c| c.predicates.len() == 1) {
        cnf.validate(table)?;
        let predicates: Vec<GpuPredicate> = cnf.clauses.iter().map(|c| c.predicates[0]).collect();
        return eval_conjunction_select(gpu, table, &predicates);
    }
    eval_cnf_general_select(gpu, table, cnf)
}

/// Fast path for pure conjunctions `B1 ∧ B2 ∧ ... ∧ Bk` of simple
/// predicates: one comparison pass per predicate, zeroing the stencil of
/// failing records via the `op_zfail` stencil operation. This is the
/// one-pass-per-attribute cost profile behind Figure 5's compute-only
/// factor.
pub fn eval_conjunction_select(
    gpu: &mut Gpu,
    table: &GpuTable,
    predicates: &[GpuPredicate],
) -> EngineResult<(Selection, u64)> {
    for p in predicates {
        if p.column >= table.column_count() {
            return Err(EngineError::ColumnIndexOutOfRange(p.column));
        }
    }
    gpu.set_phase(Phase::Compute);
    gpu.reset_state();
    gpu.clear_stencil(SELECTED);
    for p in predicates {
        copy_to_depth(gpu, table, p.column)?;
        gpu.set_phase(Phase::Compute);
        gpu.set_stencil_func(true, CompareFunc::Equal, SELECTED, 0xFF);
        // Fragment fails the predicate's depth test → zero its stencil.
        gpu.set_stencil_op(StencilOp::Keep, StencilOp::Zero, StencilOp::Keep);
        comparison_pass(gpu, table, p.op, p.constant, OcclusionMode::None)?;
    }
    // Count the survivors (asynchronously, §5.11).
    gpu.set_color_mask(ColorMask::NONE);
    gpu.set_depth_test(false, CompareFunc::Always);
    gpu.set_depth_write(false);
    gpu.set_stencil_func(true, CompareFunc::Equal, SELECTED, 0xFF);
    gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, StencilOp::Keep);
    gpu.begin_occlusion_query()?;
    gpu.draw_quad(table.rects(), 0.0)?;
    let count = gpu.end_occlusion_query_async()?;
    gpu.reset_state();
    Ok((Selection::over_table(table), count))
}

/// The paper's full `EvalCNF` (Routine 4.3), without the conjunction fast
/// path — exposed separately so the ablation benchmarks can compare the
/// two protocols.
pub fn eval_cnf_general_select(
    gpu: &mut Gpu,
    table: &GpuTable,
    cnf: &GpuCnf,
) -> EngineResult<(Selection, u64)> {
    cnf.validate(table)?;
    if cnf.clauses.is_empty() {
        let sel = Selection::select_all(gpu, table)?;
        let count = table.record_count() as u64;
        return Ok((sel, count));
    }

    // Routine 4.3 line 1: Clear Stencil to 1.
    gpu.set_phase(Phase::Compute);
    gpu.reset_state();
    gpu.clear_stencil(1);

    for (index, clause) in cnf.clauses.iter().enumerate() {
        let i = index + 1; // the paper's 1-based clause counter
        let (valid, promote_op) = if i % 2 == 1 {
            (1u8, StencilOp::Incr) // lines 4-6: valid == 1, INCR on pass
        } else {
            (2u8, StencilOp::Decr) // lines 7-9: valid == 2, DECR on pass
        };

        // Lines 11-14: evaluate each disjunct with Compare. The copy pass
        // runs with the stencil test disabled; the comparison quad promotes
        // still-valid records whose predicate holds.
        for p in &clause.predicates {
            copy_to_depth(gpu, table, p.column)?;
            gpu.set_phase(Phase::Compute);
            gpu.set_stencil_func(true, CompareFunc::Equal, valid, 0xFF);
            gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, promote_op);
            comparison_pass(gpu, table, p.op, p.constant, OcclusionMode::None)?;
        }

        // Lines 15-19: records still at the old valid value satisfied no
        // disjunct of this clause — zero them. (ZERO as the pass operation
        // sidesteps REPLACE's shared reference register.)
        gpu.set_phase(Phase::Compute);
        gpu.set_color_mask(ColorMask::NONE);
        gpu.set_depth_test(false, CompareFunc::Always);
        gpu.set_depth_write(false);
        gpu.set_stencil_func(true, CompareFunc::Equal, valid, 0xFF);
        gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, StencilOp::Zero);
        gpu.draw_quad(table.rects(), 0.0)?;
    }

    // Normalize the surviving marker to SELECTED (1) and count survivors in
    // the same pass. After k clauses the valid value is 2 for odd k, 1 for
    // even k.
    let final_valid = if cnf.clauses.len() % 2 == 1 { 2u8 } else { 1u8 };
    gpu.set_stencil_func(true, CompareFunc::Equal, final_valid, 0xFF);
    let normalize_op = if final_valid == 2 {
        StencilOp::Decr // 2 -> 1
    } else {
        StencilOp::Keep // already 1
    };
    gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, normalize_op);
    gpu.begin_occlusion_query()?;
    gpu.draw_quad(table.rects(), 0.0)?;
    let count = gpu.end_occlusion_query_async()?;
    gpu.reset_state();
    debug_assert_eq!(SELECTED, 1);
    Ok((Selection::over_table(table), count))
}

/// Pass-fused conjunction: identical results to
/// [`eval_conjunction_select`], with two fusions applied:
///
/// * **clear collapse** — instead of `ClearStencil(1)` followed by
///   `Equal`-tested comparison passes, the *first* predicate runs as an
///   *establishing pass*: stencil test `Always` with reference
///   [`SELECTED`], `REPLACE` on depth-pass and `ZERO` on depth-fail.
///   Every record pixel gets a definite value from the pass itself, so
///   no prior clear is needed;
/// * **copy elision** — comparison passes never write depth, so when
///   adjacent predicates test the same column the depth buffer already
///   holds it and the redundant `Compare` depth copy is skipped.
pub fn eval_conjunction_select_fused(
    gpu: &mut Gpu,
    table: &GpuTable,
    predicates: &[GpuPredicate],
) -> EngineResult<(Selection, u64)> {
    if predicates.is_empty() {
        // No establishing pass to define the stencil: fall back to the
        // clear-based protocol (which selects everything).
        return eval_conjunction_select(gpu, table, predicates);
    }
    for p in predicates {
        if p.column >= table.column_count() {
            return Err(EngineError::ColumnIndexOutOfRange(p.column));
        }
    }
    gpu.set_phase(Phase::Compute);
    gpu.reset_state();
    let mut depth_holds: Option<usize> = None;
    for (i, p) in predicates.iter().enumerate() {
        if depth_holds != Some(p.column) {
            copy_to_depth(gpu, table, p.column)?;
            depth_holds = Some(p.column);
        }
        gpu.set_phase(Phase::Compute);
        if i == 0 {
            // Establishing pass: depth-pass → SELECTED, depth-fail → 0.
            gpu.set_stencil_func(true, CompareFunc::Always, SELECTED, 0xFF);
            gpu.set_stencil_op(StencilOp::Keep, StencilOp::Zero, StencilOp::Replace);
        } else {
            gpu.set_stencil_func(true, CompareFunc::Equal, SELECTED, 0xFF);
            gpu.set_stencil_op(StencilOp::Keep, StencilOp::Zero, StencilOp::Keep);
        }
        comparison_pass(gpu, table, p.op, p.constant, OcclusionMode::None)?;
    }
    // Count the survivors (asynchronously, §5.11).
    gpu.set_color_mask(ColorMask::NONE);
    gpu.set_depth_test(false, CompareFunc::Always);
    gpu.set_depth_write(false);
    gpu.set_stencil_func(true, CompareFunc::Equal, SELECTED, 0xFF);
    gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, StencilOp::Keep);
    gpu.begin_occlusion_query()?;
    gpu.draw_quad(table.rects(), 0.0)?;
    let count = gpu.end_occlusion_query_async()?;
    gpu.reset_state();
    Ok((Selection::over_table(table), count))
}

/// Pass-fused Routine 4.3: identical results to
/// [`eval_cnf_general_select`], with the same two fusions as the
/// conjunction path where the protocol allows them:
///
/// * the opening `ClearStencil(1)` collapses into the first clause's
///   comparison pass **only when that clause is a single predicate** —
///   the establishing pass writes 2 on depth-pass and 0 on depth-fail,
///   exactly the post-cleanup state of clause 1, so the clause-1 cleanup
///   pass is dropped too. A multi-disjunct first clause keeps the clear:
///   no single stencil op can OR a disjunct into an unwritten buffer;
/// * adjacent disjuncts over the same column share one depth copy
///   (cleanup passes don't write depth, so elision crosses clause
///   boundaries).
pub fn eval_cnf_general_select_fused(
    gpu: &mut Gpu,
    table: &GpuTable,
    cnf: &GpuCnf,
) -> EngineResult<(Selection, u64)> {
    cnf.validate(table)?;
    if cnf.clauses.is_empty() {
        let sel = Selection::select_all(gpu, table)?;
        let count = table.record_count() as u64;
        return Ok((sel, count));
    }

    gpu.set_phase(Phase::Compute);
    gpu.reset_state();
    let mut depth_holds: Option<usize> = None;
    let establish = cnf.clauses[0].predicates.len() == 1;
    if establish {
        // Clause 1 fused with the clear: records passing the predicate
        // land directly on the even marker 2 (as Incr would have taken
        // them), everything else on 0 (as the cleanup would have).
        let p = cnf.clauses[0].predicates[0];
        copy_to_depth(gpu, table, p.column)?;
        depth_holds = Some(p.column);
        gpu.set_phase(Phase::Compute);
        gpu.set_stencil_func(true, CompareFunc::Always, 2, 0xFF);
        gpu.set_stencil_op(StencilOp::Keep, StencilOp::Zero, StencilOp::Replace);
        comparison_pass(gpu, table, p.op, p.constant, OcclusionMode::None)?;
    } else {
        // Routine 4.3 line 1: Clear Stencil to 1.
        gpu.clear_stencil(1);
    }

    let start = usize::from(establish);
    for (index, clause) in cnf.clauses.iter().enumerate().skip(start) {
        let i = index + 1; // the paper's 1-based clause counter
        let (valid, promote_op) = if i % 2 == 1 {
            (1u8, StencilOp::Incr)
        } else {
            (2u8, StencilOp::Decr)
        };

        for p in &clause.predicates {
            if depth_holds != Some(p.column) {
                copy_to_depth(gpu, table, p.column)?;
                depth_holds = Some(p.column);
            }
            gpu.set_phase(Phase::Compute);
            gpu.set_stencil_func(true, CompareFunc::Equal, valid, 0xFF);
            gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, promote_op);
            comparison_pass(gpu, table, p.op, p.constant, OcclusionMode::None)?;
        }

        // Cleanup: zero records still at the old valid value.
        gpu.set_phase(Phase::Compute);
        gpu.set_color_mask(ColorMask::NONE);
        gpu.set_depth_test(false, CompareFunc::Always);
        gpu.set_depth_write(false);
        gpu.set_stencil_func(true, CompareFunc::Equal, valid, 0xFF);
        gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, StencilOp::Zero);
        gpu.draw_quad(table.rects(), 0.0)?;
    }

    // Normalize the surviving marker to SELECTED (1) and count survivors
    // in the same pass — identical to the unfused protocol, because the
    // fused clause 1 leaves exactly the marker Incr would have.
    let final_valid = if cnf.clauses.len() % 2 == 1 { 2u8 } else { 1u8 };
    gpu.set_color_mask(ColorMask::NONE);
    gpu.set_depth_test(false, CompareFunc::Always);
    gpu.set_depth_write(false);
    gpu.set_stencil_func(true, CompareFunc::Equal, final_valid, 0xFF);
    let normalize_op = if final_valid == 2 {
        StencilOp::Decr
    } else {
        StencilOp::Keep
    };
    gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, normalize_op);
    gpu.begin_occlusion_query()?;
    gpu.draw_quad(table.rects(), 0.0)?;
    let count = gpu.end_occlusion_query_async()?;
    gpu.reset_state();
    debug_assert_eq!(SELECTED, 1);
    Ok((Selection::over_table(table), count))
}

/// Evaluate a CNF and return only the match count.
pub fn eval_cnf_count(gpu: &mut Gpu, table: &GpuTable, cnf: &GpuCnf) -> EngineResult<u64> {
    let (_, count) = eval_cnf_select(gpu, table, cnf)?;
    Ok(count)
}

/// A boolean expression in disjunctive normal form: `T1 ∨ T2 ∨ ... ∨ Tk`
/// where each term `Ti` is a conjunction of simple predicates.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GpuDnf {
    /// The OR-ed conjunctive terms.
    pub terms: Vec<GpuTerm>,
}

/// A conjunction of simple predicates (one DNF term).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GpuTerm {
    /// The AND-ed predicates.
    pub predicates: Vec<GpuPredicate>,
}

impl GpuTerm {
    /// A term with a single predicate.
    pub fn single(p: GpuPredicate) -> GpuTerm {
        GpuTerm {
            predicates: vec![p],
        }
    }

    /// A term AND-ing several predicates.
    pub fn all(predicates: Vec<GpuPredicate>) -> GpuTerm {
        GpuTerm { predicates }
    }
}

impl GpuDnf {
    /// The empty disjunction — FALSE, selecting nothing.
    pub fn always_false() -> GpuDnf {
        GpuDnf::default()
    }

    /// Build a DNF from terms.
    pub fn new(terms: Vec<GpuTerm>) -> GpuDnf {
        GpuDnf { terms }
    }

    /// Number of simple predicates across all terms.
    pub fn predicate_count(&self) -> usize {
        self.terms.iter().map(|t| t.predicates.len()).sum()
    }

    fn validate(&self, table: &GpuTable) -> EngineResult<()> {
        for term in &self.terms {
            for p in &term.predicates {
                if p.column >= table.column_count() {
                    return Err(EngineError::ColumnIndexOutOfRange(p.column));
                }
            }
        }
        Ok(())
    }
}

/// Stencil bit marking the accumulated DNF result.
const DNF_RESULT_BIT: u8 = 0x01;
/// Stencil bit used as per-term scratch.
const DNF_SCRATCH_BIT: u8 = 0x02;

/// Evaluate a DNF over a table — the paper's §4.2 remark made concrete:
/// "We can easily modify our algorithm for handling a boolean expression
/// represented as a DNF."
///
/// Protocol (two stencil bits, exercising the stencil *write masks* the
/// CNF protocol never needs):
///
/// 1. clear stencil to 0;
/// 2. per term: set the scratch bit on every record; each predicate pass
///    clears the scratch bit of failing records (`op_zfail = ZERO` under a
///    scratch-only write mask); survivors of all predicates get the result
///    bit OR-ed in;
/// 3. a final pass clears the scratch bit and counts result-bit holders.
pub fn eval_dnf_select(
    gpu: &mut Gpu,
    table: &GpuTable,
    dnf: &GpuDnf,
) -> EngineResult<(Selection, u64)> {
    dnf.validate(table)?;
    gpu.set_phase(Phase::Compute);
    gpu.reset_state();
    gpu.clear_stencil(0);

    for term in &dnf.terms {
        // (a) Set the scratch bit everywhere (result bit untouched).
        gpu.set_color_mask(ColorMask::NONE);
        gpu.set_depth_test(false, CompareFunc::Always);
        gpu.set_depth_write(false);
        gpu.set_stencil_func(true, CompareFunc::Always, DNF_SCRATCH_BIT, 0xFF);
        gpu.set_stencil_write_mask(DNF_SCRATCH_BIT);
        gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, StencilOp::Replace);
        gpu.draw_quad(table.rects(), 0.0)?;

        // (b) Each predicate knocks the scratch bit off failing records.
        for p in &term.predicates {
            copy_to_depth(gpu, table, p.column)?;
            gpu.set_phase(Phase::Compute);
            gpu.set_stencil_func(true, CompareFunc::Equal, DNF_SCRATCH_BIT, DNF_SCRATCH_BIT);
            gpu.set_stencil_write_mask(DNF_SCRATCH_BIT);
            gpu.set_stencil_op(StencilOp::Keep, StencilOp::Zero, StencilOp::Keep);
            comparison_pass(gpu, table, p.op, p.constant, OcclusionMode::None)?;
        }

        // (c) Scratch survivors satisfied the whole term: OR in the result
        // bit. The *test* masks to the scratch bit while REPLACE writes the
        // reference's result bit under the result-only write mask.
        gpu.set_color_mask(ColorMask::NONE);
        gpu.set_depth_test(false, CompareFunc::Always);
        gpu.set_depth_write(false);
        gpu.set_stencil_func(
            true,
            CompareFunc::Equal,
            DNF_SCRATCH_BIT | DNF_RESULT_BIT,
            DNF_SCRATCH_BIT,
        );
        gpu.set_stencil_write_mask(DNF_RESULT_BIT);
        gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, StencilOp::Replace);
        gpu.draw_quad(table.rects(), 0.0)?;
    }

    // Clear the scratch bit everywhere and count result-bit holders in the
    // same pass.
    gpu.set_color_mask(ColorMask::NONE);
    gpu.set_depth_test(false, CompareFunc::Always);
    gpu.set_depth_write(false);
    gpu.set_stencil_func(true, CompareFunc::Equal, DNF_RESULT_BIT, DNF_RESULT_BIT);
    gpu.set_stencil_write_mask(DNF_SCRATCH_BIT);
    // Passing fragments (result bit set) and failing ones alike must drop
    // the scratch bit: ZERO under the scratch-only write mask on both
    // stencil-fail and depth-pass outcomes.
    gpu.set_stencil_op(StencilOp::Zero, StencilOp::Zero, StencilOp::Zero);
    gpu.begin_occlusion_query()?;
    gpu.draw_quad(table.rects(), 0.0)?;
    let count = gpu.end_occlusion_query_async()?;
    gpu.reset_state();
    debug_assert_eq!(SELECTED, DNF_RESULT_BIT);
    Ok((Selection::over_table(table), count))
}

/// Evaluate a DNF and return only the match count.
pub fn eval_dnf_count(gpu: &mut Gpu, table: &GpuTable, dnf: &GpuDnf) -> EngineResult<u64> {
    let (_, count) = eval_dnf_select(gpu, table, dnf)?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpudb_sim::CompareFunc::*;

    fn setup(columns: &[(&str, &[u32])]) -> (Gpu, GpuTable) {
        let n = columns.first().map_or(0, |(_, v)| v.len());
        let mut gpu = GpuTable::device_for(n, 7);
        let t = GpuTable::upload(&mut gpu, "t", columns).unwrap();
        (gpu, t)
    }

    fn reference(cnf: &GpuCnf, columns: &[&[u32]], row: usize) -> bool {
        cnf.clauses.iter().all(|clause| {
            clause
                .predicates
                .iter()
                .any(|p| p.op.eval(columns[p.column][row], p.constant))
        })
    }

    fn check(cnf: &GpuCnf, columns: &[(&str, &[u32])]) {
        let (mut gpu, t) = setup(columns);
        let (sel, count) = eval_cnf_select(&mut gpu, &t, cnf).unwrap();
        let raw: Vec<&[u32]> = columns.iter().map(|(_, v)| *v).collect();
        let n = raw.first().map_or(0, |c| c.len());
        let expected: Vec<bool> = (0..n).map(|row| reference(cnf, &raw, row)).collect();
        assert_eq!(sel.read_mask(&mut gpu).unwrap(), expected);
        assert_eq!(count, expected.iter().filter(|&&b| b).count() as u64);
        assert_eq!(sel.count(&mut gpu).unwrap(), count);
    }

    #[test]
    fn empty_cnf_selects_all() {
        let a: Vec<u32> = (0..20).collect();
        check(&GpuCnf::always_true(), &[("a", &a)]);
    }

    #[test]
    fn single_clause_single_predicate() {
        let a: Vec<u32> = (0..50).map(|i| (i * 31) % 40).collect();
        check(
            &GpuCnf::all_of(vec![GpuPredicate::new(0, Greater, 20)]),
            &[("a", &a)],
        );
    }

    #[test]
    fn conjunction_of_four_attributes() {
        // The Figure 5 shape: k predicates AND-ed, one per attribute.
        let cols: Vec<Vec<u32>> = (0..4)
            .map(|c| (0..60u32).map(|i| (i * (7 + c) + c * c) % 50).collect())
            .collect();
        let named: Vec<(&str, &[u32])> = ["a", "b", "c", "d"]
            .iter()
            .zip(&cols)
            .map(|(n, v)| (*n, v.as_slice()))
            .collect();
        for k in 1..=4 {
            let preds = (0..k)
                .map(|c| GpuPredicate::new(c, GreaterEqual, 20))
                .collect();
            check(&GpuCnf::all_of(preds), &named);
        }
    }

    #[test]
    fn disjunctions_inside_clauses() {
        let a: Vec<u32> = (0..80).map(|i| (i * 13) % 64).collect();
        let b: Vec<u32> = (0..80).map(|i| (i * 17 + 5) % 64).collect();
        let cnf = GpuCnf::new(vec![
            GpuClause::any(vec![
                GpuPredicate::new(0, Less, 16),
                GpuPredicate::new(1, GreaterEqual, 48),
            ]),
            GpuClause::any(vec![
                GpuPredicate::new(0, NotEqual, 13),
                GpuPredicate::new(1, Equal, 22),
            ]),
        ]);
        check(&cnf, &[("a", &a), ("b", &b)]);
    }

    #[test]
    fn three_clauses_exercise_marker_alternation() {
        // Odd clause count: the final valid marker is 2 and must be
        // normalized back to 1.
        let a: Vec<u32> = (0..64).collect();
        let cnf = GpuCnf::all_of(vec![
            GpuPredicate::new(0, GreaterEqual, 8),
            GpuPredicate::new(0, Less, 56),
            GpuPredicate::new(0, NotEqual, 30),
        ]);
        check(&cnf, &[("a", &a)]);
    }

    #[test]
    fn clause_with_duplicate_true_predicates_counts_once() {
        // Both disjuncts true for every record: the stencil promotion must
        // saturate at the new marker, not double-count.
        let a: Vec<u32> = (0..30).collect();
        let cnf = GpuCnf::new(vec![GpuClause::any(vec![
            GpuPredicate::new(0, GreaterEqual, 0),
            GpuPredicate::new(0, Less, 100),
        ])]);
        check(&cnf, &[("a", &a)]);
    }

    #[test]
    fn contradiction_selects_nothing() {
        let a: Vec<u32> = (0..30).collect();
        let cnf = GpuCnf::all_of(vec![
            GpuPredicate::new(0, Less, 10),
            GpuPredicate::new(0, GreaterEqual, 10),
        ]);
        check(&cnf, &[("a", &a)]);
    }

    #[test]
    fn empty_clause_is_false() {
        let a: Vec<u32> = (0..30).collect();
        let cnf = GpuCnf::new(vec![GpuClause::default()]);
        let (mut gpu, t) = setup(&[("a", &a)]);
        let (_, count) = eval_cnf_select(&mut gpu, &t, &cnf).unwrap();
        assert_eq!(count, 0);
    }

    #[test]
    fn negated_predicate_equivalence() {
        let p = GpuPredicate::new(0, Less, 10);
        let a: Vec<u32> = (0..30).collect();
        let (mut gpu, t) = setup(&[("a", &a)]);
        let (_, count_not) =
            eval_cnf_select(&mut gpu, &t, &GpuCnf::all_of(vec![p.negated()])).unwrap();
        assert_eq!(count_not, 20, "NOT(a < 10) == a >= 10");
    }

    #[test]
    fn invalid_column_rejected() {
        let a: Vec<u32> = (0..10).collect();
        let (mut gpu, t) = setup(&[("a", &a)]);
        let cnf = GpuCnf::all_of(vec![GpuPredicate::new(3, Less, 1)]);
        assert!(matches!(
            eval_cnf_select(&mut gpu, &t, &cnf).unwrap_err(),
            EngineError::ColumnIndexOutOfRange(3)
        ));
    }

    #[test]
    fn predicate_count() {
        let cnf = GpuCnf::new(vec![
            GpuClause::any(vec![
                GpuPredicate::new(0, Less, 1),
                GpuPredicate::new(1, Less, 1),
            ]),
            GpuClause::single(GpuPredicate::new(0, Greater, 5)),
        ]);
        assert_eq!(cnf.predicate_count(), 3);
    }

    #[test]
    fn fast_path_and_general_protocol_agree() {
        // The conjunction fast path and the full Routine 4.3 must produce
        // identical selections and counts for every pure-AND CNF.
        let cols: Vec<Vec<u32>> = (0..3)
            .map(|c| (0..70u32).map(|i| (i * (11 + c) + c) % 60).collect())
            .collect();
        let named: Vec<(&str, &[u32])> = ["a", "b", "c"]
            .iter()
            .zip(&cols)
            .map(|(n, v)| (*n, v.as_slice()))
            .collect();
        for k in 1..=3usize {
            let preds: Vec<GpuPredicate> = (0..k)
                .map(|c| GpuPredicate::new(c, GreaterEqual, 20 + c as u32))
                .collect();
            let cnf = GpuCnf::all_of(preds.clone());

            let (mut gpu, t) = setup(&named);
            let (sel_fast, c_fast) = eval_conjunction_select(&mut gpu, &t, &preds).unwrap();
            let mask_fast = sel_fast.read_mask(&mut gpu);

            let (sel_gen, c_gen) = eval_cnf_general_select(&mut gpu, &t, &cnf).unwrap();
            assert_eq!(mask_fast, sel_gen.read_mask(&mut gpu), "k = {k}");
            assert_eq!(c_fast, c_gen);
        }
    }

    #[test]
    fn fast_path_uses_one_comparison_pass_per_predicate() {
        let a: Vec<u32> = (0..50).collect();
        let b: Vec<u32> = (0..50).rev().collect();
        let (mut gpu, t) = setup(&[("a", &a), ("b", &b)]);
        let preds = vec![
            GpuPredicate::new(0, GreaterEqual, 10),
            GpuPredicate::new(1, Less, 40),
        ];
        gpu.reset_stats();
        eval_conjunction_select(&mut gpu, &t, &preds).unwrap();
        // 2 copies + 2 comparisons + 1 count pass.
        assert_eq!(gpu.stats().draw_calls, 5);

        gpu.reset_stats();
        eval_cnf_general_select(&mut gpu, &t, &GpuCnf::all_of(preds)).unwrap();
        // General protocol: per clause (copy + compare + cleanup) + count.
        assert_eq!(gpu.stats().draw_calls, 7);
    }

    /// Every CNF shape the suite exercises, for fused/unfused parity.
    fn parity_cnfs() -> Vec<GpuCnf> {
        vec![
            GpuCnf::always_true(),
            GpuCnf::all_of(vec![GpuPredicate::new(0, Greater, 20)]),
            GpuCnf::all_of(vec![
                GpuPredicate::new(0, GreaterEqual, 10),
                GpuPredicate::new(1, Less, 40),
            ]),
            // Adjacent predicates on the same column: copy elision fires.
            GpuCnf::all_of(vec![
                GpuPredicate::new(0, GreaterEqual, 10),
                GpuPredicate::new(0, Less, 40),
                GpuPredicate::new(1, NotEqual, 13),
            ]),
            // Single-predicate first clause + a disjunction: the general
            // protocol's clear collapse fires.
            GpuCnf::new(vec![
                GpuClause::single(GpuPredicate::new(0, GreaterEqual, 5)),
                GpuClause::any(vec![
                    GpuPredicate::new(0, Less, 30),
                    GpuPredicate::new(1, GreaterEqual, 40),
                ]),
            ]),
            // Multi-disjunct first clause: the clear must survive.
            GpuCnf::new(vec![
                GpuClause::any(vec![
                    GpuPredicate::new(0, Less, 16),
                    GpuPredicate::new(1, GreaterEqual, 48),
                ]),
                GpuClause::single(GpuPredicate::new(1, NotEqual, 22)),
            ]),
            // Odd clause count through the fused first clause.
            GpuCnf::new(vec![
                GpuClause::single(GpuPredicate::new(0, GreaterEqual, 8)),
                GpuClause::any(vec![
                    GpuPredicate::new(0, Less, 56),
                    GpuPredicate::new(1, Less, 10),
                ]),
                GpuClause::single(GpuPredicate::new(1, NotEqual, 30)),
            ]),
            // Empty clause (FALSE) in first position.
            GpuCnf::new(vec![
                GpuClause::default(),
                GpuClause::single(GpuPredicate::new(0, Less, 30)),
            ]),
            // Contradiction on one column (elision + establishing pass).
            GpuCnf::all_of(vec![
                GpuPredicate::new(0, Less, 10),
                GpuPredicate::new(0, GreaterEqual, 10),
            ]),
        ]
    }

    #[test]
    fn fused_and_unfused_dispatch_agree_byte_for_byte() {
        let a: Vec<u32> = (0..80).map(|i| (i * 13) % 64).collect();
        let b: Vec<u32> = (0..80).map(|i| (i * 17 + 5) % 64).collect();
        let cols: [(&str, &[u32]); 2] = [("a", &a), ("b", &b)];
        for cnf in parity_cnfs() {
            let (mut gpu, t) = setup(&cols);
            let (sel_f, count_f) = eval_cnf_select(&mut gpu, &t, &cnf).unwrap();
            let mask_f = sel_f.read_mask(&mut gpu).unwrap();

            let (mut gpu2, t2) = setup(&cols);
            let (sel_u, count_u) = eval_cnf_select_unfused(&mut gpu2, &t2, &cnf).unwrap();
            let mask_u = sel_u.read_mask(&mut gpu2).unwrap();

            assert_eq!(mask_f, mask_u, "cnf {cnf:?}");
            assert_eq!(count_f, count_u, "cnf {cnf:?}");
        }
    }

    #[test]
    fn fusion_elides_repeated_column_copies() {
        // Three predicates, first two on the same column: the fused path
        // copies the column once, the unfused path twice.
        let a: Vec<u32> = (0..50).collect();
        let b: Vec<u32> = (0..50).rev().collect();
        let (mut gpu, t) = setup(&[("a", &a), ("b", &b)]);
        let preds = vec![
            GpuPredicate::new(0, GreaterEqual, 10),
            GpuPredicate::new(0, Less, 40),
            GpuPredicate::new(1, Less, 45),
        ];
        gpu.reset_stats();
        eval_conjunction_select_fused(&mut gpu, &t, &preds).unwrap();
        // 2 copies (a once, b once) + 3 comparisons + 1 count pass.
        assert_eq!(gpu.stats().draw_calls, 6);

        gpu.reset_stats();
        eval_conjunction_select(&mut gpu, &t, &preds).unwrap();
        // 3 copies + 3 comparisons + 1 count pass.
        assert_eq!(gpu.stats().draw_calls, 7);
    }

    #[test]
    fn fusion_eliminates_the_stencil_clear() {
        // Record the pass plans: the fused conjunction and the fused
        // single-predicate-first general CNF must emit no ClearStencil.
        use gpudb_sim::trace::{PassOp, RecordMode};
        let a: Vec<u32> = (0..40).collect();
        let b: Vec<u32> = (0..40).rev().collect();
        let clears = |ops: &[PassOp]| {
            ops.iter()
                .filter(|op| matches!(op, PassOp::ClearStencil { .. }))
                .count()
        };
        let run = |fused: bool, cnf: &GpuCnf| {
            let (mut gpu, t) = setup(&[("a", &a), ("b", &b)]);
            gpu.enable_tracing(RecordMode::RecordAndExecute);
            if fused {
                eval_cnf_select(&mut gpu, &t, cnf).unwrap();
            } else {
                eval_cnf_select_unfused(&mut gpu, &t, cnf).unwrap();
            }
            let plans = gpu.take_plans();
            plans.iter().map(|p| clears(&p.ops)).sum::<usize>()
        };
        let conjunction = GpuCnf::all_of(vec![
            GpuPredicate::new(0, GreaterEqual, 10),
            GpuPredicate::new(1, Less, 30),
        ]);
        assert_eq!(run(false, &conjunction), 1);
        assert_eq!(run(true, &conjunction), 0);

        let general = GpuCnf::new(vec![
            GpuClause::single(GpuPredicate::new(0, GreaterEqual, 5)),
            GpuClause::any(vec![
                GpuPredicate::new(0, Less, 30),
                GpuPredicate::new(1, GreaterEqual, 20),
            ]),
        ]);
        assert_eq!(run(false, &general), 1);
        assert_eq!(run(true, &general), 0);

        // Multi-disjunct first clause: no establishing pass is possible,
        // the clear must stay.
        let unfusable = GpuCnf::new(vec![GpuClause::any(vec![
            GpuPredicate::new(0, Less, 16),
            GpuPredicate::new(1, GreaterEqual, 30),
        ])]);
        assert_eq!(run(true, &unfusable), 1);
    }

    #[test]
    fn fusion_reduces_modeled_cost() {
        let a: Vec<u32> = (0..60).collect();
        let cnf = GpuCnf::all_of(vec![
            GpuPredicate::new(0, GreaterEqual, 10),
            GpuPredicate::new(0, Less, 50),
        ]);
        let modeled = |fused: bool| {
            let (mut gpu, t) = setup(&[("a", &a)]);
            let (result, timing) = crate::timing::measure(&mut gpu, |gpu| {
                if fused {
                    eval_cnf_select(gpu, &t, &cnf)
                } else {
                    eval_cnf_select_unfused(gpu, &t, &cnf)
                }
            });
            result.unwrap();
            timing.total()
        };
        let fused = modeled(true);
        let unfused = modeled(false);
        assert!(
            fused < unfused,
            "fused {fused} should cost less than unfused {unfused}"
        );
    }

    #[test]
    fn fused_general_cnf_empty_first_clause_keeps_clear_semantics() {
        // An empty first clause is FALSE: nothing selected, fused or not.
        let a: Vec<u32> = (0..30).collect();
        let cnf = GpuCnf::new(vec![GpuClause::default()]);
        let (mut gpu, t) = setup(&[("a", &a)]);
        let (sel, count) = eval_cnf_general_select_fused(&mut gpu, &t, &cnf).unwrap();
        assert_eq!(count, 0);
        assert_eq!(sel.read_mask(&mut gpu).unwrap(), vec![false; 30]);
    }

    #[test]
    fn fused_empty_conjunction_selects_all() {
        let a: Vec<u32> = (0..25).collect();
        let (mut gpu, t) = setup(&[("a", &a)]);
        let (sel, count) = eval_conjunction_select_fused(&mut gpu, &t, &[]).unwrap();
        assert_eq!(count, 25);
        assert_eq!(sel.read_mask(&mut gpu).unwrap(), vec![true; 25]);
    }

    #[test]
    fn fused_paths_validate_columns() {
        let a: Vec<u32> = (0..10).collect();
        let (mut gpu, t) = setup(&[("a", &a)]);
        assert!(matches!(
            eval_conjunction_select_fused(&mut gpu, &t, &[GpuPredicate::new(5, Less, 1)])
                .unwrap_err(),
            EngineError::ColumnIndexOutOfRange(5)
        ));
        let cnf = GpuCnf::new(vec![GpuClause::any(vec![
            GpuPredicate::new(0, Less, 1),
            GpuPredicate::new(6, Less, 1),
        ])]);
        assert!(matches!(
            eval_cnf_general_select_fused(&mut gpu, &t, &cnf).unwrap_err(),
            EngineError::ColumnIndexOutOfRange(6)
        ));
    }

    fn dnf_reference(dnf: &GpuDnf, columns: &[&[u32]], row: usize) -> bool {
        dnf.terms.iter().any(|term| {
            term.predicates
                .iter()
                .all(|p| p.op.eval(columns[p.column][row], p.constant))
        })
    }

    fn check_dnf(dnf: &GpuDnf, columns: &[(&str, &[u32])]) {
        let (mut gpu, t) = setup(columns);
        let (sel, count) = eval_dnf_select(&mut gpu, &t, dnf).unwrap();
        let raw: Vec<&[u32]> = columns.iter().map(|(_, v)| *v).collect();
        let n = raw.first().map_or(0, |c| c.len());
        let expected: Vec<bool> = (0..n).map(|row| dnf_reference(dnf, &raw, row)).collect();
        assert_eq!(sel.read_mask(&mut gpu).unwrap(), expected);
        assert_eq!(count, expected.iter().filter(|&&b| b).count() as u64);
        assert_eq!(sel.count(&mut gpu).unwrap(), count);
    }

    #[test]
    fn dnf_empty_is_false() {
        let a: Vec<u32> = (0..20).collect();
        check_dnf(&GpuDnf::always_false(), &[("a", &a)]);
    }

    #[test]
    fn dnf_single_term_is_conjunction() {
        let a: Vec<u32> = (0..60).map(|i| (i * 13) % 50).collect();
        let b: Vec<u32> = (0..60).map(|i| (i * 29 + 3) % 50).collect();
        let dnf = GpuDnf::new(vec![GpuTerm::all(vec![
            GpuPredicate::new(0, GreaterEqual, 10),
            GpuPredicate::new(1, Less, 40),
        ])]);
        check_dnf(&dnf, &[("a", &a), ("b", &b)]);
    }

    #[test]
    fn dnf_disjunction_of_conjunctions() {
        let a: Vec<u32> = (0..80).map(|i| (i * 7) % 64).collect();
        let b: Vec<u32> = (0..80).map(|i| (i * 11 + 5) % 64).collect();
        let dnf = GpuDnf::new(vec![
            GpuTerm::all(vec![
                GpuPredicate::new(0, Less, 16),
                GpuPredicate::new(1, GreaterEqual, 32),
            ]),
            GpuTerm::all(vec![
                GpuPredicate::new(0, GreaterEqual, 48),
                GpuPredicate::new(1, Less, 16),
            ]),
            GpuTerm::single(GpuPredicate::new(1, Equal, 33)),
        ]);
        check_dnf(&dnf, &[("a", &a), ("b", &b)]);
    }

    #[test]
    fn dnf_empty_term_is_true() {
        let a: Vec<u32> = (0..30).collect();
        let dnf = GpuDnf::new(vec![GpuTerm::default()]);
        check_dnf(&dnf, &[("a", &a)]);
    }

    #[test]
    fn dnf_overlapping_terms_count_once() {
        // Both terms select overlapping sets — records in both must carry
        // the result bit exactly once.
        let a: Vec<u32> = (0..40).collect();
        let dnf = GpuDnf::new(vec![
            GpuTerm::single(GpuPredicate::new(0, Less, 25)),
            GpuTerm::single(GpuPredicate::new(0, GreaterEqual, 15)),
        ]);
        check_dnf(&dnf, &[("a", &a)]); // selects everything, once
    }

    #[test]
    fn dnf_agrees_with_cnf_on_common_expressions() {
        // (a < 20) ∨ (a >= 40) is both a 1-clause CNF and a 2-term DNF.
        let a: Vec<u32> = (0..64).map(|i| (i * 37) % 60).collect();
        let (mut gpu, t) = setup(&[("a", &a)]);
        let cnf = GpuCnf::new(vec![GpuClause::any(vec![
            GpuPredicate::new(0, Less, 20),
            GpuPredicate::new(0, GreaterEqual, 40),
        ])]);
        let dnf = GpuDnf::new(vec![
            GpuTerm::single(GpuPredicate::new(0, Less, 20)),
            GpuTerm::single(GpuPredicate::new(0, GreaterEqual, 40)),
        ]);
        let (sel_c, count_c) = eval_cnf_select(&mut gpu, &t, &cnf).unwrap();
        let mask_c = sel_c.read_mask(&mut gpu);
        let (sel_d, count_d) = eval_dnf_select(&mut gpu, &t, &dnf).unwrap();
        assert_eq!(mask_c, sel_d.read_mask(&mut gpu));
        assert_eq!(count_c, count_d);
    }

    #[test]
    fn dnf_validates_columns() {
        let a: Vec<u32> = (0..10).collect();
        let (mut gpu, t) = setup(&[("a", &a)]);
        let dnf = GpuDnf::new(vec![GpuTerm::single(GpuPredicate::new(7, Less, 1))]);
        assert!(matches!(
            eval_dnf_select(&mut gpu, &t, &dnf).unwrap_err(),
            EngineError::ColumnIndexOutOfRange(7)
        ));
        assert_eq!(dnf.predicate_count(), 1);
    }

    #[test]
    fn dnf_composes_with_aggregates() {
        let a: Vec<u32> = (0..50).collect();
        let (mut gpu, t) = setup(&[("a", &a)]);
        let dnf = GpuDnf::new(vec![
            GpuTerm::single(GpuPredicate::new(0, Less, 10)),
            GpuTerm::single(GpuPredicate::new(0, GreaterEqual, 45)),
        ]);
        let (sel, count) = eval_dnf_select(&mut gpu, &t, &dnf).unwrap();
        assert_eq!(count, 15);
        let sum = crate::aggregate::sum(&mut gpu, &t, 0, Some(&sel)).unwrap();
        let expected: u64 = (0..10u64).sum::<u64>() + (45..50u64).sum::<u64>();
        assert_eq!(sum, expected);
    }

    #[test]
    fn mixed_columns_across_textures() {
        // 5 columns span two textures; CNF touches both.
        let cols: Vec<Vec<u32>> = (0..5)
            .map(|c| (0..40u32).map(|i| (i + c) % 20).collect())
            .collect();
        let named: Vec<(&str, &[u32])> = ["a", "b", "c", "d", "e"]
            .iter()
            .zip(&cols)
            .map(|(n, v)| (*n, v.as_slice()))
            .collect();
        let cnf = GpuCnf::all_of(vec![
            GpuPredicate::new(0, GreaterEqual, 5),
            GpuPredicate::new(4, Less, 15),
        ]);
        check(&cnf, &named);
    }
}
