//! Range queries via `EXT_depth_bounds_test` — the paper's `Range`
//! (Routine 4.4).
//!
//! `low <= x <= high` is a two-predicate CNF, but the depth-bounds test
//! evaluates both comparisons against the *stored* depth in a single
//! fixed-function pass, which is why the paper finds "the computational
//! time for our algorithm in evaluating Range is comparable to the time
//! required in evaluating a single predicate" (§4.2).

use crate::error::EngineResult;
use crate::ops::encode_depth_f64;
use crate::predicate::{comparison_pass, copy_to_depth, OcclusionMode};
use crate::selection::{Selection, SELECTED};
use crate::table::GpuTable;
use gpudb_sim::state::ColorMask;
use gpudb_sim::{CompareFunc, Gpu, Phase, StencilOp};

/// Evaluate `low <= column <= high` (inclusive), materializing a
/// [`Selection`] and returning the match count from the same pass.
///
/// Routine 4.4: set up the stencil, copy the attribute into the depth
/// buffer, set the depth bounds from `[low, high]`, and render one quad
/// with the bounds test enabled. The stencil is 1 for attributes passing
/// the range and 0 otherwise.
pub fn range_select(
    gpu: &mut Gpu,
    table: &GpuTable,
    column: usize,
    low: u32,
    high: u32,
) -> EngineResult<(Selection, u64)> {
    // An inverted range is empty by host arithmetic, and
    // EXT_depth_bounds_test rejects zmin > zmax (glDepthBoundsEXT raises
    // INVALID_VALUE). Decide *before* any device work: the answer is a
    // const-empty selection, so the stage is genuinely zero-cost yet
    // still emits its MetricsRecord from the executor.
    if low > high {
        return Ok((Selection::const_empty(table), 0));
    }

    // Line 1: SetupStencil.
    gpu.set_phase(Phase::Compute);
    gpu.reset_state();
    gpu.clear_stencil(0);

    // Line 2: CopyToDepth.
    copy_to_depth(gpu, table, column)?;

    // Routine 4.4 needs EXT_depth_bounds_test; on hardware without it
    // ("In the absence of this test, we can use the depth test to compute
    // the range query using two passes") degrade to the two-pass form.
    if !gpu.profile().has_depth_bounds {
        return range_select_two_pass(gpu, table, low, high);
    }

    // Lines 3-6: depth bounds from [low, high]; quad at depth `low`; the
    // depth test itself stays disabled (the bounds test inspects the stored
    // attribute, the quad's own depth is irrelevant).
    gpu.set_phase(Phase::Compute);
    gpu.set_color_mask(ColorMask::NONE);
    gpu.set_depth_test(false, CompareFunc::Always);
    gpu.set_depth_write(false);
    gpu.set_depth_bounds(true, encode_depth_f64(low), encode_depth_f64(high))?;
    gpu.set_stencil_func(true, CompareFunc::Always, SELECTED, 0xFF);
    gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, StencilOp::Replace);
    gpu.begin_occlusion_query()?;
    gpu.draw_quad(table.rects(), encode_depth_f64(low) as f32)?;
    let count = gpu.end_occlusion_query_async()?;
    gpu.reset_state();
    Ok((Selection::over_table(table), count))
}

/// The paper's degraded Range for hardware without depth-bounds: two
/// ordinary depth-test comparison passes over the stored attribute.
///
/// Pass 1 stamps stencil = [`SELECTED`] where `x >= low`; pass 2 keeps the
/// stamp only where `x <= high` (zfail zeroes it) while an occlusion query
/// counts the fragments passing both tests — the final match count. Same
/// result, one extra pass: exactly the cost Routine 4.4 exists to avoid.
///
/// Expects the stencil cleared and the attribute already in the depth
/// buffer.
fn range_select_two_pass(
    gpu: &mut Gpu,
    table: &GpuTable,
    low: u32,
    high: u32,
) -> EngineResult<(Selection, u64)> {
    gpu.set_phase(Phase::Compute);
    gpu.set_color_mask(ColorMask::NONE);
    gpu.set_depth_write(false);

    // Pass 1: x >= low → stencil := SELECTED.
    gpu.set_stencil_func(true, CompareFunc::Always, SELECTED, 0xFF);
    gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, StencilOp::Replace);
    comparison_pass(
        gpu,
        table,
        CompareFunc::GreaterEqual,
        low,
        OcclusionMode::None,
    )?;

    // Pass 2: among stamped records, x > high → stencil := 0; the
    // occlusion query counts stencil-and-depth survivors.
    gpu.set_stencil_func(true, CompareFunc::Equal, SELECTED, 0xFF);
    gpu.set_stencil_op(StencilOp::Keep, StencilOp::Zero, StencilOp::Keep);
    let count = comparison_pass(
        gpu,
        table,
        CompareFunc::LessEqual,
        high,
        OcclusionMode::Async,
    )?;
    gpu.reset_state();
    Ok((Selection::over_table(table), count))
}

/// Evaluate a range query and return only the match count.
pub fn range_count(
    gpu: &mut Gpu,
    table: &GpuTable,
    column: usize,
    low: u32,
    high: u32,
) -> EngineResult<u64> {
    let (_, count) = range_select(gpu, table, column, low, high)?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boolean::{eval_cnf_select, eval_cnf_select_unfused, GpuCnf, GpuPredicate};
    use gpudb_sim::CompareFunc::{GreaterEqual, LessEqual};

    fn setup(values: &[u32]) -> (Gpu, GpuTable) {
        let mut gpu = GpuTable::device_for(values.len(), 5);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", values)]).unwrap();
        (gpu, t)
    }

    #[test]
    fn range_matches_reference() {
        let values: Vec<u32> = (0..100).map(|i| (i * 37) % 90).collect();
        let (mut gpu, t) = setup(&values);
        let (sel, count) = range_select(&mut gpu, &t, 0, 20, 60).unwrap();
        let expected: Vec<bool> = values.iter().map(|&v| (20..=60).contains(&v)).collect();
        assert_eq!(sel.read_mask(&mut gpu).unwrap(), expected);
        assert_eq!(count, expected.iter().filter(|&&b| b).count() as u64);
    }

    #[test]
    fn bounds_are_inclusive() {
        let values = vec![9u32, 10, 11, 49, 50, 51];
        let (mut gpu, t) = setup(&values);
        let (sel, count) = range_select(&mut gpu, &t, 0, 10, 50).unwrap();
        assert_eq!(count, 4);
        assert_eq!(
            sel.read_mask(&mut gpu).unwrap(),
            vec![false, true, true, true, true, false]
        );
    }

    #[test]
    fn range_agrees_with_cnf_formulation() {
        // §4.2: Range(x, low, high) ≡ (x >= low) AND (x <= high) via
        // EvalCNF — the depth-bounds path must produce the identical
        // selection.
        let values: Vec<u32> = (0..200).map(|i| (i * 7919) % 3000).collect();
        for (low, high) in [(0u32, 2999u32), (500, 1500), (100, 100), (2999, 2999)] {
            let (mut gpu, t) = setup(&values);
            let (sel_range, c_range) = range_select(&mut gpu, &t, 0, low, high).unwrap();
            let mask_range = sel_range.read_mask(&mut gpu).unwrap();

            let cnf = GpuCnf::all_of(vec![
                GpuPredicate::new(0, GreaterEqual, low),
                GpuPredicate::new(0, LessEqual, high),
            ]);
            let (sel_cnf, c_cnf) = eval_cnf_select(&mut gpu, &t, &cnf).unwrap();
            assert_eq!(
                mask_range,
                sel_cnf.read_mask(&mut gpu).unwrap(),
                "[{low}, {high}]"
            );
            assert_eq!(c_range, c_cnf);
        }
    }

    #[test]
    fn range_uses_fewer_passes_than_cnf() {
        // The whole point of the depth-bounds path: one comparison pass
        // instead of two Compare invocations (two copies + two quads).
        let values: Vec<u32> = (0..100).collect();
        let (mut gpu, t) = setup(&values);
        gpu.reset_stats();
        range_select(&mut gpu, &t, 0, 10, 90).unwrap();
        let range_copies = gpu.stats().fragments_shaded;
        let range_modeled = gpu.stats().modeled_total();

        gpu.reset_stats();
        let cnf = GpuCnf::all_of(vec![
            GpuPredicate::new(0, GreaterEqual, 10),
            GpuPredicate::new(0, LessEqual, 90),
        ]);
        eval_cnf_select_unfused(&mut gpu, &t, &cnf).unwrap();
        let cnf_copies = gpu.stats().fragments_shaded;
        let cnf_modeled = gpu.stats().modeled_total();

        assert_eq!(range_copies * 2, cnf_copies, "CNF copies the column twice");
        assert!(range_modeled < cnf_modeled);

        // Pass fusion elides the duplicate copy (both predicates read the
        // same column), but the depth-bounds path still wins on modeled
        // cost: one quad versus two comparison quads plus the count pass.
        gpu.reset_stats();
        eval_cnf_select(&mut gpu, &t, &cnf).unwrap();
        assert_eq!(
            gpu.stats().fragments_shaded,
            range_copies,
            "fusion copies the column once"
        );
        assert!(range_modeled < gpu.stats().modeled_total());
        assert!(gpu.stats().modeled_total() < cnf_modeled);
    }

    #[test]
    fn two_pass_fallback_matches_depth_bounds_path() {
        use gpudb_sim::HardwareProfile;
        let values: Vec<u32> = (0..200).map(|i| (i * 7919) % 3000).collect();
        let rows = values.len().div_ceil(5);
        for (low, high) in [(0u32, 2999u32), (500, 1500), (100, 100), (2999, 2999)] {
            let (mut gpu, t) = setup(&values);
            let (sel, count) = range_select(&mut gpu, &t, 0, low, high).unwrap();
            let mask = sel.read_mask(&mut gpu).unwrap();

            let mut degraded =
                Gpu::new(HardwareProfile::geforce_fx_5900_no_depth_bounds(), 5, rows);
            let t2 = GpuTable::upload(&mut degraded, "t", &[("a", &values)]).unwrap();
            let (sel2, count2) = range_select(&mut degraded, &t2, 0, low, high).unwrap();
            assert_eq!(count2, count, "[{low}, {high}]");
            assert_eq!(sel2.read_mask(&mut degraded).unwrap(), mask);
        }
    }

    #[test]
    fn two_pass_fallback_costs_an_extra_pass() {
        use gpudb_sim::HardwareProfile;
        let values: Vec<u32> = (0..100).collect();
        let (mut gpu, t) = setup(&values);
        gpu.reset_stats();
        range_select(&mut gpu, &t, 0, 10, 90).unwrap();
        let bounds_fragments = gpu.stats().fragments_generated;
        let bounds_modeled = gpu.stats().modeled_total();

        let mut degraded = Gpu::new(HardwareProfile::geforce_fx_5900_no_depth_bounds(), 5, 20);
        let t2 = GpuTable::upload(&mut degraded, "t", &[("a", &values)]).unwrap();
        degraded.reset_stats();
        range_select(&mut degraded, &t2, 0, 10, 90).unwrap();
        assert!(degraded.stats().fragments_generated > bounds_fragments);
        assert!(degraded.stats().modeled_total() > bounds_modeled);
    }

    #[test]
    fn inverted_range_is_zero_cost_and_const_empty() {
        let values = vec![5u32, 6, 7];
        let (mut gpu, t) = setup(&values);
        // Pollute the stencil: the short-circuit must not depend on (or
        // touch) device state.
        gpu.clear_stencil(SELECTED);
        let counters = gpu.stats().counters();
        let modeled = gpu.stats().modeled_total();
        let (sel, count) = range_select(&mut gpu, &t, 0, 7, 5).unwrap();
        assert_eq!(count, 0);
        assert!(sel.is_const_empty());
        assert_eq!(gpu.stats().counters(), counters, "no device work");
        assert_eq!(gpu.stats().modeled_total(), modeled, "no modeled cost");
        assert_eq!(sel.read_mask(&mut gpu).unwrap(), vec![false; 3]);
    }

    #[test]
    fn degenerate_range() {
        let values = vec![5u32, 6, 7];
        let (mut gpu, t) = setup(&values);
        // low > high selects nothing.
        let (_, count) = range_select(&mut gpu, &t, 0, 7, 5).unwrap();
        assert_eq!(count, 0);
        // Point range selects exact matches.
        let (_, count) = range_select(&mut gpu, &t, 0, 6, 6).unwrap();
        assert_eq!(count, 1);
    }

    #[test]
    fn full_domain_range_selects_all() {
        let values: Vec<u32> = (0..50).collect();
        let (mut gpu, t) = setup(&values);
        let (_, count) = range_select(&mut gpu, &t, 0, 0, (1 << 24) - 1).unwrap();
        assert_eq!(count, 50);
    }

    #[test]
    fn boundary_at_24_bits() {
        let max = (1u32 << 24) - 1;
        let values = vec![max - 2, max - 1, max];
        let (mut gpu, t) = setup(&values);
        let (_, count) = range_select(&mut gpu, &t, 0, max - 1, max).unwrap();
        assert_eq!(count, 2);
    }
}
