//! OLAP primitives — the paper's §7 future work: "OLAP and data mining
//! tasks such as data cube roll up and drill-down [...] may benefit from
//! multiple fragment processors and vector processing capabilities."
//!
//! Built entirely from the paper's own primitives:
//!
//! * [`histogram`] — one `CopyToDepth`, then one depth-bounds pass per
//!   bucket with an asynchronous occlusion count: a b-bucket histogram
//!   costs `1 copy + b` fixed-function passes;
//! * [`group_by_count`] / [`group_by_aggregate`] — roll-up over a
//!   low-cardinality dimension: each group value is one `Equal`
//!   comparison pass (COUNT) or one stencil selection feeding the masked
//!   aggregates (SUM/AVG/MIN/MAX).

use crate::aggregate;
use crate::error::{EngineError, EngineResult};
use crate::ops::encode_depth_f64;
use crate::predicate::{compare_select, comparison_pass, copy_to_depth, OcclusionMode};
use crate::query::executor::AggValue;
use crate::table::GpuTable;
use gpudb_sim::state::ColorMask;
use gpudb_sim::{CompareFunc, Gpu, Phase};

/// A histogram bucket: inclusive value range and its record count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bucket {
    /// Inclusive lower edge.
    pub low: u32,
    /// Inclusive upper edge.
    pub high: u32,
    /// Records falling in `[low, high]`.
    pub count: u64,
}

/// Equi-width bucket edges over `[min, max]`.
pub fn equi_width_edges(min: u32, max: u32, buckets: usize) -> Vec<(u32, u32)> {
    assert!(buckets > 0, "need at least one bucket");
    let min = min.min(max);
    let span = (max - min) as u64 + 1;
    let width = span.div_ceil(buckets as u64).max(1);
    let mut edges = Vec::with_capacity(buckets);
    let mut low = min as u64;
    for _ in 0..buckets {
        if low > max as u64 {
            break;
        }
        let high = (low + width - 1).min(max as u64);
        edges.push((low as u32, high as u32));
        low = high + 1;
    }
    edges
}

/// Build a histogram over explicit inclusive bucket edges: one attribute
/// copy, then one depth-bounds occlusion pass per bucket.
pub fn histogram(
    gpu: &mut Gpu,
    table: &GpuTable,
    column: usize,
    edges: &[(u32, u32)],
) -> EngineResult<Vec<Bucket>> {
    copy_to_depth(gpu, table, column)?;
    gpu.set_phase(Phase::Compute);
    gpu.set_color_mask(ColorMask::NONE);
    gpu.set_depth_test(false, CompareFunc::Always);
    gpu.set_depth_write(false);

    let mut buckets = Vec::with_capacity(edges.len());
    for &(low, high) in edges {
        gpu.set_depth_bounds(true, encode_depth_f64(low), encode_depth_f64(high))?;
        gpu.begin_occlusion_query()?;
        gpu.draw_quad(table.rects(), 0.0)?;
        let count = gpu.end_occlusion_query_async()?;
        buckets.push(Bucket { low, high, count });
    }
    gpu.reset_state();
    Ok(buckets)
}

/// Equi-width histogram between the column's min and max (found with the
/// bit-descent order statistics first).
pub fn equi_width_histogram(
    gpu: &mut Gpu,
    table: &GpuTable,
    column: usize,
    buckets: usize,
) -> EngineResult<Vec<Bucket>> {
    if table.record_count() == 0 {
        return Err(EngineError::EmptyInput);
    }
    let min = aggregate::min(gpu, table, column, None)?;
    let max = aggregate::max(gpu, table, column, None)?;
    histogram(gpu, table, column, &equi_width_edges(min, max, buckets))
}

/// Maximum dimension cardinality accepted by the group-by roll-ups (each
/// group is at least one rendering pass).
pub const MAX_GROUPS: usize = 1024;

/// GROUP BY `dimension` → COUNT(*): one copy, then one `Equal` comparison
/// pass per distinct dimension value in `[min, max]`. Values with zero
/// count are omitted.
pub fn group_by_count(
    gpu: &mut Gpu,
    table: &GpuTable,
    dimension: usize,
) -> EngineResult<Vec<(u32, u64)>> {
    if table.record_count() == 0 {
        return Ok(Vec::new());
    }
    let min = aggregate::min(gpu, table, dimension, None)?;
    let max = aggregate::max(gpu, table, dimension, None)?;
    let cardinality = (max - min) as usize + 1;
    if cardinality > MAX_GROUPS {
        return Err(EngineError::InvalidQuery(format!(
            "dimension spans {cardinality} values (max {MAX_GROUPS}) — group-by \
             roll-up needs a low-cardinality dimension"
        )));
    }

    copy_to_depth(gpu, table, dimension)?;
    let mut groups = Vec::new();
    for value in min..=max {
        let count = comparison_pass(gpu, table, CompareFunc::Equal, value, OcclusionMode::Async)?;
        if count > 0 {
            groups.push((value, count));
        }
    }
    gpu.reset_state();
    Ok(groups)
}

/// Estimate the size of the equi-join `R.a = S.b` from per-bucket counts —
/// the application §5.11 motivates: "several algorithms have been designed
/// to implement join operations efficiently using selectivity estimation.
/// We compute the selectivity of a query using the COUNT algorithm."
///
/// Both columns are histogrammed on the device over a shared bucketing of
/// their combined domain; the classic uniform-within-bucket estimator then
/// gives `Σ_b r_b · s_b / width_b`. Estimation quality follows the usual
/// histogram trade-off (more buckets → more passes → better estimate).
pub fn estimate_equijoin_size(
    gpu: &mut Gpu,
    left: &GpuTable,
    left_column: usize,
    right: &GpuTable,
    right_column: usize,
    buckets: usize,
) -> EngineResult<f64> {
    if left.record_count() == 0 || right.record_count() == 0 {
        return Ok(0.0);
    }
    // Shared bucketing over the union of both domains.
    let l_min = aggregate::min(gpu, left, left_column, None)?;
    let l_max = aggregate::max(gpu, left, left_column, None)?;
    let r_min = aggregate::min(gpu, right, right_column, None)?;
    let r_max = aggregate::max(gpu, right, right_column, None)?;
    let edges = equi_width_edges(l_min.min(r_min), l_max.max(r_max), buckets);

    let l_hist = histogram(gpu, left, left_column, &edges)?;
    let r_hist = histogram(gpu, right, right_column, &edges)?;

    let mut estimate = 0.0f64;
    for (lb, rb) in l_hist.iter().zip(&r_hist) {
        debug_assert_eq!((lb.low, lb.high), (rb.low, rb.high));
        let width = (lb.high - lb.low) as f64 + 1.0;
        estimate += lb.count as f64 * rb.count as f64 / width;
    }
    Ok(estimate)
}

/// Aggregation applied per group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupAggregate {
    /// COUNT(*) per group.
    Count,
    /// SUM(measure) per group.
    Sum,
    /// AVG(measure) per group.
    Avg,
    /// MIN(measure) per group.
    Min,
    /// MAX(measure) per group.
    Max,
}

/// GROUP BY `dimension` → `agg(measure)`: the data-cube roll-up. Each
/// group builds a stencil selection (`dimension == value`) and runs the
/// masked aggregate over it.
pub fn group_by_aggregate(
    gpu: &mut Gpu,
    table: &GpuTable,
    dimension: usize,
    measure: usize,
    agg: GroupAggregate,
) -> EngineResult<Vec<(u32, AggValue)>> {
    if agg == GroupAggregate::Count {
        return Ok(group_by_count(gpu, table, dimension)?
            .into_iter()
            .map(|(v, c)| (v, AggValue::Count(c)))
            .collect());
    }
    table.column(measure)?;
    let groups = group_by_count(gpu, table, dimension)?;
    let mut out = Vec::with_capacity(groups.len());
    for (value, _count) in groups {
        let (selection, _) = compare_select(gpu, table, dimension, CompareFunc::Equal, value)?;
        let result = match agg {
            GroupAggregate::Sum => {
                AggValue::Sum(aggregate::sum(gpu, table, measure, Some(&selection))?)
            }
            GroupAggregate::Avg => {
                AggValue::Avg(aggregate::avg(gpu, table, measure, Some(&selection))?)
            }
            GroupAggregate::Min => {
                AggValue::Value(aggregate::min(gpu, table, measure, Some(&selection))?)
            }
            GroupAggregate::Max => {
                AggValue::Value(aggregate::max(gpu, table, measure, Some(&selection))?)
            }
            GroupAggregate::Count => unreachable!("handled above"),
        };
        out.push((value, result));
    }
    Ok(out)
}

/// A two-dimensional GROUP BY — the "data cube roll up" of the paper's
/// §7 future work. Every (d1, d2) cell with at least one record gets a
/// COUNT; cells are produced by one `Equal` selection on the first
/// dimension and per-value masked comparison passes on the second.
///
/// Cost: `|D1|` selections + `|D1| · |D2|` comparison passes, bounded by
/// [`MAX_GROUPS`] total cells.
pub fn cube_count(
    gpu: &mut Gpu,
    table: &GpuTable,
    dim1: usize,
    dim2: usize,
) -> EngineResult<Vec<((u32, u32), u64)>> {
    if table.record_count() == 0 {
        return Ok(Vec::new());
    }
    let d1_groups = group_by_count(gpu, table, dim1)?;
    let d2_min = aggregate::min(gpu, table, dim2, None)?;
    let d2_max = aggregate::max(gpu, table, dim2, None)?;
    let d2_card = (d2_max - d2_min) as usize + 1;
    if d1_groups.len() * d2_card > MAX_GROUPS {
        return Err(EngineError::InvalidQuery(format!(
            "cube spans {} cells (max {MAX_GROUPS})",
            d1_groups.len() * d2_card
        )));
    }

    let mut cells = Vec::new();
    for (v1, _) in d1_groups {
        // Select dim1 == v1, then count dim2 == v2 within it: the stencil
        // mask persists across the per-v2 comparison passes.
        let (_selection, _) = compare_select(gpu, table, dim1, CompareFunc::Equal, v1)?;
        copy_to_depth(gpu, table, dim2)?;
        gpu.set_phase(Phase::Compute);
        for v2 in d2_min..=d2_max {
            gpu.set_stencil_func(true, CompareFunc::Equal, crate::selection::SELECTED, 0xFF);
            gpu.set_stencil_op(
                gpudb_sim::StencilOp::Keep,
                gpudb_sim::StencilOp::Keep,
                gpudb_sim::StencilOp::Keep,
            );
            let count = comparison_pass(gpu, table, CompareFunc::Equal, v2, OcclusionMode::Async)?;
            if count > 0 {
                cells.push(((v1, v2), count));
            }
        }
        gpu.reset_state();
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(dim: &[u32], measure: &[u32]) -> (Gpu, GpuTable) {
        let mut gpu = GpuTable::device_for(dim.len(), 16);
        let t = GpuTable::upload(&mut gpu, "t", &[("dim", dim), ("m", measure)]).unwrap();
        (gpu, t)
    }

    #[test]
    fn equi_width_edges_cover_domain() {
        let edges = equi_width_edges(0, 99, 4);
        assert_eq!(edges, vec![(0, 24), (25, 49), (50, 74), (75, 99)]);
        // Degenerate single-value domain.
        assert_eq!(equi_width_edges(7, 7, 3), vec![(7, 7)]);
        // Narrow domain, many buckets: no empty trailing edges.
        let edges = equi_width_edges(0, 2, 10);
        assert_eq!(edges, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn histogram_counts_match_reference() {
        let values: Vec<u32> = (0..500u32).map(|i| (i * 17) % 100).collect();
        let measure = vec![0u32; 500];
        let (mut gpu, t) = setup(&values, &measure);
        let edges = equi_width_edges(0, 99, 5);
        let buckets = histogram(&mut gpu, &t, 0, &edges).unwrap();
        assert_eq!(buckets.len(), 5);
        for b in &buckets {
            let expected = values
                .iter()
                .filter(|&&v| v >= b.low && v <= b.high)
                .count() as u64;
            assert_eq!(b.count, expected, "bucket [{}, {}]", b.low, b.high);
        }
        let total: u64 = buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 500);
    }

    #[test]
    fn histogram_cost_is_one_copy_plus_one_pass_per_bucket() {
        let values: Vec<u32> = (0..200).collect();
        let measure = vec![0u32; 200];
        let (mut gpu, t) = setup(&values, &measure);
        gpu.reset_stats();
        histogram(&mut gpu, &t, 0, &equi_width_edges(0, 199, 8)).unwrap();
        assert_eq!(gpu.stats().draw_calls, 1 + 8);
        assert_eq!(gpu.stats().fragments_shaded, 200, "only the copy shades");
    }

    #[test]
    fn equi_width_histogram_end_to_end() {
        let values: Vec<u32> = (0..300u32).map(|i| 50 + (i * 31) % 200).collect();
        let measure = vec![0u32; 300];
        let (mut gpu, t) = setup(&values, &measure);
        let buckets = equi_width_histogram(&mut gpu, &t, 0, 6).unwrap();
        let total: u64 = buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, 300);
        assert_eq!(buckets.first().unwrap().low, *values.iter().min().unwrap());
        assert_eq!(buckets.last().unwrap().high, *values.iter().max().unwrap());
    }

    #[test]
    fn group_by_count_matches_reference() {
        let dim: Vec<u32> = (0..240u32).map(|i| 3 + i % 5).collect();
        let measure: Vec<u32> = (0..240).collect();
        let (mut gpu, t) = setup(&dim, &measure);
        let groups = group_by_count(&mut gpu, &t, 0).unwrap();
        assert_eq!(groups.len(), 5);
        for &(value, count) in &groups {
            let expected = dim.iter().filter(|&&v| v == value).count() as u64;
            assert_eq!(count, expected, "group {value}");
        }
    }

    #[test]
    fn group_by_omits_empty_groups() {
        let dim = vec![1u32, 1, 5, 5, 5]; // values 2,3,4 absent
        let measure = vec![0u32; 5];
        let (mut gpu, t) = setup(&dim, &measure);
        let groups = group_by_count(&mut gpu, &t, 0).unwrap();
        assert_eq!(groups, vec![(1, 2), (5, 3)]);
    }

    #[test]
    fn group_by_aggregate_rollup() {
        let dim: Vec<u32> = (0..60u32).map(|i| i % 3).collect();
        let measure: Vec<u32> = (0..60u32).map(|i| i * 10).collect();
        let (mut gpu, t) = setup(&dim, &measure);

        let reference =
            |g: u32| -> Vec<u32> { (0..60u32).filter(|i| i % 3 == g).map(|i| i * 10).collect() };

        let sums = group_by_aggregate(&mut gpu, &t, 0, 1, GroupAggregate::Sum).unwrap();
        for &(g, ref v) in &sums {
            let expected: u64 = reference(g).iter().map(|&x| x as u64).sum();
            assert_eq!(v, &AggValue::Sum(expected), "group {g}");
        }

        let maxes = group_by_aggregate(&mut gpu, &t, 0, 1, GroupAggregate::Max).unwrap();
        for &(g, ref v) in &maxes {
            assert_eq!(v, &AggValue::Value(*reference(g).iter().max().unwrap()));
        }

        let mins = group_by_aggregate(&mut gpu, &t, 0, 1, GroupAggregate::Min).unwrap();
        for &(g, ref v) in &mins {
            assert_eq!(v, &AggValue::Value(*reference(g).iter().min().unwrap()));
        }

        let avgs = group_by_aggregate(&mut gpu, &t, 0, 1, GroupAggregate::Avg).unwrap();
        for &(g, ref v) in &avgs {
            let vals = reference(g);
            let expected = vals.iter().map(|&x| x as f64).sum::<f64>() / vals.len() as f64;
            match v {
                AggValue::Avg(a) => assert!((a - expected).abs() < 1e-9),
                other => panic!("unexpected {other:?}"),
            }
        }

        let counts = group_by_aggregate(&mut gpu, &t, 0, 1, GroupAggregate::Count).unwrap();
        assert_eq!(counts.len(), 3);
        assert!(counts.iter().all(|(_, v)| v == &AggValue::Count(20)));
    }

    #[test]
    fn join_estimate_matches_host_formula() {
        let left_vals: Vec<u32> = (0..300u32).map(|i| (i * 17) % 64).collect();
        let right_vals: Vec<u32> = (0..200u32).map(|i| (i * 29 + 5) % 64).collect();
        let pad = vec![0u32; 300];
        let pad_r = vec![0u32; 200];
        let mut gpu_l = GpuTable::device_for(300, 20);
        let left = GpuTable::upload(&mut gpu_l, "l", &[("a", &left_vals), ("x", &pad)]).unwrap();
        let right = GpuTable::upload(&mut gpu_l, "r", &[("b", &right_vals), ("x", &pad_r)]);
        // Both tables must fit one device's framebuffer grid; re-upload the
        // right table on its own device if the grid differs.
        let right = match right {
            Ok(r) => r,
            Err(_) => panic!("right table upload failed"),
        };

        let est = estimate_equijoin_size(&mut gpu_l, &left, 0, &right, 0, 8).unwrap();

        // Host mirror of the estimator.
        let min = *left_vals.iter().chain(&right_vals).min().unwrap();
        let max = *left_vals.iter().chain(&right_vals).max().unwrap();
        let edges = equi_width_edges(min, max, 8);
        let expected: f64 = edges
            .iter()
            .map(|&(lo, hi)| {
                let l = left_vals.iter().filter(|&&v| v >= lo && v <= hi).count() as f64;
                let r = right_vals.iter().filter(|&&v| v >= lo && v <= hi).count() as f64;
                l * r / ((hi - lo) as f64 + 1.0)
            })
            .sum();
        assert!(
            (est - expected).abs() < 1e-9,
            "est {est} expected {expected}"
        );

        // Sanity: for these fairly uniform 6-bit keys the estimate is
        // within 2x of the exact join size.
        let exact: usize = left_vals
            .iter()
            .map(|&lv| right_vals.iter().filter(|&&rv| rv == lv).count())
            .sum();
        assert!(
            est > exact as f64 / 2.0 && est < exact as f64 * 2.0,
            "est {est} vs exact {exact}"
        );
    }

    #[test]
    fn join_estimate_empty_inputs() {
        let vals: Vec<u32> = (0..10).collect();
        let empty: Vec<u32> = vec![];
        let mut gpu = GpuTable::device_for(10, 5);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", &vals)]).unwrap();
        let e = GpuTable::upload(&mut gpu, "e", &[("a", &empty)]).unwrap();
        assert_eq!(
            estimate_equijoin_size(&mut gpu, &t, 0, &e, 0, 4).unwrap(),
            0.0
        );
        assert_eq!(
            estimate_equijoin_size(&mut gpu, &e, 0, &t, 0, 4).unwrap(),
            0.0
        );
    }

    #[test]
    fn cube_count_matches_reference() {
        let d1: Vec<u32> = (0..120u32).map(|i| i % 3).collect();
        let d2: Vec<u32> = (0..120u32).map(|i| 5 + (i / 3) % 4).collect();
        let (mut gpu, t) = setup(&d1, &d2);
        let cells = cube_count(&mut gpu, &t, 0, 1).unwrap();
        let mut total = 0u64;
        for &((v1, v2), count) in &cells {
            let expected = (0..120).filter(|&i| d1[i] == v1 && d2[i] == v2).count() as u64;
            assert_eq!(count, expected, "cell ({v1}, {v2})");
            assert!(count > 0, "empty cells omitted");
            total += count;
        }
        assert_eq!(total, 120, "cells partition the table");
    }

    #[test]
    fn cube_rejects_oversized_grids() {
        let d1: Vec<u32> = (0..200).collect();
        let d2: Vec<u32> = (0..200).collect();
        let mut gpu = GpuTable::device_for(200, 16);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", &d1), ("b", &d2)]).unwrap();
        assert!(matches!(
            cube_count(&mut gpu, &t, 0, 1).unwrap_err(),
            EngineError::InvalidQuery(_)
        ));
    }

    #[test]
    fn high_cardinality_dimension_rejected() {
        let dim: Vec<u32> = (0..3000).collect();
        let measure = vec![0u32; 3000];
        let mut gpu = GpuTable::device_for(3000, 64);
        let t = GpuTable::upload(&mut gpu, "t", &[("dim", &dim), ("m", &measure)]).unwrap();
        assert!(matches!(
            group_by_count(&mut gpu, &t, 0).unwrap_err(),
            EngineError::InvalidQuery(_)
        ));
    }

    #[test]
    fn empty_table_olap() {
        let (mut gpu, t) = setup(&[], &[]);
        assert!(group_by_count(&mut gpu, &t, 0).unwrap().is_empty());
        assert!(matches!(
            equi_width_histogram(&mut gpu, &t, 0, 4).unwrap_err(),
            EngineError::EmptyInput
        ));
    }
}
