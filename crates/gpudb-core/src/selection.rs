//! Selections: the stencil buffer as a record mask.
//!
//! §3.4 of the paper: "we can consider the stencil buffer as a mask on the
//! screen." Every selection operation in this crate leaves the invariant
//! *stencil == 1 on selected records' pixels* (pixels outside the record
//! rectangles are never consulted), so selections compose: aggregates take
//! an optional [`Selection`] and restrict their passes with a stencil test.

use crate::error::EngineResult;
use crate::table::GpuTable;
use gpudb_sim::raster::Rect;
use gpudb_sim::state::ColorMask;
use gpudb_sim::{CompareFunc, Gpu, Phase, StencilOp};

/// The stencil value marking selected records.
pub const SELECTED: u8 = 1;

/// A selection over a table's records, materialized in the device stencil
/// buffer (stencil == [`SELECTED`] on selected pixels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    record_count: usize,
    width: usize,
    rects: Vec<Rect>,
    /// A constant-empty selection matches nothing *by construction* (e.g.
    /// an inverted range): no stencil was written for it, so every device
    /// consumer must — and does — short-circuit instead of testing
    /// stencil values that were never established.
    const_empty: bool,
}

impl Selection {
    /// Describe a selection over a table (does not touch the device; the
    /// stencil contents are produced by the selection operations).
    pub(crate) fn over_table(table: &GpuTable) -> Selection {
        Selection {
            record_count: table.record_count(),
            width: table.width(),
            rects: table.rects().to_vec(),
            const_empty: false,
        }
    }

    /// A selection over `table` that matches no records, decided on the
    /// host (e.g. a degenerate range with `low > high`). Costs nothing on
    /// the device — no stencil clear, no pass — and every consumer
    /// ([`Selection::count`], [`Selection::read_mask`], aggregates)
    /// short-circuits on it.
    pub(crate) fn const_empty(table: &GpuTable) -> Selection {
        Selection {
            record_count: table.record_count(),
            width: table.width(),
            rects: Vec::new(),
            const_empty: true,
        }
    }

    /// Whether this selection is empty by construction (no device state
    /// backs it; consumers must not test the stencil buffer).
    pub fn is_const_empty(&self) -> bool {
        self.const_empty
    }

    /// Select *all* records of a table: writes stencil = 1 over the record
    /// rectangles in one fixed-function pass.
    pub fn select_all(gpu: &mut Gpu, table: &GpuTable) -> EngineResult<Selection> {
        gpu.set_phase(Phase::Compute);
        gpu.reset_state();
        gpu.clear_stencil(0);
        gpu.set_color_mask(ColorMask::NONE);
        gpu.set_depth_write(false);
        gpu.set_stencil_func(true, CompareFunc::Always, SELECTED, 0xFF);
        gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, StencilOp::Replace);
        gpu.draw_quad(table.rects(), 0.0)?;
        gpu.reset_state();
        Ok(Selection::over_table(table))
    }

    /// Number of records the selection ranges over (not the number
    /// selected — see [`Selection::count`]).
    pub fn record_count(&self) -> usize {
        self.record_count
    }

    /// The record rectangles.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Count the selected records with an occlusion-query pass (the
    /// paper's COUNT, §4.3.1): render the record quad with a stencil test
    /// for the selected value and read back the pixel pass count.
    pub fn count(&self, gpu: &mut Gpu) -> EngineResult<u64> {
        if self.const_empty {
            return Ok(0);
        }
        gpu.set_phase(Phase::Compute);
        gpu.reset_state();
        gpu.set_color_mask(ColorMask::NONE);
        gpu.set_depth_write(false);
        gpu.set_stencil_func(true, CompareFunc::Equal, SELECTED, 0xFF);
        gpu.set_stencil_op(StencilOp::Keep, StencilOp::Keep, StencilOp::Keep);
        gpu.begin_occlusion_query()?;
        gpu.draw_quad(&self.rects, 0.0)?;
        let count = gpu.end_occlusion_query()?;
        gpu.reset_state();
        Ok(count)
    }

    /// Selectivity of the selection in `[0, 1]`.
    pub fn selectivity(&self, gpu: &mut Gpu) -> EngineResult<f64> {
        if self.record_count == 0 || self.const_empty {
            return Ok(0.0);
        }
        Ok(self.count(gpu)? as f64 / self.record_count as f64)
    }

    /// Read the selection back to the host as one bool per record — the
    /// expensive full-readback path GPU algorithms avoid; provided for
    /// verification and result delivery.
    pub fn read_mask(&self, gpu: &mut Gpu) -> EngineResult<Vec<bool>> {
        if self.const_empty {
            return Ok(vec![false; self.record_count]);
        }
        let stencil = gpu.read_stencil_buffer()?;
        Ok(stencil
            .into_iter()
            .take(self.record_count)
            .map(|s| s == SELECTED)
            .collect())
    }

    /// Indices of the selected records (host-side).
    pub fn read_indices(&self, gpu: &mut Gpu) -> EngineResult<Vec<usize>> {
        Ok(self
            .read_mask(gpu)?
            .into_iter()
            .enumerate()
            .filter_map(|(i, selected)| selected.then_some(i))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::GpuTable;

    fn table(gpu: &mut Gpu, n: usize) -> GpuTable {
        let a: Vec<u32> = (0..n as u32).collect();
        GpuTable::upload(gpu, "t", &[("a", &a)]).unwrap()
    }

    #[test]
    fn select_all_counts_every_record() {
        let mut gpu = GpuTable::device_for(10, 4);
        let t = table(&mut gpu, 10);
        let sel = Selection::select_all(&mut gpu, &t).unwrap();
        assert_eq!(sel.count(&mut gpu).unwrap(), 10);
        assert_eq!(sel.selectivity(&mut gpu).unwrap(), 1.0);
        assert_eq!(sel.read_mask(&mut gpu).unwrap(), vec![true; 10]);
    }

    #[test]
    fn padding_pixels_not_counted() {
        // 10 records on a 4-wide grid: 2 padding pixels in the last row.
        let mut gpu = GpuTable::device_for(10, 4);
        let t = table(&mut gpu, 10);
        // Pollute the whole stencil buffer, then select-all: only record
        // pixels should count.
        gpu.clear_stencil(SELECTED);
        let sel = Selection::select_all(&mut gpu, &t).unwrap();
        assert_eq!(sel.count(&mut gpu).unwrap(), 10);
    }

    #[test]
    fn empty_table_selection() {
        let mut gpu = GpuTable::device_for(0, 4);
        let t = table(&mut gpu, 0);
        let sel = Selection::select_all(&mut gpu, &t).unwrap();
        assert_eq!(sel.count(&mut gpu).unwrap(), 0);
        assert_eq!(sel.selectivity(&mut gpu).unwrap(), 0.0);
        assert!(sel.read_mask(&mut gpu).unwrap().is_empty());
    }

    #[test]
    fn read_indices_match_mask() {
        let mut gpu = GpuTable::device_for(10, 4);
        let t = table(&mut gpu, 10);
        let sel = Selection::select_all(&mut gpu, &t).unwrap();
        assert_eq!(
            sel.read_indices(&mut gpu).unwrap(),
            (0..10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn const_empty_selection_touches_no_device_state() {
        let mut gpu = GpuTable::device_for(10, 4);
        let t = table(&mut gpu, 10);
        // Pollute the stencil buffer: a const-empty selection must not
        // consult it (it was never cleared on the empty path).
        gpu.clear_stencil(SELECTED);
        let counters = gpu.stats().counters();
        let sel = Selection::const_empty(&t);
        assert!(sel.is_const_empty());
        assert_eq!(sel.record_count(), 10);
        assert_eq!(sel.count(&mut gpu).unwrap(), 0);
        assert_eq!(sel.selectivity(&mut gpu).unwrap(), 0.0);
        assert_eq!(sel.read_mask(&mut gpu).unwrap(), vec![false; 10]);
        assert!(sel.read_indices(&mut gpu).unwrap().is_empty());
        // count() issued no occlusion query, no draw — and read_mask no
        // stencil readback.
        assert_eq!(gpu.stats().counters(), counters);
    }

    #[test]
    fn count_uses_one_occlusion_readback() {
        let mut gpu = GpuTable::device_for(10, 4);
        let t = table(&mut gpu, 10);
        let sel = Selection::select_all(&mut gpu, &t).unwrap();
        let before = gpu.stats().occlusion_readbacks;
        sel.count(&mut gpu).unwrap();
        assert_eq!(gpu.stats().occlusion_readbacks, before + 1);
    }
}
