//! Query abstract syntax: the `SELECT A FROM T WHERE C` shape of §4.
//!
//! "A basic SQL query is in the form of SELECT A FROM T WHERE C where A
//! may be a list of attributes or aggregations (SUM, COUNT, AVG, MIN, MAX)
//! defined on individual attributes, and C is a boolean combination [...]
//! of predicates that have the form `ai op aj` or `ai op constant`."

use gpudb_sim::CompareFunc;

/// A boolean filter expression over named columns.
#[derive(Debug, Clone, PartialEq)]
pub enum BoolExpr {
    /// `column op constant`.
    Pred {
        /// Column name.
        column: String,
        /// Comparison operator.
        op: CompareFunc,
        /// Constant operand.
        constant: u32,
    },
    /// `column IN (v1, v2, ...)` — a disjunction of equalities, planned
    /// as one CNF clause of `Equal` predicates.
    InList {
        /// Column name.
        column: String,
        /// The membership set.
        values: Vec<u32>,
    },
    /// `low <= column <= high` (inclusive) — plannable as a single-pass
    /// depth-bounds range query.
    Between {
        /// Column name.
        column: String,
        /// Inclusive lower bound.
        low: u32,
        /// Inclusive upper bound.
        high: u32,
    },
    /// `left op right` over two columns (`ai op aj`), rewritten by the
    /// planner as the semi-linear query `ai - aj op 0`.
    CompareColumns {
        /// Left column name.
        left: String,
        /// Comparison operator.
        op: CompareFunc,
        /// Right column name.
        right: String,
    },
    /// A general semi-linear predicate `Σ c_i · column_i op b`.
    SemiLinear {
        /// Named coefficients.
        terms: Vec<(String, f32)>,
        /// Comparison operator.
        op: CompareFunc,
        /// Constant right-hand side.
        constant: f32,
    },
    /// Logical conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Logical disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Logical negation.
    Not(Box<BoolExpr>),
}

impl BoolExpr {
    /// `column op constant` convenience constructor.
    pub fn pred(column: impl Into<String>, op: CompareFunc, constant: u32) -> BoolExpr {
        BoolExpr::Pred {
            column: column.into(),
            op,
            constant,
        }
    }

    /// `self AND other`.
    pub fn and(self, other: BoolExpr) -> BoolExpr {
        BoolExpr::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: BoolExpr) -> BoolExpr {
        BoolExpr::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> BoolExpr {
        BoolExpr::Not(Box::new(self))
    }
}

/// An aggregation over the selected records.
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregate {
    /// `COUNT(*)` — occlusion-query count.
    Count,
    /// `SUM(column)` — bitwise accumulator.
    Sum(String),
    /// `AVG(column)` — SUM / COUNT.
    Avg(String),
    /// `MIN(column)` — k-th smallest with k = 1.
    Min(String),
    /// `MAX(column)` — k-th largest with k = 1.
    Max(String),
    /// `MEDIAN(column)` — k-th smallest with k = ⌈n/2⌉.
    Median(String),
    /// `KTH_LARGEST(column, k)`.
    KthLargest(String, usize),
    /// `KTH_SMALLEST(column, k)`.
    KthSmallest(String, usize),
    /// `PERCENTILE(column, p)` with `p` in `[0, 1]` (nearest rank).
    Percentile(String, f64),
}

impl Aggregate {
    /// The column the aggregate reads, if any.
    pub fn column(&self) -> Option<&str> {
        match self {
            Aggregate::Count => None,
            Aggregate::Sum(c)
            | Aggregate::Avg(c)
            | Aggregate::Min(c)
            | Aggregate::Max(c)
            | Aggregate::Median(c)
            | Aggregate::KthLargest(c, _)
            | Aggregate::KthSmallest(c, _)
            | Aggregate::Percentile(c, _) => Some(c),
        }
    }

    /// Human-readable label for result rows.
    pub fn label(&self) -> String {
        match self {
            Aggregate::Count => "COUNT(*)".to_string(),
            Aggregate::Sum(c) => format!("SUM({c})"),
            Aggregate::Avg(c) => format!("AVG({c})"),
            Aggregate::Min(c) => format!("MIN({c})"),
            Aggregate::Max(c) => format!("MAX({c})"),
            Aggregate::Median(c) => format!("MEDIAN({c})"),
            Aggregate::KthLargest(c, k) => format!("KTH_LARGEST({c}, {k})"),
            Aggregate::KthSmallest(c, k) => format!("KTH_SMALLEST({c}, {k})"),
            Aggregate::Percentile(c, p) => format!("PERCENTILE({c}, {p})"),
        }
    }
}

/// A complete query: aggregates over an optionally filtered table.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The SELECT list.
    pub aggregates: Vec<Aggregate>,
    /// The WHERE clause, if any.
    pub filter: Option<BoolExpr>,
}

impl Query {
    /// A query with no filter.
    pub fn aggregate_all(aggregates: Vec<Aggregate>) -> Query {
        Query {
            aggregates,
            filter: None,
        }
    }

    /// A query with a filter.
    pub fn filtered(aggregates: Vec<Aggregate>, filter: BoolExpr) -> Query {
        Query {
            aggregates,
            filter: Some(filter),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpudb_sim::CompareFunc::*;

    #[test]
    fn builder_combinators() {
        let e = BoolExpr::pred("a", Less, 10)
            .and(BoolExpr::pred("b", GreaterEqual, 5))
            .or(BoolExpr::pred("c", Equal, 1).not());
        match e {
            BoolExpr::Or(lhs, rhs) => {
                assert!(matches!(*lhs, BoolExpr::And(_, _)));
                assert!(matches!(*rhs, BoolExpr::Not(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregate_labels_and_columns() {
        assert_eq!(Aggregate::Count.label(), "COUNT(*)");
        assert_eq!(Aggregate::Count.column(), None);
        assert_eq!(Aggregate::Sum("x".into()).label(), "SUM(x)");
        assert_eq!(
            Aggregate::KthLargest("y".into(), 3).label(),
            "KTH_LARGEST(y, 3)"
        );
        assert_eq!(Aggregate::Median("m".into()).column(), Some("m"));
    }
}
