//! Query planning: boolean filter expressions → GPU execution plans.
//!
//! The planner performs NOT-elimination (operator inversion, §4.2),
//! rewrites column–column comparisons as semi-linear queries (§4.1.2),
//! converts general boolean trees to CNF for `EvalCNF`, and recognizes the
//! range pattern `(x >= low) AND (x <= high)` to use the single-pass
//! depth-bounds `Range` (Routine 4.4) instead of a two-pass CNF — the
//! paper's own query optimization.

use crate::boolean::{GpuClause, GpuCnf, GpuDnf, GpuPredicate, GpuTerm};
use crate::error::{EngineError, EngineResult};
use crate::query::ast::BoolExpr;
use crate::table::GpuTable;
use gpudb_sim::CompareFunc;

/// Upper bound on CNF clauses after distribution, to keep the pass count
/// (and the planner's memory) sane.
const MAX_CNF_CLAUSES: usize = 64;

/// The physical selection strategy chosen for a filter.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectionPlan {
    /// No filter: select every record.
    All,
    /// Single-pass depth-bounds range query (Routine 4.4).
    Range {
        /// Column index.
        column: usize,
        /// Inclusive lower bound.
        low: u32,
        /// Inclusive upper bound.
        high: u32,
    },
    /// Stencil-based CNF evaluation (Routine 4.3 / conjunction fast path).
    Cnf(GpuCnf),
    /// Stencil-based DNF evaluation (the §4.2 DNF variant) — chosen when
    /// the filter is disjunctive enough that CNF distribution would
    /// explode.
    Dnf(GpuDnf),
    /// One semi-linear kill pass (Routine 4.2). Coefficients are aligned
    /// to column indices `0..len`.
    SemiLinear {
        /// Per-column coefficients.
        coefficients: Vec<f32>,
        /// Comparison operator.
        op: CompareFunc,
        /// Right-hand constant.
        constant: f32,
    },
}

impl SelectionPlan {
    /// Human-readable plan description, for EXPLAIN output.
    pub fn describe(&self, table: &GpuTable) -> String {
        let col = |i: usize| -> String {
            table
                .column(i)
                .map(|c| c.name.clone())
                .unwrap_or_else(|_| format!("col{i}"))
        };
        match self {
            SelectionPlan::All => "SCAN ALL (no filter)".to_string(),
            SelectionPlan::Range { column, low, high } => format!(
                "RANGE depth-bounds pass on {} in [{low}, {high}] (1 copy + 1 pass)",
                col(*column)
            ),
            SelectionPlan::Cnf(cnf) => {
                let conjunction = cnf.clauses.iter().all(|c| c.predicates.len() == 1);
                if conjunction {
                    format!(
                        "CONJUNCTION fast path: {} predicate pass(es), one per attribute",
                        cnf.clauses.len()
                    )
                } else {
                    format!(
                        "EVALCNF (Routine 4.3): {} clause(s), {} predicate(s)",
                        cnf.clauses.len(),
                        cnf.predicate_count()
                    )
                }
            }
            SelectionPlan::Dnf(dnf) => format!(
                "EVALDNF: {} term(s), {} predicate(s) (CNF distribution would explode)",
                dnf.terms.len(),
                dnf.predicate_count()
            ),
            SelectionPlan::SemiLinear {
                coefficients,
                op,
                constant,
            } => {
                let terms: Vec<String> = coefficients
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c != 0.0)
                    .map(|(i, &c)| format!("{c}*{}", col(i)))
                    .collect();
                format!(
                    "SEMILINEAR kill pass: {} {op:?} {constant}",
                    terms.join(" + ")
                )
            }
        }
    }
}

/// Plan a filter expression against a table's schema.
pub fn plan_selection(table: &GpuTable, filter: Option<&BoolExpr>) -> EngineResult<SelectionPlan> {
    let Some(filter) = filter else {
        return Ok(SelectionPlan::All);
    };

    // Standalone semi-linear / column-comparison atoms get their dedicated
    // single-pass plans (possibly under NOT, which inverts the operator).
    if let Some(plan) = plan_semilinear_atom(table, filter, false)? {
        return Ok(plan);
    }

    // General predicate tree: NNF, then CNF — falling back to DNF when
    // OR-over-AND distribution would explode (the dual distribution can be
    // small exactly when the CNF one is large).
    let nnf = to_nnf(filter.clone(), false)?;
    let cnf = match to_cnf(table, &nnf) {
        Ok(cnf) => cnf,
        Err(cnf_err) => {
            return match to_dnf(table, &nnf) {
                Ok(dnf) => Ok(SelectionPlan::Dnf(dnf)),
                Err(_) => Err(cnf_err),
            }
        }
    };

    // Range recognition: exactly `x >= low AND x <= high` on one column.
    if let Some((column, low, high)) = recognize_range(&cnf) {
        return Ok(SelectionPlan::Range { column, low, high });
    }
    Ok(SelectionPlan::Cnf(cnf))
}

/// Convert an NNF predicate tree to DNF by distributing AND over OR.
fn to_dnf(table: &GpuTable, expr: &BoolExpr) -> EngineResult<GpuDnf> {
    let terms = dnf_terms(table, expr)?;
    if terms.len() > MAX_CNF_CLAUSES {
        return Err(EngineError::InvalidQuery(format!(
            "filter expands to {} DNF terms (max {MAX_CNF_CLAUSES})",
            terms.len()
        )));
    }
    Ok(GpuDnf::new(terms))
}

fn dnf_terms(table: &GpuTable, expr: &BoolExpr) -> EngineResult<Vec<GpuTerm>> {
    match expr {
        BoolExpr::Pred {
            column,
            op,
            constant,
        } => {
            let idx = table.column_index(column)?;
            Ok(vec![GpuTerm::single(GpuPredicate::new(
                idx, *op, *constant,
            ))])
        }
        BoolExpr::Or(a, b) => {
            let mut terms = dnf_terms(table, a)?;
            terms.extend(dnf_terms(table, b)?);
            Ok(terms)
        }
        BoolExpr::And(a, b) => {
            let left = dnf_terms(table, a)?;
            let right = dnf_terms(table, b)?;
            if left.len() * right.len() > MAX_CNF_CLAUSES {
                return Err(EngineError::InvalidQuery(format!(
                    "AND distribution would produce {} terms (max {MAX_CNF_CLAUSES})",
                    left.len() * right.len()
                )));
            }
            let mut out = Vec::with_capacity(left.len() * right.len());
            for lt in &left {
                for rt in &right {
                    let mut preds = lt.predicates.clone();
                    preds.extend(rt.predicates.iter().copied());
                    out.push(GpuTerm::all(preds));
                }
            }
            Ok(out)
        }
        other => Err(EngineError::InvalidQuery(format!(
            "unexpected node in NNF tree: {other:?}"
        ))),
    }
}

/// Try to plan the whole filter as one semi-linear pass. `negated` tracks
/// an odd number of enclosing NOTs.
fn plan_semilinear_atom(
    table: &GpuTable,
    expr: &BoolExpr,
    negated: bool,
) -> EngineResult<Option<SelectionPlan>> {
    match expr {
        BoolExpr::Not(inner) => plan_semilinear_atom(table, inner, !negated),
        BoolExpr::CompareColumns { left, op, right } => {
            let li = table.column_index(left)?;
            let ri = table.column_index(right)?;
            let op = if negated { op.negate() } else { *op };
            let width = li.max(ri) + 1;
            let mut coefficients = vec![0.0f32; width];
            coefficients[li] += 1.0;
            coefficients[ri] -= 1.0;
            Ok(Some(SelectionPlan::SemiLinear {
                coefficients,
                op,
                constant: 0.0,
            }))
        }
        BoolExpr::SemiLinear {
            terms,
            op,
            constant,
        } => {
            let op = if negated { op.negate() } else { *op };
            let mut width = 0usize;
            let mut resolved = Vec::with_capacity(terms.len());
            for (name, coeff) in terms {
                let idx = table.column_index(name)?;
                width = width.max(idx + 1);
                resolved.push((idx, *coeff));
            }
            let mut coefficients = vec![0.0f32; width];
            for (idx, coeff) in resolved {
                coefficients[idx] += coeff;
            }
            Ok(Some(SelectionPlan::SemiLinear {
                coefficients,
                op,
                constant: *constant,
            }))
        }
        _ => Ok(None),
    }
}

/// Negation-normal form over simple predicates: push NOT down to the
/// leaves and eliminate it by operator inversion; expand BETWEEN.
/// Semi-linear atoms inside boolean structure are unsupported (they cannot
/// share the stencil protocol of `EvalCNF`).
fn to_nnf(expr: BoolExpr, negated: bool) -> EngineResult<BoolExpr> {
    Ok(match expr {
        BoolExpr::Pred {
            column,
            op,
            constant,
        } => BoolExpr::Pred {
            column,
            op: if negated { op.negate() } else { op },
            constant,
        },
        BoolExpr::InList { column, values } => {
            if values.is_empty() {
                // Empty membership set: FALSE (or TRUE when negated);
                // encode with a Never/Always predicate on the column.
                return to_nnf(BoolExpr::pred(column, CompareFunc::Never, 0), negated);
            }
            // Positive: v0 = x OR v1 = x OR ...; negated: AND of !=.
            let mut iter = values.into_iter();
            let first = iter.next().expect("non-empty");
            let mut e = BoolExpr::pred(column.clone(), CompareFunc::Equal, first);
            for v in iter {
                e = e.or(BoolExpr::pred(column.clone(), CompareFunc::Equal, v));
            }
            return to_nnf(e, negated);
        }
        BoolExpr::Between { column, low, high } => {
            let ge = BoolExpr::pred(column.clone(), CompareFunc::GreaterEqual, low);
            let le = BoolExpr::pred(column, CompareFunc::LessEqual, high);
            if negated {
                // ¬(low <= x <= high) = x < low OR x > high
                to_nnf(ge, true)?.or(to_nnf(le, true)?)
            } else {
                ge.and(le)
            }
        }
        BoolExpr::And(a, b) => {
            let a = to_nnf(*a, negated)?;
            let b = to_nnf(*b, negated)?;
            if negated {
                a.or(b)
            } else {
                a.and(b)
            }
        }
        BoolExpr::Or(a, b) => {
            let a = to_nnf(*a, negated)?;
            let b = to_nnf(*b, negated)?;
            if negated {
                a.and(b)
            } else {
                a.or(b)
            }
        }
        BoolExpr::Not(inner) => to_nnf(*inner, !negated)?,
        BoolExpr::CompareColumns { .. } | BoolExpr::SemiLinear { .. } => {
            return Err(EngineError::InvalidQuery(
                "semi-linear atoms cannot be combined with other predicates".to_string(),
            ))
        }
    })
}

/// Convert an NNF predicate tree to CNF by distributing OR over AND.
fn to_cnf(table: &GpuTable, expr: &BoolExpr) -> EngineResult<GpuCnf> {
    let clauses = cnf_clauses(table, expr)?;
    if clauses.len() > MAX_CNF_CLAUSES {
        return Err(EngineError::InvalidQuery(format!(
            "filter expands to {} CNF clauses (max {MAX_CNF_CLAUSES})",
            clauses.len()
        )));
    }
    Ok(GpuCnf::new(clauses))
}

fn cnf_clauses(table: &GpuTable, expr: &BoolExpr) -> EngineResult<Vec<GpuClause>> {
    match expr {
        BoolExpr::Pred {
            column,
            op,
            constant,
        } => {
            let idx = table.column_index(column)?;
            Ok(vec![GpuClause::single(GpuPredicate::new(
                idx, *op, *constant,
            ))])
        }
        BoolExpr::And(a, b) => {
            let mut clauses = cnf_clauses(table, a)?;
            clauses.extend(cnf_clauses(table, b)?);
            Ok(clauses)
        }
        BoolExpr::Or(a, b) => {
            let left = cnf_clauses(table, a)?;
            let right = cnf_clauses(table, b)?;
            if left.len() * right.len() > MAX_CNF_CLAUSES {
                return Err(EngineError::InvalidQuery(format!(
                    "OR distribution would produce {} clauses (max {MAX_CNF_CLAUSES})",
                    left.len() * right.len()
                )));
            }
            let mut out = Vec::with_capacity(left.len() * right.len());
            for lc in &left {
                for rc in &right {
                    let mut preds = lc.predicates.clone();
                    preds.extend(rc.predicates.iter().copied());
                    out.push(GpuClause::any(preds));
                }
            }
            Ok(out)
        }
        other => Err(EngineError::InvalidQuery(format!(
            "unexpected node in NNF tree: {other:?}"
        ))),
    }
}

/// Recognize the two-clause range pattern `x >= low AND x <= high`
/// (in either clause order, and accepting the strict forms produced by
/// NOT-elimination when they bound the same column).
fn recognize_range(cnf: &GpuCnf) -> Option<(usize, u32, u32)> {
    if cnf.clauses.len() != 2 {
        return None;
    }
    let singles: Vec<&GpuPredicate> = cnf
        .clauses
        .iter()
        .map(|c| {
            if c.predicates.len() == 1 {
                Some(&c.predicates[0])
            } else {
                None
            }
        })
        .collect::<Option<Vec<_>>>()?;
    let (a, b) = (singles[0], singles[1]);
    if a.column != b.column {
        return None;
    }
    let lower_of = |p: &GpuPredicate| -> Option<u32> {
        match p.op {
            CompareFunc::GreaterEqual => Some(p.constant),
            CompareFunc::Greater => p.constant.checked_add(1),
            _ => None,
        }
    };
    let upper_of = |p: &GpuPredicate| -> Option<u32> {
        match p.op {
            CompareFunc::LessEqual => Some(p.constant),
            CompareFunc::Less => p.constant.checked_sub(1),
            _ => None,
        }
    };
    let (low, high) = match (lower_of(a), upper_of(b)) {
        (Some(l), Some(h)) => (l, h),
        _ => match (lower_of(b), upper_of(a)) {
            (Some(l), Some(h)) => (l, h),
            _ => return None,
        },
    };
    Some((a.column, low, high))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpudb_sim::CompareFunc::*;
    use gpudb_sim::Gpu;

    fn table() -> (Gpu, GpuTable) {
        let a: Vec<u32> = (0..10).collect();
        let b: Vec<u32> = (0..10).collect();
        let c: Vec<u32> = (0..10).collect();
        let mut gpu = GpuTable::device_for(10, 5);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", &a), ("b", &b), ("c", &c)]).unwrap();
        (gpu, t)
    }

    #[test]
    fn no_filter_plans_all() {
        let (_gpu, t) = table();
        assert_eq!(plan_selection(&t, None).unwrap(), SelectionPlan::All);
    }

    #[test]
    fn single_predicate_plans_single_clause_cnf() {
        let (_gpu, t) = table();
        let plan = plan_selection(&t, Some(&BoolExpr::pred("a", Less, 5))).unwrap();
        match plan {
            SelectionPlan::Cnf(cnf) => {
                assert_eq!(cnf.clauses.len(), 1);
                assert_eq!(cnf.clauses[0].predicates[0], GpuPredicate::new(0, Less, 5));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn between_plans_range() {
        let (_gpu, t) = table();
        let e = BoolExpr::Between {
            column: "b".into(),
            low: 2,
            high: 7,
        };
        assert_eq!(
            plan_selection(&t, Some(&e)).unwrap(),
            SelectionPlan::Range {
                column: 1,
                low: 2,
                high: 7
            }
        );
    }

    #[test]
    fn ge_and_le_pattern_plans_range() {
        let (_gpu, t) = table();
        let e = BoolExpr::pred("a", GreaterEqual, 3).and(BoolExpr::pred("a", LessEqual, 8));
        assert_eq!(
            plan_selection(&t, Some(&e)).unwrap(),
            SelectionPlan::Range {
                column: 0,
                low: 3,
                high: 8
            }
        );
        // Reversed order also recognized.
        let e = BoolExpr::pred("a", LessEqual, 8).and(BoolExpr::pred("a", GreaterEqual, 3));
        assert!(matches!(
            plan_selection(&t, Some(&e)).unwrap(),
            SelectionPlan::Range {
                low: 3,
                high: 8,
                ..
            }
        ));
    }

    #[test]
    fn strict_bounds_normalize_to_inclusive_range() {
        let (_gpu, t) = table();
        let e = BoolExpr::pred("a", Greater, 3).and(BoolExpr::pred("a", Less, 8));
        assert_eq!(
            plan_selection(&t, Some(&e)).unwrap(),
            SelectionPlan::Range {
                column: 0,
                low: 4,
                high: 7
            }
        );
    }

    #[test]
    fn cross_column_conjunction_is_cnf_not_range() {
        let (_gpu, t) = table();
        let e = BoolExpr::pred("a", GreaterEqual, 3).and(BoolExpr::pred("b", LessEqual, 8));
        assert!(matches!(
            plan_selection(&t, Some(&e)).unwrap(),
            SelectionPlan::Cnf(_)
        ));
    }

    #[test]
    fn not_between_becomes_disjunctive_cnf() {
        let (_gpu, t) = table();
        let e = BoolExpr::Between {
            column: "a".into(),
            low: 2,
            high: 7,
        }
        .not();
        match plan_selection(&t, Some(&e)).unwrap() {
            SelectionPlan::Cnf(cnf) => {
                assert_eq!(cnf.clauses.len(), 1);
                let preds = &cnf.clauses[0].predicates;
                assert_eq!(preds.len(), 2);
                assert!(preds.contains(&GpuPredicate::new(0, Less, 2)));
                assert!(preds.contains(&GpuPredicate::new(0, Greater, 7)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn de_morgan_applied() {
        let (_gpu, t) = table();
        // NOT(a < 5 OR b >= 3) = a >= 5 AND b < 3
        let e = BoolExpr::pred("a", Less, 5)
            .or(BoolExpr::pred("b", GreaterEqual, 3))
            .not();
        match plan_selection(&t, Some(&e)).unwrap() {
            SelectionPlan::Cnf(cnf) => {
                assert_eq!(cnf.clauses.len(), 2);
                assert_eq!(
                    cnf.clauses[0].predicates[0],
                    GpuPredicate::new(0, GreaterEqual, 5)
                );
                assert_eq!(cnf.clauses[1].predicates[0], GpuPredicate::new(1, Less, 3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn or_distribution() {
        let (_gpu, t) = table();
        // (a<1 AND b<2) OR c<3  →  (a<1 ∨ c<3) ∧ (b<2 ∨ c<3)
        let e = BoolExpr::pred("a", Less, 1)
            .and(BoolExpr::pred("b", Less, 2))
            .or(BoolExpr::pred("c", Less, 3));
        match plan_selection(&t, Some(&e)).unwrap() {
            SelectionPlan::Cnf(cnf) => {
                assert_eq!(cnf.clauses.len(), 2);
                assert_eq!(cnf.clauses[0].predicates.len(), 2);
                assert_eq!(cnf.clauses[1].predicates.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn compare_columns_plans_semilinear() {
        let (_gpu, t) = table();
        let e = BoolExpr::CompareColumns {
            left: "a".into(),
            op: Greater,
            right: "c".into(),
        };
        assert_eq!(
            plan_selection(&t, Some(&e)).unwrap(),
            SelectionPlan::SemiLinear {
                coefficients: vec![1.0, 0.0, -1.0],
                op: Greater,
                constant: 0.0
            }
        );
        // Negated: operator inverted.
        assert!(matches!(
            plan_selection(&t, Some(&e.not())).unwrap(),
            SelectionPlan::SemiLinear { op: LessEqual, .. }
        ));
    }

    #[test]
    fn semilinear_terms_resolved_and_merged() {
        let (_gpu, t) = table();
        let e = BoolExpr::SemiLinear {
            terms: vec![("a".into(), 2.0), ("c".into(), -1.0), ("a".into(), 0.5)],
            op: GreaterEqual,
            constant: 4.0,
        };
        assert_eq!(
            plan_selection(&t, Some(&e)).unwrap(),
            SelectionPlan::SemiLinear {
                coefficients: vec![2.5, 0.0, -1.0],
                op: GreaterEqual,
                constant: 4.0
            }
        );
    }

    #[test]
    fn semilinear_inside_boolean_structure_rejected() {
        let (_gpu, t) = table();
        let e = BoolExpr::CompareColumns {
            left: "a".into(),
            op: Greater,
            right: "b".into(),
        }
        .and(BoolExpr::pred("c", Less, 3));
        assert!(matches!(
            plan_selection(&t, Some(&e)).unwrap_err(),
            EngineError::InvalidQuery(_)
        ));
    }

    #[test]
    fn unknown_column_rejected() {
        let (_gpu, t) = table();
        let e = BoolExpr::pred("zzz", Less, 1);
        assert!(matches!(
            plan_selection(&t, Some(&e)).unwrap_err(),
            EngineError::ColumnNotFound(_)
        ));
    }

    fn conj(n: usize) -> BoolExpr {
        let mut e = BoolExpr::pred("a", Less, 0);
        for i in 1..n {
            e = e.and(BoolExpr::pred("a", Less, i as u32));
        }
        e
    }

    #[test]
    fn cnf_explosion_falls_back_to_dnf() {
        let (_gpu, t) = table();
        // (9 conjuncts) OR (9 conjuncts): CNF distribution would produce
        // 81 clauses (> 64), but the same expression is a tidy 2-term DNF.
        let e = conj(9).or(conj(9));
        match plan_selection(&t, Some(&e)).unwrap() {
            SelectionPlan::Dnf(dnf) => {
                assert_eq!(dnf.terms.len(), 2);
                assert_eq!(dnf.terms[0].predicates.len(), 9);
            }
            other => panic!("expected Dnf fallback, got {other:?}"),
        }
    }

    #[test]
    fn double_explosion_still_guarded() {
        let (_gpu, t) = table();
        // OR of 9 copies of (AND of 9 binary ORs): the CNF distribution is
        // 9^9 clauses and the DNF distribution 9 * 2^9 terms — both beyond
        // the cap, so planning must fail with the CNF error.
        let inner = {
            let or_pair = BoolExpr::pred("a", Less, 1).or(BoolExpr::pred("b", Less, 1));
            let mut e = or_pair.clone();
            for _ in 1..9 {
                e = e.and(or_pair.clone());
            }
            e
        };
        let mut e = inner.clone();
        for _ in 1..9 {
            e = e.or(inner.clone());
        }
        assert!(matches!(
            plan_selection(&t, Some(&e)).unwrap_err(),
            EngineError::InvalidQuery(_)
        ));
    }
}
