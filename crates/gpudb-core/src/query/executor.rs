//! Query execution: run a plan against a table on the device.

use crate::aggregate;
use crate::boolean::{eval_cnf_select, eval_dnf_select};
use crate::error::{EngineError, EngineResult};
use crate::metrics::{self, MetricsRecord};
use crate::query::ast::{Aggregate, Query};
use crate::query::planner::{plan_selection, SelectionPlan};
use crate::range::range_select;
use crate::selection::Selection;
use crate::semilinear::semilinear_select;
use crate::table::GpuTable;
use crate::timing::{measure, OpTiming};
use gpudb_lint::{Linter, Severity};
use gpudb_sim::{Gpu, RecordMode};

/// One aggregate's result value.
#[derive(Debug, Clone, PartialEq)]
pub enum AggValue {
    /// Integral count.
    Count(u64),
    /// Exact sum.
    Sum(u64),
    /// Average.
    Avg(f64),
    /// An attribute value (MIN/MAX/MEDIAN/k-th).
    Value(u32),
}

/// The result of executing a [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// Number of records matching the filter.
    pub matched: u64,
    /// Selectivity of the filter in `[0, 1]`.
    pub selectivity: f64,
    /// `(label, value)` pairs in SELECT-list order.
    pub rows: Vec<(String, AggValue)>,
    /// Modeled device timing for the whole query.
    pub timing: OpTiming,
    /// One deterministic metrics record per executed plan stage (the
    /// selection, then each aggregate in SELECT-list order).
    pub metrics: Vec<MetricsRecord>,
}

/// Execute the selection plan, returning the selection (None = all
/// records) and the match count.
fn execute_selection(
    gpu: &mut Gpu,
    table: &GpuTable,
    plan: &SelectionPlan,
) -> EngineResult<(Option<Selection>, u64)> {
    match plan {
        SelectionPlan::All => Ok((None, table.record_count() as u64)),
        SelectionPlan::Range { column, low, high } => {
            let (sel, count) = range_select(gpu, table, *column, *low, *high)?;
            Ok((Some(sel), count))
        }
        SelectionPlan::Cnf(cnf) => {
            let (sel, count) = eval_cnf_select(gpu, table, cnf)?;
            Ok((Some(sel), count))
        }
        SelectionPlan::Dnf(dnf) => {
            let (sel, count) = eval_dnf_select(gpu, table, dnf)?;
            Ok((Some(sel), count))
        }
        SelectionPlan::SemiLinear {
            coefficients,
            op,
            constant,
        } => {
            let (sel, count) = semilinear_select(gpu, table, coefficients, *op, *constant)?;
            Ok((Some(sel), count))
        }
    }
}

/// Short operator tag for a selection plan, used in metrics records.
fn plan_operator(plan: &SelectionPlan) -> &'static str {
    match plan {
        SelectionPlan::All => "filter/all",
        SelectionPlan::Range { .. } => "filter/range",
        SelectionPlan::Cnf(_) => "filter/cnf",
        SelectionPlan::Dnf(_) => "filter/dnf",
        SelectionPlan::SemiLinear { .. } => "filter/semilinear",
    }
}

/// Options controlling query execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecuteOptions {
    /// Record each operator's pass plan while executing and run the
    /// `gpudb-lint` validator over it afterwards; an error-severity
    /// diagnostic fails the query with [`EngineError::PlanValidation`].
    /// Recording is bit-passive: results, modeled cost and work
    /// counters are identical with or without it.
    pub validate_plans: bool,
}

impl Default for ExecuteOptions {
    /// Validate in debug builds, skip in release (opt back in by
    /// setting [`ExecuteOptions::validate_plans`] explicitly).
    fn default() -> ExecuteOptions {
        ExecuteOptions {
            validate_plans: cfg!(debug_assertions),
        }
    }
}

/// Execute a query against a table with default [`ExecuteOptions`]
/// (plan validation on in debug builds, off in release).
pub fn execute(gpu: &mut Gpu, table: &GpuTable, query: &Query) -> EngineResult<QueryOutput> {
    execute_with_options(gpu, table, query, ExecuteOptions::default())
}

/// Execute a query with explicit [`ExecuteOptions`].
pub fn execute_with_options(
    gpu: &mut Gpu,
    table: &GpuTable,
    query: &Query,
    options: ExecuteOptions,
) -> EngineResult<QueryOutput> {
    if !options.validate_plans {
        return execute_inner(gpu, table, query);
    }
    // If the caller is already tracing (e.g. a lint harness), piggyback
    // on its recorder and leave the collected plans to it.
    let owns_recorder = !gpu.is_recording();
    if owns_recorder {
        gpu.enable_tracing(RecordMode::RecordAndExecute);
    }
    let result = execute_inner(gpu, table, query);
    if !owns_recorder {
        return result;
    }
    let plans = gpu.take_plans();
    gpu.disable_tracing();
    let output = result?;
    let linter = Linter::new();
    for plan in &plans {
        let errors: Vec<String> = linter
            .lint(plan)
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(ToString::to_string)
            .collect();
        if !errors.is_empty() {
            return Err(EngineError::PlanValidation {
                operator: plan.label.clone(),
                diagnostics: errors,
            });
        }
    }
    Ok(output)
}

/// The untraced execution path shared by [`execute`] and
/// [`execute_with_options`].
fn execute_inner(gpu: &mut Gpu, table: &GpuTable, query: &Query) -> EngineResult<QueryOutput> {
    let plan = plan_selection(table, query.filter.as_ref())?;
    let total_records = table.record_count() as u64;
    let mut records: Vec<MetricsRecord> = Vec::with_capacity(1 + query.aggregates.len());
    let (result, timing) = measure(gpu, |gpu| -> EngineResult<_> {
        let (sel_result, sel_record) =
            metrics::observe(gpu, plan_operator(&plan), total_records, |gpu| {
                execute_selection(gpu, table, &plan)
            });
        let (selection, matched) = sel_result?;
        records.push(sel_record);
        let sel_ref = selection.as_ref();
        let mut rows = Vec::with_capacity(query.aggregates.len());
        for agg in &query.aggregates {
            // Aggregates consume the selected records, so their input
            // size is the match count, not the table size.
            let (value_result, agg_record) =
                metrics::observe(gpu, format!("agg/{}", agg.label()), matched, |gpu| {
                    compute_aggregate(gpu, table, agg, matched, sel_ref)
                });
            rows.push((agg.label(), value_result?));
            records.push(agg_record);
        }
        Ok((matched, rows))
    });
    let (matched, rows) = result?;
    let selectivity = if table.record_count() == 0 {
        0.0
    } else {
        matched as f64 / table.record_count() as f64
    };
    Ok(QueryOutput {
        matched,
        selectivity,
        rows,
        timing,
        metrics: records,
    })
}

/// Evaluate one aggregate of the SELECT list over the selection.
fn compute_aggregate(
    gpu: &mut Gpu,
    table: &GpuTable,
    agg: &Aggregate,
    matched: u64,
    sel_ref: Option<&Selection>,
) -> EngineResult<AggValue> {
    Ok(match agg {
        Aggregate::Count => AggValue::Count(matched),
        Aggregate::Sum(col) => {
            let idx = table.column_index(col)?;
            AggValue::Sum(aggregate::sum(gpu, table, idx, sel_ref)?)
        }
        Aggregate::Avg(col) => {
            let idx = table.column_index(col)?;
            AggValue::Avg(aggregate::avg(gpu, table, idx, sel_ref)?)
        }
        Aggregate::Min(col) => {
            let idx = table.column_index(col)?;
            AggValue::Value(aggregate::min(gpu, table, idx, sel_ref)?)
        }
        Aggregate::Max(col) => {
            let idx = table.column_index(col)?;
            AggValue::Value(aggregate::max(gpu, table, idx, sel_ref)?)
        }
        Aggregate::Median(col) => {
            let idx = table.column_index(col)?;
            AggValue::Value(aggregate::median(gpu, table, idx, sel_ref)?)
        }
        Aggregate::KthLargest(col, k) => {
            let idx = table.column_index(col)?;
            AggValue::Value(aggregate::kth_largest(gpu, table, idx, *k, sel_ref)?)
        }
        Aggregate::KthSmallest(col, k) => {
            let idx = table.column_index(col)?;
            AggValue::Value(aggregate::kth_smallest(gpu, table, idx, *k, sel_ref)?)
        }
        Aggregate::Percentile(col, p) => {
            let idx = table.column_index(col)?;
            AggValue::Value(aggregate::percentile(gpu, table, idx, *p, sel_ref)?)
        }
    })
}

/// Convenience: execute and return the single aggregate value of a
/// one-item SELECT list.
pub fn execute_scalar(gpu: &mut Gpu, table: &GpuTable, query: &Query) -> EngineResult<AggValue> {
    if query.aggregates.len() != 1 {
        return Err(EngineError::InvalidQuery(format!(
            "execute_scalar requires exactly one aggregate, got {}",
            query.aggregates.len()
        )));
    }
    let mut out = execute(gpu, table, query)?;
    Ok(out.rows.remove(0).1)
}

/// EXPLAIN: describe the physical plan the planner would choose, without
/// executing anything on the device.
pub fn explain(table: &GpuTable, query: &Query) -> EngineResult<String> {
    let plan = plan_selection(table, query.filter.as_ref())?;
    let mut out = String::new();
    out.push_str("SELECTION: ");
    out.push_str(&plan.describe(table));
    out.push('\n');
    for agg in &query.aggregates {
        let line = match agg {
            Aggregate::Count => "AGGREGATE: COUNT(*) via occlusion query (free with the \
                                 selection pass)"
                .to_string(),
            Aggregate::Sum(c) | Aggregate::Avg(c) => format!(
                "AGGREGATE: {} via bitwise Accumulator (one TestBit pass per bit of {c})",
                agg.label()
            ),
            Aggregate::Min(c)
            | Aggregate::Max(c)
            | Aggregate::Median(c)
            | Aggregate::KthLargest(c, _)
            | Aggregate::KthSmallest(c, _)
            | Aggregate::Percentile(c, _) => format!(
                "AGGREGATE: {} via KthLargest bit descent (one pass per bit of {c})",
                agg.label()
            ),
        };
        out.push_str(&line);
        out.push('\n');
    }
    Ok(out)
}

/// EXPLAIN with per-pass device state: on top of [`explain`]'s plan
/// description, dry-run the selection in record-only mode — no fragment
/// is shaded, no cost is modeled and the framebuffer is untouched — and
/// append one line per recorded pass showing the depth/stencil/alpha
/// configuration it would run under.
///
/// If the device is already tracing (a lint harness owns the recorder),
/// the dry run is skipped and the output matches [`explain`].
pub fn explain_with_device(gpu: &mut Gpu, table: &GpuTable, query: &Query) -> EngineResult<String> {
    let mut out = explain(table, query)?;
    let plan = plan_selection(table, query.filter.as_ref())?;
    if matches!(plan, SelectionPlan::All) || gpu.is_recording() {
        return Ok(out);
    }
    gpu.enable_tracing(RecordMode::RecordOnly);
    gpu.begin_plan(plan_operator(&plan));
    let result = execute_selection(gpu, table, &plan);
    let plans = gpu.take_plans();
    gpu.disable_tracing();
    result?;
    for recorded in &plans {
        for line in recorded.describe_passes() {
            out.push_str("  ");
            out.push_str(&line);
            out.push('\n');
        }
    }
    Ok(out)
}

impl QueryOutput {
    /// Look up a result by its label.
    pub fn value(&self, label: &str) -> Option<&AggValue> {
        self.rows.iter().find(|(l, _)| l == label).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ast::BoolExpr;
    use gpudb_sim::CompareFunc::*;

    fn setup() -> (Gpu, GpuTable, Vec<u32>, Vec<u32>) {
        let a: Vec<u32> = (0..100u32).map(|i| (i * 37) % 200).collect();
        let b: Vec<u32> = (0..100u32).map(|i| (i * 11 + 3) % 150).collect();
        let mut gpu = GpuTable::device_for(100, 10);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", &a), ("b", &b)]).unwrap();
        (gpu, t, a, b)
    }

    #[test]
    fn unfiltered_aggregates() {
        let (mut gpu, t, a, _) = setup();
        let q = Query::aggregate_all(vec![
            Aggregate::Count,
            Aggregate::Sum("a".into()),
            Aggregate::Min("a".into()),
            Aggregate::Max("a".into()),
        ]);
        let out = execute(&mut gpu, &t, &q).unwrap();
        assert_eq!(out.matched, 100);
        assert_eq!(out.selectivity, 1.0);
        let expect_sum: u64 = a.iter().map(|&v| v as u64).sum();
        assert_eq!(out.value("COUNT(*)"), Some(&AggValue::Count(100)));
        assert_eq!(out.value("SUM(a)"), Some(&AggValue::Sum(expect_sum)));
        assert_eq!(
            out.value("MIN(a)"),
            Some(&AggValue::Value(*a.iter().min().unwrap()))
        );
        assert_eq!(
            out.value("MAX(a)"),
            Some(&AggValue::Value(*a.iter().max().unwrap()))
        );
        assert!(out.timing.total() > 0.0);
    }

    #[test]
    fn filtered_aggregates_match_reference() {
        let (mut gpu, t, a, b) = setup();
        let q = Query::filtered(
            vec![
                Aggregate::Count,
                Aggregate::Sum("b".into()),
                Aggregate::Avg("b".into()),
                Aggregate::Median("a".into()),
            ],
            BoolExpr::pred("a", GreaterEqual, 50).and(BoolExpr::pred("b", Less, 100)),
        );
        let out = execute(&mut gpu, &t, &q).unwrap();

        let selected: Vec<usize> = (0..100).filter(|&i| a[i] >= 50 && b[i] < 100).collect();
        assert_eq!(out.matched, selected.len() as u64);
        let sum_b: u64 = selected.iter().map(|&i| b[i] as u64).sum();
        assert_eq!(out.value("SUM(b)"), Some(&AggValue::Sum(sum_b)));
        let avg_b = sum_b as f64 / selected.len() as f64;
        match out.value("AVG(b)") {
            Some(AggValue::Avg(v)) => assert!((v - avg_b).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
        let mut sel_a: Vec<u32> = selected.iter().map(|&i| a[i]).collect();
        sel_a.sort_unstable();
        let expect_median = sel_a[sel_a.len().div_ceil(2) - 1];
        assert_eq!(
            out.value("MEDIAN(a)"),
            Some(&AggValue::Value(expect_median))
        );
    }

    #[test]
    fn between_filter_uses_range_plan_and_is_correct() {
        let (mut gpu, t, a, _) = setup();
        let q = Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::Between {
                column: "a".into(),
                low: 40,
                high: 120,
            },
        );
        let out = execute(&mut gpu, &t, &q).unwrap();
        let expected = a.iter().filter(|&&v| (40..=120).contains(&v)).count() as u64;
        assert_eq!(out.matched, expected);
    }

    #[test]
    fn column_comparison_filter() {
        let (mut gpu, t, a, b) = setup();
        let q = Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::CompareColumns {
                left: "a".into(),
                op: Greater,
                right: "b".into(),
            },
        );
        let out = execute(&mut gpu, &t, &q).unwrap();
        let expected = (0..100).filter(|&i| a[i] > b[i]).count() as u64;
        assert_eq!(out.matched, expected);
    }

    #[test]
    fn kth_aggregates() {
        let (mut gpu, t, a, _) = setup();
        let q = Query::aggregate_all(vec![
            Aggregate::KthLargest("a".into(), 5),
            Aggregate::KthSmallest("a".into(), 5),
        ]);
        let out = execute(&mut gpu, &t, &q).unwrap();
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(
            out.value("KTH_LARGEST(a, 5)"),
            Some(&AggValue::Value(sorted[sorted.len() - 5]))
        );
        assert_eq!(
            out.value("KTH_SMALLEST(a, 5)"),
            Some(&AggValue::Value(sorted[4]))
        );
    }

    #[test]
    fn execute_scalar_shortcuts() {
        let (mut gpu, t, a, _) = setup();
        let v = execute_scalar(
            &mut gpu,
            &t,
            &Query::aggregate_all(vec![Aggregate::Max("a".into())]),
        )
        .unwrap();
        assert_eq!(v, AggValue::Value(*a.iter().max().unwrap()));
        // Requires exactly one aggregate.
        assert!(execute_scalar(&mut gpu, &t, &Query::aggregate_all(vec![])).is_err());
    }

    #[test]
    fn aggregate_over_empty_selection_errors() {
        let (mut gpu, t, _, _) = setup();
        let q = Query::filtered(
            vec![Aggregate::Median("a".into())],
            BoolExpr::pred("a", Greater, 10_000),
        );
        assert!(matches!(
            execute(&mut gpu, &t, &q).unwrap_err(),
            EngineError::EmptyInput | EngineError::InvalidK { .. }
        ));
        // COUNT over an empty selection is fine.
        let q = Query::filtered(vec![Aggregate::Count], BoolExpr::pred("a", Greater, 10_000));
        assert_eq!(execute(&mut gpu, &t, &q).unwrap().matched, 0);
    }

    #[test]
    fn in_list_filter_executes() {
        let (mut gpu, t, a, _) = setup();
        let q = Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::InList {
                column: "a".into(),
                values: vec![0, 37, 74, 111],
            },
        );
        let out = execute(&mut gpu, &t, &q).unwrap();
        let expected = a.iter().filter(|&&v| [0, 37, 74, 111].contains(&v)).count() as u64;
        assert_eq!(out.matched, expected);

        // NOT IN is the complement.
        let q = Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::InList {
                column: "a".into(),
                values: vec![0, 37, 74, 111],
            }
            .not(),
        );
        assert_eq!(execute(&mut gpu, &t, &q).unwrap().matched, 100 - expected);

        // Empty IN list selects nothing; NOT of it selects everything.
        let empty = BoolExpr::InList {
            column: "a".into(),
            values: vec![],
        };
        let q = Query::filtered(vec![Aggregate::Count], empty.clone());
        assert_eq!(execute(&mut gpu, &t, &q).unwrap().matched, 0);
        let q = Query::filtered(vec![Aggregate::Count], empty.not());
        assert_eq!(execute(&mut gpu, &t, &q).unwrap().matched, 100);
    }

    #[test]
    fn percentile_aggregate_executes() {
        let (mut gpu, t, a, _) = setup();
        let q = Query::aggregate_all(vec![Aggregate::Percentile("a".into(), 0.9)]);
        let out = execute(&mut gpu, &t, &q).unwrap();
        let mut sorted = a.clone();
        sorted.sort_unstable();
        let rank = ((0.9 * 100.0f64).ceil() as usize).clamp(1, 100);
        assert_eq!(out.rows[0].1, AggValue::Value(sorted[rank - 1]));
    }

    #[test]
    fn explain_describes_plans() {
        let (_gpu, t, _, _) = setup();
        let q = Query::filtered(
            vec![Aggregate::Count, Aggregate::Sum("a".into())],
            BoolExpr::Between {
                column: "a".into(),
                low: 10,
                high: 50,
            },
        );
        let text = explain(&t, &q).unwrap();
        assert!(text.contains("RANGE depth-bounds"), "{text}");
        assert!(text.contains("Accumulator"), "{text}");

        let q = Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::pred("a", GreaterEqual, 1).and(BoolExpr::pred("b", Less, 9)),
        );
        let text = explain(&t, &q).unwrap();
        assert!(text.contains("CONJUNCTION fast path"), "{text}");

        let q = Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::CompareColumns {
                left: "a".into(),
                op: Greater,
                right: "b".into(),
            },
        );
        let text = explain(&t, &q).unwrap();
        assert!(text.contains("SEMILINEAR"), "{text}");
    }

    #[test]
    fn execute_emits_per_stage_metrics() {
        let (mut gpu, t, _, _) = setup();
        let q = Query::filtered(
            vec![Aggregate::Count, Aggregate::Sum("a".into())],
            BoolExpr::Between {
                column: "a".into(),
                low: 40,
                high: 120,
            },
        );
        let out = execute(&mut gpu, &t, &q).unwrap();
        assert_eq!(out.metrics.len(), 3);
        assert_eq!(out.metrics[0].operator, "filter/range");
        assert_eq!(out.metrics[1].operator, "agg/COUNT(*)");
        assert_eq!(out.metrics[2].operator, "agg/SUM(a)");
        assert_eq!(out.metrics[0].input_records, 100);
        assert_eq!(out.metrics[1].input_records, out.matched);
        assert!(out.metrics[0].modeled_total_ns() > 0);
        // COUNT reuses the selection's occlusion count: no device work.
        assert_eq!(out.metrics[1].counters.draw_calls, 0);
        assert!(out.metrics[2].counters.draw_calls > 0);
        // Stage modeled times are a partition of the query's total.
        let stage_ns: u64 = out.metrics.iter().map(|r| r.modeled_total_ns()).sum();
        let total_ns = (out.timing.total() * 1e9).round() as u64;
        assert!(stage_ns.abs_diff(total_ns) <= out.metrics.len() as u64);
    }

    #[test]
    fn explain_with_device_lists_pass_state_without_cost() {
        let (mut gpu, t, _, _) = setup();
        let q = Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::Between {
                column: "a".into(),
                low: 10,
                high: 50,
            },
        );
        let counters_before = gpu.stats().counters();
        let text = explain_with_device(&mut gpu, &t, &q).unwrap();
        // Headline unchanged, now followed by per-pass device state.
        assert!(text.contains("RANGE depth-bounds"), "{text}");
        assert!(text.contains("pass 1:"), "{text}");
        assert!(text.contains("bounds["), "{text}");
        assert!(text.contains("stencil("), "{text}");
        // The record-only dry run shades nothing and costs nothing.
        assert!(!gpu.is_recording());
        assert_eq!(gpu.stats().counters(), counters_before);

        // CNF plans list one pass per predicate plus the copies.
        let q = Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::pred("a", GreaterEqual, 50).and(BoolExpr::pred("b", Less, 100)),
        );
        let text = explain_with_device(&mut gpu, &t, &q).unwrap();
        assert!(text.contains("CONJUNCTION fast path"), "{text}");
        assert!(text.contains("depth("), "{text}");
    }

    #[test]
    fn validation_is_bit_passive_and_restores_device() {
        let q = Query::filtered(
            vec![
                Aggregate::Count,
                Aggregate::Sum("a".into()),
                Aggregate::Median("a".into()),
            ],
            BoolExpr::pred("a", GreaterEqual, 50).and(BoolExpr::pred("b", Less, 100)),
        );
        let (mut gpu, t, _, _) = setup();
        let validated = execute_with_options(
            &mut gpu,
            &t,
            &q,
            ExecuteOptions {
                validate_plans: true,
            },
        )
        .unwrap();
        assert!(!gpu.is_recording(), "tracing must be torn down");
        let (mut gpu, t, _, _) = setup();
        let plain = execute_with_options(
            &mut gpu,
            &t,
            &q,
            ExecuteOptions {
                validate_plans: false,
            },
        )
        .unwrap();
        // Identical results, metrics and modeled timing either way
        // (wall is real elapsed time, the one nondeterministic field).
        let modeled = |mut out: QueryOutput| {
            out.timing.wall = 0.0;
            out
        };
        assert_eq!(modeled(validated), modeled(plain));
    }

    #[test]
    fn validation_piggybacks_on_caller_tracing() {
        let (mut gpu, t, _, _) = setup();
        gpu.enable_tracing(gpudb_sim::RecordMode::RecordAndExecute);
        let q = Query::filtered(vec![Aggregate::Count], BoolExpr::pred("a", Less, 100));
        execute_with_options(
            &mut gpu,
            &t,
            &q,
            ExecuteOptions {
                validate_plans: true,
            },
        )
        .unwrap();
        // The caller's recorder stays active and owns the plans.
        assert!(gpu.is_recording());
        let plans = gpu.take_plans();
        assert!(
            plans.iter().any(|p| p.label.starts_with("filter/")),
            "{:?}",
            plans.iter().map(|p| &p.label).collect::<Vec<_>>()
        );
        gpu.disable_tracing();
    }

    #[test]
    fn all_query_shapes_validate_cleanly() {
        // Every planner path, executed with validation forced on: the
        // real operators must produce lint-clean pass plans.
        let filters = [
            None,
            Some(BoolExpr::pred("a", Greater, 80)),
            Some(BoolExpr::Between {
                column: "a".into(),
                low: 40,
                high: 120,
            }),
            Some(BoolExpr::pred("a", GreaterEqual, 50).and(BoolExpr::pred("b", Less, 100))),
            Some(BoolExpr::pred("a", Less, 30).or(BoolExpr::pred("b", Greater, 120))),
            Some(BoolExpr::CompareColumns {
                left: "a".into(),
                op: Greater,
                right: "b".into(),
            }),
        ];
        for filter in filters {
            let (mut gpu, t, _, _) = setup();
            let q = Query {
                aggregates: vec![Aggregate::Count, Aggregate::Sum("a".into())],
                filter: filter.clone(),
            };
            let out = execute_with_options(
                &mut gpu,
                &t,
                &q,
                ExecuteOptions {
                    validate_plans: true,
                },
            );
            assert!(out.is_ok(), "filter {filter:?}: {:?}", out.err());
        }
    }

    #[test]
    fn unknown_aggregate_column_rejected() {
        let (mut gpu, t, _, _) = setup();
        let q = Query::aggregate_all(vec![Aggregate::Sum("nope".into())]);
        assert!(matches!(
            execute(&mut gpu, &t, &q).unwrap_err(),
            EngineError::ColumnNotFound(_)
        ));
    }
}
