//! Query execution: run a plan against a table on the device.

use crate::aggregate;
use crate::boolean::{eval_cnf_select, eval_cnf_select_unfused, eval_dnf_select};
use crate::error::{EngineError, EngineResult};
use crate::metrics::{self, MetricsRecord};
use crate::query::ast::{Aggregate, Query};
use crate::query::planner::{plan_selection, SelectionPlan};
use crate::range::range_select;
use crate::selection::Selection;
use crate::semilinear::semilinear_select;
use crate::table::GpuTable;
use crate::timing::{measure, OpTiming};
use gpudb_lint::{Linter, Severity};
use gpudb_obs::{Span, SpanCollector, SpanTree, TraceLevel};
use gpudb_sim::span::SpanKind;
use gpudb_sim::{Gpu, RecordMode};

/// One aggregate's result value.
#[derive(Debug, Clone, PartialEq)]
pub enum AggValue {
    /// Integral count.
    Count(u64),
    /// Exact sum.
    Sum(u64),
    /// Average.
    Avg(f64),
    /// An attribute value (MIN/MAX/MEDIAN/k-th).
    Value(u32),
}

/// The result of executing a [`Query`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutput {
    /// Number of records matching the filter.
    pub matched: u64,
    /// Selectivity of the filter in `[0, 1]`.
    pub selectivity: f64,
    /// `(label, value)` pairs in SELECT-list order.
    pub rows: Vec<(String, AggValue)>,
    /// Modeled device timing for the whole query.
    pub timing: OpTiming,
    /// One deterministic metrics record per executed plan stage (the
    /// selection, then each aggregate in SELECT-list order).
    pub metrics: Vec<MetricsRecord>,
    /// The span tree collected while executing, when
    /// [`ExecuteOptions::trace`] was set and the executor owned the sink
    /// (a caller that attached its own sink keeps the spans instead).
    pub trace: Option<SpanTree>,
}

/// Execute the selection plan, returning the selection (None = all
/// records) and the match count. `fuse_passes` picks the fused or
/// literal-paper CNF protocol (identical results either way).
pub(crate) fn execute_selection(
    gpu: &mut Gpu,
    table: &GpuTable,
    plan: &SelectionPlan,
    fuse_passes: bool,
) -> EngineResult<(Option<Selection>, u64)> {
    match plan {
        SelectionPlan::All => Ok((None, table.record_count() as u64)),
        SelectionPlan::Range { column, low, high } => {
            let (sel, count) = range_select(gpu, table, *column, *low, *high)?;
            Ok((Some(sel), count))
        }
        SelectionPlan::Cnf(cnf) => {
            let (sel, count) = if fuse_passes {
                eval_cnf_select(gpu, table, cnf)?
            } else {
                eval_cnf_select_unfused(gpu, table, cnf)?
            };
            Ok((Some(sel), count))
        }
        SelectionPlan::Dnf(dnf) => {
            let (sel, count) = eval_dnf_select(gpu, table, dnf)?;
            Ok((Some(sel), count))
        }
        SelectionPlan::SemiLinear {
            coefficients,
            op,
            constant,
        } => {
            let (sel, count) = semilinear_select(gpu, table, coefficients, *op, *constant)?;
            Ok((Some(sel), count))
        }
    }
}

/// Short operator tag for a selection plan, used in metrics records.
pub(crate) fn plan_operator(plan: &SelectionPlan) -> &'static str {
    match plan {
        SelectionPlan::All => "filter/all",
        SelectionPlan::Range { .. } => "filter/range",
        SelectionPlan::Cnf(_) => "filter/cnf",
        SelectionPlan::Dnf(_) => "filter/dnf",
        SelectionPlan::SemiLinear { .. } => "filter/semilinear",
    }
}

/// Options controlling query execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecuteOptions {
    /// Record each operator's pass plan while executing and run the
    /// `gpudb-lint` validator over it afterwards; an error-severity
    /// diagnostic fails the query with [`EngineError::PlanValidation`].
    /// Recording is bit-passive: results, modeled cost and work
    /// counters are identical with or without it.
    pub validate_plans: bool,
    /// Collect a hierarchical span trace (`query → stage → operator →
    /// pass`) on the modeled clock while executing, at the given detail
    /// level, and return it in [`QueryOutput::trace`]. Tracing is
    /// cost-transparent: results, counters and modeled times are
    /// identical with or without it.
    pub trace: Option<TraceLevel>,
    /// Run selections with the pass-fusion optimizer (default): adjacent
    /// CNF passes over the same column share one `Compare` depth copy,
    /// and the opening stencil clear is folded into the first predicate
    /// pass. Fusion only removes passes — results are bit-identical to
    /// the literal paper protocols; set to `false` for the unfused
    /// baseline (ablation benchmarks, differential tests).
    pub fuse_passes: bool,
}

impl Default for ExecuteOptions {
    /// Validate in debug builds, skip in release (opt back in by
    /// setting [`ExecuteOptions::validate_plans`] explicitly); no span
    /// tracing; pass fusion on.
    fn default() -> ExecuteOptions {
        ExecuteOptions {
            validate_plans: cfg!(debug_assertions),
            trace: None,
            fuse_passes: true,
        }
    }
}

/// Execute a query against a table with default [`ExecuteOptions`]
/// (plan validation on in debug builds, off in release).
pub fn execute(gpu: &mut Gpu, table: &GpuTable, query: &Query) -> EngineResult<QueryOutput> {
    execute_with_options(gpu, table, query, ExecuteOptions::default())
}

/// Execute a query with explicit [`ExecuteOptions`].
pub fn execute_with_options(
    gpu: &mut Gpu,
    table: &GpuTable,
    query: &Query,
    options: ExecuteOptions,
) -> EngineResult<QueryOutput> {
    // Attach a span collector unless the caller brought its own sink (a
    // bench harness tracing a whole workload keeps the spans itself).
    let owns_sink = match options.trace {
        Some(level) if !gpu.has_span_sink() => {
            gpu.attach_span_sink(Box::new(SpanCollector::new(level)));
            true
        }
        _ => false,
    };
    let result = execute_validated(gpu, table, query, options);
    if !owns_sink {
        return result;
    }
    let tree = gpu
        .take_span_sink()
        .and_then(SpanCollector::recover)
        .map(SpanCollector::finish);
    let mut output = result?;
    output.trace = tree;
    Ok(output)
}

/// Execution with optional plan validation, shared by
/// [`execute_with_options`] (which layers span tracing on top).
fn execute_validated(
    gpu: &mut Gpu,
    table: &GpuTable,
    query: &Query,
    options: ExecuteOptions,
) -> EngineResult<QueryOutput> {
    if !options.validate_plans {
        return execute_inner(gpu, table, query, options);
    }
    // If the caller is already tracing (e.g. a lint harness), piggyback
    // on its recorder and leave the collected plans to it.
    let owns_recorder = !gpu.is_recording();
    if owns_recorder {
        gpu.enable_tracing(RecordMode::RecordAndExecute);
    }
    let result = execute_inner(gpu, table, query, options);
    if !owns_recorder {
        return result;
    }
    let plans = gpu.take_plans();
    gpu.disable_tracing();
    let output = result?;
    let linter = Linter::new();
    for plan in &plans {
        let errors: Vec<String> = linter
            .lint(plan)
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(ToString::to_string)
            .collect();
        if !errors.is_empty() {
            return Err(EngineError::PlanValidation {
                operator: plan.label.clone(),
                diagnostics: errors,
            });
        }
    }
    Ok(output)
}

/// The untraced execution path shared by [`execute`] and
/// [`execute_with_options`].
fn execute_inner(
    gpu: &mut Gpu,
    table: &GpuTable,
    query: &Query,
    options: ExecuteOptions,
) -> EngineResult<QueryOutput> {
    let plan = plan_selection(table, query.filter.as_ref())?;
    let total_records = table.record_count() as u64;
    let mut records: Vec<MetricsRecord> = Vec::with_capacity(1 + query.aggregates.len());
    gpu.span_begin(SpanKind::Query, "query");
    let (result, timing) = measure(gpu, |gpu| -> EngineResult<_> {
        gpu.span_begin(SpanKind::Stage, "selection");
        let (sel_result, sel_record) =
            metrics::observe(gpu, plan_operator(&plan), total_records, |gpu| {
                execute_selection(gpu, table, &plan, options.fuse_passes)
            });
        gpu.span_end();
        let (selection, matched) = sel_result?;
        records.push(sel_record);
        let sel_ref = selection.as_ref();
        let mut rows = Vec::with_capacity(query.aggregates.len());
        for agg in &query.aggregates {
            // Aggregates consume the selected records, so their input
            // size is the match count, not the table size.
            let stage = format!("aggregate:{}", agg.label());
            gpu.span_begin(SpanKind::Stage, &stage);
            let (value_result, agg_record) =
                metrics::observe(gpu, format!("agg/{}", agg.label()), matched, |gpu| {
                    compute_aggregate(gpu, table, agg, matched, sel_ref)
                });
            gpu.span_end();
            rows.push((agg.label(), value_result?));
            records.push(agg_record);
        }
        Ok((matched, rows))
    });
    gpu.span_end();
    let (matched, rows) = result?;
    let selectivity = if table.record_count() == 0 {
        0.0
    } else {
        matched as f64 / table.record_count() as f64
    };
    Ok(QueryOutput {
        matched,
        selectivity,
        rows,
        timing,
        metrics: records,
        trace: None,
    })
}

/// Evaluate one aggregate of the SELECT list over the selection.
fn compute_aggregate(
    gpu: &mut Gpu,
    table: &GpuTable,
    agg: &Aggregate,
    matched: u64,
    sel_ref: Option<&Selection>,
) -> EngineResult<AggValue> {
    Ok(match agg {
        Aggregate::Count => AggValue::Count(matched),
        Aggregate::Sum(col) => {
            let idx = table.column_index(col)?;
            AggValue::Sum(aggregate::sum(gpu, table, idx, sel_ref)?)
        }
        Aggregate::Avg(col) => {
            let idx = table.column_index(col)?;
            AggValue::Avg(aggregate::avg(gpu, table, idx, sel_ref)?)
        }
        Aggregate::Min(col) => {
            let idx = table.column_index(col)?;
            AggValue::Value(aggregate::min(gpu, table, idx, sel_ref)?)
        }
        Aggregate::Max(col) => {
            let idx = table.column_index(col)?;
            AggValue::Value(aggregate::max(gpu, table, idx, sel_ref)?)
        }
        Aggregate::Median(col) => {
            let idx = table.column_index(col)?;
            AggValue::Value(aggregate::median(gpu, table, idx, sel_ref)?)
        }
        Aggregate::KthLargest(col, k) => {
            let idx = table.column_index(col)?;
            AggValue::Value(aggregate::kth_largest(gpu, table, idx, *k, sel_ref)?)
        }
        Aggregate::KthSmallest(col, k) => {
            let idx = table.column_index(col)?;
            AggValue::Value(aggregate::kth_smallest(gpu, table, idx, *k, sel_ref)?)
        }
        Aggregate::Percentile(col, p) => {
            let idx = table.column_index(col)?;
            AggValue::Value(aggregate::percentile(gpu, table, idx, *p, sel_ref)?)
        }
    })
}

/// Convenience: execute and return the single aggregate value of a
/// one-item SELECT list.
pub fn execute_scalar(gpu: &mut Gpu, table: &GpuTable, query: &Query) -> EngineResult<AggValue> {
    if query.aggregates.len() != 1 {
        return Err(EngineError::InvalidQuery(format!(
            "execute_scalar requires exactly one aggregate, got {}",
            query.aggregates.len()
        )));
    }
    let mut out = execute(gpu, table, query)?;
    Ok(out.rows.remove(0).1)
}

/// EXPLAIN: describe the physical plan the planner would choose, without
/// executing anything on the device.
pub fn explain(table: &GpuTable, query: &Query) -> EngineResult<String> {
    let plan = plan_selection(table, query.filter.as_ref())?;
    let mut out = String::new();
    out.push_str("SELECTION: ");
    out.push_str(&plan.describe(table));
    out.push('\n');
    for agg in &query.aggregates {
        out.push_str("AGGREGATE: ");
        out.push_str(&describe_aggregate(agg));
        out.push('\n');
    }
    Ok(out)
}

/// How an aggregate maps onto the paper's primitives, for EXPLAIN output.
fn describe_aggregate(agg: &Aggregate) -> String {
    match agg {
        Aggregate::Count => {
            "COUNT(*) via occlusion query (free with the selection pass)".to_string()
        }
        Aggregate::Sum(c) | Aggregate::Avg(c) => format!(
            "{} via bitwise Accumulator (one TestBit pass per bit of {c})",
            agg.label()
        ),
        Aggregate::Min(c)
        | Aggregate::Max(c)
        | Aggregate::Median(c)
        | Aggregate::KthLargest(c, _)
        | Aggregate::KthSmallest(c, _)
        | Aggregate::Percentile(c, _) => format!(
            "{} via KthLargest bit descent (one pass per bit of {c})",
            agg.label()
        ),
    }
}

/// EXPLAIN with per-pass device state: on top of [`explain`]'s plan
/// description, dry-run the selection in record-only mode — no fragment
/// is shaded, no cost is modeled and the framebuffer is untouched — and
/// append one line per recorded pass showing the depth/stencil/alpha
/// configuration it would run under.
///
/// If the device is already tracing (a lint harness owns the recorder),
/// the dry run is skipped and the output matches [`explain`].
pub fn explain_with_device(gpu: &mut Gpu, table: &GpuTable, query: &Query) -> EngineResult<String> {
    let mut out = explain(table, query)?;
    let plan = plan_selection(table, query.filter.as_ref())?;
    if matches!(plan, SelectionPlan::All) || gpu.is_recording() {
        return Ok(out);
    }
    gpu.enable_tracing(RecordMode::RecordOnly);
    gpu.begin_plan(plan_operator(&plan));
    let result = execute_selection(gpu, table, &plan, ExecuteOptions::default().fuse_passes);
    let plans = gpu.take_plans();
    gpu.disable_tracing();
    result?;
    for recorded in &plans {
        for line in recorded.describe_passes() {
            out.push_str("  ");
            out.push_str(&line);
            out.push('\n');
        }
    }
    Ok(out)
}

impl QueryOutput {
    /// Look up a result by its label.
    pub fn value(&self, label: &str) -> Option<&AggValue> {
        self.rows.iter().find(|(l, _)| l == label).map(|(_, v)| v)
    }
}

/// Milliseconds with six fixed decimals — exact nanoseconds rendered in
/// integer arithmetic, so the text is byte-deterministic.
fn fmt_ms(ns: u64) -> String {
    format!("{}.{:06}", ns / 1_000_000, ns % 1_000_000)
}

/// Percentage of `total` with one decimal (`"100.0"` when `total` is 0
/// and `part` equals it, `"0.0"` for an empty total otherwise).
fn fmt_pct(part: u64, total: u64) -> String {
    if total == 0 {
        "0.0".to_string()
    } else {
        format!("{:.1}", part as f64 * 100.0 / total as f64)
    }
}

/// Non-zero phases of a record, e.g.
/// `phases[copy-to-depth 0.123456 ms · compute 0.045000 ms]`.
fn phases_line(ns: &crate::metrics::PhaseNanos) -> String {
    let parts: Vec<String> = [
        ("upload", ns.upload),
        ("copy-to-depth", ns.copy_to_depth),
        ("compute", ns.compute),
        ("readback", ns.readback),
        ("other", ns.other),
    ]
    .iter()
    .filter(|(_, v)| *v != 0)
    .map(|(name, v)| format!("{name} {} ms", fmt_ms(*v)))
    .collect();
    if parts.is_empty() {
        "phases[-]".to_string()
    } else {
        format!("phases[{}]", parts.join(" · "))
    }
}

/// Group an operator span's leaf children by name:
/// `3× pass:TestBit 0.030000 ms · 1× readback:occlusion-sync ...`.
fn passes_line(operator_span: &Span) -> String {
    let mut groups: Vec<(&str, u64, u64)> = Vec::new();
    for child in &operator_span.children {
        match groups.iter_mut().find(|g| g.0 == child.name) {
            Some(group) => {
                group.1 += 1;
                group.2 += child.duration_ns();
            }
            None => groups.push((&child.name, 1, child.duration_ns())),
        }
    }
    groups
        .iter()
        .map(|(name, count, ns)| format!("{count}× {name} {} ms", fmt_ms(*ns)))
        .collect::<Vec<_>>()
        .join(" · ")
}

/// EXPLAIN ANALYZE: execute the query for real with span tracing enabled
/// and render the plan tree annotated with measured per-stage phase
/// times, work counters, selectivity, and each stage's share of the
/// total modeled time. Every number derives from the deterministic cost
/// model, so the report is byte-identical across runs.
pub fn explain_analyze(gpu: &mut Gpu, table: &GpuTable, query: &Query) -> EngineResult<String> {
    explain_analyze_with_options(gpu, table, query, ExecuteOptions::default())
}

/// [`explain_analyze`] with explicit [`ExecuteOptions`] — pass tracing
/// is forced on (the report needs the spans); everything else, notably
/// [`ExecuteOptions::fuse_passes`], is honored. This is how the golden
/// snapshot tests render the same query before and after fusion.
pub fn explain_analyze_with_options(
    gpu: &mut Gpu,
    table: &GpuTable,
    query: &Query,
    options: ExecuteOptions,
) -> EngineResult<String> {
    let options = ExecuteOptions {
        trace: Some(options.trace.unwrap_or(TraceLevel::Passes)),
        ..options
    };
    let output = execute_with_options(gpu, table, query, options)?;
    let plan = plan_selection(table, query.filter.as_ref())?;
    Ok(render_analyze(table, &plan, query, &output))
}

/// Render the [`explain_analyze`] report from an executed query.
fn render_analyze(
    table: &GpuTable,
    plan: &SelectionPlan,
    query: &Query,
    output: &QueryOutput,
) -> String {
    let total_ns: u64 = output
        .metrics
        .iter()
        .map(MetricsRecord::modeled_total_ns)
        .sum();
    let mut out = format!(
        "EXPLAIN ANALYZE {}: {} records · matched {} (selectivity {:.2}%) · modeled {} ms\n",
        table.name(),
        table.record_count(),
        output.matched,
        output.selectivity * 100.0,
        fmt_ms(total_ns),
    );
    let operator_spans: Vec<&Span> = output
        .trace
        .as_ref()
        .map(|tree| tree.spans_of_kind(SpanKind::Operator))
        .unwrap_or_default();
    for (i, record) in output.metrics.iter().enumerate() {
        let last = i + 1 == output.metrics.len();
        let (branch, cont) = if last {
            ("└─ ", "     ")
        } else {
            ("├─ ", "│    ")
        };
        let headline = if i == 0 {
            format!("SELECTION: {}", plan.describe(table))
        } else {
            match query.aggregates.get(i - 1) {
                Some(agg) => format!("AGGREGATE: {}", describe_aggregate(agg)),
                None => record.operator.clone(),
            }
        };
        out.push_str(branch);
        out.push_str(&headline);
        out.push('\n');
        out.push_str(cont);
        out.push_str(&format!(
            "[{}] {} ms · {}% of query · in {} · {}\n",
            record.operator,
            fmt_ms(record.modeled_total_ns()),
            fmt_pct(record.modeled_total_ns(), total_ns),
            record.input_records,
            phases_line(&record.modeled_ns),
        ));
        let c = &record.counters;
        out.push_str(cont);
        out.push_str(&format!(
            "draws {} · fragments {} · shaded {} · instructions {} · sync readbacks {}\n",
            c.draw_calls,
            c.fragments_generated,
            c.fragments_shaded,
            c.program_instructions,
            c.occlusion_readbacks,
        ));
        if let Some(span) = operator_spans.get(i) {
            if !span.children.is_empty() {
                out.push_str(cont);
                out.push_str(&format!("passes: {}\n", passes_line(span)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ast::BoolExpr;
    use gpudb_sim::CompareFunc::*;

    fn setup() -> (Gpu, GpuTable, Vec<u32>, Vec<u32>) {
        let a: Vec<u32> = (0..100u32).map(|i| (i * 37) % 200).collect();
        let b: Vec<u32> = (0..100u32).map(|i| (i * 11 + 3) % 150).collect();
        let mut gpu = GpuTable::device_for(100, 10);
        let t = GpuTable::upload(&mut gpu, "t", &[("a", &a), ("b", &b)]).unwrap();
        (gpu, t, a, b)
    }

    #[test]
    fn unfiltered_aggregates() {
        let (mut gpu, t, a, _) = setup();
        let q = Query::aggregate_all(vec![
            Aggregate::Count,
            Aggregate::Sum("a".into()),
            Aggregate::Min("a".into()),
            Aggregate::Max("a".into()),
        ]);
        let out = execute(&mut gpu, &t, &q).unwrap();
        assert_eq!(out.matched, 100);
        assert_eq!(out.selectivity, 1.0);
        let expect_sum: u64 = a.iter().map(|&v| v as u64).sum();
        assert_eq!(out.value("COUNT(*)"), Some(&AggValue::Count(100)));
        assert_eq!(out.value("SUM(a)"), Some(&AggValue::Sum(expect_sum)));
        assert_eq!(
            out.value("MIN(a)"),
            Some(&AggValue::Value(*a.iter().min().unwrap()))
        );
        assert_eq!(
            out.value("MAX(a)"),
            Some(&AggValue::Value(*a.iter().max().unwrap()))
        );
        assert!(out.timing.total() > 0.0);
    }

    #[test]
    fn filtered_aggregates_match_reference() {
        let (mut gpu, t, a, b) = setup();
        let q = Query::filtered(
            vec![
                Aggregate::Count,
                Aggregate::Sum("b".into()),
                Aggregate::Avg("b".into()),
                Aggregate::Median("a".into()),
            ],
            BoolExpr::pred("a", GreaterEqual, 50).and(BoolExpr::pred("b", Less, 100)),
        );
        let out = execute(&mut gpu, &t, &q).unwrap();

        let selected: Vec<usize> = (0..100).filter(|&i| a[i] >= 50 && b[i] < 100).collect();
        assert_eq!(out.matched, selected.len() as u64);
        let sum_b: u64 = selected.iter().map(|&i| b[i] as u64).sum();
        assert_eq!(out.value("SUM(b)"), Some(&AggValue::Sum(sum_b)));
        let avg_b = sum_b as f64 / selected.len() as f64;
        match out.value("AVG(b)") {
            Some(AggValue::Avg(v)) => assert!((v - avg_b).abs() < 1e-9),
            other => panic!("unexpected {other:?}"),
        }
        let mut sel_a: Vec<u32> = selected.iter().map(|&i| a[i]).collect();
        sel_a.sort_unstable();
        let expect_median = sel_a[sel_a.len().div_ceil(2) - 1];
        assert_eq!(
            out.value("MEDIAN(a)"),
            Some(&AggValue::Value(expect_median))
        );
    }

    #[test]
    fn between_filter_uses_range_plan_and_is_correct() {
        let (mut gpu, t, a, _) = setup();
        let q = Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::Between {
                column: "a".into(),
                low: 40,
                high: 120,
            },
        );
        let out = execute(&mut gpu, &t, &q).unwrap();
        let expected = a.iter().filter(|&&v| (40..=120).contains(&v)).count() as u64;
        assert_eq!(out.matched, expected);
    }

    #[test]
    fn column_comparison_filter() {
        let (mut gpu, t, a, b) = setup();
        let q = Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::CompareColumns {
                left: "a".into(),
                op: Greater,
                right: "b".into(),
            },
        );
        let out = execute(&mut gpu, &t, &q).unwrap();
        let expected = (0..100).filter(|&i| a[i] > b[i]).count() as u64;
        assert_eq!(out.matched, expected);
    }

    #[test]
    fn kth_aggregates() {
        let (mut gpu, t, a, _) = setup();
        let q = Query::aggregate_all(vec![
            Aggregate::KthLargest("a".into(), 5),
            Aggregate::KthSmallest("a".into(), 5),
        ]);
        let out = execute(&mut gpu, &t, &q).unwrap();
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(
            out.value("KTH_LARGEST(a, 5)"),
            Some(&AggValue::Value(sorted[sorted.len() - 5]))
        );
        assert_eq!(
            out.value("KTH_SMALLEST(a, 5)"),
            Some(&AggValue::Value(sorted[4]))
        );
    }

    #[test]
    fn execute_scalar_shortcuts() {
        let (mut gpu, t, a, _) = setup();
        let v = execute_scalar(
            &mut gpu,
            &t,
            &Query::aggregate_all(vec![Aggregate::Max("a".into())]),
        )
        .unwrap();
        assert_eq!(v, AggValue::Value(*a.iter().max().unwrap()));
        // Requires exactly one aggregate.
        assert!(execute_scalar(&mut gpu, &t, &Query::aggregate_all(vec![])).is_err());
    }

    #[test]
    fn aggregate_over_empty_selection_errors() {
        let (mut gpu, t, _, _) = setup();
        let q = Query::filtered(
            vec![Aggregate::Median("a".into())],
            BoolExpr::pred("a", Greater, 10_000),
        );
        assert!(matches!(
            execute(&mut gpu, &t, &q).unwrap_err(),
            EngineError::EmptyInput | EngineError::InvalidK { .. }
        ));
        // COUNT over an empty selection is fine.
        let q = Query::filtered(vec![Aggregate::Count], BoolExpr::pred("a", Greater, 10_000));
        assert_eq!(execute(&mut gpu, &t, &q).unwrap().matched, 0);
    }

    #[test]
    fn in_list_filter_executes() {
        let (mut gpu, t, a, _) = setup();
        let q = Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::InList {
                column: "a".into(),
                values: vec![0, 37, 74, 111],
            },
        );
        let out = execute(&mut gpu, &t, &q).unwrap();
        let expected = a.iter().filter(|&&v| [0, 37, 74, 111].contains(&v)).count() as u64;
        assert_eq!(out.matched, expected);

        // NOT IN is the complement.
        let q = Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::InList {
                column: "a".into(),
                values: vec![0, 37, 74, 111],
            }
            .not(),
        );
        assert_eq!(execute(&mut gpu, &t, &q).unwrap().matched, 100 - expected);

        // Empty IN list selects nothing; NOT of it selects everything.
        let empty = BoolExpr::InList {
            column: "a".into(),
            values: vec![],
        };
        let q = Query::filtered(vec![Aggregate::Count], empty.clone());
        assert_eq!(execute(&mut gpu, &t, &q).unwrap().matched, 0);
        let q = Query::filtered(vec![Aggregate::Count], empty.not());
        assert_eq!(execute(&mut gpu, &t, &q).unwrap().matched, 100);
    }

    #[test]
    fn percentile_aggregate_executes() {
        let (mut gpu, t, a, _) = setup();
        let q = Query::aggregate_all(vec![Aggregate::Percentile("a".into(), 0.9)]);
        let out = execute(&mut gpu, &t, &q).unwrap();
        let mut sorted = a.clone();
        sorted.sort_unstable();
        let rank = ((0.9 * 100.0f64).ceil() as usize).clamp(1, 100);
        assert_eq!(out.rows[0].1, AggValue::Value(sorted[rank - 1]));
    }

    #[test]
    fn explain_describes_plans() {
        let (_gpu, t, _, _) = setup();
        let q = Query::filtered(
            vec![Aggregate::Count, Aggregate::Sum("a".into())],
            BoolExpr::Between {
                column: "a".into(),
                low: 10,
                high: 50,
            },
        );
        let text = explain(&t, &q).unwrap();
        assert!(text.contains("RANGE depth-bounds"), "{text}");
        assert!(text.contains("Accumulator"), "{text}");

        let q = Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::pred("a", GreaterEqual, 1).and(BoolExpr::pred("b", Less, 9)),
        );
        let text = explain(&t, &q).unwrap();
        assert!(text.contains("CONJUNCTION fast path"), "{text}");

        let q = Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::CompareColumns {
                left: "a".into(),
                op: Greater,
                right: "b".into(),
            },
        );
        let text = explain(&t, &q).unwrap();
        assert!(text.contains("SEMILINEAR"), "{text}");
    }

    #[test]
    fn execute_emits_per_stage_metrics() {
        let (mut gpu, t, _, _) = setup();
        let q = Query::filtered(
            vec![Aggregate::Count, Aggregate::Sum("a".into())],
            BoolExpr::Between {
                column: "a".into(),
                low: 40,
                high: 120,
            },
        );
        let out = execute(&mut gpu, &t, &q).unwrap();
        assert_eq!(out.metrics.len(), 3);
        assert_eq!(out.metrics[0].operator, "filter/range");
        assert_eq!(out.metrics[1].operator, "agg/COUNT(*)");
        assert_eq!(out.metrics[2].operator, "agg/SUM(a)");
        assert_eq!(out.metrics[0].input_records, 100);
        assert_eq!(out.metrics[1].input_records, out.matched);
        assert!(out.metrics[0].modeled_total_ns() > 0);
        // COUNT reuses the selection's occlusion count: no device work.
        assert_eq!(out.metrics[1].counters.draw_calls, 0);
        assert!(out.metrics[2].counters.draw_calls > 0);
        // Stage modeled times are a partition of the query's total.
        let stage_ns: u64 = out.metrics.iter().map(|r| r.modeled_total_ns()).sum();
        let total_ns = (out.timing.total() * 1e9).round() as u64;
        assert!(stage_ns.abs_diff(total_ns) <= out.metrics.len() as u64);
    }

    #[test]
    fn inverted_range_still_emits_every_stage_record() {
        // The host-decided short circuit for `low > high` does no device
        // work, but EXPLAIN ANALYZE must not skip the stage: the filter
        // record is present with all-zero cost.
        let (mut gpu, t, _, _) = setup();
        let q = Query::filtered(
            vec![Aggregate::Count, Aggregate::Sum("a".into())],
            BoolExpr::Between {
                column: "a".into(),
                low: 120,
                high: 40,
            },
        );
        let out = execute(&mut gpu, &t, &q).unwrap();
        assert_eq!(out.matched, 0);
        assert_eq!(out.metrics.len(), 3);
        assert_eq!(out.metrics[0].operator, "filter/range");
        assert_eq!(out.metrics[0].modeled_total_ns(), 0);
        assert_eq!(out.metrics[0].counters.draw_calls, 0);
        assert_eq!(out.metrics[1].operator, "agg/COUNT(*)");
        assert_eq!(out.metrics[2].operator, "agg/SUM(a)");
        assert_eq!(out.rows[1].1, AggValue::Sum(0));
        let text = explain_analyze(&mut gpu, &t, &q).unwrap();
        assert!(text.contains("filter/range"), "{text}");
        assert!(text.contains("phases[-]"), "{text}");
    }

    #[test]
    fn explain_with_device_lists_pass_state_without_cost() {
        let (mut gpu, t, _, _) = setup();
        let q = Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::Between {
                column: "a".into(),
                low: 10,
                high: 50,
            },
        );
        let counters_before = gpu.stats().counters();
        let text = explain_with_device(&mut gpu, &t, &q).unwrap();
        // Headline unchanged, now followed by per-pass device state.
        assert!(text.contains("RANGE depth-bounds"), "{text}");
        assert!(text.contains("pass 1:"), "{text}");
        assert!(text.contains("bounds["), "{text}");
        assert!(text.contains("stencil("), "{text}");
        // The record-only dry run shades nothing and costs nothing.
        assert!(!gpu.is_recording());
        assert_eq!(gpu.stats().counters(), counters_before);

        // CNF plans list one pass per predicate plus the copies.
        let q = Query::filtered(
            vec![Aggregate::Count],
            BoolExpr::pred("a", GreaterEqual, 50).and(BoolExpr::pred("b", Less, 100)),
        );
        let text = explain_with_device(&mut gpu, &t, &q).unwrap();
        assert!(text.contains("CONJUNCTION fast path"), "{text}");
        assert!(text.contains("depth("), "{text}");
    }

    #[test]
    fn validation_is_bit_passive_and_restores_device() {
        let q = Query::filtered(
            vec![
                Aggregate::Count,
                Aggregate::Sum("a".into()),
                Aggregate::Median("a".into()),
            ],
            BoolExpr::pred("a", GreaterEqual, 50).and(BoolExpr::pred("b", Less, 100)),
        );
        let (mut gpu, t, _, _) = setup();
        let validated = execute_with_options(
            &mut gpu,
            &t,
            &q,
            ExecuteOptions {
                validate_plans: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!gpu.is_recording(), "tracing must be torn down");
        let (mut gpu, t, _, _) = setup();
        let plain = execute_with_options(
            &mut gpu,
            &t,
            &q,
            ExecuteOptions {
                validate_plans: false,
                ..Default::default()
            },
        )
        .unwrap();
        // Identical results, metrics and modeled timing either way
        // (wall is real elapsed time, the one nondeterministic field).
        let modeled = |mut out: QueryOutput| {
            out.timing.wall = 0.0;
            out
        };
        assert_eq!(modeled(validated), modeled(plain));
    }

    #[test]
    fn validation_piggybacks_on_caller_tracing() {
        let (mut gpu, t, _, _) = setup();
        gpu.enable_tracing(gpudb_sim::RecordMode::RecordAndExecute);
        let q = Query::filtered(vec![Aggregate::Count], BoolExpr::pred("a", Less, 100));
        execute_with_options(
            &mut gpu,
            &t,
            &q,
            ExecuteOptions {
                validate_plans: true,
                ..Default::default()
            },
        )
        .unwrap();
        // The caller's recorder stays active and owns the plans.
        assert!(gpu.is_recording());
        let plans = gpu.take_plans();
        assert!(
            plans.iter().any(|p| p.label.starts_with("filter/")),
            "{:?}",
            plans.iter().map(|p| &p.label).collect::<Vec<_>>()
        );
        gpu.disable_tracing();
    }

    #[test]
    fn all_query_shapes_validate_cleanly() {
        // Every planner path, executed with validation forced on: the
        // real operators must produce lint-clean pass plans.
        let filters = [
            None,
            Some(BoolExpr::pred("a", Greater, 80)),
            Some(BoolExpr::Between {
                column: "a".into(),
                low: 40,
                high: 120,
            }),
            Some(BoolExpr::pred("a", GreaterEqual, 50).and(BoolExpr::pred("b", Less, 100))),
            Some(BoolExpr::pred("a", Less, 30).or(BoolExpr::pred("b", Greater, 120))),
            Some(BoolExpr::CompareColumns {
                left: "a".into(),
                op: Greater,
                right: "b".into(),
            }),
        ];
        for filter in filters {
            let (mut gpu, t, _, _) = setup();
            let q = Query {
                aggregates: vec![Aggregate::Count, Aggregate::Sum("a".into())],
                filter: filter.clone(),
            };
            let out = execute_with_options(
                &mut gpu,
                &t,
                &q,
                ExecuteOptions {
                    validate_plans: true,
                    ..Default::default()
                },
            );
            assert!(out.is_ok(), "filter {filter:?}: {:?}", out.err());
        }
    }

    #[test]
    fn tracing_collects_nested_spans_per_stage() {
        let (mut gpu, t, _, _) = setup();
        let q = Query::filtered(
            vec![Aggregate::Count, Aggregate::Sum("a".into())],
            BoolExpr::pred("a", GreaterEqual, 50).and(BoolExpr::pred("b", Less, 100)),
        );
        let out = execute_with_options(
            &mut gpu,
            &t,
            &q,
            ExecuteOptions {
                validate_plans: false,
                trace: Some(TraceLevel::Passes),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!gpu.has_span_sink(), "sink must be detached");
        let tree = out.trace.as_ref().expect("trace requested");
        assert_eq!(tree.roots.len(), 1);
        let query_span = &tree.roots[0];
        assert_eq!(query_span.kind, SpanKind::Query);
        // One stage per metrics record, one operator span per stage, in
        // record order.
        assert_eq!(query_span.children.len(), out.metrics.len());
        for (stage, record) in query_span.children.iter().zip(&out.metrics) {
            assert_eq!(stage.kind, SpanKind::Stage);
            assert_eq!(stage.children.len(), 1);
            let op = &stage.children[0];
            assert_eq!(op.kind, SpanKind::Operator);
            assert_eq!(op.name, record.operator);
            assert_eq!(op.counters, record.counters);
            // Span duration and record total both derive from the modeled
            // clock; rounding at different boundaries may differ by 1 ns.
            assert!(op.duration_ns().abs_diff(record.modeled_total_ns()) <= 1);
        }
        // The selection's operator span contains device leaf spans.
        let sel_op = &query_span.children[0].children[0];
        assert!(
            sel_op.children.iter().any(|s| s.kind == SpanKind::Pass),
            "{:?}",
            sel_op.children.iter().map(|s| &s.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn tracing_is_cost_transparent() {
        let q = Query::filtered(
            vec![Aggregate::Count, Aggregate::Median("a".into())],
            BoolExpr::pred("a", Less, 120),
        );
        let run = |trace: Option<TraceLevel>| {
            let (mut gpu, t, _, _) = setup();
            let mut out = execute_with_options(
                &mut gpu,
                &t,
                &q,
                ExecuteOptions {
                    validate_plans: false,
                    trace,
                    ..Default::default()
                },
            )
            .unwrap();
            out.timing.wall = 0.0;
            out.trace = None;
            out
        };
        assert_eq!(run(None), run(Some(TraceLevel::Full)));
    }

    #[test]
    fn explain_analyze_renders_measured_plan_tree() {
        // The acceptance query: multi-predicate CNF filter + aggregates.
        let q = Query::filtered(
            vec![Aggregate::Count, Aggregate::Sum("b".into())],
            BoolExpr::pred("a", GreaterEqual, 50).and(BoolExpr::pred("b", Less, 100)),
        );
        let (mut gpu, t, _, _) = setup();
        let text = explain_analyze(&mut gpu, &t, &q).unwrap();
        assert!(text.contains("EXPLAIN ANALYZE t:"), "{text}");
        assert!(text.contains("SELECTION: CONJUNCTION"), "{text}");
        assert!(text.contains("[filter/cnf]"), "{text}");
        assert!(text.contains("[agg/SUM(b)]"), "{text}");
        assert!(text.contains("% of query"), "{text}");
        assert!(text.contains("passes:"), "{text}");
        assert!(text.contains("phases["), "{text}");

        // Per-node modeled times sum to the query's metrics-log total:
        // the header's total is exactly the sum of the per-stage totals.
        let (mut gpu, t, _, _) = setup();
        let out = execute_with_options(
            &mut gpu,
            &t,
            &q,
            ExecuteOptions {
                validate_plans: false,
                trace: Some(TraceLevel::Passes),
                ..Default::default()
            },
        )
        .unwrap();
        let mut log = crate::metrics::MetricsLog::new();
        for r in &out.metrics {
            log.push(r.clone());
        }
        let total = log.modeled_total_ns();
        assert!(total > 0);
        assert!(
            text.contains(&format!("modeled {} ms", fmt_ms(total))),
            "{text}"
        );
        for record in &out.metrics {
            assert!(
                text.contains(&format!(
                    "[{}] {} ms",
                    record.operator,
                    fmt_ms(record.modeled_total_ns())
                )),
                "{text}"
            );
        }

        // Determinism: a fresh device renders the identical report.
        let (mut gpu, t, _, _) = setup();
        assert_eq!(text, explain_analyze(&mut gpu, &t, &q).unwrap());
    }

    #[test]
    fn caller_owned_sink_keeps_the_spans() {
        let (mut gpu, t, _, _) = setup();
        gpu.attach_span_sink(Box::new(SpanCollector::new(TraceLevel::Passes)));
        let q = Query::filtered(vec![Aggregate::Count], BoolExpr::pred("a", Less, 100));
        let out = execute_with_options(
            &mut gpu,
            &t,
            &q,
            ExecuteOptions {
                validate_plans: false,
                trace: Some(TraceLevel::Passes),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.trace.is_none(), "caller's sink owns the spans");
        assert!(gpu.has_span_sink(), "caller's sink stays attached");
        let tree = SpanCollector::recover(gpu.take_span_sink().unwrap())
            .unwrap()
            .finish();
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.roots[0].kind, SpanKind::Query);
    }

    #[test]
    fn unknown_aggregate_column_rejected() {
        let (mut gpu, t, _, _) = setup();
        let q = Query::aggregate_all(vec![Aggregate::Sum("nope".into())]);
        assert!(matches!(
            execute(&mut gpu, &t, &q).unwrap_err(),
            EngineError::ColumnNotFound(_)
        ));
    }
}
