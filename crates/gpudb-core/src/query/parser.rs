//! A small SQL-ish text parser for the query layer.
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! query     := (EXPLAIN ANALYZE?)? SELECT agg (',' agg)* FROM ident (WHERE orexpr)?
//! agg       := COUNT '(' '*' ')'
//!            | (SUM|AVG|MIN|MAX|MEDIAN) '(' ident ')'
//!            | (KTH_LARGEST|KTH_SMALLEST) '(' ident ',' int ')'
//!            | PERCENTILE '(' ident ',' float ')'
//! orexpr    := andexpr (OR andexpr)*
//! andexpr   := notexpr (AND notexpr)*
//! notexpr   := NOT notexpr | atom
//! atom      := '(' orexpr ')'
//!            | ident BETWEEN int AND int
//!            | ident IN '(' int (',' int)* ')'
//!            | ident cmp (int | ident)
//! cmp       := '=' | '<>' | '!=' | '<' | '<=' | '>' | '>='
//! ```
//!
//! `ident cmp ident` parses to a column–column comparison (the paper's
//! `ai op aj` predicates, planned as semi-linear queries).

use crate::error::{EngineError, EngineResult};
use crate::query::ast::{Aggregate, BoolExpr, Query};
use gpudb_sim::CompareFunc;

/// A parsed statement: the query plus the table name it targets.
#[derive(Debug, Clone, PartialEq)]
pub struct Statement {
    /// Target table name.
    pub table: String,
    /// The query.
    pub query: Query,
    /// Whether the statement was prefixed with EXPLAIN (describe the plan
    /// instead of executing).
    pub explain: bool,
    /// Whether the statement was prefixed with EXPLAIN ANALYZE (execute
    /// for real and annotate the plan tree with measured modeled times).
    /// Implies [`Statement::explain`].
    pub analyze: bool,
}

/// Parse a SQL-ish statement.
pub fn parse(input: &str) -> EngineResult<Statement> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    if p.pos != p.tokens.len() {
        return Err(err(format!("unexpected trailing input at {:?}", p.peek())));
    }
    Ok(stmt)
}

fn err(msg: impl Into<String>) -> EngineError {
    EngineError::InvalidQuery(msg.into())
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(u64),
    Float(f64),
    Symbol(&'static str),
}

impl Token {
    fn keyword_eq(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

fn tokenize(input: &str) -> EngineResult<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' | ')' | ',' | '*' => {
                tokens.push(Token::Symbol(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    _ => "*",
                }));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Symbol("<="));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&'>') {
                    tokens.push(Token::Symbol("<>"));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol("<"));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Symbol(">="));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(">"));
                    i += 1;
                }
            }
            '=' => {
                tokens.push(Token::Symbol("="));
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Symbol("!="));
                    i += 2;
                } else {
                    return Err(err("stray '!'"));
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                if text.contains('.') {
                    tokens.push(Token::Float(
                        text.parse()
                            .map_err(|_| err(format!("bad number {text:?}")))?,
                    ));
                } else {
                    tokens.push(Token::Int(
                        text.parse()
                            .map_err(|_| err(format!("bad number {text:?}")))?,
                    ));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                tokens.push(Token::Ident(bytes[start..i].iter().collect()));
            }
            other => return Err(err(format!("unexpected character {other:?}"))),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> EngineResult<&Token> {
        let tok = self
            .tokens
            .get(self.pos)
            .ok_or_else(|| err("unexpected end of input"))?;
        self.pos += 1;
        Ok(tok)
    }

    fn expect_symbol(&mut self, sym: &str) -> EngineResult<()> {
        match self.next()? {
            Token::Symbol(s) if *s == sym => Ok(()),
            other => Err(err(format!("expected {sym:?}, got {other:?}"))),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> EngineResult<()> {
        let tok = self.next()?;
        if tok.keyword_eq(kw) {
            Ok(())
        } else {
            Err(err(format!("expected {kw}, got {tok:?}")))
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.keyword_eq(kw))
    }

    fn ident(&mut self) -> EngineResult<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s.clone()),
            other => Err(err(format!("expected identifier, got {other:?}"))),
        }
    }

    fn int(&mut self) -> EngineResult<u64> {
        match self.next()? {
            Token::Int(v) => Ok(*v),
            other => Err(err(format!("expected integer, got {other:?}"))),
        }
    }

    fn statement(&mut self) -> EngineResult<Statement> {
        let explain = if self.peek_keyword("EXPLAIN") {
            self.pos += 1;
            true
        } else {
            false
        };
        let analyze = if explain && self.peek_keyword("ANALYZE") {
            self.pos += 1;
            true
        } else {
            false
        };
        self.expect_keyword("SELECT")?;
        let mut aggregates = vec![self.aggregate()?];
        while self.peek() == Some(&Token::Symbol(",")) {
            self.pos += 1;
            aggregates.push(self.aggregate()?);
        }
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let filter = if self.peek_keyword("WHERE") {
            self.pos += 1;
            Some(self.or_expr()?)
        } else {
            None
        };
        Ok(Statement {
            table,
            query: Query { aggregates, filter },
            explain,
            analyze,
        })
    }

    fn aggregate(&mut self) -> EngineResult<Aggregate> {
        let name = self.ident()?.to_ascii_uppercase();
        self.expect_symbol("(")?;
        let agg = match name.as_str() {
            "COUNT" => {
                self.expect_symbol("*")?;
                Aggregate::Count
            }
            "SUM" => Aggregate::Sum(self.ident()?),
            "AVG" => Aggregate::Avg(self.ident()?),
            "MIN" => Aggregate::Min(self.ident()?),
            "MAX" => Aggregate::Max(self.ident()?),
            "MEDIAN" => Aggregate::Median(self.ident()?),
            "PERCENTILE" => {
                let col = self.ident()?;
                self.expect_symbol(",")?;
                let p = match self.next()? {
                    Token::Float(v) => *v,
                    Token::Int(v) => *v as f64,
                    other => return Err(err(format!("expected fraction, got {other:?}"))),
                };
                if !(0.0..=1.0).contains(&p) {
                    return Err(err(format!("percentile {p} outside [0, 1]")));
                }
                Aggregate::Percentile(col, p)
            }
            "KTH_LARGEST" | "KTH_SMALLEST" => {
                let col = self.ident()?;
                self.expect_symbol(",")?;
                let k = self.int()? as usize;
                if name == "KTH_LARGEST" {
                    Aggregate::KthLargest(col, k)
                } else {
                    Aggregate::KthSmallest(col, k)
                }
            }
            other => return Err(err(format!("unknown aggregate {other}"))),
        };
        self.expect_symbol(")")?;
        Ok(agg)
    }

    fn or_expr(&mut self) -> EngineResult<BoolExpr> {
        let mut lhs = self.and_expr()?;
        while self.peek_keyword("OR") {
            self.pos += 1;
            lhs = lhs.or(self.and_expr()?);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> EngineResult<BoolExpr> {
        let mut lhs = self.not_expr()?;
        while self.peek_keyword("AND") {
            self.pos += 1;
            lhs = lhs.and(self.not_expr()?);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> EngineResult<BoolExpr> {
        if self.peek_keyword("NOT") {
            self.pos += 1;
            return Ok(self.not_expr()?.not());
        }
        self.atom()
    }

    fn atom(&mut self) -> EngineResult<BoolExpr> {
        if self.peek() == Some(&Token::Symbol("(")) {
            self.pos += 1;
            let inner = self.or_expr()?;
            self.expect_symbol(")")?;
            return Ok(inner);
        }
        let column = self.ident()?;
        if self.peek_keyword("IN") {
            self.pos += 1;
            self.expect_symbol("(")?;
            let mut values =
                vec![u32::try_from(self.int()?).map_err(|_| err("IN value exceeds 32 bits"))?];
            while self.peek() == Some(&Token::Symbol(",")) {
                self.pos += 1;
                values
                    .push(u32::try_from(self.int()?).map_err(|_| err("IN value exceeds 32 bits"))?);
            }
            self.expect_symbol(")")?;
            return Ok(BoolExpr::InList { column, values });
        }
        if self.peek_keyword("BETWEEN") {
            self.pos += 1;
            let low = self.int()? as u32;
            self.expect_keyword("AND")?;
            let high = self.int()? as u32;
            return Ok(BoolExpr::Between { column, low, high });
        }
        let op = self.comparison_op()?;
        match self.next()? {
            Token::Int(v) => Ok(BoolExpr::Pred {
                column,
                op,
                constant: u32::try_from(*v).map_err(|_| err("constant exceeds 32 bits"))?,
            }),
            Token::Ident(right) => Ok(BoolExpr::CompareColumns {
                left: column,
                op,
                right: right.clone(),
            }),
            other => Err(err(format!("expected constant or column, got {other:?}"))),
        }
    }

    fn comparison_op(&mut self) -> EngineResult<CompareFunc> {
        match self.next()? {
            Token::Symbol("<") => Ok(CompareFunc::Less),
            Token::Symbol("<=") => Ok(CompareFunc::LessEqual),
            Token::Symbol(">") => Ok(CompareFunc::Greater),
            Token::Symbol(">=") => Ok(CompareFunc::GreaterEqual),
            Token::Symbol("=") => Ok(CompareFunc::Equal),
            Token::Symbol("<>") | Token::Symbol("!=") => Ok(CompareFunc::NotEqual),
            other => Err(err(format!("expected comparison operator, got {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpudb_sim::CompareFunc::*;

    #[test]
    fn parses_simple_count() {
        let stmt = parse("SELECT COUNT(*) FROM flows").unwrap();
        assert_eq!(stmt.table, "flows");
        assert_eq!(stmt.query.aggregates, vec![Aggregate::Count]);
        assert_eq!(stmt.query.filter, None);
    }

    #[test]
    fn parses_full_statement() {
        let stmt = parse(
            "SELECT COUNT(*), SUM(bytes), MEDIAN(rate), KTH_LARGEST(rate, 10) \
             FROM flows WHERE bytes >= 1000 AND (rate < 50 OR NOT loss = 0)",
        )
        .unwrap();
        assert_eq!(stmt.table, "flows");
        assert_eq!(stmt.query.aggregates.len(), 4);
        assert_eq!(
            stmt.query.aggregates[3],
            Aggregate::KthLargest("rate".into(), 10)
        );
        let filter = stmt.query.filter.unwrap();
        match filter {
            BoolExpr::And(lhs, rhs) => {
                assert_eq!(*lhs, BoolExpr::pred("bytes", GreaterEqual, 1000));
                assert!(matches!(*rhs, BoolExpr::Or(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn keywords_case_insensitive() {
        let stmt = parse("select count(*) from t where a between 1 and 5").unwrap();
        assert_eq!(
            stmt.query.filter,
            Some(BoolExpr::Between {
                column: "a".into(),
                low: 1,
                high: 5
            })
        );
    }

    #[test]
    fn between_binds_tighter_than_and() {
        let stmt = parse("SELECT COUNT(*) FROM t WHERE a BETWEEN 1 AND 5 AND b > 3").unwrap();
        match stmt.query.filter.unwrap() {
            BoolExpr::And(lhs, rhs) => {
                assert!(matches!(*lhs, BoolExpr::Between { .. }));
                assert_eq!(*rhs, BoolExpr::pred("b", Greater, 3));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn column_comparison_atom() {
        let stmt = parse("SELECT COUNT(*) FROM t WHERE sent > received").unwrap();
        assert_eq!(
            stmt.query.filter,
            Some(BoolExpr::CompareColumns {
                left: "sent".into(),
                op: Greater,
                right: "received".into()
            })
        );
    }

    #[test]
    fn all_comparison_operators() {
        for (text, op) in [
            ("<", Less),
            ("<=", LessEqual),
            (">", Greater),
            (">=", GreaterEqual),
            ("=", Equal),
            ("<>", NotEqual),
            ("!=", NotEqual),
        ] {
            let stmt = parse(&format!("SELECT COUNT(*) FROM t WHERE a {text} 7")).unwrap();
            assert_eq!(
                stmt.query.filter,
                Some(BoolExpr::pred("a", op, 7)),
                "{text}"
            );
        }
    }

    #[test]
    fn operator_precedence_and_over_or() {
        let stmt = parse("SELECT COUNT(*) FROM t WHERE a < 1 OR b < 2 AND c < 3").unwrap();
        match stmt.query.filter.unwrap() {
            BoolExpr::Or(lhs, rhs) => {
                assert_eq!(*lhs, BoolExpr::pred("a", Less, 1));
                assert!(matches!(*rhs, BoolExpr::And(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parenthesized_grouping() {
        let stmt = parse("SELECT COUNT(*) FROM t WHERE (a < 1 OR b < 2) AND c < 3").unwrap();
        assert!(matches!(stmt.query.filter.unwrap(), BoolExpr::And(_, _)));
    }

    #[test]
    fn rejects_malformed_statements() {
        assert!(parse("").is_err());
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT COUNT(*) WHERE a < 1").is_err());
        assert!(parse("SELECT COUNT(*) FROM t WHERE").is_err());
        assert!(parse("SELECT COUNT(*) FROM t WHERE a <").is_err());
        assert!(parse("SELECT COUNT(*) FROM t trailing").is_err());
        assert!(parse("SELECT FROB(a) FROM t").is_err());
        assert!(parse("SELECT COUNT(a) FROM t").is_err(), "COUNT takes *");
        assert!(parse("SELECT COUNT(*) FROM t WHERE a ! 1").is_err());
        assert!(parse("SELECT COUNT(*) FROM t WHERE a < 99999999999").is_err());
    }

    #[test]
    fn numbers_with_dots_rejected_in_int_position() {
        assert!(parse("SELECT KTH_LARGEST(a, 1.5) FROM t").is_err());
    }

    #[test]
    fn in_list_atom() {
        let stmt = parse("SELECT COUNT(*) FROM t WHERE a IN (1, 5, 9)").unwrap();
        assert_eq!(
            stmt.query.filter,
            Some(BoolExpr::InList {
                column: "a".into(),
                values: vec![1, 5, 9]
            })
        );
        // Single-element list and NOT IN.
        let stmt = parse("SELECT COUNT(*) FROM t WHERE NOT a IN (7)").unwrap();
        assert!(matches!(stmt.query.filter, Some(BoolExpr::Not(_))));
        // Malformed lists.
        assert!(parse("SELECT COUNT(*) FROM t WHERE a IN ()").is_err());
        assert!(parse("SELECT COUNT(*) FROM t WHERE a IN (1,)").is_err());
        assert!(parse("SELECT COUNT(*) FROM t WHERE a IN (1 2)").is_err());
    }

    #[test]
    fn percentile_aggregate() {
        let stmt = parse("SELECT PERCENTILE(income, 0.95) FROM t").unwrap();
        assert_eq!(
            stmt.query.aggregates[0],
            Aggregate::Percentile("income".into(), 0.95)
        );
        // Integer 1 accepted (p = 1.0); out-of-range rejected.
        assert!(parse("SELECT PERCENTILE(x, 1) FROM t").is_ok());
        assert!(parse("SELECT PERCENTILE(x, 1.5) FROM t").is_err());
    }

    #[test]
    fn explain_prefix() {
        let stmt = parse("EXPLAIN SELECT COUNT(*) FROM t WHERE a < 5").unwrap();
        assert!(stmt.explain);
        assert!(!stmt.analyze);
        let stmt = parse("SELECT COUNT(*) FROM t").unwrap();
        assert!(!stmt.explain);
        assert!(!stmt.analyze);
        assert!(parse("EXPLAIN EXPLAIN SELECT COUNT(*) FROM t").is_err());
    }

    #[test]
    fn explain_analyze_prefix() {
        let stmt = parse("EXPLAIN ANALYZE SELECT COUNT(*) FROM t WHERE a < 5").unwrap();
        assert!(stmt.explain);
        assert!(stmt.analyze);
        // ANALYZE without EXPLAIN is not a prefix, and double ANALYZE fails.
        assert!(parse("ANALYZE SELECT COUNT(*) FROM t").is_err());
        assert!(parse("EXPLAIN ANALYZE ANALYZE SELECT COUNT(*) FROM t").is_err());
    }
}
