//! Declarative query layer: AST, SQL-ish parser, planner, executor.
//!
//! This is the downstream-user face of the library: build a [`Query`] (or
//! parse one), and [`execute`] it against a [`crate::table::GpuTable`].
//! The planner maps the WHERE clause onto the paper's primitives — CNF via
//! stencil tests, ranges via the depth-bounds test, column comparisons via
//! semi-linear kill passes — and the executor runs the aggregates over the
//! resulting stencil selection.

pub mod ast;
pub mod executor;
pub mod parser;
pub mod planner;

pub use ast::{Aggregate, BoolExpr, Query};
pub use executor::{
    execute, execute_scalar, execute_with_options, explain, explain_analyze,
    explain_analyze_with_options, explain_with_device, AggValue, ExecuteOptions, QueryOutput,
};
pub use gpudb_obs::TraceLevel;
pub use parser::{parse, Statement};
pub use planner::{plan_selection, SelectionPlan};
