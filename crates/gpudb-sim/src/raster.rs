//! Screen-aligned quad rasterization.
//!
//! The paper's algorithms drive the GPU exclusively by rendering
//! screen-filling quadrilaterals ("To perform computations on the values
//! stored in a texture, we render a single quadrilateral that covers the
//! window" — §3.3). The rasterizer turns a set of axis-aligned rectangles
//! into fragments and pushes each through the per-fragment pipeline.

use crate::buffers::Framebuffer;
use crate::cost::{DrawCost, HardwareProfile};
use crate::pipeline::{process_fragment, FbBand, FragmentFate, PipelineEnv};
use crate::program::isa::FragmentProgram;
use crate::state::PipelineState;
use crate::texture::Texture;
use serde::{Deserialize, Serialize};

/// An axis-aligned pixel rectangle, the rasterizer's primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge (inclusive).
    pub x: usize,
    /// Top edge (inclusive).
    pub y: usize,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
}

impl Rect {
    /// Construct a rectangle.
    pub fn new(x: usize, y: usize, width: usize, height: usize) -> Rect {
        Rect {
            x,
            y,
            width,
            height,
        }
    }

    /// A rectangle covering an entire `width`×`height` framebuffer.
    pub fn full(width: usize, height: usize) -> Rect {
        Rect::new(0, 0, width, height)
    }

    /// Pixel count.
    pub fn area(&self) -> usize {
        self.width * self.height
    }

    /// Whether the rectangle fits within a `width`×`height` framebuffer.
    pub fn fits(&self, width: usize, height: usize) -> bool {
        self.x.checked_add(self.width).is_some_and(|r| r <= width)
            && self.y.checked_add(self.height).is_some_and(|b| b <= height)
    }

    /// Rectangles covering exactly the first `count` pixels of a row-major
    /// `width`-wide grid: full rows first, then a partial last row. This is
    /// how the database layer renders a quad over exactly `n` records when
    /// `n` is not a multiple of the texture width.
    pub fn covering_prefix(count: usize, width: usize) -> Vec<Rect> {
        assert!(width > 0, "grid width must be positive");
        let full_rows = count / width;
        let remainder = count % width;
        let mut rects = Vec::with_capacity(2);
        if full_rows > 0 {
            rects.push(Rect::new(0, 0, width, full_rows));
        }
        if remainder > 0 {
            rects.push(Rect::new(0, full_rows, remainder, 1));
        }
        rects
    }
}

/// Everything a draw call needs, borrowed from the device.
pub(crate) struct DrawInputs<'a> {
    pub state: &'a PipelineState,
    pub program: Option<&'a FragmentProgram>,
    pub textures: &'a [Option<&'a Texture>],
    pub env: &'a [[f32; 4]],
    /// Depth at which the quad is rendered (the paper's `RenderQuad(d)`).
    pub quad_depth: f32,
    /// Flat primary color of the quad.
    pub draw_color: [f32; 4],
    /// Whether the early-z optimization is enabled on the device.
    pub early_z: bool,
}

/// Minimum total fragment count before the rasterizer fans out across
/// host threads (below this, thread startup dominates).
const PARALLEL_THRESHOLD: usize = 1 << 15;

/// Rasterize one row band: process every rect pixel whose row falls in
/// `[row_start, row_end)`.
fn rasterize_band(
    inputs: &DrawInputs<'_>,
    band: &mut FbBand<'_>,
    rects: &[Rect],
    fb_width: usize,
    row_start: usize,
    row_end: usize,
) -> DrawCost {
    let env = PipelineEnv {
        state: inputs.state,
        program: inputs.program,
        textures: inputs.textures,
        env: inputs.env,
        quad_depth: inputs.quad_depth,
        draw_color: inputs.draw_color,
        early_z: inputs.early_z,
    };
    let mut cost = DrawCost::default();
    for rect in rects {
        let y0 = rect.y.max(row_start);
        let y1 = (rect.y + rect.height).min(row_end);
        for y in y0..y1 {
            let row_base = y * fb_width;
            for x in rect.x..rect.x + rect.width {
                if !inputs.state.scissor.contains(x, y) {
                    continue;
                }
                cost.fragments += 1;
                let fate = process_fragment(&env, band, x, y, row_base + x);
                match fate {
                    FragmentFate::Passed { shaded } => {
                        cost.passed += 1;
                        if shaded {
                            cost.shaded += 1;
                        }
                    }
                    FragmentFate::Discarded { shaded } => {
                        if shaded {
                            cost.shaded += 1;
                        } else if inputs.program.is_some() {
                            cost.early_rejected += 1;
                        }
                    }
                }
            }
        }
    }
    cost
}

/// Rasterize `rects` into `fb`, returning the pass accounting.
///
/// Rectangles must already be validated against the framebuffer size.
/// Large draws are split into disjoint row bands processed on parallel
/// host threads — the simulation analogue of the device's parallel pixel
/// pipes (results are identical: bands never share pixels).
pub(crate) fn rasterize(
    inputs: &DrawInputs<'_>,
    fb: &mut Framebuffer,
    rects: &[Rect],
    profile: &HardwareProfile,
) -> DrawCost {
    let fb_width = fb.width();
    let fb_height = fb.height();
    let area: usize = rects.iter().map(Rect::area).sum();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8);

    let mut cost = if area < PARALLEL_THRESHOLD || threads < 2 || fb_height < 2 {
        let mut band = FbBand::full(fb);
        rasterize_band(inputs, &mut band, rects, fb_width, 0, fb_height)
    } else {
        // Split the framebuffer into contiguous row bands, one per worker.
        let bands = threads.min(fb_height);
        let rows_per_band = fb_height.div_ceil(bands);
        let mut color_rest = fb.color.data_mut();
        let mut depth_rest = fb.depth.raw_data_mut();
        let mut stencil_rest = fb.stencil.data_mut();

        let mut partials: Vec<DrawCost> = Vec::new();
        crossbeam::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(bands);
            let mut row = 0usize;
            while row < fb_height {
                let row_end = (row + rows_per_band).min(fb_height);
                let band_px = (row_end - row) * fb_width;
                let (color_band, c_rest) = color_rest.split_at_mut(band_px);
                let (depth_band, d_rest) = depth_rest.split_at_mut(band_px);
                let (stencil_band, s_rest) = stencil_rest.split_at_mut(band_px);
                color_rest = c_rest;
                depth_rest = d_rest;
                stencil_rest = s_rest;
                let base = row * fb_width;
                let row_start = row;
                handles.push(scope.spawn(move |_| {
                    let mut band = FbBand {
                        color: color_band,
                        depth: depth_band,
                        stencil: stencil_band,
                        base,
                    };
                    rasterize_band(inputs, &mut band, rects, fb_width, row_start, row_end)
                }));
                row = row_end;
            }
            partials = handles
                .into_iter()
                .map(|h| h.join().expect("raster worker panicked"))
                .collect();
        })
        .expect("raster scope panicked");

        let mut total = DrawCost::default();
        for p in partials {
            total.fragments += p.fragments;
            total.shaded += p.shaded;
            total.early_rejected += p.early_rejected;
            total.passed += p.passed;
        }
        total
    };

    let program_cycles = inputs.program.map_or(0, |p| p.cycle_cost);
    cost.instructions = cost.shaded * inputs.program.map_or(0, |p| p.len() as u64);
    cost.modeled_seconds = profile.raster_seconds(cost.fragments, cost.shaded, program_cycles)
        + profile.draw_call_overhead_s;
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_area_and_fit() {
        let r = Rect::new(1, 2, 3, 4);
        assert_eq!(r.area(), 12);
        assert!(r.fits(4, 6));
        assert!(!r.fits(3, 6));
        assert!(!r.fits(4, 5));
        assert!(Rect::full(10, 10).fits(10, 10));
    }

    #[test]
    fn covering_prefix_exact_rows() {
        let rects = Rect::covering_prefix(20, 5);
        assert_eq!(rects, vec![Rect::new(0, 0, 5, 4)]);
        assert_eq!(rects.iter().map(Rect::area).sum::<usize>(), 20);
    }

    #[test]
    fn covering_prefix_with_remainder() {
        let rects = Rect::covering_prefix(23, 5);
        assert_eq!(rects, vec![Rect::new(0, 0, 5, 4), Rect::new(0, 4, 3, 1)]);
        assert_eq!(rects.iter().map(Rect::area).sum::<usize>(), 23);
    }

    #[test]
    fn covering_prefix_small_count() {
        let rects = Rect::covering_prefix(3, 5);
        assert_eq!(rects, vec![Rect::new(0, 0, 3, 1)]);
    }

    #[test]
    fn covering_prefix_zero() {
        assert!(Rect::covering_prefix(0, 5).is_empty());
    }

    #[test]
    fn covering_prefix_covers_distinct_pixels() {
        // The rects must tile without overlap for any n.
        for n in [1usize, 4, 5, 6, 99, 100, 101] {
            let rects = Rect::covering_prefix(n, 10);
            let mut seen = std::collections::HashSet::new();
            for r in &rects {
                for y in r.y..r.y + r.height {
                    for x in r.x..r.x + r.width {
                        assert!(seen.insert((x, y)), "overlap at ({x},{y}) for n={n}");
                    }
                }
            }
            assert_eq!(seen.len(), n);
        }
    }
}
