//! The hardware cost model: converts counted work into modeled time on the
//! paper's evaluation platform.
//!
//! Calibration anchors, all taken from the paper itself:
//!
//! * §5: "an NVIDIA GeForceFX 5900 Ultra graphics processor [...] can
//!   process up to 8 pixels at processor clock rate of 450 MHz" and "We
//!   transfer textures from the CPU to the graphics processor using an AGP
//!   8X interface."
//! * §6.2.2: "we can render a single quad of size 1000×1000 in 0.278 ms"
//!   — exactly `10^6 / (8 · 450 MHz)`, which fixes the fixed-function cost
//!   at one fragment per pipe per clock.
//! * §6.2.2: "Rendering these quads should take 5.28 ms. The observed time
//!   for this computation is 6.6 ms" — the 19-pass loop of `KthLargest`
//!   therefore carries ≈ 0.07 ms of per-pass synchronization latency
//!   (each iteration must read the occlusion count before the next pass).
//! * §5.11: "we can obtain the number of selected values within 0.25 ms"
//!   — an upper bound consistent with the 0.07 ms per-pass latency plus
//!   pipeline flush.

use crate::program::isa::FragmentProgram;
use crate::stats::{GpuStats, Phase};
use serde::{Deserialize, Serialize};

/// Performance parameters of a modeled device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareProfile {
    /// Human-readable name.
    pub name: String,
    /// Fragment/core clock in Hz.
    pub core_clock_hz: f64,
    /// Number of parallel pixel pipelines.
    pub pixel_pipes: u32,
    /// Cycles a fragment spends in the fixed-function test/write path.
    pub fixed_fragment_cycles: f64,
    /// Per-pass cost of issuing a draw call (driver + setup).
    pub draw_call_overhead_s: f64,
    /// Latency of a *synchronous* occlusion-query result fetch (the pipeline
    /// must drain). Asynchronous queries are free, per §5.3.
    pub occlusion_sync_latency_s: f64,
    /// Host→device bandwidth (AGP 8× ≈ 2.1 GB/s).
    pub upload_bytes_per_sec: f64,
    /// Device→host bandwidth (readbacks went over PCI, ≈ 266 MB/s).
    pub readback_bytes_per_sec: f64,
    /// Fixed latency added to any buffer readback.
    pub readback_latency_s: f64,
    /// Whether the device supports the §6.1 depth-compare-mask extension
    /// (hypothetical in 2004; used for the hardware-wishlist ablation).
    pub has_depth_compare_mask: bool,
    /// Whether the device supports `EXT_depth_bounds_test` (§4.4's Range
    /// routine requires it; NV35 shipped the extension).
    pub has_depth_bounds: bool,
}

impl HardwareProfile {
    /// The paper's GPU: NVIDIA GeForce FX 5900 Ultra.
    pub fn geforce_fx_5900() -> HardwareProfile {
        HardwareProfile {
            name: "NVIDIA GeForce FX 5900 Ultra".to_string(),
            core_clock_hz: 450e6,
            pixel_pipes: 8,
            fixed_fragment_cycles: 1.0,
            draw_call_overhead_s: 10e-6,
            occlusion_sync_latency_s: 0.07e-3,
            upload_bytes_per_sec: 2.1e9,
            readback_bytes_per_sec: 266e6,
            readback_latency_s: 0.1e-3,
            has_depth_compare_mask: false,
            has_depth_bounds: true,
        }
    }

    /// The paper's GPU plus the §6.1 wishlist extension: a comparison mask
    /// for the depth function.
    pub fn geforce_fx_5900_with_depth_mask() -> HardwareProfile {
        HardwareProfile {
            name: "GeForce FX 5900 Ultra + depth compare mask (hypothetical)".to_string(),
            has_depth_compare_mask: true,
            ..HardwareProfile::geforce_fx_5900()
        }
    }

    /// The paper's GPU with `EXT_depth_bounds_test` withdrawn — a driver
    /// or card (pre-NV35) without the extension. Routine 4.4's Range must
    /// fall back to two ordinary depth-test passes on this profile.
    pub fn geforce_fx_5900_no_depth_bounds() -> HardwareProfile {
        HardwareProfile {
            name: "GeForce FX 5900 Ultra (no depth-bounds extension)".to_string(),
            has_depth_bounds: false,
            ..HardwareProfile::geforce_fx_5900()
        }
    }

    /// An idealized device with no per-pass or synchronization overhead.
    /// Used by ablation benchmarks to isolate algorithmic cost.
    pub fn ideal() -> HardwareProfile {
        HardwareProfile {
            name: "ideal (no overheads)".to_string(),
            draw_call_overhead_s: 0.0,
            occlusion_sync_latency_s: 0.0,
            readback_latency_s: 0.0,
            ..HardwareProfile::geforce_fx_5900()
        }
    }

    /// Seconds to push `fragments` through the fixed-function path while
    /// `shaded` of them additionally execute `program_cycles` each.
    ///
    /// The fragment processors are the throughput bottleneck: a fragment
    /// with an n-cycle program occupies its pipe for
    /// `max(fixed_cycles, program_cycles)` — on NV3x the fixed-function
    /// tests are pipelined behind shading, so a pure fixed-function
    /// fragment costs `fixed_fragment_cycles` and a shaded fragment costs
    /// its program cycles (never less than the fixed path).
    pub fn raster_seconds(&self, fragments: u64, shaded: u64, program_cycles: u32) -> f64 {
        let fixed_only = fragments.saturating_sub(shaded) as f64 * self.fixed_fragment_cycles;
        let shaded_cost =
            shaded as f64 * f64::max(self.fixed_fragment_cycles, program_cycles as f64);
        (fixed_only + shaded_cost) / (self.pixel_pipes as f64 * self.core_clock_hz)
    }

    /// Seconds to upload `bytes` host → device.
    pub fn upload_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.upload_bytes_per_sec
    }

    /// Seconds to read `bytes` back device → host.
    pub fn readback_seconds(&self, bytes: u64) -> f64 {
        self.readback_latency_s + bytes as f64 / self.readback_bytes_per_sec
    }

    /// Static per-fragment cycle cost of a program under this profile.
    pub fn program_cycles(&self, program: &FragmentProgram) -> u32 {
        program.cycle_cost
    }
}

/// A single draw call's accounting, produced by the rasterizer and consumed
/// by both [`GpuStats`] and callers that want per-pass numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct DrawCost {
    /// Fragments generated (post-scissor).
    pub fragments: u64,
    /// Fragments that executed the bound program.
    pub shaded: u64,
    /// Fragments rejected by early-z before shading.
    pub early_rejected: u64,
    /// Fragments passing all tests (occlusion metric).
    pub passed: u64,
    /// Program instructions executed.
    pub instructions: u64,
    /// Modeled seconds for this pass.
    pub modeled_seconds: f64,
}

impl DrawCost {
    /// Fold this pass into cumulative stats under `phase`.
    pub fn accumulate(&self, stats: &mut GpuStats, phase: Phase) {
        stats.fragments_generated += self.fragments;
        stats.fragments_shaded += self.shaded;
        stats.fragments_early_rejected += self.early_rejected;
        stats.fragments_passed += self.passed;
        stats.program_instructions += self.instructions;
        stats.draw_calls += 1;
        stats.modeled.add(phase, self.modeled_seconds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::parser::assemble;

    #[test]
    fn quad_fill_rate_matches_paper_anchor() {
        // §6.2.2: a 1000×1000 fixed-function quad renders in 0.278 ms.
        let hw = HardwareProfile::geforce_fx_5900();
        let t = hw.raster_seconds(1_000_000, 0, 0);
        assert!((t - 0.278e-3).abs() < 1e-6, "got {} s", t);
    }

    #[test]
    fn kth_largest_19_pass_anchor() {
        // §6.2.2: 19 passes observed at 6.6 ms (modeled fill 5.28 ms +
        // synchronization). Our model: 19 * (0.278 ms + draw overhead +
        // occlusion sync) ≈ 6.6 ms.
        let hw = HardwareProfile::geforce_fx_5900();
        let per_pass = hw.raster_seconds(1_000_000, 0, 0)
            + hw.draw_call_overhead_s
            + hw.occlusion_sync_latency_s;
        let total = 19.0 * per_pass;
        assert!((total - 6.6e-3).abs() < 0.3e-3, "got {} s", total);
    }

    #[test]
    fn shaded_fragments_cost_program_cycles() {
        let hw = HardwareProfile::geforce_fx_5900();
        let prog = assemble(
            "TEX R0, fragment.texcoord[0], texture[0], 2D;
             DP4 R1.x, R0, program.env[1];
             MUL R1.x, R1.x, program.env[0].x;
             MOV result.depth, R1.x;",
        )
        .unwrap();
        assert_eq!(hw.program_cycles(&prog), 5);
        let t_shaded = hw.raster_seconds(1_000_000, 1_000_000, 5);
        let t_fixed = hw.raster_seconds(1_000_000, 0, 0);
        assert!((t_shaded / t_fixed - 5.0).abs() < 1e-9);
    }

    #[test]
    fn early_rejected_fragments_cost_fixed_path_only() {
        let hw = HardwareProfile::geforce_fx_5900();
        // half the fragments early-rejected: they pay 1 cycle, not 5.
        let t = hw.raster_seconds(1_000_000, 500_000, 5);
        let expected = (500_000.0 * 1.0 + 500_000.0 * 5.0) / (8.0 * 450e6);
        assert!((t - expected).abs() < 1e-12);
    }

    #[test]
    fn occlusion_count_readback_within_paper_bound() {
        // §5.11: selected-value count available within 0.25 ms.
        let hw = HardwareProfile::geforce_fx_5900();
        assert!(hw.occlusion_sync_latency_s <= 0.25e-3);
    }

    #[test]
    fn upload_uses_agp_bandwidth() {
        let hw = HardwareProfile::geforce_fx_5900();
        // 1M records × 4 bytes ≈ 1.9 ms at 2.1 GB/s.
        let t = hw.upload_seconds(4_000_000);
        assert!((t - 4e6 / 2.1e9).abs() < 1e-12);
    }

    #[test]
    fn readback_slower_than_upload() {
        // AGP was asymmetric: readbacks crawled over PCI (§6.1 "Current PCs
        // use an AGP8x bus to transfer data from the CPU to the GPU and the
        // PCI bus from the GPU to the CPU").
        let hw = HardwareProfile::geforce_fx_5900();
        assert!(hw.readback_seconds(4_000_000) > hw.upload_seconds(4_000_000));
    }

    #[test]
    fn ideal_profile_zeroes_overheads() {
        let hw = HardwareProfile::ideal();
        assert_eq!(hw.draw_call_overhead_s, 0.0);
        assert_eq!(hw.occlusion_sync_latency_s, 0.0);
        assert_eq!(hw.readback_latency_s, 0.0);
        assert_eq!(hw.pixel_pipes, 8);
    }

    #[test]
    fn draw_cost_accumulates_into_stats() {
        let mut stats = GpuStats::default();
        let dc = DrawCost {
            fragments: 100,
            shaded: 60,
            early_rejected: 40,
            passed: 30,
            instructions: 300,
            modeled_seconds: 1e-3,
        };
        dc.accumulate(&mut stats, Phase::Compute);
        dc.accumulate(&mut stats, Phase::Compute);
        assert_eq!(stats.fragments_generated, 200);
        assert_eq!(stats.fragments_shaded, 120);
        assert_eq!(stats.fragments_early_rejected, 80);
        assert_eq!(stats.fragments_passed, 60);
        assert_eq!(stats.program_instructions, 600);
        assert_eq!(stats.draw_calls, 2);
        assert!((stats.modeled.get(Phase::Compute) - 2e-3).abs() < 1e-12);
    }
}
