//! Pass-plan intermediate representation and trace recorder.
//!
//! Every paper routine (Compare §4.1, Semilinear §4.2, EvalCNF §4.3,
//! Range §4.4, KthLargest §4.5, Accumulator §4.6) is a hand-assembled
//! sequence of pipeline-state mutations, draws, occlusion queries and
//! readbacks. This module captures that sequence as a serializable IR —
//! a [`PassPlan`] of [`PassOp`]s — so static validators (`gpudb-lint`)
//! can check routine invariants *before* (or without) any fragment being
//! shaded.
//!
//! A [`TraceRecorder`] hooks into [`crate::Gpu`]: in
//! [`RecordMode::RecordAndExecute`] recording is purely passive (modeled
//! costs and results are bit-identical to an untraced run); in
//! [`RecordMode::RecordOnly`] the device validates arguments and records
//! ops but skips rasterization, framebuffer mutation and cost accounting
//! entirely — a dry run that yields the plan alone.

use crate::program::isa::FragmentProgram;
use crate::state::{ColorMask, CompareFunc, PipelineState, ScissorState, StencilOp};
use serde::{Deserialize, Serialize};

/// How the recorder interacts with device execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordMode {
    /// Record every op while executing normally; results and modeled
    /// costs are unchanged by tracing.
    RecordAndExecute,
    /// Record ops without executing draws, clears, copies or cost
    /// accounting. Argument validation (rect bounds, texture bindings,
    /// occlusion-query pairing) still applies, so a record-only run
    /// catches the same device errors a real run would.
    RecordOnly,
}

/// Snapshot of a bound fragment program, as seen by the validator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramInfo {
    /// Program name, extracted from the leading `# Name: ...` comment of
    /// the assembly source (or `"anonymous"` when absent).
    pub name: String,
    /// Decoded instruction count.
    pub instructions: usize,
    /// Whether the program writes `result.depth`.
    pub writes_depth: bool,
    /// Whether the program contains `KIL`.
    pub has_kil: bool,
}

impl ProgramInfo {
    /// Build a snapshot from an assembled program.
    pub fn of(program: &FragmentProgram) -> ProgramInfo {
        ProgramInfo {
            name: program_name(&program.source),
            instructions: program.instructions.len(),
            writes_depth: program.writes_depth,
            has_kil: program.has_kil,
        }
    }
}

/// Extract a program's name from its assembly source: the first `#`
/// comment line, stripped of the marker and truncated at the first `:`.
/// `"# TestBit: alpha = frac(v / 2^(i+1))."` names the program `TestBit`.
pub fn program_name(source: &str) -> String {
    for line in source.lines() {
        let line = line.trim();
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim();
            let name = comment.split(':').next().unwrap_or(comment).trim();
            if !name.is_empty() {
                return name.to_string();
            }
        }
    }
    "anonymous".to_string()
}

/// One draw call, with the full pipeline state it was issued under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrawPass {
    /// Complete fixed-function state at draw time.
    pub state: PipelineState,
    /// The bound fragment program, if any.
    pub program: Option<ProgramInfo>,
    /// Snapshot of `program.env[0]` (`ENV_SCALE` by convention) — the
    /// bit-selection scale for `TestBit` accumulator passes.
    pub env0: [f32; 4],
    /// The quad depth passed to the draw.
    pub depth: f32,
    /// Number of rectangles rendered.
    pub rects: usize,
    /// Whether an occlusion query was active during the draw.
    pub occlusion_active: bool,
}

/// One recorded device operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PassOp {
    /// `set_depth_test`.
    SetDepthTest {
        /// Whether the depth test is enabled.
        enabled: bool,
        /// Depth comparison function.
        func: CompareFunc,
    },
    /// `set_depth_write`.
    SetDepthWrite {
        /// Whether depth writes are enabled.
        enabled: bool,
    },
    /// `set_stencil_func`.
    SetStencilFunc {
        /// Whether the stencil test is enabled.
        enabled: bool,
        /// Stencil comparison function.
        func: CompareFunc,
        /// Stencil reference value.
        reference: u8,
        /// Mask applied to both reference and stored value.
        value_mask: u8,
    },
    /// `set_stencil_op`.
    SetStencilOp {
        /// Op on stencil-test failure.
        fail: StencilOp,
        /// Op on depth-test failure.
        zfail: StencilOp,
        /// Op on depth-test pass.
        zpass: StencilOp,
    },
    /// `set_stencil_write_mask`.
    SetStencilWriteMask {
        /// Writable stencil bits.
        mask: u8,
    },
    /// `set_alpha_test`.
    SetAlphaTest {
        /// Whether the alpha test is enabled.
        enabled: bool,
        /// Alpha comparison function.
        func: CompareFunc,
        /// Alpha reference value.
        reference: f32,
    },
    /// `set_depth_bounds` (`EXT_depth_bounds_test`).
    SetDepthBounds {
        /// Whether the depth-bounds test is enabled.
        enabled: bool,
        /// Inclusive lower bound on stored depth.
        min: f64,
        /// Inclusive upper bound on stored depth.
        max: f64,
    },
    /// `set_depth_compare_mask` (§6.1 wishlist extension).
    SetDepthCompareMask {
        /// Bits of the 24-bit depth value compared.
        mask: u32,
    },
    /// `set_scissor`.
    SetScissor(ScissorState),
    /// `set_color_mask`.
    SetColorMask(ColorMask),
    /// `set_draw_color`.
    SetDrawColor {
        /// Flat RGBA primary color.
        color: [f32; 4],
    },
    /// `bind_program` / `bind_program_source`.
    BindProgram {
        /// Snapshot of the program, or `None` for fixed function.
        program: Option<ProgramInfo>,
    },
    /// `set_program_env`.
    SetProgramEnv {
        /// Parameter index.
        index: usize,
        /// Parameter value.
        value: [f32; 4],
    },
    /// `reset_state` — back to GL defaults.
    ResetState,
    /// `clear_color`.
    ClearColor,
    /// `clear_depth`.
    ClearDepth {
        /// Normalized clear depth.
        depth: f64,
    },
    /// `clear_stencil`.
    ClearStencil {
        /// Stencil clear value.
        value: u8,
    },
    /// `draw_quad` / `draw_full_quad`, with full state snapshot.
    Draw(DrawPass),
    /// `begin_occlusion_query`.
    BeginOcclusionQuery,
    /// `end_occlusion_query` (sync) or `end_occlusion_query_async`.
    EndOcclusionQuery {
        /// Whether the fetch drained the pipeline (synchronous).
        sync: bool,
    },
    /// A host read of an occlusion result outside the device API — used
    /// by hand-written plans/fixtures to model read-after-write hazards.
    /// The simulated device never emits this op itself (its
    /// `end_occlusion_query` both ends and reads).
    ReadOcclusionResult,
    /// `read_depth_buffer` / `read_depth_buffer_raw`.
    ReadDepthBuffer,
    /// `read_stencil_buffer`.
    ReadStencilBuffer,
    /// `read_color_buffer`.
    ReadColorBuffer,
    /// `copy_color_to_texture`.
    CopyColorToTexture,
}

/// Device capabilities relevant to plan validation, captured from the
/// hardware profile when tracing is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceCaps {
    /// Whether `EXT_depth_bounds_test` is available.
    pub has_depth_bounds: bool,
    /// Whether the §6.1 depth-compare-mask extension is available.
    pub has_depth_compare_mask: bool,
}

/// A labeled, ordered sequence of recorded device operations — one
/// operator's worth of passes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PassPlan {
    /// Operator label, e.g. `"predicate/compare_count"`.
    pub label: String,
    /// Capabilities of the device the plan was recorded on.
    pub caps: DeviceCaps,
    /// Recorded operations, in issue order.
    pub ops: Vec<PassOp>,
}

impl PassPlan {
    /// Create an empty plan.
    pub fn new(label: impl Into<String>, caps: DeviceCaps) -> PassPlan {
        PassPlan {
            label: label.into(),
            caps,
            ops: Vec::new(),
        }
    }

    /// Number of draw calls in the plan.
    pub fn draw_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, PassOp::Draw(_)))
            .count()
    }

    /// One [`DrawPass::summary`] line per draw in the plan, in order —
    /// the per-pass detail EXPLAIN and lint reports print under the
    /// plan headline.
    pub fn describe_passes(&self) -> Vec<String> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                PassOp::Draw(pass) => Some(pass.summary()),
                _ => None,
            })
            .enumerate()
            .map(|(i, line)| format!("pass {}: {line}", i + 1))
            .collect()
    }
}

impl DrawPass {
    /// One-line summary of the fragment-test configuration this draw
    /// ran under: program, depth test/write, depth bounds, stencil,
    /// alpha, occlusion query and color writes. Disabled units are
    /// omitted.
    pub fn summary(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if let Some(p) = &self.program {
            parts.push(format!("program {}", p.name));
        }
        let d = &self.state.depth;
        if d.test_enabled || d.write_enabled {
            let test = if d.test_enabled {
                format!("test {:?}", d.func)
            } else {
                "test off".to_string()
            };
            let write = if d.write_enabled { "on" } else { "off" };
            parts.push(format!("depth({test}, write {write})"));
        }
        let b = &self.state.depth_bounds;
        if b.enabled {
            parts.push(format!("bounds[{:.6}, {:.6}]", b.min, b.max));
        }
        let s = &self.state.stencil;
        if s.enabled {
            parts.push(format!(
                "stencil({:?} ref={} ops {:?}/{:?}/{:?})",
                s.func, s.reference, s.op_fail, s.op_zfail, s.op_zpass
            ));
        }
        let a = &self.state.alpha;
        if a.enabled {
            parts.push(format!("alpha({:?} {})", a.func, a.reference));
        }
        if self.occlusion_active {
            parts.push("occlusion query".to_string());
        }
        if self.state.color_mask.any() {
            parts.push("color write".to_string());
        }
        if parts.is_empty() {
            parts.push("no tests, no writes".to_string());
        }
        format!(
            "draw {} rect(s) at z={}: {}",
            self.rects,
            self.depth,
            parts.join(", ")
        )
    }
}

/// Records device operations into [`PassPlan`]s.
///
/// Plans are delimited by [`TraceRecorder::begin_plan`]; ops recorded
/// before the first `begin_plan` go into an implicit plan labeled
/// `"untitled"`.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    mode: RecordMode,
    caps: DeviceCaps,
    current: Option<PassPlan>,
    finished: Vec<PassPlan>,
}

impl TraceRecorder {
    /// Create a recorder for a device with the given capabilities.
    pub fn new(mode: RecordMode, caps: DeviceCaps) -> TraceRecorder {
        TraceRecorder {
            mode,
            caps,
            current: None,
            finished: Vec::new(),
        }
    }

    /// The recording mode.
    pub fn mode(&self) -> RecordMode {
        self.mode
    }

    /// Finish the current plan (if any) and start a new one.
    pub fn begin_plan(&mut self, label: impl Into<String>) {
        self.finish_current();
        self.current = Some(PassPlan::new(label, self.caps));
    }

    /// Append an op to the current plan, starting an `"untitled"` plan
    /// if none is open.
    pub fn record(&mut self, op: PassOp) {
        self.current
            .get_or_insert_with(|| PassPlan::new("untitled", self.caps))
            .ops
            .push(op);
    }

    /// Close the open plan, moving it to the finished list.
    pub fn finish_current(&mut self) {
        if let Some(plan) = self.current.take() {
            if !plan.ops.is_empty() {
                self.finished.push(plan);
            }
        }
    }

    /// Drain all finished plans (closing the open one first).
    pub fn take_plans(&mut self) -> Vec<PassPlan> {
        self.finish_current();
        std::mem::take(&mut self.finished)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps() -> DeviceCaps {
        DeviceCaps {
            has_depth_bounds: true,
            has_depth_compare_mask: false,
        }
    }

    #[test]
    fn program_name_extraction() {
        assert_eq!(
            program_name("# CopyToDepth: fetch attribute.\nTEX R0;"),
            "CopyToDepth"
        );
        assert_eq!(program_name("# TestBit\nMOV R0;"), "TestBit");
        assert_eq!(program_name("MOV R0, R1;"), "anonymous");
        assert_eq!(program_name("#\n# Late: x\n"), "Late");
    }

    #[test]
    fn recorder_groups_ops_into_plans() {
        let mut rec = TraceRecorder::new(RecordMode::RecordAndExecute, caps());
        rec.record(PassOp::ResetState);
        rec.begin_plan("a");
        rec.record(PassOp::ClearStencil { value: 0 });
        rec.record(PassOp::BeginOcclusionQuery);
        rec.begin_plan("b");
        rec.record(PassOp::EndOcclusionQuery { sync: true });
        let plans = rec.take_plans();
        assert_eq!(plans.len(), 3);
        assert_eq!(plans[0].label, "untitled");
        assert_eq!(plans[1].label, "a");
        assert_eq!(plans[1].ops.len(), 2);
        assert_eq!(plans[2].label, "b");
    }

    #[test]
    fn empty_plans_are_dropped() {
        let mut rec = TraceRecorder::new(RecordMode::RecordOnly, caps());
        rec.begin_plan("empty");
        rec.begin_plan("full");
        rec.record(PassOp::ResetState);
        let plans = rec.take_plans();
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].label, "full");
    }

    #[test]
    fn plan_round_trips_through_json() {
        let mut plan = PassPlan::new("roundtrip", caps());
        plan.ops.push(PassOp::ClearStencil { value: 1 });
        plan.ops.push(PassOp::SetDepthBounds {
            enabled: true,
            min: 0.25,
            max: 0.75,
        });
        plan.ops.push(PassOp::Draw(DrawPass {
            state: PipelineState::default(),
            program: Some(ProgramInfo {
                name: "CopyToDepth".into(),
                instructions: 3,
                writes_depth: true,
                has_kil: false,
            }),
            env0: [0.5, 0.0, 0.0, 0.0],
            depth: 0.25,
            rects: 1,
            occlusion_active: false,
        }));
        let json = serde_json::to_string(&plan).unwrap();
        let back: PassPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.draw_count(), 1);
    }
}
