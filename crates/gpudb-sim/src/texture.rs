//! Texture objects: the GPU-resident data representation.
//!
//! §3.3 of the paper: "Data is stored on the GPU as textures. Textures are
//! 2D arrays of values. [...] We store data in textures in the
//! floating-point format. This format can precisely represent integers up
//! to 24 bits."

use crate::error::{GpuError, GpuResult};
use serde::{Deserialize, Serialize};

/// Maximum texture edge supported by the simulated device.
///
/// The GeForce FX generation supported 4096×4096; the paper uses 1000×1000
/// textures holding one million records each.
pub const MAX_TEXTURE_DIM: usize = 4096;

/// Number of bits a single-precision float can represent exactly for
/// integers (the paper relies on this for its 24-bit integer encoding).
pub const EXACT_INT_BITS: u32 = 24;

/// Opaque handle to a device texture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TextureId(pub(crate) u32);

impl TextureId {
    /// Raw id, mainly for diagnostics.
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// Texture channel layout. An RGBA texture packs four attributes per texel,
/// which is how the paper stores multi-attribute records ("we store the
/// attributes of each record in multiple channels of a single texel").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TextureFormat {
    /// One channel (luminance / R).
    R,
    /// Two channels.
    Rg,
    /// Three channels.
    Rgb,
    /// Four channels.
    Rgba,
}

impl TextureFormat {
    /// Number of f32 channels per texel.
    #[inline]
    pub fn channels(self) -> usize {
        match self {
            TextureFormat::R => 1,
            TextureFormat::Rg => 2,
            TextureFormat::Rgb => 3,
            TextureFormat::Rgba => 4,
        }
    }

    /// Build a format from a channel count.
    pub fn from_channels(channels: u8) -> GpuResult<TextureFormat> {
        match channels {
            1 => Ok(TextureFormat::R),
            2 => Ok(TextureFormat::Rg),
            3 => Ok(TextureFormat::Rgb),
            4 => Ok(TextureFormat::Rgba),
            other => Err(GpuError::InvalidChannelCount(other)),
        }
    }
}

/// A 2-D floating-point texture.
///
/// Texels are stored row-major, channels interleaved. Sampling is
/// nearest-neighbor with integer texel coordinates — the only addressing
/// mode the paper's screen-aligned-quad rendering needs, where "the
/// individual elements of the texture, texels, line up with the pixels in
/// the frame-buffer".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Texture {
    width: usize,
    height: usize,
    format: TextureFormat,
    data: Vec<f32>,
}

impl Texture {
    /// Create a texture from raw interleaved texel data.
    pub fn from_data(
        width: usize,
        height: usize,
        format: TextureFormat,
        data: Vec<f32>,
    ) -> GpuResult<Texture> {
        if width == 0 || height == 0 || width > MAX_TEXTURE_DIM || height > MAX_TEXTURE_DIM {
            return Err(GpuError::InvalidTextureSize { width, height });
        }
        let expected = width * height * format.channels();
        if data.len() != expected {
            return Err(GpuError::TextureDataMismatch {
                expected,
                actual: data.len(),
            });
        }
        Ok(Texture {
            width,
            height,
            format,
            data,
        })
    }

    /// Create a zero-filled texture.
    pub fn zeroed(width: usize, height: usize, format: TextureFormat) -> GpuResult<Texture> {
        if width == 0 || height == 0 || width > MAX_TEXTURE_DIM || height > MAX_TEXTURE_DIM {
            return Err(GpuError::InvalidTextureSize { width, height });
        }
        Ok(Texture {
            width,
            height,
            format,
            data: vec![0.0; width * height * format.channels()],
        })
    }

    /// Texture width in texels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Texture height in texels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Channel layout.
    #[inline]
    pub fn format(&self) -> TextureFormat {
        self.format
    }

    /// Total number of texels.
    #[inline]
    pub fn texel_count(&self) -> usize {
        self.width * self.height
    }

    /// Size of the texture in bytes on the device (f32 per channel).
    #[inline]
    pub fn byte_size(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Fetch a texel as an RGBA vector; missing channels read as 0 except
    /// alpha which reads as 1, matching GL's expansion rules.
    #[inline(always)]
    pub fn fetch(&self, x: usize, y: usize) -> [f32; 4] {
        debug_assert!(x < self.width && y < self.height);
        let c = self.format.channels();
        let base = (y * self.width + x) * c;
        let mut out = [0.0, 0.0, 0.0, 1.0];
        out[..c].copy_from_slice(&self.data[base..base + c]);
        out
    }

    /// Fetch a single channel of a texel.
    #[inline(always)]
    pub fn fetch_channel(&self, x: usize, y: usize, channel: usize) -> f32 {
        self.fetch(x, y)[channel]
    }

    /// Raw texel storage (row-major, interleaved).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw texel storage, used by sub-image updates.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Overwrite a rectangular sub-region (like `glTexSubImage2D`).
    pub fn update_sub_image(
        &mut self,
        x: usize,
        y: usize,
        width: usize,
        height: usize,
        data: &[f32],
    ) -> GpuResult<()> {
        let c = self.format.channels();
        if x + width > self.width || y + height > self.height {
            return Err(GpuError::InvalidTextureSize { width, height });
        }
        let expected = width * height * c;
        if data.len() != expected {
            return Err(GpuError::TextureDataMismatch {
                expected,
                actual: data.len(),
            });
        }
        for row in 0..height {
            let src = &data[row * width * c..(row + 1) * width * c];
            let dst_base = ((y + row) * self.width + x) * c;
            self.data[dst_base..dst_base + width * c].copy_from_slice(src);
        }
        Ok(())
    }
}

/// Encode an unsigned integer attribute value into the f32 texel domain.
///
/// Values must fit in [`EXACT_INT_BITS`] bits to be represented exactly;
/// larger values silently lose precision exactly as they would on the real
/// hardware, so callers that care should validate first (see
/// [`fits_exact`]).
#[inline]
pub fn encode_u32(value: u32) -> f32 {
    value as f32
}

/// Decode an f32 texel back to an unsigned integer (round-to-nearest).
/// The rounding is performed in f64 so that values near the 24-bit limit
/// are not perturbed by the addition itself.
#[inline]
pub fn decode_u32(texel: f32) -> u32 {
    debug_assert!(texel >= -0.5);
    (texel as f64 + 0.5) as u32
}

/// Whether an integer survives the f32 round-trip exactly (≤ 24 bits).
#[inline]
pub fn fits_exact(value: u32) -> bool {
    value < (1u32 << EXACT_INT_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_channel_counts() {
        assert_eq!(TextureFormat::R.channels(), 1);
        assert_eq!(TextureFormat::Rg.channels(), 2);
        assert_eq!(TextureFormat::Rgb.channels(), 3);
        assert_eq!(TextureFormat::Rgba.channels(), 4);
        assert_eq!(
            TextureFormat::from_channels(4).unwrap(),
            TextureFormat::Rgba
        );
        assert!(TextureFormat::from_channels(5).is_err());
        assert!(TextureFormat::from_channels(0).is_err());
    }

    #[test]
    fn rejects_bad_dimensions() {
        assert!(Texture::zeroed(0, 4, TextureFormat::R).is_err());
        assert!(Texture::zeroed(4, 0, TextureFormat::R).is_err());
        assert!(Texture::zeroed(MAX_TEXTURE_DIM + 1, 4, TextureFormat::R).is_err());
        assert!(Texture::zeroed(MAX_TEXTURE_DIM, 1, TextureFormat::R).is_ok());
    }

    #[test]
    fn rejects_mismatched_data() {
        let err = Texture::from_data(2, 2, TextureFormat::Rg, vec![0.0; 7]).unwrap_err();
        assert_eq!(
            err,
            GpuError::TextureDataMismatch {
                expected: 8,
                actual: 7
            }
        );
    }

    #[test]
    fn fetch_expands_to_rgba() {
        let tex = Texture::from_data(2, 1, TextureFormat::Rg, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(tex.fetch(0, 0), [1.0, 2.0, 0.0, 1.0]);
        assert_eq!(tex.fetch(1, 0), [3.0, 4.0, 0.0, 1.0]);
    }

    #[test]
    fn fetch_rgba_interleaved() {
        let data: Vec<f32> = (0..2 * 2 * 4).map(|i| i as f32).collect();
        let tex = Texture::from_data(2, 2, TextureFormat::Rgba, data).unwrap();
        assert_eq!(tex.fetch(0, 0), [0.0, 1.0, 2.0, 3.0]);
        assert_eq!(tex.fetch(1, 0), [4.0, 5.0, 6.0, 7.0]);
        assert_eq!(tex.fetch(0, 1), [8.0, 9.0, 10.0, 11.0]);
        assert_eq!(tex.fetch(1, 1), [12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn sub_image_update() {
        let mut tex = Texture::zeroed(4, 4, TextureFormat::R).unwrap();
        tex.update_sub_image(1, 1, 2, 2, &[1.0, 2.0, 3.0, 4.0])
            .unwrap();
        assert_eq!(tex.fetch_channel(1, 1, 0), 1.0);
        assert_eq!(tex.fetch_channel(2, 1, 0), 2.0);
        assert_eq!(tex.fetch_channel(1, 2, 0), 3.0);
        assert_eq!(tex.fetch_channel(2, 2, 0), 4.0);
        assert_eq!(tex.fetch_channel(0, 0, 0), 0.0);
        assert!(tex.update_sub_image(3, 3, 2, 2, &[0.0; 4]).is_err());
    }

    #[test]
    fn integer_roundtrip_up_to_24_bits() {
        for v in [0u32, 1, 2, 1000, (1 << 24) - 1] {
            assert!(fits_exact(v));
            assert_eq!(decode_u32(encode_u32(v)), v);
        }
        assert!(!fits_exact(1 << 24));
        // 2^24 + 1 is NOT exactly representable in f32 — the hardware's
        // documented precision limit.
        assert_ne!(((1u32 << 24) + 1) as f32 as u32, (1 << 24) + 1);
    }

    #[test]
    fn byte_size_accounts_channels() {
        let tex = Texture::zeroed(10, 10, TextureFormat::Rgba).unwrap();
        assert_eq!(tex.byte_size(), 10 * 10 * 4 * 4);
    }
}
