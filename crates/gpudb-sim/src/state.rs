//! Fixed-function per-fragment test state.
//!
//! Models the OpenGL 1.x state machine the paper's algorithms drive: alpha
//! test, stencil test, depth test, the `EXT_depth_bounds_test` extension,
//! scissor, and the color/depth/stencil write masks.

use serde::{Deserialize, Serialize};

/// A relational comparison operator, as accepted by `glDepthFunc`,
/// `glAlphaFunc` and `glStencilFunc`.
///
/// The paper (§3.1) lists the available operators as
/// `=, <, >, <=, >=, !=` plus `never` and `always`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompareFunc {
    /// Test never passes.
    Never,
    /// Passes when `incoming < stored`.
    Less,
    /// Passes when `incoming == stored`.
    Equal,
    /// Passes when `incoming <= stored`.
    LessEqual,
    /// Passes when `incoming > stored`.
    Greater,
    /// Passes when `incoming != stored`.
    NotEqual,
    /// Passes when `incoming >= stored`.
    GreaterEqual,
    /// Test always passes.
    Always,
}

impl CompareFunc {
    /// Evaluate the comparison with the GL convention: the *incoming*
    /// (reference / fragment) value on the left, the *stored* value on the
    /// right.
    #[inline(always)]
    pub fn eval<T: PartialOrd>(self, incoming: T, stored: T) -> bool {
        match self {
            CompareFunc::Never => false,
            CompareFunc::Less => incoming < stored,
            CompareFunc::Equal => incoming == stored,
            CompareFunc::LessEqual => incoming <= stored,
            CompareFunc::Greater => incoming > stored,
            CompareFunc::NotEqual => incoming != stored,
            CompareFunc::GreaterEqual => incoming >= stored,
            CompareFunc::Always => true,
        }
    }

    /// The *converse* operator: `a op b` holds iff `b op.converse() a`.
    ///
    /// The database layer uses this to translate a predicate
    /// `attribute op constant` into a depth function, because the depth test
    /// compares `fragment_depth op stored_attribute` — i.e. with the operand
    /// order flipped relative to the predicate.
    #[inline]
    pub fn converse(self) -> CompareFunc {
        match self {
            CompareFunc::Less => CompareFunc::Greater,
            CompareFunc::LessEqual => CompareFunc::GreaterEqual,
            CompareFunc::Greater => CompareFunc::Less,
            CompareFunc::GreaterEqual => CompareFunc::LessEqual,
            other => other,
        }
    }

    /// The *negated* operator: `a op b` fails iff `a op.negate() b` holds.
    ///
    /// Used to eliminate `NOT` from boolean expressions before CNF
    /// evaluation, as described in §4.2 of the paper.
    #[inline]
    pub fn negate(self) -> CompareFunc {
        match self {
            CompareFunc::Never => CompareFunc::Always,
            CompareFunc::Less => CompareFunc::GreaterEqual,
            CompareFunc::Equal => CompareFunc::NotEqual,
            CompareFunc::LessEqual => CompareFunc::Greater,
            CompareFunc::Greater => CompareFunc::LessEqual,
            CompareFunc::NotEqual => CompareFunc::Equal,
            CompareFunc::GreaterEqual => CompareFunc::Less,
            CompareFunc::Always => CompareFunc::Never,
        }
    }
}

/// Stencil buffer update operation (`glStencilOp`), per §3.4 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StencilOp {
    /// Keep the current stencil value.
    Keep,
    /// Set the stencil value to zero.
    Zero,
    /// Replace the stencil value with the reference value.
    Replace,
    /// Increment, clamping at the maximum representable value.
    Incr,
    /// Decrement, clamping at zero.
    Decr,
    /// Bitwise-invert the stencil value.
    Invert,
    /// Increment with wrap-around (`GL_INCR_WRAP`).
    IncrWrap,
    /// Decrement with wrap-around (`GL_DECR_WRAP`).
    DecrWrap,
}

impl StencilOp {
    /// Apply the operation to an 8-bit stencil value.
    #[inline(always)]
    pub fn apply(self, value: u8, reference: u8) -> u8 {
        match self {
            StencilOp::Keep => value,
            StencilOp::Zero => 0,
            StencilOp::Replace => reference,
            StencilOp::Incr => value.saturating_add(1),
            StencilOp::Decr => value.saturating_sub(1),
            StencilOp::Invert => !value,
            StencilOp::IncrWrap => value.wrapping_add(1),
            StencilOp::DecrWrap => value.wrapping_sub(1),
        }
    }
}

/// Full stencil test state: function, reference, masks and the three update
/// operations (`Op1`/`Op2`/`Op3` in the paper's `StencilOp` pseudo-code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StencilState {
    /// Whether the stencil test is enabled at all.
    pub enabled: bool,
    /// Comparison applied as `(reference & value_mask) func (stored & value_mask)`.
    pub func: CompareFunc,
    /// Reference value.
    pub reference: u8,
    /// Mask ANDed with both reference and stored value before comparison.
    pub value_mask: u8,
    /// Mask restricting which stencil bits a stencil op may write.
    pub write_mask: u8,
    /// Operation when the fragment fails the stencil test (paper's `Op1`).
    pub op_fail: StencilOp,
    /// Operation when the fragment passes the stencil test but fails the
    /// depth test (paper's `Op2`).
    pub op_zfail: StencilOp,
    /// Operation when the fragment passes both tests (paper's `Op3`).
    pub op_zpass: StencilOp,
}

impl Default for StencilState {
    fn default() -> Self {
        StencilState {
            enabled: false,
            func: CompareFunc::Always,
            reference: 0,
            value_mask: 0xFF,
            write_mask: 0xFF,
            op_fail: StencilOp::Keep,
            op_zfail: StencilOp::Keep,
            op_zpass: StencilOp::Keep,
        }
    }
}

impl StencilState {
    /// Evaluate the stencil test against a stored stencil value.
    #[inline(always)]
    pub fn test(&self, stored: u8) -> bool {
        if !self.enabled {
            return true;
        }
        self.func
            .eval(self.reference & self.value_mask, stored & self.value_mask)
    }

    /// Apply a stencil operation respecting the write mask.
    #[inline(always)]
    pub fn write(&self, stored: u8, op: StencilOp) -> u8 {
        let new = op.apply(stored, self.reference);
        (new & self.write_mask) | (stored & !self.write_mask)
    }
}

/// Depth test state (`glDepthFunc`, `glDepthMask`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepthState {
    /// Whether the depth test is enabled.
    pub test_enabled: bool,
    /// Comparison `fragment_depth func stored_depth`.
    pub func: CompareFunc,
    /// Whether passing fragments write their depth.
    pub write_enabled: bool,
    /// Bit mask ANDed with both quantized depth values before comparison —
    /// the *depth compare mask* the paper wishes for in §6.1 ("Such a mask
    /// would make it easier to test if a number has i-th bit set"). Real
    /// 2004 hardware lacked it; the device only allows non-default values
    /// on profiles with the capability enabled.
    pub compare_mask: u32,
}

/// The all-bits depth compare mask (ordinary depth testing).
pub const DEPTH_COMPARE_MASK_ALL: u32 = (1 << 24) - 1;

impl Default for DepthState {
    fn default() -> Self {
        DepthState {
            test_enabled: false,
            func: CompareFunc::Less,
            write_enabled: true,
            compare_mask: DEPTH_COMPARE_MASK_ALL,
        }
    }
}

/// Alpha test state (`glAlphaFunc`).
///
/// The paper's `Accumulator` (Routine 4.6) relies on the alpha test to
/// reject fragments whose tested bit is 0: "We use the alpha test for
/// rejecting fragments with alpha less than 0.5."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlphaState {
    /// Whether the alpha test is enabled.
    pub enabled: bool,
    /// Comparison `fragment_alpha func reference`.
    pub func: CompareFunc,
    /// Reference alpha value.
    pub reference: f32,
}

impl Default for AlphaState {
    fn default() -> Self {
        AlphaState {
            enabled: false,
            func: CompareFunc::Always,
            reference: 0.0,
        }
    }
}

impl AlphaState {
    /// Evaluate the alpha test on a fragment's alpha value.
    #[inline(always)]
    pub fn test(&self, alpha: f32) -> bool {
        !self.enabled || self.func.eval(alpha, self.reference)
    }
}

/// `EXT_depth_bounds_test` state.
///
/// Per the extension specification, the test compares the depth value
/// **stored in the framebuffer** at the fragment's location (not the
/// fragment's own depth) against `[min, max]`, and runs after the stencil
/// test but before the depth test; failing fragments are discarded without
/// any stencil update. Routine 4.4 of the paper uses this to evaluate a
/// range query in a single pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DepthBoundsState {
    /// Whether the depth-bounds test is enabled.
    pub enabled: bool,
    /// Lower bound (inclusive), in normalized depth units.
    pub min: f64,
    /// Upper bound (inclusive), in normalized depth units.
    pub max: f64,
}

impl Default for DepthBoundsState {
    fn default() -> Self {
        DepthBoundsState {
            enabled: false,
            min: 0.0,
            max: 1.0,
        }
    }
}

impl DepthBoundsState {
    /// Evaluate the bounds test against a stored (normalized) depth value.
    #[inline(always)]
    pub fn test(&self, stored: f64) -> bool {
        !self.enabled || (stored >= self.min && stored <= self.max)
    }
}

/// Scissor rectangle restricting rasterization (`glScissor`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScissorState {
    /// Whether scissoring is enabled.
    pub enabled: bool,
    /// Left edge (inclusive).
    pub x: usize,
    /// Top edge (inclusive).
    pub y: usize,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
}

impl Default for ScissorState {
    fn default() -> Self {
        ScissorState {
            enabled: false,
            x: 0,
            y: 0,
            width: usize::MAX,
            height: usize::MAX,
        }
    }
}

impl ScissorState {
    /// Whether pixel `(x, y)` survives the scissor test.
    #[inline(always)]
    pub fn contains(&self, x: usize, y: usize) -> bool {
        !self.enabled
            || (x >= self.x && y >= self.y && x - self.x < self.width && y - self.y < self.height)
    }
}

/// Per-channel color write mask (`glColorMask`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColorMask {
    /// Whether the red channel is writable.
    pub red: bool,
    /// Whether the green channel is writable.
    pub green: bool,
    /// Whether the blue channel is writable.
    pub blue: bool,
    /// Whether the alpha channel is writable.
    pub alpha: bool,
}

impl Default for ColorMask {
    fn default() -> Self {
        ColorMask {
            red: true,
            green: true,
            blue: true,
            alpha: true,
        }
    }
}

impl ColorMask {
    /// A mask disabling all color writes — the common configuration for the
    /// paper's algorithms, which only care about depth/stencil side effects
    /// and occlusion counts.
    pub const NONE: ColorMask = ColorMask {
        red: false,
        green: false,
        blue: false,
        alpha: false,
    };

    /// Whether any channel is written at all.
    #[inline(always)]
    pub fn any(&self) -> bool {
        self.red || self.green || self.blue || self.alpha
    }
}

/// The complete fixed-function pipeline state of the simulated device.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineState {
    /// Alpha test state.
    pub alpha: AlphaState,
    /// Stencil test state.
    pub stencil: StencilState,
    /// Depth test state.
    pub depth: DepthState,
    /// Depth-bounds test state.
    pub depth_bounds: DepthBoundsState,
    /// Scissor state.
    pub scissor: ScissorState,
    /// Color write mask.
    pub color_mask: ColorMask,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_func_eval_matches_operator() {
        use CompareFunc::*;
        assert!(Less.eval(1, 2));
        assert!(!Less.eval(2, 2));
        assert!(LessEqual.eval(2, 2));
        assert!(Greater.eval(3, 2));
        assert!(!Greater.eval(2, 2));
        assert!(GreaterEqual.eval(2, 2));
        assert!(Equal.eval(5, 5));
        assert!(NotEqual.eval(5, 6));
        assert!(Always.eval(0, 100));
        assert!(!Never.eval(0, 0));
    }

    #[test]
    fn converse_flips_operand_order() {
        use CompareFunc::*;
        for op in [
            Never,
            Less,
            Equal,
            LessEqual,
            Greater,
            NotEqual,
            GreaterEqual,
            Always,
        ] {
            for a in 0..4 {
                for b in 0..4 {
                    assert_eq!(op.eval(a, b), op.converse().eval(b, a), "{op:?} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn negate_is_logical_complement() {
        use CompareFunc::*;
        for op in [
            Never,
            Less,
            Equal,
            LessEqual,
            Greater,
            NotEqual,
            GreaterEqual,
            Always,
        ] {
            for a in 0..4 {
                for b in 0..4 {
                    assert_eq!(op.eval(a, b), !op.negate().eval(a, b), "{op:?} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn stencil_ops_clamp_and_wrap() {
        assert_eq!(StencilOp::Incr.apply(255, 0), 255);
        assert_eq!(StencilOp::IncrWrap.apply(255, 0), 0);
        assert_eq!(StencilOp::Decr.apply(0, 0), 0);
        assert_eq!(StencilOp::DecrWrap.apply(0, 0), 255);
        assert_eq!(StencilOp::Invert.apply(0b1010_0101, 0), 0b0101_1010);
        assert_eq!(StencilOp::Replace.apply(7, 42), 42);
        assert_eq!(StencilOp::Zero.apply(7, 42), 0);
        assert_eq!(StencilOp::Keep.apply(7, 42), 7);
    }

    #[test]
    fn stencil_write_respects_write_mask() {
        let st = StencilState {
            write_mask: 0x0F,
            reference: 0xFF,
            ..Default::default()
        };
        assert_eq!(st.write(0xA0, StencilOp::Replace), 0xAF);
    }

    #[test]
    fn stencil_test_respects_value_mask() {
        let st = StencilState {
            enabled: true,
            func: CompareFunc::Equal,
            reference: 0x12,
            value_mask: 0x0F,
            ..Default::default()
        };
        // Only low nibble compared: 0x2 == 0x2.
        assert!(st.test(0xF2));
        assert!(!st.test(0xF3));
    }

    #[test]
    fn disabled_tests_always_pass() {
        let st = StencilState::default();
        assert!(st.test(123));
        let al = AlphaState::default();
        assert!(al.test(-1.0));
        let db = DepthBoundsState::default();
        assert!(db.test(0.5));
    }

    #[test]
    fn depth_bounds_inclusive() {
        let db = DepthBoundsState {
            enabled: true,
            min: 0.25,
            max: 0.75,
        };
        assert!(db.test(0.25));
        assert!(db.test(0.75));
        assert!(!db.test(0.249));
        assert!(!db.test(0.751));
    }

    #[test]
    fn scissor_contains() {
        let sc = ScissorState {
            enabled: true,
            x: 2,
            y: 3,
            width: 4,
            height: 2,
        };
        assert!(sc.contains(2, 3));
        assert!(sc.contains(5, 4));
        assert!(!sc.contains(1, 3));
        assert!(!sc.contains(6, 4));
        assert!(!sc.contains(2, 5));
    }
}
