//! Floating-point mipmap reduction.
//!
//! §4.3.3 of the paper describes — and rejects — summing a texture by
//! building a float mipmap: "The highest level of the mipmap contains the
//! average of all the values in the lowest level, from which it is possible
//! to recover the sum by multiplying the average with the number of
//! values." The paper lists three problems: slow float texture writes,
//! conditionals when summing a masked subset, and **insufficient float
//! precision for an exact sum**. This module implements the approach so the
//! ablation benchmark can quantify those problems against the paper's
//! preferred bitwise `Accumulator`.

use crate::device::Gpu;
use crate::error::GpuResult;
use crate::stats::Phase;
use crate::texture::TextureId;

/// Result of a mipmap reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MipmapReduction {
    /// The top-level average, computed in f32 exactly as the hardware
    /// would (so precision loss is faithfully reproduced).
    pub average: f32,
    /// `average * texel_count` — the recovered (approximate) sum.
    pub sum: f64,
    /// Number of mipmap levels built.
    pub levels: u32,
    /// Total texels written across all levels.
    pub texels_written: u64,
    /// Modeled seconds for the full pyramid build + 1-texel readback.
    pub modeled_seconds: f64,
}

/// Per-level shader: 4 texture fetches + 3 adds + 1 multiply.
const LEVEL_PROGRAM_CYCLES: u32 = 4 * 2 + 3 + 1;

impl Gpu {
    /// Build a float mipmap over one channel of `texture` and return the
    /// recovered sum.
    ///
    /// Each 2×2 block is averaged into one texel of the next level (odd
    /// dimensions round up, with edge clamping), repeated until a single
    /// texel remains. Arithmetic is performed in `f32` to reproduce the
    /// precision behavior of the real hardware; the modeled cost charges a
    /// render-to-texture pass per level plus the final readback. The paper
    /// notes float texture *writes* were slow on this hardware; the
    /// `write_penalty` multiplier (≥ 1) scales the per-level cost to model
    /// that.
    pub fn mipmap_sum(
        &mut self,
        texture: TextureId,
        channel: usize,
        write_penalty: f64,
    ) -> GpuResult<MipmapReduction> {
        let tex = self.texture(texture)?;
        let mut width = tex.width();
        let mut height = tex.height();
        let texel_count = (width * height) as f64;
        let mut level: Vec<f32> = (0..height)
            .flat_map(|y| (0..width).map(move |x| (x, y)))
            .map(|(x, y)| tex.fetch_channel(x, y, channel))
            .collect();

        let mut levels = 0u32;
        let mut texels_written = 0u64;
        let mut modeled = 0.0f64;
        let profile = self.profile().clone();

        while width > 1 || height > 1 {
            let next_w = width.div_ceil(2);
            let next_h = height.div_ceil(2);
            let mut next = vec![0.0f32; next_w * next_h];
            for ny in 0..next_h {
                for nx in 0..next_w {
                    // 2x2 box filter with clamp-to-edge, computed in f32.
                    let x0 = (nx * 2).min(width - 1);
                    let x1 = (nx * 2 + 1).min(width - 1);
                    let y0 = (ny * 2).min(height - 1);
                    let y1 = (ny * 2 + 1).min(height - 1);
                    let s = level[y0 * width + x0]
                        + level[y0 * width + x1]
                        + level[y1 * width + x0]
                        + level[y1 * width + x1];
                    next[ny * next_w + nx] = s * 0.25;
                }
            }
            let fragments = (next_w * next_h) as u64;
            texels_written += fragments;
            modeled += profile.raster_seconds(fragments, fragments, LEVEL_PROGRAM_CYCLES)
                * write_penalty
                + profile.draw_call_overhead_s;
            level = next;
            width = next_w;
            height = next_h;
            levels += 1;
        }

        // Read back the single top-level texel.
        modeled += profile.readback_seconds(4);
        self.add_modeled(Phase::Compute, modeled);

        let average = level[0];
        Ok(MipmapReduction {
            average,
            sum: average as f64 * texel_count,
            levels,
            texels_written,
            modeled_seconds: modeled,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::texture::{Texture, TextureFormat};

    fn upload(gpu: &mut Gpu, w: usize, h: usize, values: Vec<f32>) -> TextureId {
        let tex = Texture::from_data(w, h, TextureFormat::R, values).unwrap();
        gpu.create_texture(tex).unwrap()
    }

    #[test]
    fn exact_for_power_of_two_small_values() {
        let mut gpu = Gpu::geforce_fx_5900(4, 4);
        let values: Vec<f32> = (1..=16).map(|v| v as f32).collect();
        let id = upload(&mut gpu, 4, 4, values);
        let r = gpu.mipmap_sum(id, 0, 1.0).unwrap();
        assert_eq!(r.sum, 136.0);
        assert_eq!(r.levels, 2);
        // level sizes: 2x2 = 4, 1x1 = 1
        assert_eq!(r.texels_written, 5);
    }

    #[test]
    fn handles_non_power_of_two() {
        let mut gpu = Gpu::geforce_fx_5900(4, 4);
        let values = vec![1.0f32; 15];
        let id = upload(&mut gpu, 5, 3, values);
        let r = gpu.mipmap_sum(id, 0, 1.0).unwrap();
        // All-ones: averaging with edge clamping still yields exactly 1.
        assert_eq!(r.average, 1.0);
        assert_eq!(r.sum, 15.0);
    }

    #[test]
    fn loses_precision_on_large_integers() {
        // The paper: "the floating point representation may not have enough
        // precision to give an exact sum." Large 24-bit values with small
        // perturbations demonstrate the drift.
        let mut gpu = Gpu::geforce_fx_5900(64, 64);
        let n = 64 * 64;
        let values: Vec<f32> = (0..n).map(|i| ((1 << 23) + (i % 7) + 1) as f32).collect();
        let exact: f64 = values.iter().map(|&v| v as f64).sum();
        let id = upload(&mut gpu, 64, 64, values);
        let r = gpu.mipmap_sum(id, 0, 1.0).unwrap();
        let error = (r.sum - exact).abs();
        assert!(
            error > 0.0,
            "expected f32 averaging drift, got exact sum {exact}"
        );
    }

    #[test]
    fn write_penalty_scales_cost() {
        let mut gpu = Gpu::geforce_fx_5900(8, 8);
        let id = upload(&mut gpu, 8, 8, vec![1.0; 64]);
        let fast = gpu.mipmap_sum(id, 0, 1.0).unwrap();
        let slow = gpu.mipmap_sum(id, 0, 4.0).unwrap();
        assert!(slow.modeled_seconds > fast.modeled_seconds);
        assert_eq!(fast.sum, slow.sum);
    }

    #[test]
    fn single_texel_texture_is_trivial() {
        let mut gpu = Gpu::geforce_fx_5900(2, 2);
        let id = upload(&mut gpu, 1, 1, vec![42.0]);
        let r = gpu.mipmap_sum(id, 0, 1.0).unwrap();
        assert_eq!(r.sum, 42.0);
        assert_eq!(r.levels, 0);
    }
}
