//! The per-fragment pipeline: fragment program, then the fixed-function
//! test sequence in authentic OpenGL order.
//!
//! Order of operations for each fragment (§3.1 of the paper, plus the
//! `EXT_depth_bounds_test` specification):
//!
//! 1. fragment program (may replace color/depth or `KIL` the fragment);
//! 2. alpha test — failing fragments are discarded with **no** stencil
//!    side effect;
//! 3. stencil test — failing fragments run the `op_fail` stencil update,
//!    then are discarded;
//! 4. depth bounds test — compares the depth value **already stored in the
//!    framebuffer** against the bounds; failing fragments are discarded
//!    with no stencil side effect;
//! 5. depth test — failing fragments run `op_zfail`; passing fragments run
//!    `op_zpass`, write depth (if enabled) and color (per mask), and count
//!    toward any active occlusion query.
//!
//! The pipeline operates on an [`FbBand`] — a mutable view over a
//! contiguous row range of the framebuffer — so that the rasterizer can
//! process disjoint row bands on parallel host threads, mirroring the
//! device's parallel pixel pipes.

use crate::buffers::{dequantize_depth, quantize_depth, Framebuffer};
use crate::program::interp::{execute, FragmentContext, FragmentInput};
use crate::program::isa::FragmentProgram;
use crate::state::PipelineState;
use crate::texture::Texture;

/// What happened to a fragment, with enough detail for cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FragmentFate {
    /// Passed all tests (counts toward occlusion queries).
    Passed { shaded: bool },
    /// Discarded by some test or by `KIL`.
    Discarded { shaded: bool },
}

/// A mutable view over a contiguous pixel range of the framebuffer
/// (whole rows). `base` is the global linear index of the first pixel.
pub(crate) struct FbBand<'a> {
    pub color: &'a mut [[f32; 4]],
    pub depth: &'a mut [u32],
    pub stencil: &'a mut [u8],
    pub base: usize,
}

impl<'a> FbBand<'a> {
    /// A band covering the entire framebuffer.
    pub fn full(fb: &'a mut Framebuffer) -> FbBand<'a> {
        FbBand {
            color: fb.color.data_mut(),
            depth: fb.depth.raw_data_mut(),
            stencil: fb.stencil.data_mut(),
            base: 0,
        }
    }

    #[inline(always)]
    fn local(&self, global_idx: usize) -> usize {
        debug_assert!(global_idx >= self.base && global_idx - self.base < self.depth.len());
        global_idx - self.base
    }
}

/// Immutable per-draw context shared by all fragments.
pub(crate) struct PipelineEnv<'a> {
    pub state: &'a PipelineState,
    pub program: Option<&'a FragmentProgram>,
    pub textures: &'a [Option<&'a Texture>],
    pub env: &'a [[f32; 4]],
    pub quad_depth: f32,
    pub draw_color: [f32; 4],
    pub early_z: bool,
}

impl<'a> PipelineEnv<'a> {
    /// Whether the early-z fast path is usable: the fragment's depth and
    /// discard behavior must be fully known before shading. A program that
    /// writes `result.depth` or contains `KIL` forces late testing (the
    /// NV3x behavior the paper exploits in §6.2.1), and an enabled alpha
    /// test may depend on the program's output alpha.
    fn early_tests_eligible(&self) -> bool {
        self.early_z
            && match self.program {
                None => true,
                Some(p) => !p.writes_depth && !p.has_kil && !self.state.alpha.enabled,
            }
    }
}

/// Outcome of the fixed-function test sequence.
enum TestOutcome {
    /// Fragment passed alpha, stencil, bounds and depth.
    Pass,
    /// Fragment was discarded by some test.
    Fail,
}

/// Run the post-shading test sequence and all buffer side effects except
/// the color write (the caller supplies color only for passing fragments).
///
/// `frag_depth` is the fragment's incoming depth in normalized units;
/// `alpha` its output alpha.
#[inline(always)]
fn run_tests(
    state: &PipelineState,
    band: &mut FbBand<'_>,
    idx: usize,
    frag_depth: f32,
    alpha: f32,
) -> TestOutcome {
    let idx = band.local(idx);

    // 2. Alpha test: discarded fragments have no further effect.
    if !state.alpha.test(alpha) {
        return TestOutcome::Fail;
    }

    // 3. Stencil test.
    let stencil = &state.stencil;
    if stencil.enabled {
        let stored = band.stencil[idx];
        if !stencil.test(stored) {
            band.stencil[idx] = stencil.write(stored, stencil.op_fail);
            return TestOutcome::Fail;
        }
    }

    // 4. Depth bounds test: inspects the *stored* framebuffer depth and
    // discards without any stencil update (per the EXT spec).
    if state.depth_bounds.enabled && !state.depth_bounds.test(dequantize_depth(band.depth[idx])) {
        return TestOutcome::Fail;
    }

    // 5. Depth test, in the quantized 24-bit integer domain, under the
    // (normally all-ones) depth compare mask.
    let q_frag = quantize_depth(frag_depth as f64);
    let depth_pass = if state.depth.test_enabled {
        let mask = state.depth.compare_mask;
        state.depth.func.eval(q_frag & mask, band.depth[idx] & mask)
    } else {
        true
    };

    if !depth_pass {
        if stencil.enabled {
            let stored = band.stencil[idx];
            band.stencil[idx] = stencil.write(stored, stencil.op_zfail);
        }
        return TestOutcome::Fail;
    }

    if stencil.enabled {
        let stored = band.stencil[idx];
        band.stencil[idx] = stencil.write(stored, stencil.op_zpass);
    }
    if state.depth.write_enabled {
        band.depth[idx] = q_frag;
    }
    TestOutcome::Pass
}

/// Write a passing fragment's color, honoring the color mask.
#[inline(always)]
fn write_color(state: &PipelineState, band: &mut FbBand<'_>, idx: usize, color: [f32; 4]) {
    let mask = state.color_mask;
    if !mask.any() {
        return;
    }
    let idx = band.local(idx);
    let stored = &mut band.color[idx];
    if mask.red {
        stored[0] = color[0];
    }
    if mask.green {
        stored[1] = color[1];
    }
    if mask.blue {
        stored[2] = color[2];
    }
    if mask.alpha {
        stored[3] = color[3];
    }
}

/// Process one fragment at pixel `(x, y)` / global linear index `idx`.
#[inline]
pub(crate) fn process_fragment(
    env: &PipelineEnv<'_>,
    band: &mut FbBand<'_>,
    x: usize,
    y: usize,
    idx: usize,
) -> FragmentFate {
    match env.program {
        None => {
            // Pure fixed-function fragment: flat depth and color.
            match run_tests(env.state, band, idx, env.quad_depth, env.draw_color[3]) {
                TestOutcome::Pass => {
                    write_color(env.state, band, idx, env.draw_color);
                    FragmentFate::Passed { shaded: false }
                }
                TestOutcome::Fail => FragmentFate::Discarded { shaded: false },
            }
        }
        Some(program) => {
            if env.early_tests_eligible() {
                // Early path: the incoming depth is the quad depth and the
                // program cannot discard, so run all tests first and shade
                // only surviving fragments (this is what makes early
                // depth-culling "a significant performance increase",
                // §6.2.1).
                match run_tests(env.state, band, idx, env.quad_depth, env.draw_color[3]) {
                    TestOutcome::Pass => {
                        if env.state.color_mask.any() {
                            let input =
                                FragmentInput::for_pixel(x, y, env.quad_depth, env.draw_color);
                            let ctx = FragmentContext {
                                textures: env.textures,
                                env: env.env,
                            };
                            let out = execute(program, &input, &ctx);
                            write_color(env.state, band, idx, out.color);
                            FragmentFate::Passed { shaded: true }
                        } else {
                            // Nothing observable from the program: the
                            // hardware still passes the fragment but the
                            // shading itself is skipped by early-z.
                            FragmentFate::Passed { shaded: false }
                        }
                    }
                    TestOutcome::Fail => FragmentFate::Discarded { shaded: false },
                }
            } else {
                // Late path: shade first, then test.
                let input = FragmentInput::for_pixel(x, y, env.quad_depth, env.draw_color);
                let ctx = FragmentContext {
                    textures: env.textures,
                    env: env.env,
                };
                let out = execute(program, &input, &ctx);
                if out.killed {
                    return FragmentFate::Discarded { shaded: true };
                }
                let frag_depth = out.depth.unwrap_or(env.quad_depth);
                match run_tests(env.state, band, idx, frag_depth, out.color[3]) {
                    TestOutcome::Pass => {
                        write_color(env.state, band, idx, out.color);
                        FragmentFate::Passed { shaded: true }
                    }
                    TestOutcome::Fail => FragmentFate::Discarded { shaded: true },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{CompareFunc, StencilOp};

    fn env_fixed(state: &PipelineState) -> PipelineEnv<'_> {
        PipelineEnv {
            state,
            program: None,
            textures: &[],
            env: &[],
            quad_depth: 0.5,
            draw_color: [1.0, 0.0, 0.0, 1.0],
            early_z: true,
        }
    }

    fn run_one(
        env: &PipelineEnv<'_>,
        fb: &mut Framebuffer,
        x: usize,
        y: usize,
        idx: usize,
    ) -> FragmentFate {
        let mut band = FbBand::full(fb);
        process_fragment(env, &mut band, x, y, idx)
    }

    #[test]
    fn plain_fragment_writes_color_and_depth() {
        let state = PipelineState {
            depth: crate::state::DepthState {
                test_enabled: true,
                func: CompareFunc::Always,
                write_enabled: true,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut fb = Framebuffer::new(2, 2);
        let fate = run_one(&env_fixed(&state), &mut fb, 1, 0, 1);
        assert_eq!(fate, FragmentFate::Passed { shaded: false });
        assert_eq!(fb.color.get(1), [1.0, 0.0, 0.0, 1.0]);
        assert_eq!(fb.depth.get_raw(1), quantize_depth(0.5));
        // untouched pixel
        assert_eq!(fb.color.get(0), [0.0; 4]);
    }

    #[test]
    fn depth_test_rejects_and_preserves_buffers() {
        let state = PipelineState {
            depth: crate::state::DepthState {
                test_enabled: true,
                func: CompareFunc::Less,
                write_enabled: true,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut fb = Framebuffer::new(1, 1);
        fb.depth.clear(0.25); // stored 0.25 < incoming 0.5 → Less fails
        let fate = run_one(&env_fixed(&state), &mut fb, 0, 0, 0);
        assert_eq!(fate, FragmentFate::Discarded { shaded: false });
        assert_eq!(fb.depth.get_raw(0), quantize_depth(0.25));
        assert_eq!(fb.color.get(0), [0.0; 4]);
    }

    #[test]
    fn stencil_ops_fire_per_outcome() {
        // StencilOp(Op1=Zero on stencil fail, Op2=Incr on depth fail,
        // Op3=Replace on pass), mirroring the paper's §3.4 pseudo-code.
        let mut state = PipelineState::default();
        state.stencil.enabled = true;
        state.stencil.func = CompareFunc::Equal;
        state.stencil.reference = 1;
        state.stencil.op_fail = StencilOp::Zero;
        state.stencil.op_zfail = StencilOp::Incr;
        state.stencil.op_zpass = StencilOp::Replace;
        state.depth.test_enabled = true;
        state.depth.func = CompareFunc::Less;
        state.depth.write_enabled = false;

        let mut fb = Framebuffer::new(3, 1);
        // pixel 0: stencil 1 (passes), depth far (pass) → Replace → 1
        fb.stencil.set(0, 1);
        fb.depth.set_raw(0, quantize_depth(1.0));
        // pixel 1: stencil 1 (passes), depth near (fail) → Incr → 2
        fb.stencil.set(1, 1);
        fb.depth.set_raw(1, quantize_depth(0.0));
        // pixel 2: stencil 5 (fails) → Zero
        fb.stencil.set(2, 5);

        let env = env_fixed(&state);
        assert_eq!(
            run_one(&env, &mut fb, 0, 0, 0),
            FragmentFate::Passed { shaded: false }
        );
        assert_eq!(
            run_one(&env, &mut fb, 1, 0, 1),
            FragmentFate::Discarded { shaded: false }
        );
        assert_eq!(
            run_one(&env, &mut fb, 2, 0, 2),
            FragmentFate::Discarded { shaded: false }
        );
        assert_eq!(fb.stencil.get(0), 1);
        assert_eq!(fb.stencil.get(1), 2);
        assert_eq!(fb.stencil.get(2), 0);
    }

    #[test]
    fn alpha_fail_skips_stencil_update() {
        let mut state = PipelineState::default();
        state.alpha.enabled = true;
        state.alpha.func = CompareFunc::GreaterEqual;
        state.alpha.reference = 0.5;
        state.stencil.enabled = true;
        state.stencil.func = CompareFunc::Never;
        state.stencil.op_fail = StencilOp::Replace;
        state.stencil.reference = 9;

        let mut fb = Framebuffer::new(1, 1);
        let mut env = env_fixed(&state);
        env.draw_color = [0.0, 0.0, 0.0, 0.25]; // alpha 0.25 < 0.5 → discard
        let fate = run_one(&env, &mut fb, 0, 0, 0);
        assert_eq!(fate, FragmentFate::Discarded { shaded: false });
        // alpha-discarded fragments never reach the stencil stage
        assert_eq!(fb.stencil.get(0), 0);
    }

    #[test]
    fn depth_bounds_discards_without_stencil_update() {
        let mut state = PipelineState::default();
        state.stencil.enabled = true;
        state.stencil.func = CompareFunc::Always;
        state.stencil.op_zpass = StencilOp::Replace;
        state.stencil.reference = 1;
        state.depth_bounds.enabled = true;
        state.depth_bounds.min = 0.4;
        state.depth_bounds.max = 0.6;
        state.depth.test_enabled = false;
        state.depth.write_enabled = false;

        let mut fb = Framebuffer::new(2, 1);
        fb.depth.set_raw(0, quantize_depth(0.5)); // in bounds
        fb.depth.set_raw(1, quantize_depth(0.9)); // out of bounds

        let env = env_fixed(&state);
        assert_eq!(
            run_one(&env, &mut fb, 0, 0, 0),
            FragmentFate::Passed { shaded: false }
        );
        assert_eq!(
            run_one(&env, &mut fb, 1, 0, 1),
            FragmentFate::Discarded { shaded: false }
        );
        assert_eq!(fb.stencil.get(0), 1, "in-bounds pixel marked");
        assert_eq!(fb.stencil.get(1), 0, "out-of-bounds pixel untouched");
    }

    #[test]
    fn color_mask_none_blocks_writes() {
        let state = PipelineState {
            color_mask: crate::state::ColorMask::NONE,
            ..Default::default()
        };
        let mut fb = Framebuffer::new(1, 1);
        let env = env_fixed(&state);
        run_one(&env, &mut fb, 0, 0, 0);
        assert_eq!(fb.color.get(0), [0.0; 4]);
    }

    #[test]
    fn depth_write_disabled_preserves_depth() {
        let mut state = PipelineState::default();
        state.depth.test_enabled = false;
        state.depth.write_enabled = false;
        let mut fb = Framebuffer::new(1, 1);
        let before = fb.depth.get_raw(0);
        run_one(&env_fixed(&state), &mut fb, 0, 0, 0);
        assert_eq!(fb.depth.get_raw(0), before);
    }

    #[test]
    fn band_local_indexing() {
        // A band starting at row 1 of a 4x3 framebuffer must map global
        // indices onto its local slices correctly.
        let mut fb = Framebuffer::new(4, 3);
        let state = PipelineState {
            depth: crate::state::DepthState {
                test_enabled: true,
                func: CompareFunc::Always,
                write_enabled: true,
                ..Default::default()
            },
            ..Default::default()
        };
        let env = env_fixed(&state);
        {
            let color = fb.color.data_mut();
            let (_, color_band) = color.split_at_mut(4);
            // Reborrow depth/stencil similarly.
            let mut fb2 = Framebuffer::new(4, 2);
            let mut band = FbBand {
                color: color_band,
                depth: fb2.depth.raw_data_mut(),
                stencil: fb2.stencil.data_mut(),
                base: 4,
            };
            let fate = process_fragment(&env, &mut band, 2, 1, 6);
            assert_eq!(fate, FragmentFate::Passed { shaded: false });
        }
        assert_eq!(fb.color.get(6), [1.0, 0.0, 0.0, 1.0]);
        assert_eq!(fb.color.get(2), [0.0; 4], "row 0 untouched");
    }
}
