//! Frame-buffer storage: color, depth and stencil buffers.
//!
//! §3.1 of the paper divides the frame-buffer into exactly these three
//! buffers. The depth buffer is quantized to 24 bits ("Current GPUs have
//! depth buffers with a maximum of 24 bits" — §6.1), which is load-bearing
//! for the database algorithms: attribute values survive the round trip
//! through the depth buffer exactly *because* they are encoded as ≤24-bit
//! integers.

use serde::{Deserialize, Serialize};

/// Number of bits in the simulated depth buffer.
pub const DEPTH_BITS: u32 = 24;

/// Largest raw depth value (`2^24 - 1`).
pub const DEPTH_MAX: u32 = (1 << DEPTH_BITS) - 1;

/// Normalization denominator: a depth of `d` stores `floor(d * 2^24)`.
///
/// This is the load-bearing convention for the database encoding: an
/// integer attribute `v < 2^24` is normalized as `v * 2^-24`, which is an
/// **exact** f32 operation (power-of-two scale), and quantization recovers
/// `v` exactly. A `1/(2^24 - 1)` convention would not survive the fragment
/// program's f32 arithmetic for values near the top of the range.
pub const DEPTH_SCALE: f64 = (1u64 << DEPTH_BITS) as f64;

/// Quantize a normalized depth in `[0, 1]` to the 24-bit integer domain,
/// clamping out-of-range input as GL does.
#[inline(always)]
pub fn quantize_depth(d: f64) -> u32 {
    let d = d.clamp(0.0, 1.0);
    ((d * DEPTH_SCALE) as u32).min(DEPTH_MAX)
}

/// Map a raw 24-bit depth value back to normalized `[0, 1)`.
#[inline(always)]
pub fn dequantize_depth(raw: u32) -> f64 {
    raw as f64 / DEPTH_SCALE
}

/// The depth buffer: one 24-bit value per pixel, stored in the low bits of
/// a `u32`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepthBuffer {
    width: usize,
    height: usize,
    data: Vec<u32>,
}

impl DepthBuffer {
    /// Create a depth buffer cleared to the far plane (1.0).
    pub fn new(width: usize, height: usize) -> DepthBuffer {
        DepthBuffer {
            width,
            height,
            data: vec![DEPTH_MAX; width * height],
        }
    }

    /// Clear every pixel to a normalized depth value.
    pub fn clear(&mut self, depth: f64) {
        let q = quantize_depth(depth);
        self.data.fill(q);
    }

    /// Raw (quantized) value at a pixel.
    #[inline(always)]
    pub fn get_raw(&self, idx: usize) -> u32 {
        self.data[idx]
    }

    /// Store a raw (already quantized) value at a pixel.
    #[inline(always)]
    pub fn set_raw(&mut self, idx: usize, raw: u32) {
        debug_assert!(raw <= DEPTH_MAX);
        self.data[idx] = raw;
    }

    /// Normalized value at a pixel.
    #[inline(always)]
    pub fn get(&self, idx: usize) -> f64 {
        dequantize_depth(self.data[idx])
    }

    /// Buffer width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Buffer height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw storage, for read-backs.
    pub fn raw_data(&self) -> &[u32] {
        &self.data
    }

    /// Mutable raw storage, for the rasterizer's row-band splitting.
    pub(crate) fn raw_data_mut(&mut self) -> &mut [u32] {
        &mut self.data
    }
}

/// The stencil buffer: one 8-bit value per pixel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StencilBuffer {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl StencilBuffer {
    /// Create a stencil buffer cleared to zero.
    pub fn new(width: usize, height: usize) -> StencilBuffer {
        StencilBuffer {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// Clear every pixel to `value`.
    pub fn clear(&mut self, value: u8) {
        self.data.fill(value);
    }

    /// Value at a pixel.
    #[inline(always)]
    pub fn get(&self, idx: usize) -> u8 {
        self.data[idx]
    }

    /// Store a value at a pixel.
    #[inline(always)]
    pub fn set(&mut self, idx: usize, value: u8) {
        self.data[idx] = value;
    }

    /// Raw storage, for read-backs.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable raw storage, for the rasterizer's row-band splitting.
    pub(crate) fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Count pixels whose stencil value is nonzero — a host-side helper for
    /// tests; the device itself learns pass counts via occlusion queries.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0).count()
    }
}

/// The color buffer: RGBA f32 per pixel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColorBuffer {
    width: usize,
    height: usize,
    data: Vec<[f32; 4]>,
}

impl ColorBuffer {
    /// Create a color buffer cleared to transparent black.
    pub fn new(width: usize, height: usize) -> ColorBuffer {
        ColorBuffer {
            width,
            height,
            data: vec![[0.0; 4]; width * height],
        }
    }

    /// Clear every pixel to an RGBA value.
    pub fn clear(&mut self, rgba: [f32; 4]) {
        self.data.fill(rgba);
    }

    /// Value at a pixel.
    #[inline(always)]
    pub fn get(&self, idx: usize) -> [f32; 4] {
        self.data[idx]
    }

    /// Store a value at a pixel.
    #[inline(always)]
    pub fn set(&mut self, idx: usize, rgba: [f32; 4]) {
        self.data[idx] = rgba;
    }

    /// Raw storage, for read-backs.
    pub fn data(&self) -> &[[f32; 4]] {
        &self.data
    }

    /// Mutable raw storage, for the rasterizer's row-band splitting.
    pub(crate) fn data_mut(&mut self) -> &mut [[f32; 4]] {
        &mut self.data
    }
}

/// The complete framebuffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Framebuffer {
    /// Color buffer.
    pub color: ColorBuffer,
    /// 24-bit depth buffer.
    pub depth: DepthBuffer,
    /// 8-bit stencil buffer.
    pub stencil: StencilBuffer,
    width: usize,
    height: usize,
}

impl Framebuffer {
    /// Allocate a framebuffer of the given pixel dimensions.
    pub fn new(width: usize, height: usize) -> Framebuffer {
        Framebuffer {
            color: ColorBuffer::new(width, height),
            depth: DepthBuffer::new(width, height),
            stencil: StencilBuffer::new(width, height),
            width,
            height,
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// Byte footprint in video memory (RGBA f32 + 24/8 depth-stencil, which
    /// real hardware packs into 32 bits).
    pub fn byte_size(&self) -> usize {
        self.pixel_count() * (4 * 4 + 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_is_exact_for_24bit_encodings() {
        // Every attribute encoding k * 2^-24 must round-trip exactly —
        // including when the normalization is performed in f32, as the
        // CopyToDepth fragment program does.
        for k in [
            0u32,
            1,
            2,
            12345,
            1 << 20,
            (1 << 23) + 1,
            DEPTH_MAX - 1,
            DEPTH_MAX,
        ] {
            let d = k as f64 / DEPTH_SCALE;
            assert_eq!(quantize_depth(d), k, "k = {k} (f64 path)");
            let d32 = k as f32 * (1.0f32 / DEPTH_SCALE as f32);
            assert_eq!(quantize_depth(d32 as f64), k, "k = {k} (f32 path)");
        }
    }

    #[test]
    fn quantization_clamps() {
        assert_eq!(quantize_depth(-0.5), 0);
        assert_eq!(quantize_depth(1.5), DEPTH_MAX);
        assert_eq!(quantize_depth(1.0), DEPTH_MAX);
    }

    #[test]
    fn quantization_is_monotone() {
        let mut prev = 0;
        for i in 0..=1000 {
            let q = quantize_depth(i as f64 / 1000.0);
            assert!(q >= prev);
            prev = q;
        }
        assert_eq!(prev, DEPTH_MAX);
    }

    #[test]
    fn quantization_collapses_sub_precision_differences() {
        // Two values closer than an LSB land on the same raw value — the
        // 24-bit precision limit §6.1 warns about.
        let eps = 0.1 / DEPTH_SCALE;
        assert_eq!(quantize_depth(0.5), quantize_depth(0.5 + eps));
    }

    #[test]
    fn depth_buffer_clear_and_access() {
        let mut db = DepthBuffer::new(4, 2);
        assert_eq!(db.get_raw(0), DEPTH_MAX);
        db.clear(0.0);
        assert_eq!(db.get_raw(7), 0);
        db.set_raw(3, 42);
        assert_eq!(db.get_raw(3), 42);
        assert!((db.get(3) - 42.0 / DEPTH_SCALE).abs() < 1e-12);
    }

    #[test]
    fn stencil_buffer_roundtrip() {
        let mut sb = StencilBuffer::new(3, 3);
        sb.clear(1);
        assert_eq!(sb.get(4), 1);
        sb.set(4, 2);
        assert_eq!(sb.get(4), 2);
        assert_eq!(sb.count_nonzero(), 9);
        sb.clear(0);
        assert_eq!(sb.count_nonzero(), 0);
    }

    #[test]
    fn color_buffer_roundtrip() {
        let mut cb = ColorBuffer::new(2, 2);
        cb.set(2, [0.1, 0.2, 0.3, 0.4]);
        assert_eq!(cb.get(2), [0.1, 0.2, 0.3, 0.4]);
        cb.clear([1.0; 4]);
        assert_eq!(cb.get(2), [1.0; 4]);
    }

    #[test]
    fn framebuffer_dimensions() {
        let fb = Framebuffer::new(10, 5);
        assert_eq!(fb.pixel_count(), 50);
        assert_eq!(fb.width(), 10);
        assert_eq!(fb.height(), 5);
        assert_eq!(fb.byte_size(), 50 * 20);
    }
}
