//! Deterministic fault injection for the simulated device.
//!
//! A [`FaultInjector`] holds a schedule of [`FaultEvent`]s keyed on the
//! **modeled clock** (`GpuStats::modeled` total, in nanoseconds) — never
//! wall clock — so a chaos run is replayable byte-for-byte from its seed.
//! The device polls the injector at each fault-prone operation (texture
//! allocation, occlusion query retrieval, buffer readback, draw
//! submission); an event fires when its kind matches the operation and its
//! trigger time has been reached on the modeled clock. Fired events are
//! consumed, so a retry of the same operation succeeds unless another
//! event is also due — exactly the behaviour of a transient driver fault.
//!
//! The modeled faults are the four failure modes the paper's routines
//! silently assume away:
//!
//! * [`FaultKind::OcclusionLoss`] — an occlusion query result is lost in
//!   flight (the query is consumed; §5.1's counting pass must be redrawn);
//! * [`FaultKind::ReadbackBitFlip`] — a buffer readback fails its
//!   integrity check at the driver boundary (detected, not silent: the
//!   call returns [`crate::GpuError::ReadbackCorrupted`] and no data);
//! * [`FaultKind::AllocationFail`] — a texture allocation is refused even
//!   though the VRAM budget would admit it (fragmentation / driver
//!   refusal), surfacing the same `OutOfVideoMemory` error as a genuine
//!   over-budget request so the out-of-core ladder handles both;
//! * [`FaultKind::DeviceReset`] — the driver resets the device: every
//!   texture, binding, program, and framebuffer byte is lost, while the
//!   accumulated statistics (and hence the modeled clock) survive, keeping
//!   the schedule monotonic across the reset.
//!
//! Capability withdrawal (a `HardwareProfile` without depth-bounds) is not
//! an event — it is a static property of the profile, exercised via
//! [`crate::cost::HardwareProfile::geforce_fx_5900_no_depth_bounds`].

use std::fmt;

/// The kinds of device fault the injector can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Lose the result of the next occlusion query retrieval.
    OcclusionLoss,
    /// Corrupt the next buffer readback (detected at the driver boundary).
    ReadbackBitFlip,
    /// Refuse the next texture allocation with an out-of-memory error.
    AllocationFail,
    /// Reset the device on the next fault-prone operation of any kind.
    DeviceReset,
}

impl FaultKind {
    /// All fault kinds, in a fixed order (used by seeded schedule
    /// generation; reordering would change every derived schedule).
    pub const ALL: [FaultKind; 4] = [
        FaultKind::OcclusionLoss,
        FaultKind::ReadbackBitFlip,
        FaultKind::AllocationFail,
        FaultKind::DeviceReset,
    ];

    /// Short stable name used in span tags and fault-schedule dumps.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::OcclusionLoss => "occlusion-loss",
            FaultKind::ReadbackBitFlip => "readback-bit-flip",
            FaultKind::AllocationFail => "allocation-fail",
            FaultKind::DeviceReset => "device-reset",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One scheduled fault: fire the first matching operation at or after
/// `at_ns` on the modeled clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Modeled-clock trigger time in nanoseconds.
    pub at_ns: u64,
    /// Which operation class the fault strikes.
    pub kind: FaultKind,
}

/// Counts of faults actually fired, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Occlusion query results lost.
    pub occlusion_losses: u64,
    /// Readbacks corrupted.
    pub readback_bit_flips: u64,
    /// Texture allocations refused.
    pub allocation_fails: u64,
    /// Device resets performed.
    pub device_resets: u64,
}

impl FaultStats {
    /// Total faults fired across all kinds.
    pub fn total(&self) -> u64 {
        self.occlusion_losses + self.readback_bit_flips + self.allocation_fails + self.device_resets
    }

    pub(crate) fn record(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::OcclusionLoss => self.occlusion_losses += 1,
            FaultKind::ReadbackBitFlip => self.readback_bit_flips += 1,
            FaultKind::AllocationFail => self.allocation_fails += 1,
            FaultKind::DeviceReset => self.device_resets += 1,
        }
    }
}

/// SplitMix64: tiny, dependency-free, high-quality 64-bit PRNG. The
/// schedule generator must be deterministic across platforms and must not
/// depend on vendored crates, so it is implemented inline.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound > 0) via multiply-shift.
    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }
}

/// A deterministic, modeled-clock fault schedule.
///
/// Attach to a device with [`crate::Gpu::attach_fault_injector`]; detach
/// (recovering fired/pending state) with [`crate::Gpu::take_fault_injector`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Pending events, sorted ascending by `at_ns` (ties keep insertion
    /// order). Events are consumed front-first as they fire.
    schedule: Vec<FaultEvent>,
    /// Index of the next unfired event per kind is implicit: events are
    /// scanned in order and removed when fired.
    fired: FaultStats,
    /// Seed this schedule was generated from, if any (0 for hand-built
    /// schedules) — carried for diagnostics and replay instructions.
    seed: u64,
}

impl FaultInjector {
    /// An injector with an explicit, hand-built schedule.
    pub fn with_schedule(mut schedule: Vec<FaultEvent>) -> Self {
        schedule.sort_by_key(|e| e.at_ns);
        FaultInjector {
            schedule,
            fired: FaultStats::default(),
            seed: 0,
        }
    }

    /// Generate a schedule from a seed: `events` faults of uniformly
    /// random kind at uniformly random modeled-clock times in
    /// `0..horizon_ns`. Identical `(seed, events, horizon_ns)` triples
    /// produce identical schedules on every platform.
    pub fn from_seed(seed: u64, events: usize, horizon_ns: u64) -> Self {
        let mut rng = SplitMix64(seed);
        let mut schedule = Vec::with_capacity(events);
        for _ in 0..events {
            let at_ns = if horizon_ns == 0 {
                0
            } else {
                rng.below(horizon_ns)
            };
            let kind = FaultKind::ALL[rng.below(FaultKind::ALL.len() as u64) as usize];
            schedule.push(FaultEvent { at_ns, kind });
        }
        schedule.sort_by_key(|e| e.at_ns);
        FaultInjector {
            schedule,
            fired: FaultStats::default(),
            seed,
        }
    }

    /// The seed this schedule was generated from (0 if hand-built).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Events not yet fired, in firing order.
    pub fn pending(&self) -> &[FaultEvent] {
        &self.schedule
    }

    /// Counts of faults fired so far.
    pub fn fired(&self) -> FaultStats {
        self.fired
    }

    /// Poll for a fault striking an operation of `kind` at modeled time
    /// `now_ns`. Device resets are "due" for *any* operation kind, so a
    /// pending `DeviceReset` event outranks a later kind-specific event.
    /// Returns the kind actually fired ([`FaultKind::DeviceReset`] or
    /// `kind`), consuming the event.
    pub(crate) fn poll(&mut self, kind: FaultKind, now_ns: u64) -> Option<FaultKind> {
        let mut hit = None;
        for (i, ev) in self.schedule.iter().enumerate() {
            if ev.at_ns > now_ns {
                break;
            }
            if ev.kind == kind || ev.kind == FaultKind::DeviceReset {
                hit = Some(i);
                break;
            }
        }
        let i = hit?;
        let fired = self.schedule.remove(i).kind;
        self.fired.record(fired);
        Some(fired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_schedules_are_reproducible() {
        let a = FaultInjector::from_seed(42, 16, 1_000_000);
        let b = FaultInjector::from_seed(42, 16, 1_000_000);
        assert_eq!(a.pending(), b.pending());
        let c = FaultInjector::from_seed(43, 16, 1_000_000);
        assert_ne!(a.pending(), c.pending());
    }

    #[test]
    fn schedule_is_sorted_and_bounded() {
        let inj = FaultInjector::from_seed(7, 64, 500_000);
        let times: Vec<u64> = inj.pending().iter().map(|e| e.at_ns).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert!(times.iter().all(|&t| t < 500_000));
    }

    #[test]
    fn poll_fires_only_matching_kind_at_or_after_trigger() {
        let mut inj = FaultInjector::with_schedule(vec![
            FaultEvent {
                at_ns: 100,
                kind: FaultKind::OcclusionLoss,
            },
            FaultEvent {
                at_ns: 200,
                kind: FaultKind::ReadbackBitFlip,
            },
        ]);
        // Before the trigger time: nothing fires.
        assert_eq!(inj.poll(FaultKind::OcclusionLoss, 50), None);
        // Wrong kind at a due time: the due event stays pending.
        assert_eq!(inj.poll(FaultKind::ReadbackBitFlip, 150), None);
        // Matching kind at a due time fires and consumes the event.
        assert_eq!(
            inj.poll(FaultKind::OcclusionLoss, 150),
            Some(FaultKind::OcclusionLoss)
        );
        assert_eq!(inj.poll(FaultKind::OcclusionLoss, 150), None);
        assert_eq!(inj.fired().occlusion_losses, 1);
        // The later event still fires once its time comes.
        assert_eq!(
            inj.poll(FaultKind::ReadbackBitFlip, 250),
            Some(FaultKind::ReadbackBitFlip)
        );
        assert_eq!(inj.fired().total(), 2);
    }

    #[test]
    fn device_reset_outranks_kind_specific_events() {
        let mut inj = FaultInjector::with_schedule(vec![
            FaultEvent {
                at_ns: 10,
                kind: FaultKind::DeviceReset,
            },
            FaultEvent {
                at_ns: 20,
                kind: FaultKind::AllocationFail,
            },
        ]);
        assert_eq!(
            inj.poll(FaultKind::AllocationFail, 30),
            Some(FaultKind::DeviceReset)
        );
        assert_eq!(
            inj.poll(FaultKind::AllocationFail, 30),
            Some(FaultKind::AllocationFail)
        );
    }
}
